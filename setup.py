"""Setuptools entry point (kept for offline/legacy editable installs)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Network-Attack-Resilient Intrusion-Tolerant "
        "SCADA for the Power Grid' (Spire, DSN 2018)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy", "networkx"],
)
