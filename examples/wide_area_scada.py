#!/usr/bin/env python3
"""Wide-area deployment study: latency across placements and overlays.

Reproduces the flavour of the paper's deployment discussion: how update
latency depends on where the replicas live (single LAN site vs the
2 CC + 2 DC wide-area placement) and on the overlay's routing mode, and
what a site outage does to each.

Run:  python examples/wide_area_scada.py
"""

from repro.core import SpireDeployment, SpireOptions
from repro.spines import lan_topology, wide_area_topology


def run_scenario(label, options, topology, outage_site=None):
    deployment = SpireDeployment(options, topology=topology)
    deployment.start()
    deployment.run_for(3_000)
    if outage_site is not None:
        members = [
            name for name, site in deployment.replica_sites.items()
            if site == outage_site
        ]
        everyone = [
            p for p in deployment.network.process_names
            if p not in members and not p.startswith("spines:")
        ]
        deployment.network.partition(members, everyone)
        deployment.network.partition(
            members, [f"spines:{s.name}" for s in deployment.topology.sites]
        )
    deployment.run_for(12_000)
    stats = deployment.status_recorder.stats(since=4_000.0)
    acked = deployment.proxy.submissions.acked_total
    print(f"  {label:44s} n={stats.count:5d}  mean={stats.mean:7.1f} ms  "
          f"p99={stats.p99:7.1f} ms  acked={acked}")
    return stats


def main() -> None:
    print("Fault-free latency across deployment shapes "
          "(10 Hz polling, 4 substations):\n")
    base = dict(num_substations=4, poll_interval_ms=100.0, seed=11)

    run_scenario(
        "LAN, single site (all 6 replicas co-located)",
        # single site: flooding == shortest, so the preset is exact
        SpireOptions.lan(**base, overlay_mode="flooding",
                         placement={"lan0": 6}),
        lan_topology(1),
    )
    run_scenario(
        "wide-area, 2 CC + 2 DC (paper placement)",
        SpireOptions.wan(**base),
        wide_area_topology(),
    )
    run_scenario(
        "wide-area, shortest-path overlay (no flooding)",
        SpireOptions.wan(**base, overlay_mode="shortest"),
        wide_area_topology(),
    )

    print("\nWith a data-center outage mid-run "
          "(dc1's replica cut off; quorum 4-of-6 still available):\n")
    outage_options = dict(base)
    outage_options["seed"] = 12
    run_scenario(
        "wide-area + dc1 outage, flooding overlay",
        SpireOptions.wan(**outage_options),
        wide_area_topology(),
        outage_site="dc1",
    )
    print("\nThe LAN deployment is fastest but survives no site event; the "
          "wide-area placement pays tens of milliseconds for surviving "
          "intrusions, recoveries, and a whole-site loss simultaneously.")


if __name__ == "__main__":
    main()
