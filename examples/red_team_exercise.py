#!/usr/bin/env python3
"""Red-team exercise: the same intrusion campaign against a traditional
SCADA stack and against Spire (reproducing the paper's resiliency test).

Against the traditional system, the attacker compromises the single SCADA
master host, inherits its field credential, and opens breakers until the
grid is dark. Against Spire, the attacker exploits one replica at a time
(diversity-gated), but ≤ f compromised replicas can neither forge
threshold-signed commands nor block service, and proactive recovery with
re-diversification keeps evicting it.

Run:  python examples/red_team_exercise.py
"""

from repro.attacks import SpireCampaign, TraditionalCampaign
from repro.baselines import TraditionalDeployment
from repro.core import SpireDeployment, SpireOptions

RUN_MS = 40_000.0


def sparkline(values, width=50):
    if not values:
        return ""
    chars = "  ▁▂▃▄▅▆▇█"
    high = max(values) or 1.0
    step = max(1, len(values) // width)
    return "".join(chars[min(9, int(v / high * 9))] for v in values[::step])


def main() -> None:
    print("=== Phase 1: red team vs traditional SCADA (single master + "
          "hot standby) ===")
    traditional = TraditionalDeployment(num_substations=6, seed=21)
    campaign_t = TraditionalCampaign(
        traditional, breach_time_ms=8_000.0, sabotage_interval_ms=400.0,
    )
    traditional.start()
    campaign_t.start()
    traditional.run_for(RUN_MS)
    total = traditional.grid.total_load_mw()
    served = [load for _, load in campaign_t.result.served_load]
    print(f"  master compromised at t=8 s; attacker issued "
          f"{campaign_t.result.unauthorized_operations} breaker commands")
    print(f"  served load over time: {sparkline(served)}")
    print(f"  minimum served: {campaign_t.result.min_served_fraction(total):.0%} "
          f"of {total:.0f} MW  ->  GRID DOWN")

    print("\n=== Phase 2: the same red team vs Spire (f=1, diversity, "
          "proactive recovery) ===")
    spire = SpireDeployment(SpireOptions(
        num_substations=6, poll_interval_ms=250.0, seed=21,
        proactive_recovery=(8_000.0, 500.0),
    ))
    campaign_s = SpireCampaign(
        spire, first_attempt_ms=8_000.0, dwell_ms=5_000.0,
        attempt_interval_ms=5_000.0,
    )
    spire.start()
    campaign_s.start()
    spire.run_for(RUN_MS)
    total = spire.grid.total_load_mw()
    served = [load for _, load in campaign_s.result.served_load]
    result = campaign_s.result
    print(f"  exploit attempts: {result.exploit_attempts}, "
          f"landed: {result.exploit_successes}, "
          f"invalidated by re-diversification: {result.exploits_invalidated}")
    print(f"  currently compromised replicas: "
          f"{len(campaign_s.compromised)} (recovery keeps evicting)")
    print(f"  served load over time: {sparkline(served)}")
    print(f"  minimum served: {result.min_served_fraction(total):.0%} "
          f"of {total:.0f} MW  ->  SERVICE MAINTAINED")
    stats = spire.status_recorder.stats()
    print(f"  SCADA updates delivered throughout: {stats.count} "
          f"(mean latency {stats.mean:.1f} ms)")
    evictions = spire.trace.count(component="campaign", kind="evicted")
    print(f"  intrusions evicted by proactive recovery: {evictions}")


if __name__ == "__main__":
    main()
