#!/usr/bin/env python3
"""A compressed 'day of grid operations' through the intrusion-tolerant
SCADA stack: load following, an operator switching sequence, a voltage sag
handled by local PLC protection, and a replica rejuvenation — all while the
HMI keeps a consistent, threshold-verified view.

Run:  python examples/grid_operations_day.py
"""

from repro.core import SpireDeployment, SpireOptions
from repro.scada import PlcDevice, undervoltage_rule

RUN_STEP_MS = 5_000.0


def show_grid(deployment, label):
    grid = deployment.grid
    print(f"\n[{label}] t={deployment.simulator.now / 1000:5.1f}s  "
          f"served {grid.served_load_mw():6.1f}/{grid.total_load_mw():6.1f} MW, "
          f"energized {len(grid.energized_substations())}/"
          f"{len(grid.substations)} substations")
    master = deployment.master_state()
    alarms = master.active_alarms()
    if alarms:
        for alarm in alarms[:5]:
            print(f"    ALARM {alarm.substation}: {alarm.kind} ({alarm.value:.1f})")
    else:
        print("    no active alarms")


def main() -> None:
    deployment = SpireDeployment(SpireOptions(
        num_substations=6,
        poll_interval_ms=200.0,
        seed=33,
        proactive_recovery=(15_000.0, 600.0),  # rejuvenation every 15 s
    ))
    # swap one RTU for a PLC with undervoltage protection
    grid = deployment.grid
    plc_substation = sorted(grid.substations)[4]
    plc = PlcDevice(
        "plc:extra", deployment.simulator, deployment.network, grid,
        plc_substation, unit_id=99,
        rules=[undervoltage_rule(threshold_kv=120.0)],
    )
    plc.start()
    deployment.start()

    # morning: normal operation, load ramping with the diurnal curve
    grid.time_hours = 6.0
    deployment.run_for(RUN_STEP_MS)
    grid.advance_time(4.0)
    show_grid(deployment, "morning ")

    # mid-day: operator performs a switching sequence (open a tie, close it)
    hmi = deployment.hmis[0]
    substation = sorted(grid.substations)[3]
    breaker = sorted(grid.substations[substation].breakers)[0]
    print(f"\noperator: opening {substation}/{breaker} for line maintenance")
    hmi.operate_breaker(substation, breaker, close=False, reason="maintenance")
    deployment.run_for(RUN_STEP_MS)
    show_grid(deployment, "maint.  ")
    print(f"operator: restoring {substation}/{breaker}")
    hmi.operate_breaker(substation, breaker, close=True, reason="restore")
    deployment.run_for(RUN_STEP_MS)
    show_grid(deployment, "restored")

    # afternoon: a voltage sag at the PLC substation trips local protection
    print(f"\nvoltage sag at {plc_substation}: local PLC protection responds")
    grid.substations[plc_substation].nominal_kv = 110.0
    deployment.run_for(2_000)
    print(f"    PLC trips: {plc.trips} (isolated the sagging section)")
    grid.substations[plc_substation].nominal_kv = 138.0
    # operator re-closes the tripped breakers through the SCADA path
    for breaker_id in sorted(grid.substations[plc_substation].breakers):
        hmi.operate_breaker(plc_substation, breaker_id, close=True,
                            reason="post-trip restoration")
    deployment.run_for(RUN_STEP_MS)
    show_grid(deployment, "evening ")

    # all along, proactive recovery rotated replicas underneath
    scheduler = deployment.recovery_scheduler
    print(f"\nreplica rejuvenations completed during the day: "
          f"{scheduler.recoveries_completed}")
    stats = deployment.status_recorder.stats()
    print(f"SCADA updates delivered: {stats.count} "
          f"(mean {stats.mean:.1f} ms, p99 {stats.p99:.1f} ms)")
    print(f"operator commands confirmed: {len(hmi.confirmed_commands)}")


if __name__ == "__main__":
    main()
