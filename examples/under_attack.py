#!/usr/bin/env python3
"""Network attack demo: Spire (Prime) vs a PBFT-style SCADA under a
leader-targeted DoS — the paper's headline comparison.

Scenario: a network attacker floods the current consensus leader's access
link, adding 300 ms of delay. Watch what happens to SCADA update latency:

* Prime's replicas measure the leader's turnaround time against real RTTs,
  suspect it, rotate to a new leader, and latency re-bounds within a couple
  of seconds.
* The PBFT baseline — whose only defence is a static timeout — never
  replaces the leader (the delay stays under the timeout) and every single
  update pays the attack penalty for as long as the attack runs.

Run:  python examples/under_attack.py
"""

import statistics

from repro.core import SpireDeployment, SpireOptions
from repro.crypto import FastCrypto
from repro.pbft import PbftConfig, PbftNode
from repro.prime import LoggingApp, sign_client_update
from repro.simnet import DosAttack, FailureInjector, LinkSpec, Network, Simulator

ATTACK_START_MS = 5_000.0
ATTACK_DURATION_MS = 15_000.0
RUN_MS = 25_000.0


def timeline(samples, bucket_ms=1000.0):
    buckets = {}
    for at, latency in samples:
        buckets.setdefault(int(at // bucket_ms), []).append(latency)
    return {t: statistics.mean(v) for t, v in sorted(buckets.items())}


def run_spire():
    deployment = SpireDeployment(SpireOptions(
        num_substations=3, poll_interval_ms=250.0, seed=7,
    ))
    deployment.start()
    deployment.run_for(2_000)
    injector = FailureInjector(deployment.simulator, deployment.network)
    leader = deployment.current_leader()
    injector.dos_node(
        DosAttack(leader, ATTACK_START_MS, ATTACK_DURATION_MS,
                  extra_delay_ms=300.0, extra_loss=0.05),
        peers=deployment.dos_peers_of(leader),
    )
    deployment.run_for(RUN_MS - 2_000)
    views = max(replica.view for replica in deployment.replicas)
    return timeline(deployment.status_recorder.samples), views


def run_pbft():
    simulator = Simulator(seed=7)
    network = Network(simulator, LinkSpec(latency_ms=8.0, jitter_ms=0.5))
    crypto = FastCrypto(seed="pbft-demo")
    names = tuple(f"replica:{i}" for i in range(6))
    config = PbftConfig(names, num_faults=1, request_timeout_ms=2_000.0)
    nodes = [PbftNode(n, simulator, network, config, crypto, LoggingApp())
             for n in names]
    for node in nodes:
        node.start()
    injector = FailureInjector(simulator, network)
    injector.dos_node(
        DosAttack("replica:0", ATTACK_START_MS, ATTACK_DURATION_MS,
                  extra_delay_ms=300.0, extra_loss=0.05),
        peers=list(names[1:]),
    )
    done = {}
    for node in nodes:
        node.execution_listeners.append(
            lambda u, i, r: done.setdefault((u.client, u.client_seq), simulator.now)
        )
    submitted = {}
    seq = 0
    while simulator.now < RUN_MS:
        seq += 1
        update = sign_client_update(crypto, "scada:client", seq, ("reading", seq))
        submitted[("scada:client", seq)] = simulator.now
        nodes[2].submit(update)
        simulator.run_for(250.0)
    simulator.run_for(3_000)
    samples = [(done[k], done[k] - submitted[k]) for k in submitted if k in done]
    return timeline(samples), max(node.view for node in nodes)


def render(title, series, views):
    print(f"\n{title}  (view changes: {views})")
    print("  t(s)  mean latency (ms)")
    for second, latency in series.items():
        marker = " <<< ATTACK" if ATTACK_START_MS / 1000 <= second < (
            ATTACK_START_MS + ATTACK_DURATION_MS) / 1000 else ""
        bar = "#" * min(60, int(latency / 10))
        print(f"  {second:4d}  {latency:8.1f}  {bar}{marker}")


def main() -> None:
    print("Running Spire (Prime) under a leader-targeted DoS...")
    spire_series, spire_views = run_spire()
    print("Running the PBFT-style baseline under the same attack...")
    pbft_series, pbft_views = run_pbft()
    render("Spire / Prime", spire_series, spire_views)
    render("PBFT baseline", pbft_series, pbft_views)
    attack_window = range(int(ATTACK_START_MS // 1000) + 2,
                          int((ATTACK_START_MS + ATTACK_DURATION_MS) // 1000))
    spire_attack = statistics.mean(
        spire_series[s] for s in attack_window if s in spire_series)
    pbft_attack = statistics.mean(
        pbft_series[s] for s in attack_window if s in pbft_series)
    print(f"\nMean latency during the attack: Spire {spire_attack:.1f} ms vs "
          f"baseline {pbft_attack:.1f} ms "
          f"({pbft_attack / spire_attack:.1f}x worse)")


if __name__ == "__main__":
    main()
