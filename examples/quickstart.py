#!/usr/bin/env python3
"""Quickstart: bring up a complete Spire deployment and watch it work.

Builds the paper's canonical wide-area configuration — 6 SCADA-master
replicas (f=1 intrusion, k=1 recovering) spread over 2 control centers and
2 data centers, connected by a Spines overlay, supervising a small power
grid through an RTU proxy — runs it for 10 seconds of virtual time, issues
an operator command, and prints what happened.

Run:  python examples/quickstart.py
"""

from repro.analysis import ScenarioReport
from repro.core import SpireDeployment, SpireOptions


def main() -> None:
    print("Building Spire deployment (6 replicas, 2 CC + 2 DC, 5 substations)...")
    deployment = SpireDeployment(SpireOptions.wan(
        num_substations=5,
        poll_interval_ms=200.0,   # each RTU polled 5x per second
        seed=42,
    ))
    deployment.start()

    print("Running 10 s of virtual time (RTU polling -> Prime ordering -> "
          "threshold-signed delivery)...")
    deployment.run_for(10_000)

    stats = deployment.status_recorder.stats()
    print(f"\nStatus updates delivered end-to-end: {stats.count}")
    print(f"  latency  mean={stats.mean:.1f} ms   median={stats.median:.1f} ms   "
          f"p99={stats.p99:.1f} ms   max={stats.maximum:.1f} ms")

    hmi = deployment.hmis[0]
    print(f"\nHMI view ({len(hmi.view)} substations):")
    for substation in sorted(hmi.view):
        reading = hmi.substation_status(substation)
        print(f"  {substation}: {reading.measurement('voltage_kv'):6.1f} kV, "
              f"{reading.measurement('flow_mw'):6.1f} MW, "
              f"energized={bool(reading.measurement('energized'))}")

    # operator opens a breaker; the command is signed, ordered by Prime,
    # threshold-signed by the replicas, verified at the proxy, and written
    # to the RTU over Modbus
    substation = sorted(deployment.grid.substations)[2]
    breaker = sorted(deployment.grid.substations[substation].breakers)[0]
    print(f"\nOperator opens breaker {breaker} at {substation}...")
    hmi.operate_breaker(substation, breaker, close=False, reason="quickstart")
    deployment.run_for(2_000)

    closed = deployment.grid.breaker_closed(substation, breaker)
    command_stats = deployment.command_recorder.stats()
    print(f"  breaker now closed={closed} "
          f"(command latency {command_stats.mean:.1f} ms)")
    print(f"  served load: {deployment.grid.served_load_mw():.1f} / "
          f"{deployment.grid.total_load_mw():.1f} MW")
    print(f"\nSimulated {deployment.simulator.now / 1000:.0f} s in "
          f"{deployment.simulator.events_processed} events. Done.")

    # the same numbers (and everything else the run measured: per-layer
    # counters, Spines transit latencies, crypto/handler wall-clock
    # profiles, structured events) in one aggregated report
    ScenarioReport.from_deployment(deployment, title="quickstart").render(print)


if __name__ == "__main__":
    main()
