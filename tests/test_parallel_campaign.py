"""The multiprocess campaign runner: spawn-safety, determinism, failures.

Pins the contract ISSUE/DESIGN §15 promise: the merged campaign report
is a pure function of the task list and the pinned hash seed — byte-
identical between serial and parallel runs at any worker count and under
shuffled completion order — and a misbehaving worker (crash, hang,
exception, unpicklable result) surfaces as a structured failure record
instead of hanging the pool.
"""

from __future__ import annotations

import json
import pickle

import pytest

from repro.chaos import (
    ChaosEngine,
    ChaosOptions,
    FaultAction,
    FaultSchedule,
    PbftChaosOptions,
    Violation,
    run_pbft_chaos,
)
from repro.control import ControlOptions
from repro.core.batching import BatchingOptions
from repro.core.deployment import SpireOptions
from repro.fleet import FleetSpec
from repro.parallel import (
    CampaignFailure,
    CampaignReport,
    CampaignResult,
    CampaignTask,
    resolve_runner,
    resolve_workers,
    run_campaign,
    seed_tasks,
)

#: compact chaos shape — a real deployment per task, small enough that a
#: multi-worker matrix stays inside the tier-1 budget
TINY = dict(warmup_ms=500.0, chaos_ms=1000.0, settle_ms=500.0)


def tiny_chaos_tasks(seeds):
    return seed_tasks("chaos", ChaosOptions(**TINY), seeds)


# ---------------------------------------------------------------------------
# spawn-safety: everything that crosses the process boundary pickles
# ---------------------------------------------------------------------------

PICKLE_CASES = [
    ChaosOptions(seed=7, **TINY),
    PbftChaosOptions(seed=9),
    SpireOptions(),
    BatchingOptions(),
    ControlOptions(),
    FleetSpec(total_devices=100, regions=2),
    FaultAction(kind="crash", start_ms=100.0, duration_ms=50.0,
                targets=("replica:1",)),
    FaultSchedule((FaultAction(kind="leader_kill", start_ms=10.0,
                               duration_ms=5.0),)),
    Violation("safety", "divergence", 123.0, (("index", 4),)),
    CampaignTask("t", "chaos", ChaosOptions(**TINY)),
    CampaignResult("t", "chaos", ok=True, fingerprint="fp",
                   stats={"a": 1, "wall_runtime_s": 0.5}),
    CampaignFailure("t", "chaos", kind="crash", error="boom", seed=3),
]


@pytest.mark.parametrize(
    "value", PICKLE_CASES, ids=lambda v: type(v).__name__
)
def test_pickle_round_trip(value):
    assert pickle.loads(pickle.dumps(value)) == value


def test_chaos_results_pickle_with_full_payload():
    """Live results (not just options) survive the queue round-trip."""
    result = ChaosEngine(ChaosOptions(seed=1, **TINY)).run()
    clone = pickle.loads(pickle.dumps(result))
    assert clone.fingerprint == result.fingerprint
    assert clone.deterministic_stats == result.deterministic_stats
    assert clone.obs_snapshot == result.obs_snapshot

    pbft = run_pbft_chaos(PbftChaosOptions(
        seed=2, warmup_ms=300.0, chaos_ms=800.0, settle_ms=400.0))
    clone = pickle.loads(pickle.dumps(pbft))
    assert clone.fingerprint == pbft.fingerprint
    assert clone.deterministic_stats == pbft.deterministic_stats


# ---------------------------------------------------------------------------
# task construction and validation
# ---------------------------------------------------------------------------

def test_seed_tasks_shape():
    tasks = seed_tasks("chaos", ChaosOptions(**TINY), seeds=(3, 1))
    assert [t.task_id for t in tasks] == ["chaos/seed-3", "chaos/seed-1"]
    assert tasks[0].options.seed == 3 and tasks[1].options.seed == 1


def test_run_campaign_validates_inputs():
    task = CampaignTask("a", "chaos", ChaosOptions(**TINY))
    with pytest.raises(ValueError, match="workers"):
        run_campaign([task], workers=0)
    with pytest.raises(ValueError, match="duplicate"):
        run_campaign([task, task], workers=1)
    with pytest.raises(ValueError, match="unknown runner"):
        run_campaign([CampaignTask("b", "nope", None)], workers=1)
    with pytest.raises(ValueError, match="unknown runner kind"):
        resolve_runner("nope")


def test_resolve_workers_env(monkeypatch):
    monkeypatch.delenv("CHAOS_WORKERS", raising=False)
    assert resolve_workers(default=3) == 3
    monkeypatch.setenv("CHAOS_WORKERS", "4")
    assert resolve_workers() == 4
    monkeypatch.setenv("CHAOS_WORKERS", "zero")
    with pytest.raises(ValueError):
        resolve_workers()
    monkeypatch.setenv("CHAOS_WORKERS", "0")
    with pytest.raises(ValueError):
        resolve_workers()


def test_empty_campaign():
    report = run_campaign([], workers=4)
    assert report.records == [] and report.ok
    assert report.fingerprint  # still a stable digest of the empty image


# ---------------------------------------------------------------------------
# determinism: serial ≡ parallel, any worker count, shuffled completion
# ---------------------------------------------------------------------------

def test_merged_report_byte_identical_across_worker_counts():
    """The ISSUE acceptance pin: serial and parallel merged reports are
    byte-identical at workers ∈ {1, 2, 4}, and the campaign fingerprint
    is independent of worker count."""
    tasks = tiny_chaos_tasks(seeds=range(3))
    reports = {
        workers: run_campaign(tasks, workers=workers)
        for workers in (1, 2, 4)
    }
    images = {
        workers: json.dumps(
            report.to_dict(deterministic_only=True), sort_keys=True
        )
        for workers, report in reports.items()
    }
    assert images[1] == images[2] == images[4]
    fingerprints = {r.fingerprint for r in reports.values()}
    assert len(fingerprints) == 1
    report = reports[2]
    assert report.ok and len(report.results) == 3
    # per-scenario wall time is present but lives outside the image
    assert all(r.wall_s > 0 for r in report.results)
    assert all(
        "wall_runtime_s" not in r.deterministic_stats
        for r in report.results
    )
    assert "wall_s" not in images[2]


def test_shuffled_completion_order_does_not_leak_into_report():
    """Inverted per-task delays force out-of-order completion; the merged
    report still comes back in task order and matches the serial run."""
    tasks = [
        CampaignTask(
            task_id=f"echo-{value}",
            runner="campaign_runners:echo",
            options={"value": value, "delay_s": (5 - value) * 0.15},
        )
        for value in range(5)
    ]
    serial = run_campaign(tasks, workers=1, in_process=True)
    parallel = run_campaign(tasks, workers=4, in_process=False)
    assert [r.task_id for r in parallel.records] == \
        [t.task_id for t in tasks]
    assert json.dumps(serial.to_dict(deterministic_only=True),
                      sort_keys=True) == \
        json.dumps(parallel.to_dict(deterministic_only=True), sort_keys=True)
    assert serial.fingerprint == parallel.fingerprint
    # the host-dependent stat was stripped from the deterministic image
    # even though the delays differ per task
    for record in parallel.results:
        assert record.deterministic_stats == {"value": int(
            record.task_id.split("-")[1])}
    # obs snapshots merged in task order with per-task attribution
    merged = parallel.merged_obs()
    assert merged["metrics"]["echo.calls"] == 5
    assert merged["events"]["recorded"] == 10
    assert list(merged["events"]["by_task"]) == [t.task_id for t in tasks]


def test_pbft_campaign_matches_direct_runs():
    options = PbftChaosOptions(warmup_ms=300.0, chaos_ms=800.0,
                               settle_ms=400.0)
    tasks = seed_tasks("pbft_chaos", options, seeds=range(3))
    report = run_campaign(tasks, workers=2)
    assert report.ok
    hash_pinned_direct = run_campaign(tasks, workers=1)
    assert report.fingerprint == hash_pinned_direct.fingerprint


# ---------------------------------------------------------------------------
# failure story: crashes, hangs, exceptions, unpicklable results
# ---------------------------------------------------------------------------

def test_worker_crash_surfaces_failure_and_pool_survives():
    tasks = [
        CampaignTask("crash", "campaign_runners:crash", {"value": 0}),
        CampaignTask("ok-1", "campaign_runners:echo", {"value": 1}),
        CampaignTask("ok-2", "campaign_runners:echo", {"value": 2}),
    ]
    report = run_campaign(tasks, workers=2, in_process=False)
    assert not report.ok
    failure, = report.failures
    assert failure.task_id == "crash"
    assert failure.kind == "crash"
    assert failure.attempts == 2  # re-dispatched once before reporting
    assert "exitcode 23" in failure.error
    assert len(report.results) == 2
    assert all(r.ok for r in report.results)


def test_worker_timeout_redispatches_then_reports():
    tasks = [
        CampaignTask("hang", "campaign_runners:hang", {"value": 0}),
        CampaignTask("ok", "campaign_runners:echo", {"value": 1}),
    ]
    report = run_campaign(
        tasks, workers=2, in_process=False, task_timeout_s=1.5,
    )
    failure, = report.failures
    assert failure.task_id == "hang"
    assert failure.kind == "timeout"
    assert failure.attempts == 2
    ok_result, = report.results
    assert ok_result.ok and ok_result.task_id == "ok"


def test_runner_exception_is_structured_not_fatal():
    tasks = [
        CampaignTask("boom", "campaign_runners:boom", {"value": 0}),
        CampaignTask("ok", "campaign_runners:echo", {"value": 1}),
    ]
    # exceptions are caught in-worker: no re-dispatch, full traceback
    report = run_campaign(tasks, workers=1, in_process=True)
    failure, = report.failures
    assert failure.kind == "exception"
    assert failure.attempts == 1
    assert "ValueError" in failure.error
    assert "scripted runner failure" in failure.traceback
    assert report.results[0].task_id == "ok"


def test_unpicklable_result_becomes_structured_failure():
    tasks = [CampaignTask("bad", "campaign_runners:unpicklable", {"value": 0})]
    report = run_campaign(tasks, workers=1, in_process=False)
    failure, = report.failures
    assert failure.kind == "exception"
    assert "not picklable" in failure.error


# ---------------------------------------------------------------------------
# report surface
# ---------------------------------------------------------------------------

def test_report_violation_counts_and_percentiles():
    records = [
        CampaignResult(
            "a", "chaos", ok=False,
            violations=[Violation("safety", "divergence", 1.0).to_dict()],
            wall_s=0.010,
        ),
        CampaignResult(
            "b", "chaos", ok=False,
            violations=[Violation("safety", "divergence", 2.0).to_dict(),
                        Violation("gate", "unverified-delivery", 3.0).to_dict()],
            wall_s=0.030,
        ),
    ]
    report = CampaignReport(records=records, workers=1, hash_seed="0")
    assert report.violation_counts == {
        "gate/unverified-delivery": 1,
        "safety/divergence": 2,
    }
    assert report.wall_percentiles_ms() == {"p50": 30.0, "p99": 30.0}
    assert not report.ok
