"""View-change behaviour: crash, DoS, Byzantine leaders, spam resistance."""

import pytest

from repro.attacks import (
    make_equivocating_leader,
    make_silent,
    make_slow_proposer,
    make_suspect_spammer,
)
from repro.simnet import DosAttack, FailureInjector


def test_leader_crash_triggers_view_change(cluster):
    cluster.run_for(500)  # RTT warm-up
    cluster.nodes[0].crash()
    cluster.pump(10, gap_ms=30, node_index=1)
    cluster.run_for(3000)
    healthy = [node for node in cluster.nodes[1:]]
    assert all(node.view >= 1 for node in healthy)
    reference = cluster.assert_safety(only_up=True)
    assert len(reference) == 10
    assert cluster.trace.count(kind="new-view") >= 1


def test_leader_dos_triggers_view_change_and_recovery(cluster):
    cluster.run_for(1000)
    injector = FailureInjector(cluster.simulator, cluster.network)
    injector.dos_node(
        DosAttack("replica:0", start_ms=cluster.simulator.now + 10.0,
                  duration_ms=5000.0, extra_delay_ms=250.0, extra_loss=0.0),
        peers=[node.name for node in cluster.nodes[1:]],
    )
    cluster.pump(40, gap_ms=50, node_index=2)
    cluster.run_for(3000)
    assert all(node.view >= 1 for node in cluster.nodes)
    reference = cluster.assert_safety()
    assert len(reference) == 40
    assert cluster.trace.count(kind="suspect") >= cluster.config.quorum


def test_silent_leader_replaced(cluster):
    cluster.run_for(500)
    make_silent(cluster.nodes[0])
    cluster.pump(10, gap_ms=40, node_index=3)
    cluster.run_for(4000)
    healthy = cluster.nodes[1:]
    assert all(node.view >= 1 for node in healthy)
    logs = [tuple(node.app.log) for node in healthy]
    assert all(len(log) == 10 for log in logs)
    assert len(set(logs)) == 1


def test_slow_leader_bounded_by_tat(cluster):
    """The Prime headline property: a leader that delays proposals beyond
    the TAT bound is replaced, even though it never goes fully silent."""
    cluster.run_for(1000)
    make_slow_proposer(cluster.nodes[0], delay_ms=300.0)
    cluster.pump(20, gap_ms=50, node_index=2)
    cluster.run_for(4000)
    assert all(node.view >= 1 for node in cluster.nodes)
    reference = cluster.assert_safety()
    assert len(reference) == 20


def test_mildly_slow_leader_tolerated(cluster):
    """A leader within the TAT bound must NOT be replaced (no spurious
    view changes)."""
    cluster.run_for(1000)
    make_slow_proposer(cluster.nodes[0], delay_ms=5.0)
    cluster.pump(15, gap_ms=40, node_index=2)
    cluster.run_for(2000)
    assert all(node.view == 0 for node in cluster.nodes)
    cluster.assert_safety()


def test_suspect_spam_from_f_replicas_harmless(cluster):
    cluster.run_for(500)
    make_suspect_spammer(cluster.nodes[5])  # one Byzantine accuser (f=1)
    cluster.pump(10, gap_ms=40)
    cluster.run_for(2000)
    assert all(node.view == 0 for node in cluster.nodes)
    reference = cluster.assert_safety()
    assert len(reference) == 10


def test_equivocating_leader_cannot_break_safety(cluster):
    cluster.run_for(500)
    make_equivocating_leader(cluster.nodes[0])
    cluster.pump(15, gap_ms=40, node_index=2)
    cluster.run_for(6000)
    # whatever liveness path was taken, no two correct replicas diverge
    cluster.assert_safety(only_up=True)
    healthy_logs = [tuple(n.app.log) for n in cluster.nodes[1:]]
    assert all(len(log) == len(healthy_logs[0]) for log in healthy_logs)


def test_view_change_preserves_inflight_updates(cluster):
    cluster.run_for(500)
    cluster.pump(5, gap_ms=20, node_index=1)
    cluster.nodes[0].crash()  # crash mid-stream
    cluster.pump(5, gap_ms=30, node_index=1)
    cluster.run_for(4000)
    reference = cluster.assert_safety(only_up=True)
    assert len(reference) == 10


def test_second_view_change_when_next_leader_also_fails(cluster):
    cluster.run_for(500)
    cluster.nodes[0].crash()
    cluster.pump(3, gap_ms=30, node_index=2)
    cluster.run_for(3000)
    # repair the fault budget before killing the next leader (f=1)
    cluster.nodes[0].recover()
    cluster.run_for(2000)
    cluster.nodes[1].crash()  # leader of view 1
    cluster.pump(3, gap_ms=30, node_index=2)
    cluster.run_for(5000)
    healthy = [n for n in cluster.nodes if n.is_up]
    assert all(node.view >= 2 for node in healthy)
    reference = cluster.assert_safety(only_up=True)
    assert len(reference) == 6


def test_view_change_records_metrics(cluster):
    """Satellite: every view transition moves the per-replica view gauge
    and bumps the view_changes_total counter."""
    cluster.run_for(500)
    cluster.nodes[0].crash()
    cluster.pump(10, gap_ms=30, node_index=1)
    cluster.run_for(3000)
    moved = [node for node in cluster.nodes[1:] if node.view >= 1]
    assert moved
    for node in moved:
        assert node.obs.counter(
            f"replication.view_changes_total.{node.name}").value >= 1
        assert node.obs.gauge(
            f"replication.view.{node.name}").value == float(node.view)
