"""Unit tests for the view-change manager (no network)."""

import pytest

from repro.crypto import FastCrypto, digest
from repro.prime import (
    Commit,
    Prepare,
    PreparedEntry,
    PrePrepare,
    PrimeConfig,
    SignedMessage,
    Suspect,
    ViewChange,
    ViewChangeManager,
)


@pytest.fixture
def setup():
    names = tuple(f"r{i}" for i in range(6))
    config = PrimeConfig(names)
    crypto = FastCrypto(seed="vc")
    manager = ViewChangeManager(config, "r1")

    def signed(sender, payload):
        return SignedMessage(payload, crypto.sign(sender, payload))

    def verify(message):
        return crypto.verify(message.signature, message.payload)

    return config, crypto, manager, signed, verify


def make_matrix(signed, upto=7):
    from repro.prime.messages import PoSummary

    summary = PoSummary("r2", 1, (("r2#0", upto),))
    return (signed("r2", summary),)


def make_prepared_entry(config, signed, seq=5, view=0, matrix=None):
    from repro.prime.ordering import slot_digest

    if matrix is None:
        matrix = make_matrix(signed)
    leader = config.leader_of_view(view)
    pp = PrePrepare(leader, view, seq, matrix)
    pp_signed = signed(leader, pp)
    # validation binds the entry digest to the pre-prepare content
    entry_digest = slot_digest(seq, matrix, 1)
    proof = tuple(
        signed(f"r{i}", Prepare(f"r{i}", view, seq, entry_digest))
        for i in range(1, config.quorum + 1)
    )
    return PreparedEntry(seq, view, entry_digest, pp_signed, proof)


def test_suspect_amplification_threshold(setup):
    config, crypto, manager, signed, verify = setup
    for index in range(config.num_faults + 1):
        message = Suspect(f"r{index}", 0, "test")
        amplify, view_change = manager.add_suspect(
            signed(f"r{index}", message), message, current_view=0
        )
    assert amplify is True      # f+1 reached, we have not accused yet
    assert view_change is False


def test_suspect_quorum_triggers_view_change(setup):
    config, crypto, manager, signed, verify = setup
    for index in range(config.quorum):
        message = Suspect(f"r{index}", 0, "test")
        _, view_change = manager.add_suspect(
            signed(f"r{index}", message), message, current_view=0
        )
    assert view_change is True


def test_old_view_suspects_ignored(setup):
    config, crypto, manager, signed, verify = setup
    message = Suspect("r2", 3, "late")
    amplify, view_change = manager.add_suspect(
        signed("r2", message), message, current_view=5
    )
    assert (amplify, view_change) == (False, False)


def test_no_amplify_after_own_suspect(setup):
    config, crypto, manager, signed, verify = setup
    manager.note_own_suspect(0)
    for index in range(config.num_faults + 1):
        message = Suspect(f"r{index}", 0, "test")
        amplify, _ = manager.add_suspect(
            signed(f"r{index}", message), message, current_view=0
        )
    assert amplify is False


def test_validate_view_change_accepts_valid(setup):
    config, crypto, manager, signed, verify = setup
    entry = make_prepared_entry(config, signed)
    vc = ViewChange("r2", 1, 0, (), (entry,))
    assert manager.validate_view_change(
        signed("r2", vc), vc, verify, lambda seq, proof: True
    )


def test_validate_rejects_sender_mismatch(setup):
    config, crypto, manager, signed, verify = setup
    vc = ViewChange("r2", 1, 0, (), ())
    assert not manager.validate_view_change(
        signed("r3", vc), vc, verify, lambda s, p: True
    )


def test_validate_rejects_entry_without_quorum_proof(setup):
    config, crypto, manager, signed, verify = setup
    entry = make_prepared_entry(config, signed)
    weak = PreparedEntry(entry.seq, entry.view, entry.digest,
                         entry.pre_prepare, entry.proof[:1])
    vc = ViewChange("r2", 1, 0, (), (weak,))
    assert not manager.validate_view_change(
        signed("r2", vc), vc, verify, lambda s, p: True
    )


def test_validate_rejects_wrong_leader_pre_prepare(setup):
    config, crypto, manager, signed, verify = setup
    entry = make_prepared_entry(config, signed)
    # pre-prepare claims view 0 but is signed by a non-leader
    bogus_pp = PrePrepare("r3", 0, entry.seq, ())
    forged = PreparedEntry(
        entry.seq, 0, entry.digest, signed("r3", bogus_pp), entry.proof
    )
    vc = ViewChange("r2", 1, 0, (), (forged,))
    assert not manager.validate_view_change(
        signed("r2", vc), vc, verify, lambda s, p: True
    )


def test_validate_rejects_duplicate_seqs(setup):
    config, crypto, manager, signed, verify = setup
    entry = make_prepared_entry(config, signed)
    vc = ViewChange("r2", 1, 0, (), (entry, entry))
    assert not manager.validate_view_change(
        signed("r2", vc), vc, verify, lambda s, p: True
    )


def test_derive_re_proposals_highest_view_wins(setup):
    config, crypto, manager, signed, verify = setup
    low = make_prepared_entry(config, signed, seq=5, view=0)
    high = make_prepared_entry(config, signed, seq=5, view=1)
    vcs = [
        ViewChange("r2", 2, 0, (), (low,)),
        ViewChange("r3", 2, 0, (), (high,)),
    ]
    start, proposals = ViewChangeManager.derive_re_proposals(vcs)
    assert start == 0
    assert proposals[-1][0] == 5
    assert proposals[-1][1] == high.pre_prepare.payload.matrix


def test_derive_fills_gaps_with_noops(setup):
    config, crypto, manager, signed, verify = setup
    entry = make_prepared_entry(config, signed, seq=3)
    start, proposals = ViewChangeManager.derive_re_proposals(
        [ViewChange("r2", 1, 0, (), (entry,))]
    )
    assert [seq for seq, _ in proposals] == [1, 2, 3]
    assert proposals[0][1] == ()  # gap -> no-op matrix


def test_derive_skips_below_checkpoint(setup):
    config, crypto, manager, signed, verify = setup
    entry = make_prepared_entry(config, signed, seq=3)
    vcs = [
        ViewChange("r2", 1, 10, (), (entry,)),   # checkpoint past the entry
        ViewChange("r3", 1, 0, (), ()),
    ]
    start, proposals = ViewChangeManager.derive_re_proposals(vcs)
    assert start == 10
    assert proposals == []


def test_derive_deterministic(setup):
    config, crypto, manager, signed, verify = setup
    entries = [make_prepared_entry(config, signed, seq=s) for s in (2, 4)]
    vcs = [ViewChange("r2", 1, 0, (), tuple(entries))]
    assert ViewChangeManager.derive_re_proposals(vcs) == \
        ViewChangeManager.derive_re_proposals(vcs)


def test_build_new_view_requires_quorum(setup):
    config, crypto, manager, signed, verify = setup
    for index in range(config.quorum - 1):
        vc = ViewChange(f"r{index}", 1, 0, (), ())
        manager.add_view_change(signed(f"r{index}", vc), vc)
    assert manager.build_new_view(1, lambda p: signed("r1", p)) is None


def test_build_and_verify_new_view_roundtrip(setup):
    config, crypto, manager, signed, verify = setup
    # r1 is leader of view 1
    for index in range(config.quorum):
        vc = ViewChange(f"r{index}", 1, 0, (),
                        (make_prepared_entry(config, signed, seq=1),))
        manager.add_view_change(signed(f"r{index}", vc), vc)
    built = manager.build_new_view(1, lambda p: signed("r1", p))
    assert built is not None
    nv, max_seq = built
    assert max_seq == 1
    other = ViewChangeManager(config, "r4")
    verified = other.verify_new_view(
        signed("r1", nv), nv, verify, lambda s, p: True
    )
    assert verified is not None
    pre_prepares, start, end = verified
    assert [pp.payload.seq for pp in pre_prepares] == [1]


def test_verify_new_view_rejects_tampered_proposals(setup):
    config, crypto, manager, signed, verify = setup
    for index in range(config.quorum):
        vc = ViewChange(f"r{index}", 1, 0, (),
                        (make_prepared_entry(config, signed, seq=1),))
        manager.add_view_change(signed(f"r{index}", vc), vc)
    nv, _ = manager.build_new_view(1, lambda p: signed("r1", p))
    # a Byzantine leader swaps in its own proposal for seq 1
    evil_pp = signed("r1", PrePrepare("r1", 1, 1, ()))
    tampered = type(nv)(nv.leader, nv.view, nv.view_changes, (evil_pp,))
    other = ViewChangeManager(config, "r4")
    assert other.verify_new_view(
        signed("r1", tampered), tampered, verify, lambda s, p: True
    ) is None


def test_verify_new_view_rejects_wrong_leader(setup):
    config, crypto, manager, signed, verify = setup
    nv_like = __import__("repro.prime.messages", fromlist=["NewView"]).NewView(
        "r3", 1, (), ()
    )
    assert manager.verify_new_view(
        signed("r3", nv_like), nv_like, verify, lambda s, p: True
    ) is None


def test_garbage_collect_drops_old_views(setup):
    config, crypto, manager, signed, verify = setup
    for view in (0, 1, 2):
        message = Suspect("r2", view, "x")
        manager.add_suspect(signed("r2", message), message, current_view=0)
    manager.garbage_collect(2)
    assert 0 not in manager.suspects
    assert 2 in manager.suspects


# ----------------------------------------------------------------------
# Consecutive leader failures
# ----------------------------------------------------------------------

def test_three_consecutive_failed_leaders_preserve_prepared(setup):
    """An entry prepared in view 0 survives three failed leaders in a
    row: each hop's quorum re-carries it, and the fourth leader's
    NewView finally re-proposes it."""
    config, crypto, manager, signed, verify = setup
    entry = make_prepared_entry(config, signed, seq=1, view=0)
    for view in (1, 2, 3):
        # quorum accuses into `view`; its leader crashes before NewView
        mgr = ViewChangeManager(config, config.leader_of_view(view))
        for index in range(config.quorum):
            vc = ViewChange(f"r{index}", view, 0, (), (entry,))
            mgr.add_view_change(signed(f"r{index}", vc), vc)
        built = mgr.build_new_view(
            view, lambda p, v=view: signed(config.leader_of_view(v), p))
        assert built is not None   # each leader COULD have completed...
    # ...but none did; the view-4 leader completes the hop chain
    leader4 = config.leader_of_view(4)
    final = ViewChangeManager(config, leader4)
    for index in range(config.quorum):
        vc = ViewChange(f"r{index}", 4, 0, (), (entry,))
        final.add_view_change(signed(f"r{index}", vc), vc)
    nv, max_seq = final.build_new_view(4, lambda p: signed(leader4, p))
    assert max_seq == 1
    observer = ViewChangeManager(config, "r5")
    verified = observer.verify_new_view(
        signed(leader4, nv), nv, verify, lambda s, p: True)
    assert verified is not None
    pre_prepares, _, _ = verified
    assert [(pp.payload.seq, pp.payload.matrix) for pp in pre_prepares] == \
        [(1, entry.pre_prepare.payload.matrix)]


def test_suspect_streak_across_views(setup):
    """A replica tracks suspicion through view 0 -> 1 -> 2: each view's
    quorum of suspects independently triggers its view change."""
    config, crypto, manager, signed, verify = setup
    for view in (0, 1, 2):
        triggered = False
        for index in range(config.quorum):
            message = Suspect(f"r{index}", view, "dead-leader")
            _, view_change = manager.add_suspect(
                signed(f"r{index}", message), message, current_view=view)
            triggered = triggered or view_change
        assert triggered, f"view {view} quorum did not trigger"
        manager.garbage_collect(view + 1)
    assert 0 not in manager.suspects and 1 not in manager.suspects


# ----------------------------------------------------------------------
# derive_re_proposals property tests
# ----------------------------------------------------------------------

def _random_vcs(config, signed, rng, new_view):
    """Random ViewChanges: per sender, a random subset of seqs, each
    prepared in a random view with view-distinct content."""
    vcs = []
    for index in range(2, 2 + rng.randint(2, config.quorum)):
        entries = []
        for seq in sorted(rng.sample(range(1, 10), rng.randint(0, 5))):
            view = rng.randint(0, 3)
            entries.append(make_prepared_entry(
                config, signed, seq=seq, view=view,
                matrix=make_matrix(signed, upto=100 * view + seq)))
        vcs.append(ViewChange(f"r{index}", new_view, 0, (), tuple(entries)))
    return vcs


def test_derive_property_highest_view_wins(setup):
    import random

    config, crypto, manager, signed, verify = setup
    rng = random.Random(7)
    for _ in range(15):
        vcs = _random_vcs(config, signed, rng, new_view=4)
        start, proposals = ViewChangeManager.derive_re_proposals(vcs)
        best = {}
        for vc in vcs:
            for entry in vc.prepared:
                if entry.seq not in best or entry.view > best[entry.seq].view:
                    best[entry.seq] = entry
        for seq, matrix in proposals:
            if seq in best:
                assert matrix == best[seq].pre_prepare.payload.matrix, seq


def test_derive_property_no_seq_gaps(setup):
    import random

    config, crypto, manager, signed, verify = setup
    rng = random.Random(11)
    for _ in range(15):
        vcs = _random_vcs(config, signed, rng, new_view=4)
        start, proposals = ViewChangeManager.derive_re_proposals(vcs)
        seqs = [seq for seq, _ in proposals]
        assert seqs == list(range(start + 1, start + 1 + len(seqs)))
        prepared_seqs = {e.seq for vc in vcs for e in vc.prepared}
        if prepared_seqs:
            assert seqs and seqs[-1] == max(prepared_seqs)


def test_derive_property_idempotent_replay(setup):
    """Re-proposing the derived outcome and deriving again is a fixed
    point: a second view change right after the first re-proposes the
    same (seq, matrix) assignment, so replay cannot reorder history."""
    import random

    config, crypto, manager, signed, verify = setup
    rng = random.Random(13)
    for _ in range(10):
        vcs = _random_vcs(config, signed, rng, new_view=4)
        start, proposals = ViewChangeManager.derive_re_proposals(vcs)
        replayed = []
        for seq, matrix in proposals:
            replayed.append(make_prepared_entry(
                config, signed, seq=seq, view=4, matrix=matrix))
        second = [
            ViewChange(f"r{i}", 5, start, (), tuple(replayed))
            for i in range(2, 5)
        ]
        start2, proposals2 = ViewChangeManager.derive_re_proposals(second)
        assert (start2, proposals2) == (start, proposals)
