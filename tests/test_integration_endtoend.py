"""Whole-system integration scenarios combining multiple stressors."""

import pytest

from repro.attacks import make_share_corruptor, make_silent
from repro.core import SpireDeployment, SpireOptions
from repro.simnet import DosAttack, FailureInjector


def build(seed=5, **option_overrides):
    options = dict(num_substations=3, poll_interval_ms=250.0, seed=seed)
    options.update(option_overrides)
    dep = SpireDeployment(SpireOptions(**options))
    dep.start()
    return dep


def master_logs_consistent(deployment):
    views = [
        tuple(sorted(
            (s, r.poll_seq) for s, r in replica.app.latest_status.items()
        ))
        for replica in deployment.replicas if replica.is_up
    ]
    longest = max(views, key=lambda v: sum(seq for _, seq in v))
    for view in views:
        for (sub, seq), (sub2, seq2) in zip(view, longest):
            assert sub == sub2
            assert seq <= seq2
    return True


def test_service_continues_through_proactive_recovery():
    deployment = build(proactive_recovery=(4_000.0, 500.0))
    deployment.run_for(30_000)
    scheduler = deployment.recovery_scheduler
    assert scheduler.recoveries_completed >= 5
    # availability stayed perfect at one-second granularity (exclude the
    # empty terminal bucket at exactly t=end)
    availability = deployment.delivery_series.availability(
        2_000.0, deployment.simulator.now - 1_000.0
    )
    assert availability == 1.0
    assert deployment.trace.count(kind="recovery-done") >= 5
    assert master_logs_consistent(deployment)


def test_service_with_f_byzantine_plus_recovery():
    deployment = build(seed=6, proactive_recovery=(6_000.0, 400.0))
    deployment.run_for(2_000)
    make_share_corruptor(deployment.replicas[3])
    deployment.run_for(20_000)
    submissions = deployment.proxy.submissions
    assert submissions.acked_total > 50
    assert submissions.outstanding <= 3
    assert master_logs_consistent(deployment)


def test_leader_dos_with_silent_replica():
    """f=1 Byzantine (silent) + network DoS on the leader: the hardest
    combination the configuration is sized for."""
    deployment = build(seed=7)
    deployment.run_for(2_000)
    make_silent(deployment.replicas[5])
    injector = FailureInjector(deployment.simulator, deployment.network)
    leader = deployment.current_leader()
    injector.dos_node(
        DosAttack(leader, start_ms=deployment.simulator.now + 500.0,
                  duration_ms=6_000.0, extra_delay_ms=300.0, extra_loss=0.1),
        peers=deployment.dos_peers_of(leader),
    )
    deployment.run_for(15_000)
    # a view change replaced the DoS'd leader and service continued
    assert max(replica.view for replica in deployment.replicas) >= 1
    acked = deployment.proxy.submissions.acked_total
    assert acked > 30
    stats = deployment.status_recorder.stats(
        since=deployment.simulator.now - 5_000.0
    )
    assert stats.count > 5
    assert stats.mean < 150.0  # latency re-bounded after the view change


def test_commands_during_attack_still_gated():
    deployment = build(seed=11)
    deployment.run_for(2_000)
    make_share_corruptor(deployment.replicas[0])
    hmi = deployment.hmis[0]
    substation = sorted(deployment.grid.substations)[0]
    breaker_id = sorted(deployment.grid.substations[substation].breakers)[0]
    hmi.operate_breaker(substation, breaker_id, close=False)
    deployment.run_for(3_000)
    # the legitimate command executed despite the corrupt-share replica
    assert deployment.grid.breaker_closed(substation, breaker_id) is False


def test_site_failure_with_surviving_quorum():
    """Losing a data-center site (1 replica of 6) must not stop service."""
    deployment = build(seed=13)
    deployment.run_for(2_000)
    injector = FailureInjector(deployment.simulator, deployment.network)
    dc1_members = [
        name for name, site in deployment.replica_sites.items() if site == "dc1"
    ]
    everyone_else = [
        p for p in list(deployment.network.process_names)
        if p not in dc1_members
    ]
    injector.partition_window(
        dc1_members, everyone_else,
        start_ms=deployment.simulator.now + 100.0, duration_ms=8_000.0,
    )
    before = deployment.proxy.submissions.acked_total
    deployment.run_for(10_000)
    assert deployment.proxy.submissions.acked_total > before + 20
    assert master_logs_consistent(deployment)


def test_control_center_failure_with_paper_placement():
    """Losing a whole control center (2 of 6 replicas) stalls the 2+2+1+1
    configuration only if more than k+f capacity is gone; with f=1,k=1 the
    quorum is 4 and exactly 4 replicas survive, so service continues."""
    deployment = build(seed=17)
    deployment.run_for(2_000)
    cc2_members = [
        name for name, site in deployment.replica_sites.items() if site == "cc2"
    ]
    for replica in deployment.replicas:
        if replica.name in cc2_members:
            replica.crash()
    before = deployment.proxy.submissions.acked_total
    deployment.run_for(12_000)
    assert deployment.proxy.submissions.acked_total > before + 10
    assert master_logs_consistent(deployment)
