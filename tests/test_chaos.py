"""Unit tests for the chaos subsystem's building blocks.

Covers the schedule data model, the seeded generator's invariants, each
runtime monitor in isolation, the ddmin shrinker's reduction logic, and
the scenario file format. End-to-end chaos runs live in
``test_chaos_smoke.py``.
"""

import json

import pytest

import repro.chaos.shrink as shrink_mod
from repro.chaos import (
    BoundedDelayMonitor,
    ChaosOptions,
    ChaosProfile,
    FaultAction,
    FaultSchedule,
    ProxyGateMonitor,
    QuorumAvailabilityMonitor,
    SafetyMonitor,
    Violation,
    generate_schedule,
    load_scenario,
    shrink_schedule,
)
from repro.core.update import DeliveryRecord, DeliveryShare
from repro.crypto.provider import FastCrypto, ThresholdSignature
from repro.prime.messages import ClientUpdate
from repro.simnet import LinkSpec, Network, Process, Simulator


# ----------------------------------------------------------------------
# Schedule data model
# ----------------------------------------------------------------------

def test_fault_action_normalizes_params():
    action = FaultAction("drop", 10.0, 5.0, targets=["b", "a"],
                         params=[("probability", 0.5), ("extra", 1)])
    assert action.params == (("extra", 1), ("probability", 0.5))
    assert action.param("probability") == 0.5
    assert action.param("missing", 42) == 42
    assert action.end_ms == 15.0


def test_fault_action_rejects_bad_input():
    with pytest.raises(ValueError):
        FaultAction("meteor-strike", 0.0, 1.0)
    with pytest.raises(ValueError):
        FaultAction("drop", -1.0, 1.0)


def test_fault_schedule_sorts_and_roundtrips():
    schedule = FaultSchedule((
        FaultAction("drop", 50.0, 10.0, targets=("x",)),
        FaultAction("crash", 5.0, 10.0, targets=("y",)),
    ))
    assert [a.kind for a in schedule] == ["crash", "drop"]
    assert FaultSchedule.from_json(schedule.to_json()) == schedule
    # JSON round-trip of an action with params preserves value types
    action = FaultAction("reorder", 1.0, 2.0, targets=("a",),
                         params=(("window_ms", 20.0),))
    assert FaultAction.from_dict(json.loads(json.dumps(action.to_dict()))) == action


def test_fault_schedule_subset_without():
    schedule = FaultSchedule(tuple(
        FaultAction("crash", float(i), 1.0, targets=(f"r{i}",)) for i in range(4)
    ))
    assert [a.start_ms for a in schedule.subset([0, 2])] == [0.0, 2.0]
    assert [a.start_ms for a in schedule.without([0, 2])] == [1.0, 3.0]
    assert len(schedule.subset(())) == 0


# ----------------------------------------------------------------------
# Generator
# ----------------------------------------------------------------------

REPLICAS = [f"replica:{i}" for i in range(6)]


def test_generate_schedule_is_deterministic():
    first = generate_schedule(11, REPLICAS, endpoints=["proxy:field"])
    again = generate_schedule(11, REPLICAS, endpoints=["proxy:field"])
    assert first == again
    assert generate_schedule(12, REPLICAS, endpoints=["proxy:field"]) != first


def test_generate_schedule_respects_profile_bounds():
    profile = ChaosProfile(window_start_ms=1000.0, window_end_ms=4000.0,
                           min_fault_ms=100.0, max_fault_ms=800.0,
                           max_concurrent_crashes=1, max_partition_minority=1)
    for seed in range(30):
        schedule = generate_schedule(seed, REPLICAS, profile=profile)
        crash_windows = []
        for action in schedule:
            assert 1000.0 <= action.start_ms <= 4000.0
            assert 100.0 <= action.duration_ms <= 800.0
            if action.kind == "crash":
                crash_windows.append((action.start_ms, action.end_ms))
            if action.kind == "partition":
                assert len(action.targets) <= 1
        for i, (s1, e1) in enumerate(crash_windows):
            overlaps = sum(1 for s2, e2 in crash_windows[i + 1:]
                           if s1 < e2 and s2 < e1)
            assert overlaps < profile.max_concurrent_crashes


def test_generated_schedule_roundtrips_through_json():
    for seed in range(10):
        schedule = generate_schedule(seed, REPLICAS, endpoints=["hmi:0"])
        assert FaultSchedule.from_json(schedule.to_json()) == schedule


# ----------------------------------------------------------------------
# Monitors
# ----------------------------------------------------------------------

class _Replica(Process):
    """Minimal stand-in exposing the replica surface monitors use."""

    def __init__(self, name, simulator, network):
        super().__init__(name, simulator, network)
        self.execution_listeners = []

    def execute(self, update, order_index):
        for listener in self.execution_listeners:
            listener(update, order_index, None)


def _sim_net():
    sim = Simulator(seed=1)
    return sim, Network(sim, LinkSpec(latency_ms=1.0))


def test_safety_monitor_accepts_agreement_flags_divergence():
    sim, net = _sim_net()
    replicas = [_Replica(f"r{i}", sim, net) for i in range(3)]
    monitor = SafetyMonitor(sim)
    monitor.attach(replicas)

    same = ClientUpdate("proxy", 1, "reading-1")
    for replica in replicas:
        replica.execute(same, 1)
    assert monitor.violations() == []

    replicas[0].execute(ClientUpdate("proxy", 2, "reading-2"), 2)
    replicas[1].execute(ClientUpdate("proxy", 3, "OTHER"), 2)
    [violation] = monitor.violations()
    assert violation.kind == "divergent-execution"
    assert dict(violation.details)["order_index"] == 2


def test_safety_monitor_excludes_byzantine_replicas():
    sim, net = _sim_net()
    replicas = [_Replica(f"r{i}", sim, net) for i in range(2)]
    monitor = SafetyMonitor(sim, exclude=["r1"])
    monitor.attach(replicas)
    replicas[0].execute(ClientUpdate("proxy", 1, "honest"), 1)
    replicas[1].execute(ClientUpdate("proxy", 9, "equivocation"), 1)
    assert monitor.violations() == []


class _Endpoint:
    """Bare endpoint: a named owner of a DeliveryCollector."""

    def __init__(self, name, collector):
        self.name = name
        self.collector = collector


def _delivery_fixture():
    from repro.core.collector import DeliveryCollector

    crypto = FastCrypto(seed="gate-test")
    crypto.create_threshold_group("g", players=4, threshold=2)
    sim, _ = _sim_net()
    collector = DeliveryCollector(crypto, "g")
    record = DeliveryRecord("status", "proxy", 1, 1, "reading")
    shares = [
        DeliveryShare(f"r{i}", record, crypto.threshold_sign_share("g", i, record))
        for i in (1, 2)
    ]
    return sim, crypto, collector, record, shares


def test_proxy_gate_monitor_passes_honest_collector():
    sim, crypto, collector, record, shares = _delivery_fixture()
    monitor = ProxyGateMonitor(sim, crypto)
    monitor.attach(_Endpoint("proxy", collector))
    assert collector.add(shares[0]) is None
    assert collector.add(shares[1]) is not None
    assert monitor.violations() == []
    assert monitor.deliveries_checked == 1


def test_proxy_gate_monitor_catches_forged_signature():
    sim, crypto, collector, record, shares = _delivery_fixture()

    def gullible_add(share):
        return share.record, ThresholdSignature("g", "forged")

    collector.add = gullible_add
    monitor = ProxyGateMonitor(sim, crypto)
    monitor.attach(_Endpoint("proxy", collector))
    collector.add(shares[0])
    [violation] = monitor.violations()
    assert violation.kind == "unverified-delivery"


def test_proxy_gate_monitor_catches_duplicate_delivery():
    sim, crypto, collector, record, shares = _delivery_fixture()
    real_add = collector.add
    state = {"first": None}

    def replaying_add(share):
        result = real_add(share)
        if result is not None:
            state["first"] = result
        return result or state["first"]

    collector.add = replaying_add
    monitor = ProxyGateMonitor(sim, crypto)
    monitor.attach(_Endpoint("proxy", collector))
    collector.add(shares[0])
    collector.add(shares[1])   # combines: first legitimate delivery
    collector.add(shares[0])   # replays the same record again
    kinds = [v.kind for v in monitor.violations()]
    assert kinds == ["duplicate-delivery"]


def test_quorum_monitor_tracks_live_count_and_flags_bad_begin():
    sim, net = _sim_net()
    replicas = [_Replica(f"r{i}", sim, net) for i in range(6)]

    class _Scheduler:
        def _begin(self, replica):
            replica.crash()

    scheduler = _Scheduler()
    monitor = QuorumAvailabilityMonitor(sim, replicas, min_live=4)
    monitor.attach(scheduler)

    replicas[0].crash()
    replicas[1].crash()
    assert monitor.min_live_seen == 4
    assert monitor.violations() == []

    scheduler._begin(replicas[2])  # 4 live -> 3 live: below 2f+k+1
    [violation] = monitor.violations()
    assert violation.kind == "rejuvenation-below-quorum"
    assert dict(violation.details)["live"] == 4
    assert monitor.min_live_seen == 3

    replicas[0].recover()
    assert monitor.live_count == 4
    assert monitor.timeline[-1][1] == 4


def test_bounded_delay_monitor_flags_stall_in_quiet_window():
    sim, _ = _sim_net()
    monitor = BoundedDelayMonitor(sim, max_gap_ms=100.0)
    monitor.evaluate(
        delivery_times=[1000.0, 1050.0, 1400.0, 1450.0],
        quiet_intervals=[(1000.0, 1500.0)],
    )
    [violation] = monitor.violations()
    assert violation.kind == "delivery-stall"
    assert dict(violation.details)["gap_ms"] == pytest.approx(350.0)


def test_bounded_delay_monitor_ignores_short_windows_and_steady_flow():
    sim, _ = _sim_net()
    monitor = BoundedDelayMonitor(sim, max_gap_ms=100.0)
    monitor.evaluate(
        delivery_times=[t * 50.0 for t in range(100)],
        quiet_intervals=[(0.0, 90.0), (1000.0, 3000.0)],
    )
    assert monitor.violations() == []
    assert monitor.quiet_checked_ms == pytest.approx(2000.0)


def test_violation_serializes():
    violation = Violation("safety", "divergent-execution", 123.0,
                          (("order_index", 7),))
    data = violation.to_dict()
    assert data["monitor"] == "safety"
    assert data["details"] == {"order_index": 7}
    assert json.dumps(data)  # JSON-safe


# ----------------------------------------------------------------------
# Shrinker (engine monkeypatched for speed)
# ----------------------------------------------------------------------

def _fake_engine(required_kinds):
    class FakeEngine:
        def __init__(self, options, schedule, mutator=None):
            self.schedule = schedule

        def run(self):
            kinds = {a.kind for a in self.schedule}
            failed = required_kinds <= kinds

            class R:
                violations = ["boom"] if failed else []

            return R()

    return FakeEngine


def _schedule_of(kinds):
    return FaultSchedule(tuple(
        FaultAction(kind, float(10 * i), 5.0) for i, kind in enumerate(kinds)
    ))


def test_shrink_finds_minimal_action_pair(monkeypatch):
    monkeypatch.setattr(shrink_mod, "ChaosEngine",
                        _fake_engine({"crash", "partition"}))
    schedule = _schedule_of(
        ["drop", "crash", "reorder", "dos", "partition", "corrupt"]
    )
    result = shrink_schedule(ChaosOptions(), schedule)
    assert result.reproduced
    assert sorted(a.kind for a in result.schedule) == ["crash", "partition"]
    assert result.runs <= 20


def test_shrink_reports_non_reproducing_schedule(monkeypatch):
    monkeypatch.setattr(shrink_mod, "ChaosEngine", _fake_engine({"leader_dos"}))
    schedule = _schedule_of(["drop", "crash"])
    result = shrink_schedule(ChaosOptions(), schedule)
    assert not result.reproduced
    assert result.schedule == schedule
    assert result.runs == 1


def test_shrink_collapses_schedule_independent_failure(monkeypatch):
    monkeypatch.setattr(shrink_mod, "ChaosEngine", _fake_engine(set()))
    schedule = _schedule_of(["drop", "crash", "dos"])
    result = shrink_schedule(ChaosOptions(), schedule)
    assert result.reproduced
    assert len(result.schedule) == 0


# ----------------------------------------------------------------------
# Scenario format
# ----------------------------------------------------------------------

def test_load_scenario_rejects_unknown_format():
    with pytest.raises(ValueError):
        load_scenario({"format": "something-else/9"})


def test_chaos_options_roundtrip():
    options = ChaosOptions(seed=5, proactive_recovery=(1000.0, 100.0))
    assert ChaosOptions.from_dict(options.to_dict()) == options
    assert ChaosOptions.from_dict(
        ChaosOptions(proactive_recovery=None).to_dict()
    ).proactive_recovery is None
