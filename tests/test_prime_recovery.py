"""Proactive recovery and state transfer."""

import dataclasses

import pytest


def small_checkpoint_cluster(cluster_factory, seed=11, interval=10):
    cluster = cluster_factory(seed=seed)
    cluster.config = dataclasses.replace(
        cluster.config, checkpoint_interval_seqs=interval
    )
    for node in cluster.nodes:
        node.config = cluster.config
        node.checkpoints.config = cluster.config
    return cluster.start()


def test_recovered_replica_catches_up(cluster_factory):
    cluster = small_checkpoint_cluster(cluster_factory)
    cluster.pump(20, gap_ms=25)
    cluster.nodes[3].crash()
    cluster.pump(20, gap_ms=25)
    cluster.run_for(500)
    cluster.nodes[3].recover()
    cluster.pump(10, gap_ms=25)
    cluster.run_for(5000)
    reference = cluster.assert_safety()
    assert len(reference) == 50
    assert len(cluster.nodes[3].app.log) == 50
    assert cluster.trace.count(kind="recovery-done") >= 1


def test_recovered_replica_gets_fresh_origin_stream(cluster_factory):
    cluster = small_checkpoint_cluster(cluster_factory)
    cluster.pump(10, gap_ms=25)
    node = cluster.nodes[2]
    old_origin = node.origin_id
    node.crash()
    cluster.run_for(200)
    node.recover()
    cluster.run_for(3000)
    assert node.origin_id != old_origin


def test_leader_recovery_rejoins_in_new_view(cluster_factory):
    cluster = small_checkpoint_cluster(cluster_factory, seed=23)
    cluster.run_for(500)
    cluster.pump(10, gap_ms=25)
    cluster.nodes[0].crash()
    cluster.pump(10, gap_ms=40, node_index=1)
    cluster.run_for(3000)
    cluster.nodes[0].recover()
    cluster.pump(10, gap_ms=40, node_index=1)
    cluster.run_for(6000)
    reference = cluster.assert_safety()
    assert len(reference) == 30
    assert cluster.nodes[0].view >= 1


def test_recovering_replica_rejects_submissions(cluster):
    cluster.nodes[4].crash()
    cluster.run_for(100)
    cluster.nodes[4].recover()
    # immediately after recovery it awaits state transfer
    assert cluster.nodes[4].awaiting_state
    ok, _ = cluster.submit(("op",), node_index=4)
    assert ok is False


def test_snapshot_state_digest_consistent_across_replicas(cluster_factory):
    cluster = small_checkpoint_cluster(cluster_factory)
    cluster.pump(15, gap_ms=25)
    cluster.run_for(2000)
    digests = {
        node.checkpoints.stable_digest
        for node in cluster.nodes
        if node.checkpoints.stable_digest is not None
    }
    assert len(digests) == 1


def test_lagging_replica_catches_up_after_partition(cluster_factory):
    cluster = small_checkpoint_cluster(cluster_factory, seed=31)
    cluster.run_for(200)
    heal = cluster.network.partition(
        ["replica:5"], [n.name for n in cluster.nodes[:5]]
    )
    cluster.pump(30, gap_ms=25, node_index=1)
    cluster.run_for(500)
    heal()
    cluster.run_for(8000)
    assert len(cluster.nodes[5].app.log) == 30
    cluster.assert_safety()


def test_two_sequential_recoveries(cluster_factory):
    cluster = small_checkpoint_cluster(cluster_factory, seed=37)
    cluster.pump(15, gap_ms=25)
    for victim in (2, 4):
        cluster.nodes[victim].crash()
        cluster.pump(8, gap_ms=30, node_index=1)
        cluster.run_for(300)
        cluster.nodes[victim].recover()
        cluster.run_for(4000)
    reference = cluster.assert_safety()
    assert len(reference) == 31
