"""Tests for the resilience-configuration framework (Table I math)."""

import pytest

from repro.core import (
    ResilienceConfig,
    configuration_table,
    minimal_placement,
    minimal_replicas,
    placement_survives,
)
from repro.core.config import base_requirement, quorum


def test_base_requirement():
    assert base_requirement(1, 0) == 4
    assert base_requirement(1, 1) == 6
    assert base_requirement(2, 1) == 9


def test_quorum():
    assert quorum(1, 1) == 4
    assert quorum(2, 1) == 6


def test_minimal_replicas_no_site_tolerance():
    assert minimal_replicas(1, 1, num_sites=1, tolerate_site_failure=False) == 6


def test_minimal_replicas_with_site_tolerance():
    # two sites: losing one must leave 3f+2k+1 -> 6+6
    assert minimal_replicas(1, 1, 2, True) == 12
    # three balanced sites: ceil(9/3)=3, 9-3=6 ok
    assert minimal_replicas(1, 1, 3, True) == 9
    # four sites: 8 -> largest 2, 8-2=6 ok
    assert minimal_replicas(1, 1, 4, True) == 8


def test_minimal_placement_single_site():
    config = minimal_placement(1, 1, 1, 0, tolerate_site_failure=False)
    assert config.n == 6
    assert config.control_centers == (6,)
    assert not config.tolerates_site_failure


def test_minimal_placement_2cc_2dc():
    config = minimal_placement(1, 1, 2, 2, tolerate_site_failure=True)
    assert config.n == 8
    assert config.sites == (2, 2, 2, 2)


def test_minimal_placement_site_failure_needs_two_ccs():
    with pytest.raises(ValueError):
        minimal_placement(1, 1, 1, 3, tolerate_site_failure=True)


def test_minimal_placement_needs_two_sites():
    with pytest.raises(ValueError):
        minimal_placement(1, 1, 1, 0, tolerate_site_failure=True)


def test_minimal_placement_needs_control_center():
    with pytest.raises(ValueError):
        minimal_placement(1, 1, 0, 3)


def test_placement_survives_no_failure():
    config = minimal_placement(1, 1, 2, 2)
    assert placement_survives(config, failed_site=None)


def test_placement_survives_every_single_site_failure():
    for num_cc, num_dc in ((2, 0), (2, 1), (2, 2), (3, 0), (3, 3)):
        config = minimal_placement(1, 1, num_cc, num_dc)
        for failed in range(config.num_sites):
            assert placement_survives(config, failed), (num_cc, num_dc, failed)


def test_placement_without_tolerance_fails_site_loss():
    config = minimal_placement(1, 1, 2, 0, tolerate_site_failure=False)
    # 3+3 over two sites: losing either site kills the quorum
    assert not placement_survives(config, failed_site=0)


def test_cc_failure_without_second_cc_loses_control():
    config = ResilienceConfig(
        f=1, k=1, control_centers=(3,), data_centers=(3, 3),
        tolerates_site_failure=True,
    )
    # ordering might survive, but no CC remains to drive the field
    assert not placement_survives(config, failed_site=0)


def test_f2_placements_scale():
    config = minimal_placement(2, 1, 2, 2)
    assert config.n >= 12  # base is 9; site loss demands more
    for failed in range(config.num_sites):
        assert placement_survives(config, failed)


def test_configuration_table_rows_valid():
    table = configuration_table()
    assert len(table) >= 15
    for config in table:
        assert placement_survives(config, None)
        if config.tolerates_site_failure:
            for failed in range(config.num_sites):
                assert placement_survives(config, failed)


def test_placement_dict_and_describe():
    config = minimal_placement(1, 1, 2, 2)
    placement = config.placement()
    assert set(placement) == {"cc1", "cc2", "dc1", "dc2"}
    assert sum(placement.values()) == config.n
    text = config.describe()
    assert "f=1" in text and "n=8" in text
