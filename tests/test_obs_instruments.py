"""Behavioural tests for the keyed measurement instruments in ``repro.obs``.

Covers :class:`LatencyStats` (the percentile maths behind the paper's
latency tables), :class:`LatencyTracker` (submit → ack latency with
duplicate/outstanding accounting, windows, CDFs and timelines) and
:class:`IntervalCounter` (per-interval counts and availability).
"""

import pytest

from repro.obs import IntervalCounter, LatencyStats, LatencyTracker


# ----------------------------------------------------------------------
# LatencyStats
# ----------------------------------------------------------------------
def test_stats_empty():
    stats = LatencyStats.from_samples([])
    assert stats.count == 0 and stats.mean == 0.0


def test_stats_basic():
    stats = LatencyStats.from_samples([1.0, 2.0, 3.0, 4.0])
    assert stats.count == 4
    assert stats.mean == pytest.approx(2.5)
    assert stats.median == 2.0
    assert stats.minimum == 1.0
    assert stats.maximum == 4.0


def test_stats_percentiles_monotone():
    samples = list(range(1, 1001))
    stats = LatencyStats.from_samples([float(v) for v in samples])
    assert stats.median <= stats.p90 <= stats.p99 <= stats.p999 <= stats.maximum
    assert stats.p99 == pytest.approx(990.0)


def test_stats_percentiles_match_numpy():
    import numpy

    samples = [float(v) for v in (5, 1, 9, 3, 7, 2, 8, 6, 4, 10)]
    stats = LatencyStats.from_samples(samples)
    assert stats.median == pytest.approx(
        numpy.percentile(samples, 50, method="inverted_cdf"), abs=1.0
    )


def test_stats_row_renders():
    assert "mean=" in LatencyStats.from_samples([1.0]).row()


# ----------------------------------------------------------------------
# LatencyTracker
# ----------------------------------------------------------------------
def test_tracker_measures_latency():
    tracker = LatencyTracker()
    tracker.submitted(("k", 1), at=10.0)
    assert tracker.acknowledged(("k", 1), at=35.0) == pytest.approx(25.0)
    assert tracker.stats().count == 1


def test_tracker_duplicate_submit_keeps_first():
    tracker = LatencyTracker()
    tracker.submitted(("k", 1), at=10.0)
    tracker.submitted(("k", 1), at=20.0)  # retry must not reset the clock
    assert tracker.acknowledged(("k", 1), at=30.0) == pytest.approx(20.0)


def test_tracker_unknown_ack_counted_as_duplicate():
    tracker = LatencyTracker()
    assert tracker.acknowledged(("k", 9), at=5.0) is None
    assert tracker.duplicates == 1


def test_tracker_outstanding():
    tracker = LatencyTracker()
    tracker.submitted(("a",), 0.0)
    tracker.submitted(("b",), 0.0)
    tracker.acknowledged(("a",), 1.0)
    assert tracker.outstanding == 1


def test_tracker_window_filters():
    tracker = LatencyTracker()
    for index in range(10):
        tracker.submitted(("k", index), at=index * 100.0)
        tracker.acknowledged(("k", index), at=index * 100.0 + 10.0)
    early = tracker.stats(until=450.0)
    late = tracker.stats(since=450.0)
    assert early.count + late.count == 10


def test_tracker_cdf():
    tracker = LatencyTracker()
    for index in range(100):
        tracker.submitted(("k", index), at=0.0)
        tracker.acknowledged(("k", index), at=float(index + 1))
    cdf = tracker.cdf(points=10)
    assert cdf[-1][1] == 1.0
    latencies = [latency for latency, _ in cdf]
    assert latencies == sorted(latencies)


def test_tracker_timeline_buckets():
    tracker = LatencyTracker()
    for at, latency in ((100.0, 10.0), (150.0, 20.0), (1100.0, 30.0)):
        tracker.submitted(("k", at), at=at - latency)
        tracker.acknowledged(("k", at), at=at)
    timeline = tracker.timeline(bucket_ms=1000.0)
    assert len(timeline) == 2
    assert timeline[0][1] == pytest.approx(15.0)
    assert timeline[0][2] == 2


# ----------------------------------------------------------------------
# IntervalCounter
# ----------------------------------------------------------------------
def test_interval_counter_counts():
    series = IntervalCounter(interval_ms=1000.0)
    series.record(100.0)
    series.record(900.0)
    series.record(1500.0)
    values = dict((t, c) for t, c in series.series(0.0, 2000.0))
    assert values[0.0] == 2
    assert values[1000.0] == 1
    assert values[2000.0] == 0


def test_interval_counter_availability():
    series = IntervalCounter(interval_ms=1000.0)
    for second in (0, 1, 3):  # second 2 is an outage
        series.record(second * 1000.0 + 10.0)
    availability = series.availability(0.0, 3999.0)
    assert availability == pytest.approx(3 / 4)


def test_latency_stats_reexported_from_core():
    # the one survivor of the old repro.core.metrics surface
    from repro.core import LatencyStats as CoreLatencyStats

    assert CoreLatencyStats is LatencyStats
