"""Unit tests for the TAT suspect-leader monitor."""

import pytest

from repro.prime import PrimeConfig, SuspectMonitor


def monitor(f=1, k=1, n=6, **overrides):
    names = tuple(f"r{i}" for i in range(n))
    defaults = dict(
        tat_latency_factor=3.0,
        tat_slack_ms=15.0,
        tat_floor_ms=40.0,
        pre_prepare_interval_ms=20.0,
    )
    defaults.update(overrides)
    config = PrimeConfig(names, num_faults=f, num_recovering=k, **defaults)
    return SuspectMonitor(config, "r0")


def warm(mon, rtt=10.0):
    for i in range(1, 6):
        mon.record_rtt(f"r{i}", rtt)
    return mon


def test_no_judgement_before_enough_rtts():
    mon = monitor()
    mon.record_rtt("r1", 5.0)
    assert mon.acceptable_tat() is None
    assert mon.should_suspect(now=1000.0) is None


def test_acceptable_tat_formula():
    mon = warm(monitor(), rtt=10.0)
    # 3 * rtt_(f+k+1 = 3rd smallest = 10) + 20 interval + 15 slack
    assert mon.acceptable_tat() == pytest.approx(3 * 10.0 + 20.0 + 15.0)


def test_floor_applies_for_tiny_rtts():
    mon = warm(monitor(), rtt=0.1)
    assert mon.acceptable_tat() == pytest.approx(40.0)


def test_rtt_ewma_smooths():
    mon = monitor(rtt_ewma_alpha=0.5)
    mon.record_rtt("r1", 10.0)
    mon.record_rtt("r1", 20.0)
    assert mon.rtt["r1"] == pytest.approx(15.0)


def test_quantile_ignores_slow_outliers():
    """The bound uses the (f+k+1)-th smallest RTT, so a DoS that inflates
    the current leader's RTT cannot raise the bound."""
    mon = monitor()
    rtts = {"r1": 10.0, "r2": 10.0, "r3": 12.0, "r4": 500.0, "r5": 900.0}
    for peer, rtt in rtts.items():
        mon.record_rtt(peer, rtt)
    assert mon.acceptable_tat() == pytest.approx(3 * 12.0 + 20.0 + 15.0)


def test_tat_sample_measured_on_inclusion():
    mon = warm(monitor())
    mon.note_summary_sent(1, now=100.0)
    mon.note_pre_prepare(1, now=130.0)
    assert mon.current_tat(now=131.0) == pytest.approx(30.0)


def test_inclusion_settles_all_older_summaries():
    mon = warm(monitor())
    mon.note_summary_sent(1, now=100.0)
    mon.note_summary_sent(2, now=110.0)
    mon.note_pre_prepare(2, now=140.0)
    # the oldest pending summary defines the sample
    assert mon.current_tat(now=141.0) == pytest.approx(40.0)
    assert mon.should_suspect(now=141.0) is None  # 40 < bound 65


def test_pending_summary_age_counts_as_ongoing_tat():
    mon = warm(monitor())
    mon.note_summary_sent(1, now=100.0)
    assert mon.current_tat(now=500.0) == pytest.approx(400.0)
    assert mon.should_suspect(now=500.0) is not None


def test_suspect_when_sample_exceeds_bound():
    mon = warm(monitor())
    mon.note_summary_sent(1, now=0.0)
    mon.note_pre_prepare(1, now=200.0)  # 200 > 65
    reason = mon.should_suspect(now=201.0)
    assert reason is not None and "tat" in reason


def test_old_samples_age_out_of_window():
    mon = warm(monitor())
    mon.note_summary_sent(1, now=0.0)
    mon.note_pre_prepare(1, now=200.0)  # violation sample at t=200
    # 4 * tat_check_interval (25) = 100 ms window
    assert mon.should_suspect(now=310.0) is None


def test_reset_for_new_view_clears_samples_keeps_rtts():
    mon = warm(monitor())
    mon.note_summary_sent(1, now=0.0)
    mon.reset_for_new_view()
    assert mon.current_tat(now=1000.0) == 0.0
    assert mon.acceptable_tat() is not None
