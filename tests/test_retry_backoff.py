"""Bounded exponential backoff in retry paths.

Covers the :class:`RetryPolicy` itself, client resubmission backoff in
:class:`SubmissionManager`, Prime's state-transfer retry loop, and the
proactive-recovery scheduler's refusal to rejuvenate below quorum.
"""

import random

import pytest

from repro.core.client import SubmissionManager
from repro.core.recovery import ProactiveRecoveryScheduler
from repro.crypto import FastCrypto
from repro.replication import RetryPolicy
from repro.obs import EventLog
from repro.simnet import LinkSpec, Network, Process, Simulator


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------

def test_retry_policy_grows_and_caps():
    policy = RetryPolicy(base_ms=100.0, factor=2.0, max_ms=1000.0,
                         max_attempts=6, jitter_frac=0.0)
    delays = [policy.delay_ms(i) for i in range(8)]
    assert delays[:4] == [100.0, 200.0, 400.0, 800.0]
    assert delays[4:] == [1000.0] * 4          # pinned at the cap
    assert not policy.capped(5)
    assert policy.capped(6)


def test_retry_policy_jitter_is_bounded_and_seeded():
    policy = RetryPolicy(base_ms=100.0, factor=2.0, max_ms=10_000.0,
                         jitter_frac=0.25)
    rng = random.Random("jitter")
    delays = [policy.delay_ms(2, rng) for _ in range(50)]
    assert all(400.0 <= d < 500.0 for d in delays)
    assert len(set(delays)) > 1
    assert delays == [
        policy.delay_ms(2, random.Random("jitter")) for _ in range(50)
    ][:1] + delays[1:]  # first draw reproducible from the seed


def test_retry_policy_rejects_bad_parameters():
    with pytest.raises(ValueError):
        RetryPolicy(base_ms=0.0)
    with pytest.raises(ValueError):
        RetryPolicy(factor=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(base_ms=100.0, max_ms=50.0)


# ----------------------------------------------------------------------
# Client resubmission backoff
# ----------------------------------------------------------------------

def make_manager(clock, sent):
    return SubmissionManager(
        client_name="client:test",
        crypto=FastCrypto(seed="backoff"),
        replicas=["replica:0", "replica:1", "replica:2"],
        send_fn=lambda replica, payload, size: sent.append((clock[0], replica)) or True,
        now_fn=lambda: clock[0],
        resubmit_timeout_ms=100.0,
    )


def test_submission_retries_back_off_and_fail_over():
    clock = [0.0]
    sent = []
    manager = make_manager(clock, sent)
    manager.submit("reading")
    assert [replica for _, replica in sent] == ["replica:0"]

    # tick well past a fixed 100ms period: backoff allows only ~3 retries
    # in 1.5s (at 100, 250, 475...) instead of 15
    retries = 0
    for step in range(30):
        clock[0] += 50.0
        retries += manager.retry_tick()
    assert retries == manager.retries_total
    gaps = [b - a for (a, _), (b, _) in zip(sent, sent[1:])]
    assert all(later >= earlier for earlier, later in zip(gaps, gaps[1:]))
    assert 3 <= len(sent) <= 6                 # bounded probe rate
    # each retry rotates to the next replica endpoint
    assert sent[1][1] == "replica:1"
    assert sent[2][1] == "replica:2"


def test_submission_retry_stops_after_ack():
    clock = [0.0]
    sent = []
    manager = make_manager(clock, sent)
    (client, seq) = manager.submit("reading")
    clock[0] += 150.0
    manager.retry_tick()
    manager.acknowledged(client, seq)
    before = len(sent)
    clock[0] += 5000.0
    assert manager.retry_tick() == 0
    assert len(sent) == before
    assert manager.outstanding == 0


# ----------------------------------------------------------------------
# Prime state-transfer retries
# ----------------------------------------------------------------------

def test_state_transfer_requests_back_off(cluster):
    """An isolated recovering replica re-requests state with growing gaps."""
    sim = cluster.simulator
    node = cluster.nodes[3]
    request_times = []

    def isolate_and_spy(src, dst, payload):
        inner = getattr(payload, "payload", payload)
        if (src == node.name and dst == cluster.nodes[0].name
                and type(inner).__name__ == "StateRequest"):
            request_times.append(sim.now)
        if dst == node.name:
            return None  # no replies ever reach the recovering replica
        return payload

    cluster.network.add_filter(isolate_and_spy)
    node.crash()
    cluster.run_for(100)
    node.recover()
    assert node.awaiting_state
    cluster.run_for(20_000)

    assert len(request_times) >= 4
    gaps = [b - a for a, b in zip(request_times, request_times[1:])]
    # exponential: every gap strictly exceeds the previous even with jitter
    assert all(later > earlier for earlier, later in zip(gaps, gaps[1:4]))
    # bounded: pinned at the policy cap, never silent forever
    cap = node._state_retry_policy.max_ms
    assert all(gap <= cap * 1.3 for gap in gaps)
    # rate bounded by the cap: a fixed recon-period retry would fire ~200
    # times in this window
    assert len(request_times) <= 20_000 / cap + 8


def test_state_transfer_retry_resets_after_success(cluster):
    node = cluster.nodes[3]
    node.crash()
    cluster.run_for(100)
    node.recover()
    cluster.run_for(5000)
    assert not node.awaiting_state
    assert node._state_retry_attempts == 0
    assert node._state_retry_timer is None


# ----------------------------------------------------------------------
# Proactive recovery quorum guard
# ----------------------------------------------------------------------

def test_scheduler_defers_rejuvenation_below_min_live():
    sim = Simulator(seed=5)
    net = Network(sim, LinkSpec(latency_ms=1.0))
    trace = EventLog(now_fn=lambda: sim.now)
    replicas = [Process(f"r{i}", sim, net) for i in range(6)]
    scheduler = ProactiveRecoveryScheduler(
        sim, replicas, period_ms=100.0, recovery_duration_ms=30.0,
        trace=trace, min_live=4,
    )
    replicas[0].crash()
    replicas[1].crash()  # 4 live: any rejuvenation would break quorum
    scheduler.start()
    sim.run_for(350.0)
    assert scheduler.recoveries_started == 0
    assert scheduler.deferred_rounds >= 3
    assert sum(1 for r in replicas if r.is_up) == 4
    assert trace.count("recovery-scheduler", "rejuvenate-deferred") >= 3

    # once replicas return, the rotation resumes
    replicas[0].recover()
    replicas[1].recover()
    sim.run_for(400.0)
    assert scheduler.recoveries_started >= 1
    deferred_after_heal = scheduler.deferred_rounds


def test_scheduler_unguarded_when_min_live_is_none():
    sim = Simulator(seed=5)
    net = Network(sim, LinkSpec(latency_ms=1.0))
    replicas = [Process(f"r{i}", sim, net) for i in range(4)]
    for replica in replicas[:3]:
        replica.crash()
    scheduler = ProactiveRecoveryScheduler(
        sim, replicas, period_ms=100.0, recovery_duration_ms=10.0,
    )
    scheduler.start()
    sim.run_for(150.0)
    assert scheduler.recoveries_started == 1
    assert scheduler.deferred_rounds == 0
