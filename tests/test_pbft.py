"""Tests for the PBFT-style baseline."""

import pytest

from repro.attacks import make_slow_proposer
from repro.crypto import FastCrypto
from repro.prime import LoggingApp, sign_client_update
from repro.pbft import PbftConfig, PbftNode
from repro.obs import EventLog
from repro.simnet import LinkSpec, Network, Simulator


class PbftCluster:
    def __init__(self, n=6, f=1, seed=3, timeout_ms=1000.0):
        self.simulator = Simulator(seed=seed)
        self.network = Network(self.simulator, LinkSpec(latency_ms=0.3, jitter_ms=0.1))
        self.crypto = FastCrypto(seed=f"pbft/{seed}")
        self.trace = EventLog(now_fn=lambda: self.simulator.now)
        names = tuple(f"replica:{i}" for i in range(n))
        self.config = PbftConfig(names, num_faults=f, request_timeout_ms=timeout_ms)
        self.nodes = [
            PbftNode(name, self.simulator, self.network, self.config,
                     self.crypto, LoggingApp(), trace=self.trace)
            for name in names
        ]
        self._seq = 0

    def start(self):
        for node in self.nodes:
            node.start()
        self.simulator.run_for(20)
        return self

    def submit(self, payload, index=1):
        self._seq += 1
        update = sign_client_update(self.crypto, "client:c", self._seq, payload)
        node = self.nodes[index]
        if not node.is_up:
            node = next(n for n in self.nodes if n.is_up)
        return node.submit(update)

    def logs(self, only_up=True):
        return [tuple(n.app.log) for n in self.nodes if n.is_up or not only_up]


@pytest.fixture
def pbft():
    return PbftCluster().start()


def test_config_quorum():
    names = tuple(f"r{i}" for i in range(4))
    assert PbftConfig(names, num_faults=1).quorum == 3
    names6 = tuple(f"r{i}" for i in range(6))
    assert PbftConfig(names6, num_faults=1).quorum == 4


def test_config_minimum():
    with pytest.raises(ValueError):
        PbftConfig(("a", "b", "c"), num_faults=1)


def test_happy_path_ordering(pbft):
    for i in range(20):
        pbft.submit(("op", i))
        pbft.simulator.run_for(20)
    pbft.simulator.run_for(1000)
    logs = pbft.logs()
    assert all(len(log) == 20 for log in logs)
    assert len(set(logs)) == 1


def test_duplicate_update_executes_once(pbft):
    update = sign_client_update(pbft.crypto, "client:d", 1, ("op",))
    pbft.nodes[1].submit(update)
    pbft.nodes[2].submit(update)
    pbft.simulator.run_for(1000)
    assert all(len(log) == 1 for log in pbft.logs())


def test_invalid_signature_rejected(pbft):
    from repro.prime import ClientUpdate

    assert pbft.nodes[1].submit(ClientUpdate("c", 1, ("op",), None)) is False


def test_leader_crash_view_change_recovers():
    pbft = PbftCluster(seed=5).start()
    pbft.simulator.run_for(100)
    pbft.nodes[0].crash()
    for i in range(15):
        pbft.submit(("op", i))
        pbft.simulator.run_for(100)
    pbft.simulator.run_for(6000)
    logs = pbft.logs()
    assert all(len(log) == 15 for log in logs)
    assert len(set(logs)) == 1
    assert all(node.view >= 1 for node in pbft.nodes if node.is_up)
    assert pbft.trace.count(kind="pbft-new-view") >= 1


def test_slow_leader_degrades_latency_without_view_change():
    """The baseline's defining weakness: a leader delaying proposals below
    the timeout degrades latency arbitrarily and is never replaced."""
    pbft = PbftCluster(seed=8, timeout_ms=1000.0).start()
    pbft.simulator.run_for(200)
    make_slow_proposer(pbft.nodes[0], delay_ms=400.0)
    latencies = []
    done = {}
    for node in pbft.nodes:
        node.execution_listeners.append(
            lambda u, i, r: done.setdefault(
                (u.client, u.client_seq), pbft.simulator.now
            )
        )
    submitted = {}
    for i in range(20):
        seq = pbft._seq + 1
        submitted[("client:c", seq)] = pbft.simulator.now
        pbft.submit(("op", i))
        pbft.simulator.run_for(100)
    pbft.simulator.run_for(3000)
    latencies = [
        done[key] - submitted[key] for key in submitted if key in done
    ]
    assert len(latencies) == 20
    assert min(latencies) > 300.0          # every update pays the delay
    assert all(node.view == 0 for node in pbft.nodes)  # never replaced


def test_fast_leader_latency_is_low():
    pbft = PbftCluster(seed=9).start()
    done = {}
    for node in pbft.nodes:
        node.execution_listeners.append(
            lambda u, i, r: done.setdefault(
                (u.client, u.client_seq), pbft.simulator.now
            )
        )
    start = pbft.simulator.now
    pbft.submit(("op",))
    pbft.simulator.run_for(500)
    latency = done[("client:c", 1)] - start
    assert latency < 30.0


def test_view_change_preserves_prepared_updates():
    pbft = PbftCluster(seed=12).start()
    pbft.simulator.run_for(100)
    for i in range(5):
        pbft.submit(("pre", i))
        pbft.simulator.run_for(30)
    pbft.nodes[0].crash()
    for i in range(5):
        pbft.submit(("post", i))
        pbft.simulator.run_for(100)
    pbft.simulator.run_for(6000)
    logs = pbft.logs()
    assert all(len(log) == 10 for log in logs)
    assert len(set(logs)) == 1


def test_progress_requires_quorum():
    pbft = PbftCluster(seed=14).start()
    for index in (3, 4, 5):
        pbft.nodes[index].crash()
    pbft.submit(("op",))
    pbft.simulator.run_for(4000)
    assert all(len(node.app.log) == 0 for node in pbft.nodes if node.is_up)


def test_loss_tolerated_by_retransmission():
    pbft = PbftCluster(seed=21)
    pbft.network.default_link.loss = 0.05
    pbft.start()
    for i in range(10):
        pbft.submit(("op", i))
        pbft.simulator.run_for(50)
    pbft.simulator.run_for(5000)
    logs = pbft.logs()
    assert all(len(log) == 10 for log in logs)
    assert len(set(logs)) == 1
