"""Tests for the PBFT-style baseline."""

import pytest

from repro.attacks import make_slow_proposer
from repro.crypto import FastCrypto
from repro.prime import LoggingApp, sign_client_update
from repro.pbft import PbftConfig, PbftNode
from repro.obs import EventLog
from repro.simnet import LinkSpec, Network, Simulator


class PbftCluster:
    def __init__(self, n=6, f=1, seed=3, timeout_ms=1000.0, **config_kwargs):
        self.simulator = Simulator(seed=seed)
        self.network = Network(self.simulator, LinkSpec(latency_ms=0.3, jitter_ms=0.1))
        self.crypto = FastCrypto(seed=f"pbft/{seed}")
        self.trace = EventLog(now_fn=lambda: self.simulator.now)
        names = tuple(f"replica:{i}" for i in range(n))
        self.config = PbftConfig(names, num_faults=f,
                                 request_timeout_ms=timeout_ms, **config_kwargs)
        self.nodes = [
            PbftNode(name, self.simulator, self.network, self.config,
                     self.crypto, LoggingApp(), trace=self.trace)
            for name in names
        ]
        self._seq = 0

    def start(self):
        for node in self.nodes:
            node.start()
        self.simulator.run_for(20)
        return self

    def submit(self, payload, index=1):
        self._seq += 1
        update = sign_client_update(self.crypto, "client:c", self._seq, payload)
        node = self.nodes[index]
        if not node.is_up:
            node = next(n for n in self.nodes if n.is_up)
        return node.submit(update)

    def logs(self, only_up=True):
        return [tuple(n.app.log) for n in self.nodes if n.is_up or not only_up]


@pytest.fixture
def pbft():
    return PbftCluster().start()


def test_config_quorum():
    names = tuple(f"r{i}" for i in range(4))
    assert PbftConfig(names, num_faults=1).quorum == 3
    names6 = tuple(f"r{i}" for i in range(6))
    assert PbftConfig(names6, num_faults=1).quorum == 4


def test_config_minimum():
    with pytest.raises(ValueError):
        PbftConfig(("a", "b", "c"), num_faults=1)


def test_happy_path_ordering(pbft):
    for i in range(20):
        pbft.submit(("op", i))
        pbft.simulator.run_for(20)
    pbft.simulator.run_for(1000)
    logs = pbft.logs()
    assert all(len(log) == 20 for log in logs)
    assert len(set(logs)) == 1


def test_duplicate_update_executes_once(pbft):
    update = sign_client_update(pbft.crypto, "client:d", 1, ("op",))
    pbft.nodes[1].submit(update)
    pbft.nodes[2].submit(update)
    pbft.simulator.run_for(1000)
    assert all(len(log) == 1 for log in pbft.logs())


def test_invalid_signature_rejected(pbft):
    from repro.prime import ClientUpdate

    assert pbft.nodes[1].submit(ClientUpdate("c", 1, ("op",), None)) is False


def test_leader_crash_view_change_recovers():
    pbft = PbftCluster(seed=5).start()
    pbft.simulator.run_for(100)
    pbft.nodes[0].crash()
    for i in range(15):
        pbft.submit(("op", i))
        pbft.simulator.run_for(100)
    pbft.simulator.run_for(6000)
    logs = pbft.logs()
    assert all(len(log) == 15 for log in logs)
    assert len(set(logs)) == 1
    assert all(node.view >= 1 for node in pbft.nodes if node.is_up)
    assert pbft.trace.count(kind="pbft-new-view") >= 1


def test_slow_leader_degrades_latency_without_view_change():
    """The baseline's defining weakness: a leader delaying proposals below
    the timeout degrades latency arbitrarily and is never replaced."""
    pbft = PbftCluster(seed=8, timeout_ms=1000.0).start()
    pbft.simulator.run_for(200)
    make_slow_proposer(pbft.nodes[0], delay_ms=400.0)
    latencies = []
    done = {}
    for node in pbft.nodes:
        node.execution_listeners.append(
            lambda u, i, r: done.setdefault(
                (u.client, u.client_seq), pbft.simulator.now
            )
        )
    submitted = {}
    for i in range(20):
        seq = pbft._seq + 1
        submitted[("client:c", seq)] = pbft.simulator.now
        pbft.submit(("op", i))
        pbft.simulator.run_for(100)
    pbft.simulator.run_for(3000)
    latencies = [
        done[key] - submitted[key] for key in submitted if key in done
    ]
    assert len(latencies) == 20
    assert min(latencies) > 300.0          # every update pays the delay
    assert all(node.view == 0 for node in pbft.nodes)  # never replaced


def test_fast_leader_latency_is_low():
    pbft = PbftCluster(seed=9).start()
    done = {}
    for node in pbft.nodes:
        node.execution_listeners.append(
            lambda u, i, r: done.setdefault(
                (u.client, u.client_seq), pbft.simulator.now
            )
        )
    start = pbft.simulator.now
    pbft.submit(("op",))
    pbft.simulator.run_for(500)
    latency = done[("client:c", 1)] - start
    assert latency < 30.0


def test_view_change_preserves_prepared_updates():
    pbft = PbftCluster(seed=12).start()
    pbft.simulator.run_for(100)
    for i in range(5):
        pbft.submit(("pre", i))
        pbft.simulator.run_for(30)
    pbft.nodes[0].crash()
    for i in range(5):
        pbft.submit(("post", i))
        pbft.simulator.run_for(100)
    pbft.simulator.run_for(6000)
    logs = pbft.logs()
    assert all(len(log) == 10 for log in logs)
    assert len(set(logs)) == 1


def test_progress_requires_quorum():
    pbft = PbftCluster(seed=14).start()
    for index in (3, 4, 5):
        pbft.nodes[index].crash()
    pbft.submit(("op",))
    pbft.simulator.run_for(4000)
    assert all(len(node.app.log) == 0 for node in pbft.nodes if node.is_up)


def test_loss_tolerated_by_retransmission():
    pbft = PbftCluster(seed=21)
    pbft.network.default_link.loss = 0.05
    pbft.start()
    for i in range(10):
        pbft.submit(("op", i))
        pbft.simulator.run_for(50)
    pbft.simulator.run_for(5000)
    logs = pbft.logs()
    assert all(len(log) == 10 for log in logs)
    assert len(set(logs)) == 1


# ----------------------------------------------------------------------
# View-change validation (Byzantine-proof), checkpoints, catch-up
# ----------------------------------------------------------------------

def _signed(cluster, sender, payload):
    from repro.prime import SignedMessage

    return SignedMessage(payload, cluster.crypto.sign(sender, payload))


def _prepared_entry(cluster, seq=1, view=0, batch=None, proof_len=None,
                    digest=None):
    from repro.pbft.messages import PbftPrepare, PbftPrepared, PbftPrePrepare
    from repro.pbft.node import PbftNode

    if batch is None:
        update = sign_client_update(
            cluster.crypto, "client:x", seq, ("op", seq))
        batch = (update,)
    leader = cluster.config.leader_of_view(view)
    pp_signed = _signed(cluster, leader, PbftPrePrepare(leader, view, seq, batch))
    entry_digest = digest or PbftNode._batch_digest(seq, batch)
    voters = [n for n in cluster.config.replicas if n != leader]
    count = cluster.config.quorum - 1 if proof_len is None else proof_len
    proof = tuple(
        _signed(cluster, name, PbftPrepare(name, view, seq, entry_digest))
        for name in voters[:count]
    )
    return PbftPrepared(seq, view, entry_digest, pp_signed, proof)


def _vc_of(cluster, sender, new_view, entries, last_executed=0):
    from repro.pbft.messages import PbftViewChange

    vc = PbftViewChange(sender, new_view, last_executed, tuple(entries))
    return _signed(cluster, sender, vc), vc


def test_viewchange_validation_accepts_valid(pbft):
    entry = _prepared_entry(pbft)
    signed, vc = _vc_of(pbft, "replica:2", 1, (entry,))
    assert pbft.nodes[0]._validate_view_change(signed, vc)


def test_viewchange_validation_rejects_weak_proof(pbft):
    # one prepare + the leader's implied vote is far below quorum
    entry = _prepared_entry(pbft, proof_len=1)
    signed, vc = _vc_of(pbft, "replica:2", 1, (entry,))
    assert not pbft.nodes[0]._validate_view_change(signed, vc)


def test_viewchange_validation_rejects_digest_mismatch(pbft):
    # quorum vouched for a digest that does not match the batch content
    entry = _prepared_entry(pbft, digest="forged-digest")
    signed, vc = _vc_of(pbft, "replica:2", 1, (entry,))
    assert not pbft.nodes[0]._validate_view_change(signed, vc)


def test_viewchange_validation_rejects_wrong_leader_pre_prepare(pbft):
    from repro.pbft.messages import PbftPrepared, PbftPrePrepare
    from repro.pbft.node import PbftNode

    good = _prepared_entry(pbft)
    batch = good.pre_prepare.payload.batch
    # replica:3 is not the leader of view 0 but signs its pre-prepare
    evil_pp = _signed(pbft, "replica:3", PbftPrePrepare(
        "replica:3", 0, good.seq, batch))
    forged = PbftPrepared(
        good.seq, 0, PbftNode._batch_digest(good.seq, batch), evil_pp, good.proof)
    signed, vc = _vc_of(pbft, "replica:2", 1, (forged,))
    assert not pbft.nodes[0]._validate_view_change(signed, vc)


def test_viewchange_validation_rejects_sender_mismatch_and_dup_seqs(pbft):
    entry = _prepared_entry(pbft)
    signed, vc = _vc_of(pbft, "replica:2", 1, (entry,))
    relabeled = _signed(pbft, "replica:3", vc)   # signer != vc.sender
    assert not pbft.nodes[0]._validate_view_change(relabeled, vc)
    dup_signed, dup_vc = _vc_of(pbft, "replica:2", 1, (entry, entry))
    assert not pbft.nodes[0]._validate_view_change(dup_signed, dup_vc)


def test_new_view_from_equivocating_leader_rejected(pbft):
    """A faulty new leader embedding a pre-prepare it did not sign (or
    one signed by someone else) must not be adopted."""
    from repro.pbft.messages import PbftNewView, PbftPrePrepare

    node = pbft.nodes[2]
    vcs = []
    for name in pbft.config.replicas[:pbft.config.quorum]:
        vc_signed, _ = _vc_of(pbft, name, 1, ())
        vcs.append(vc_signed)
    # leader of view 1 is replica:1; the embedded proposal is replica:3's
    evil_pp = _signed(pbft, "replica:3", PbftPrePrepare("replica:3", 1, 1, ()))
    nv = PbftNewView("replica:1", 1, tuple(vcs), (evil_pp,))
    node._on_new_view(_signed(pbft, "replica:1", nv), nv)
    assert node.view == 0
    assert not node.in_view_change


def test_checkpoint_truncates_log():
    pbft = PbftCluster(seed=17, checkpoint_interval=4).start()
    for i in range(40):
        pbft.submit(("op", i))
        pbft.simulator.run_for(20)
    pbft.simulator.run_for(2000)
    assert all(len(node.app.log) == 40 for node in pbft.nodes)
    # a quorum certified checkpoints; logs kept only the retention window
    for node in pbft.nodes:
        assert node.stable_seq >= 36
        assert min(node.slots) > 4          # old slots truncated
        assert len(node.slots) <= 4 * 4 + 8  # retention window + frontier
    assert pbft.trace.count(kind="pbft-checkpoint") >= len(pbft.nodes)


def test_recovered_laggard_catches_up_via_order_proofs():
    """A replica that slept through ordering rejoins by fetching
    commit-certified slots (order proofs), not by re-running ordering."""
    pbft = PbftCluster(seed=19, checkpoint_interval=16).start()
    lagger = pbft.nodes[3]
    lagger.crash()
    for i in range(30):
        pbft.submit(("op", i))
        pbft.simulator.run_for(20)
    pbft.simulator.run_for(1000)
    assert all(len(log) == 30 for log in pbft.logs())   # quorum progressed
    lagger.recover()
    pbft.simulator.run_for(4000)
    assert len(lagger.app.log) == 30
    assert tuple(lagger.app.log) == tuple(pbft.nodes[1].app.log)


def test_vote_table_gc_after_new_view():
    """Satellite: adopted views drop their vote-table epochs (no unbounded
    growth across view changes)."""
    pbft = PbftCluster(seed=5).start()
    pbft.simulator.run_for(100)
    pbft.nodes[0].crash()
    for i in range(10):
        pbft.submit(("op", i))
        pbft.simulator.run_for(100)
    pbft.simulator.run_for(6000)
    moved = [n for n in pbft.nodes if n.is_up and n.view >= 1]
    assert len(moved) >= pbft.config.quorum
    for node in moved:
        assert all(epoch >= node.view for epoch in node._view_changes)
        assert len(node._view_changes) <= 2


def test_view_metrics_recorded():
    pbft = PbftCluster(seed=5).start()
    pbft.simulator.run_for(100)
    pbft.nodes[0].crash()
    for i in range(10):
        pbft.submit(("op", i))
        pbft.simulator.run_for(100)
    pbft.simulator.run_for(6000)
    node = next(n for n in pbft.nodes if n.is_up and n.view >= 1)
    assert node.obs.counter(
        f"replication.view_changes_total.{node.name}").value >= 1
    assert node.obs.gauge(f"replication.view.{node.name}").value >= 1.0


def test_in_view_change_suppresses_forwarding(pbft):
    node = pbft.nodes[2]
    update = sign_client_update(pbft.crypto, "client:s", 1, ("op",))
    node.submit(update)
    node.in_view_change = True
    sent_before = pbft.network.stats.sent
    node._forward_tick()
    assert pbft.network.stats.sent == sent_before
    node.in_view_change = False
    node._forward_tick()
    assert pbft.network.stats.sent > sent_before


@pytest.mark.parametrize("batching", [True, False])
def test_mid_batch_leader_kill_executes_exactly_once(batching):
    """Kill the leader while a batch is in flight: every update executes
    exactly once on every replica after recovery, batching on or off."""
    kwargs = (dict(batch_interval_ms=20.0, batch_max_updates=64) if batching
              else dict(batch_interval_ms=1.0, batch_max_updates=1))
    pbft = PbftCluster(seed=23, **kwargs).start()
    pbft.simulator.run_for(100)
    counts = {}
    for node in pbft.nodes:
        def listener(u, i, r, name=node.name):
            key = (name, u.client, u.client_seq)
            counts[key] = counts.get(key, 0) + 1
        node.execution_listeners.append(listener)
    for i in range(8):
        pbft.submit(("mid", i))
    pbft.simulator.run_for(6.0)   # batch pre-prepared but not yet committed
    pbft.nodes[0].crash()
    for i in range(8):
        pbft.submit(("post", i))
        pbft.simulator.run_for(50)
    pbft.simulator.run_for(8000)
    logs = pbft.logs()
    assert all(len(log) == 16 for log in logs)
    assert len(set(logs)) == 1
    assert counts and all(count == 1 for count in counts.values())
