"""Property tests for the shared quorum primitives.

Two families of properties:

* **Threshold placement** — across ``(f, k)`` sweeps with the minimal
  ``n = 3f + 2k + 1`` replica placement, the Prime quorum ``2f + k + 1``
  is exactly where :class:`~repro.replication.quorum.QuorumTracker`
  produces a certificate, and any two such quorums intersect in more
  than ``f`` replicas (so a correct replica witnesses both).
* **Vote hygiene** — duplicate votes from one sender never inflate a
  count, and an equivocating sender contributes at most one vote per
  digest, so it can never push two conflicting values to quorum with
  fewer honest accomplices than the thresholds demand.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.prime.config import PrimeConfig  # noqa: E402
from repro.replication import (  # noqa: E402
    QuorumTracker,
    SignedMessage,
    assemble_certificate,
)


def _vote(sender: str) -> SignedMessage:
    # The tracker never inspects payload or signature; envelope checks
    # happen in collect_valid_voters/verify_certificate.
    return SignedMessage(("vote", sender), None)


def _names(n: int):
    return tuple(f"replica:{i}" for i in range(n))


fk = st.tuples(st.integers(min_value=1, max_value=4),
               st.integers(min_value=0, max_value=4))


# ----------------------------------------------------------------------
# Threshold placement: 2f + k + 1 of n = 3f + 2k + 1
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(fk=fk)
def test_prime_quorum_matches_resilience_placement(fk):
    f, k = fk
    n = 3 * f + 2 * k + 1
    config = PrimeConfig(_names(n), num_faults=f, num_recovering=k)
    assert config.n == n
    assert config.quorum == 2 * f + k + 1
    # Any two quorums overlap in >= 2q - n = f + 1 replicas: more than
    # the f that can be faulty, so a correct replica bridges them.
    assert 2 * config.quorum - n == f + 1
    # And a quorum survives k recovering + f faulty replicas being silent.
    assert config.quorum <= n - f - k


@settings(max_examples=40, deadline=None)
@given(fk=fk, data=st.data())
def test_tracker_certificate_appears_exactly_at_quorum(fk, data):
    f, k = fk
    n = 3 * f + 2 * k + 1
    config = PrimeConfig(_names(n), num_faults=f, num_recovering=k)
    quorum = config.quorum
    voters = data.draw(st.permutations(list(config.replicas)))
    tracker = QuorumTracker(quorum=quorum)
    for index, sender in enumerate(voters, start=1):
        count = tracker.add("seq", "digest", sender, _vote(sender))
        assert count == index
        cert = tracker.certificate("seq", "digest")
        if index < quorum:
            assert not tracker.has_quorum("seq", "digest")
            assert cert is None
        else:
            assert tracker.has_quorum("seq", "digest")
            assert len(cert) == quorum
    # The certificate is canonical: quorum-first voters in name order,
    # independent of arrival order.
    expected = assemble_certificate(tracker.voters("seq", "digest"), quorum)
    assert tracker.certificate("seq", "digest") == expected


@settings(max_examples=40, deadline=None)
@given(n=st.integers(min_value=4, max_value=16), data=st.data())
def test_certificate_is_arrival_order_independent(n, data):
    names = list(_names(n))
    first = data.draw(st.permutations(names))
    second = data.draw(st.permutations(names))
    quorum = data.draw(st.integers(min_value=1, max_value=n))
    one, two = QuorumTracker(), QuorumTracker()
    for sender in first:
        one.add(7, "d", sender, _vote(sender))
    for sender in second:
        two.add(7, "d", sender, _vote(sender))
    assert one.certificate(7, "d", quorum) == two.certificate(7, "d", quorum)


# ----------------------------------------------------------------------
# Vote hygiene: duplicates and equivocation
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(
    repeats=st.integers(min_value=2, max_value=10),
    honest=st.integers(min_value=0, max_value=5),
)
def test_duplicate_votes_never_inflate_the_count(repeats, honest):
    tracker = QuorumTracker()
    for _ in range(repeats):
        tracker.add("seq", "digest", "replica:dup", _vote("replica:dup"))
    for i in range(honest):
        tracker.add("seq", "digest", f"replica:{i}", _vote(f"replica:{i}"))
    assert tracker.count("seq", "digest") == honest + 1
    # a quorum above the distinct-voter count stays unreachable
    assert tracker.certificate("seq", "digest", honest + 2) is None


@settings(max_examples=40, deadline=None)
@given(fk=fk, data=st.data())
def test_equivocator_cannot_double_count_toward_either_digest(fk, data):
    f, k = fk
    n = 3 * f + 2 * k + 1
    config = PrimeConfig(_names(n), num_faults=f, num_recovering=k)
    quorum = config.quorum
    tracker = QuorumTracker(quorum=quorum)
    equivocators = list(config.replicas[:f])  # at most f byzantine senders
    honest = list(config.replicas[f:])
    votes_a = data.draw(st.integers(min_value=0, max_value=len(honest)))
    for sender in equivocators:
        for digest in ("digest-a", "digest-b"):
            for _ in range(3):  # spam both digests, repeatedly
                tracker.add("seq", digest, sender, _vote(sender))
    for sender in honest[:votes_a]:
        tracker.add("seq", "digest-a", sender, _vote(sender))
    for sender in honest[votes_a:]:
        tracker.add("seq", "digest-b", sender, _vote(sender))
    assert tracker.equivocators("seq") == set(equivocators)
    assert tracker.count("seq", "digest-a") == votes_a + f
    assert tracker.count("seq", "digest-b") == (len(honest) - votes_a) + f
    # With n = 3f + 2k + 1 and q = 2f + k + 1, both digests reaching
    # quorum would need 2q - f = 3f + 2k + 2 > n distinct honest-or-not
    # voters — impossible: equivocation can poison at most one value.
    both = (
        tracker.has_quorum("seq", "digest-a")
        and tracker.has_quorum("seq", "digest-b")
    )
    assert not both
