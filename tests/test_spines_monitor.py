"""Tests for the self-healing overlay control plane (link monitors).

Covers hello-based dead-link detection, link recovery, latency-degradation
detection with hysteresis, partition detection, flap damping against a
route-flapping attacker, and hello authentication.
"""

import pytest

from repro.attacks import RouteFlapAttacker
from repro.crypto import FastCrypto
from repro.obs import (
    COMP_OVERLAY,
    EV_OVERLAY_LINK_DEGRADED,
    EV_OVERLAY_LINK_DOWN,
    EV_OVERLAY_LINK_SUPPRESSED,
    EV_OVERLAY_LINK_UP,
    EV_OVERLAY_PARTITION,
    EV_OVERLAY_REROUTE,
    Observability,
)
from repro.simnet import LinkSpec, Network, Process, Simulator
from repro.spines import (
    LinkMonitorConfig,
    OverlayHello,
    OverlayStack,
    SpinesOverlay,
    wide_area_topology,
)


class Endpoint(Process):
    def __init__(self, name, simulator, network):
        super().__init__(name, simulator, network)
        self.received = []

    def on_message(self, src, payload):
        unwrapped = OverlayStack.unwrap(payload)
        if unwrapped is not None:
            self.received.append((self.simulator.now, *unwrapped))


def build(mode="shortest", config=None, seed=11, **kwargs):
    sim = Simulator(seed=seed)
    net = Network(sim, LinkSpec(latency_ms=0.1))
    obs = Observability(now_fn=lambda: sim.now)
    overlay = SpinesOverlay(
        sim, net, wide_area_topology(), mode=mode, crypto=FastCrypto(),
        self_healing=True, monitor_config=config, obs=obs, **kwargs
    )
    return sim, net, overlay, obs


def test_detection_bound_math():
    config = LinkMonitorConfig(
        hello_interval_ms=100.0, miss_threshold=3, reroute_delay_ms=50.0
    )
    assert config.dead_after_ms == 300.0
    assert config.detection_bound_ms == 450.0


def test_dead_link_detected_within_bound():
    sim, net, overlay, obs = build()
    net.block_link("spines:cc1", "spines:dc2")
    bound = overlay.monitor_config.detection_bound_ms
    sim.run_for(bound + 50.0)
    assert ("cc1", "dc2") in overlay.control_plane.links_down()
    downs = obs.log.events(COMP_OVERLAY, EV_OVERLAY_LINK_DOWN)
    assert downs and downs[0].time <= bound
    assert obs.log.events(COMP_OVERLAY, EV_OVERLAY_REROUTE)


def test_link_recovery_detected_when_hellos_resume():
    sim, net, overlay, obs = build()
    unblock = net.block_link("spines:cc1", "spines:dc2")
    sim.run_for(600.0)
    assert ("cc1", "dc2") in overlay.control_plane.links_down()
    unblock()
    sim.run_for(600.0)
    assert overlay.control_plane.links_down() == set()
    assert obs.log.events(COMP_OVERLAY, EV_OVERLAY_LINK_UP)


def test_degraded_link_detected_and_recovers_with_hysteresis():
    sim, net, overlay, obs = build()
    # cc1<->cc2 advertises 4ms; +50ms pushes the EWMA far past 3x
    restore = net.degrade_link("spines:cc1", "spines:cc2", extra_delay_ms=50.0)
    sim.run_for(1500.0)
    degraded = overlay.control_plane.degraded_links()
    assert ("cc1", "cc2") in degraded
    assert degraded[("cc1", "cc2")] > 4.0 * overlay.monitor_config.degraded_factor
    events = obs.log.events(COMP_OVERLAY, EV_OVERLAY_LINK_DEGRADED)
    assert events and "cc1<->cc2" in events[0].details["link"]
    # observed topology carries the measured latency, not the advertised one
    observed = overlay.control_plane.observed
    assert observed.link_attributes("cc1", "cc2")["latency_ms"] > 12.0
    restore()
    sim.run_for(3000.0)  # EWMA must decay below recovered_factor x advertised
    assert overlay.control_plane.degraded_links() == {}


def test_partition_detected_when_site_cut_off():
    sim, net, overlay, obs = build()
    net.block_link("spines:field", "spines:cc1")
    net.block_link("spines:field", "spines:cc2")
    sim.run_for(1000.0)
    assert overlay.control_plane.partitioned
    events = obs.log.events(COMP_OVERLAY, EV_OVERLAY_PARTITION)
    assert events and events[0].details["components"] == 2


def test_flap_damping_suppresses_flapping_link():
    config = LinkMonitorConfig(
        hello_interval_ms=50.0, miss_threshold=2,
        max_flaps=3, flap_window_ms=10_000.0, suppress_ms=2_000.0,
    )
    sim, net, overlay, obs = build(config=config)
    attacker = RouteFlapAttacker(overlay.daemon("dc1"), period_ms=300.0)
    attacker.start()
    sim.run_for(6000.0)
    suppressed = obs.log.events(COMP_OVERLAY, EV_OVERLAY_LINK_SUPPRESSED)
    assert suppressed, "flapping links must be suppressed"
    # while suppressed, up-reports are held down, so route churn is bounded
    assert overlay.control_plane.reroutes < 40
    attacker.stop()
    sim.run_for(config.suppress_ms + 2000.0)
    # after the attacker stops and suppression expires, links recover
    assert overlay.control_plane.links_down() == set()


def test_flap_attacker_requires_self_healing():
    sim = Simulator(seed=3)
    net = Network(sim, LinkSpec(latency_ms=0.1))
    static = SpinesOverlay(
        sim, net, wide_area_topology(), mode="shortest", crypto=FastCrypto()
    )
    with pytest.raises(ValueError):
        RouteFlapAttacker(static.daemon("cc1"))


def test_forged_hello_rejected():
    """An external process cannot fake link liveness: hellos are
    link-authenticated and neighbour-checked."""
    sim, net, overlay, obs = build()
    daemon = overlay.daemon("cc1")
    evil = Endpoint("spines:evil", sim, net)
    evil.send(daemon.name, OverlayHello("evil", 1, 0.0))
    # a non-neighbour site name via the attacker's own process name
    evil2 = Endpoint("spines:dc9", sim, net)
    evil2.send(daemon.name, OverlayHello("dc9", 1, 0.0, b"bad"))
    sim.run_for(50.0)
    assert daemon.stats["dropped_auth"] >= 2


def test_hello_with_bad_mac_rejected():
    sim, net, overlay, obs = build()
    daemon = overlay.daemon("cc1")
    # a correct neighbour source name but a forged MAC, injected straight
    # onto the wire (a network attacker replaying/forging link traffic)
    hello = OverlayHello("cc2", 999, sim.now, b"not-a-mac")
    net.inject("spines:cc2", daemon.name, hello, delay_ms=0.1)
    before = daemon.stats["dropped_auth"]
    sim.run_for(10.0)
    assert daemon.stats["dropped_auth"] == before + 1


def test_static_overlay_sends_no_hellos():
    sim = Simulator(seed=11)
    net = Network(sim, LinkSpec(latency_ms=0.1))
    overlay = SpinesOverlay(
        sim, net, wide_area_topology(), mode="shortest", crypto=FastCrypto()
    )
    assert overlay.control_plane is None
    assert all(d.monitor is None for d in overlay.daemons.values())
    before = net.stats.sent
    sim.run_for(1000.0)
    assert net.stats.sent == before  # an idle static overlay is silent
