"""Overload protection on the overlay data plane.

Pairs with per-source fairness: bounded per-source forwarding queues
(``max_queue_per_source`` → ``dropped_overflow``) and per-source token
bucket rate limiting (``source_rate_per_ms`` → ``dropped_ratelimit``).
Ends with the acceptance scenario: a :class:`FloodingAttacker` at ten
times the honest rate must leave honest latency within 2x of the
attack-free baseline while daemon queue memory stays bounded.
"""

from repro.attacks import FloodingAttacker
from repro.crypto import FastCrypto
from repro.simnet import LinkSpec, Network, Process, Simulator
from repro.spines import OverlayStack, SpinesOverlay, wide_area_topology


class Endpoint(Process):
    def __init__(self, name, simulator, network):
        super().__init__(name, simulator, network)
        self.received = []

    def on_message(self, src, payload):
        unwrapped = OverlayStack.unwrap(payload)
        if unwrapped is not None:
            self.received.append((self.simulator.now, *unwrapped))


def build(seed=7, **overlay_kwargs):
    sim = Simulator(seed=seed)
    net = Network(sim, LinkSpec(latency_ms=0.1))
    overlay = SpinesOverlay(
        sim, net, wide_area_topology(), mode="shortest", crypto=FastCrypto(),
        **overlay_kwargs
    )
    return sim, net, overlay


# ----------------------------------------------------------------------
# Bounded per-source queues
# ----------------------------------------------------------------------
def test_queue_limit_drops_overflow_and_bounds_peak():
    sim, net, overlay = build(
        forward_capacity_per_ms=1.0, max_queue_per_source=16
    )
    sender = Endpoint("ep:s", sim, net)
    victim = Endpoint("ep:v", sim, net)
    stack = overlay.attach(sender, "cc1")
    overlay.attach(victim, "dc2")
    for index in range(200):  # a single-instant burst of 200
        stack.send("ep:v", ("burst", index))
    sim.run_for(1.0)
    daemon = overlay.daemon("cc1")
    assert daemon.stats["dropped_overflow"] >= 180
    assert daemon.queue_peak <= 16
    sim.run_for(5000.0)
    # the survivors drain and arrive; the queue empties
    assert daemon.queue_depth() == 0
    assert 0 < len(victim.received) <= 20


def test_without_queue_limit_backlog_is_unbounded():
    sim, net, overlay = build(forward_capacity_per_ms=1.0)
    sender = Endpoint("ep:s", sim, net)
    victim = Endpoint("ep:v", sim, net)
    stack = overlay.attach(sender, "cc1")
    overlay.attach(victim, "dc2")
    for index in range(200):
        stack.send("ep:v", ("burst", index))
    sim.run_for(5000.0)
    daemon = overlay.daemon("cc1")
    assert daemon.stats["dropped_overflow"] == 0
    assert daemon.queue_peak >= 199  # the memory bound the limit buys us
    assert len(victim.received) == 200


# ----------------------------------------------------------------------
# Per-source token bucket
# ----------------------------------------------------------------------
def test_rate_limit_drops_excess_over_burst():
    sim, net, overlay = build(source_rate_per_ms=0.1, source_burst=5.0)
    sender = Endpoint("ep:s", sim, net)
    victim = Endpoint("ep:v", sim, net)
    stack = overlay.attach(sender, "cc1")
    overlay.attach(victim, "dc2")
    for index in range(50):  # instantaneous burst: only the bucket passes
        stack.send("ep:v", ("b", index))
    sim.run_for(1000.0)
    daemon = overlay.daemon("cc1")
    assert daemon.stats["dropped_ratelimit"] == 45
    assert len(victim.received) == 5


def test_rate_limit_refills_over_time():
    sim, net, overlay = build(source_rate_per_ms=0.1, source_burst=2.0)
    sender = Endpoint("ep:s", sim, net)
    victim = Endpoint("ep:v", sim, net)
    stack = overlay.attach(sender, "cc1")
    overlay.attach(victim, "dc2")
    # one message every 10 ms matches 0.1 tokens/ms; a burst of 2 gives
    # the bucket headroom against float rounding on the refill
    counter = {"n": 0}

    def send_one():
        counter["n"] += 1
        stack.send("ep:v", ("m", counter["n"]))

    sim.call_every(10.0, send_one)
    sim.run_for(2000.0)
    daemon = overlay.daemon("cc1")
    assert daemon.stats["dropped_ratelimit"] == 0
    # everything not still in flight at cutoff arrived (path is ~12 ms,
    # so at most a couple of trailing sends are outstanding)
    assert counter["n"] - len(victim.received) <= 3


def test_rate_limit_never_gates_local_delivery():
    """The token bucket protects forwarding capacity; traffic that stays
    on-site is delivered regardless."""
    sim, net, overlay = build(source_rate_per_ms=0.01, source_burst=1.0)
    sender = Endpoint("ep:s", sim, net)
    local = Endpoint("ep:l", sim, net)
    stack = overlay.attach(sender, "cc1")
    overlay.attach(local, "cc1")  # same site: no forwarding involved
    for index in range(50):
        stack.send("ep:l", ("local", index))
    sim.run_for(100.0)
    assert len(local.received) == 50
    assert overlay.daemon("cc1").stats["dropped_ratelimit"] == 0


# ----------------------------------------------------------------------
# Acceptance: flooding at 10x the honest rate
# ----------------------------------------------------------------------
def _honest_under_flood(attack, **overlay_kwargs):
    """Honest sender at 0.1 msg/ms, optional flooder at 1.0 msg/ms (10x),
    both attached at cc1, victim at dc2. Returns (mean honest latency,
    overlay) over a 5 s run."""
    sim, net, overlay = build(**overlay_kwargs)
    honest = Endpoint("ep:honest", sim, net)
    victim = Endpoint("ep:victim", sim, net)
    stack = overlay.attach(honest, "cc1")
    overlay.attach(victim, "dc2")
    sent_at = {}
    counter = {"n": 0}

    def send_honest():
        counter["n"] += 1
        sent_at[counter["n"]] = sim.now
        stack.send("ep:victim", ("h", counter["n"]))

    sim.call_every(10.0, send_honest)
    if attack:
        flooder = FloodingAttacker(
            "ep:flood", sim, net, overlay, "cc1", "ep:victim", rate_per_ms=1.0
        )
        flooder.start()
    sim.run_for(5000.0)
    latencies = [
        at - sent_at[payload[1]]
        for at, _, payload in victim.received
        if isinstance(payload, tuple) and payload[0] == "h"
    ]
    assert latencies, "honest traffic must get through"
    return sum(latencies) / len(latencies), overlay


def test_flood_10x_honest_latency_and_memory_bounded():
    protection = dict(
        forward_capacity_per_ms=1.0,
        max_queue_per_source=32,
        source_rate_per_ms=0.5,
    )
    baseline, _ = _honest_under_flood(attack=False, **protection)
    flooded, overlay = _honest_under_flood(attack=True, **protection)
    assert flooded <= 2.0 * baseline
    # every daemon's forwarding backlog stays within the configured bound
    # (a handful of sources x 32 per source; nowhere near the flood volume)
    assert all(d.queue_peak <= 96 for d in overlay.daemons.values())
    # the protection actually engaged against the attacker
    entry = overlay.daemon("cc1")
    assert entry.stats["dropped_ratelimit"] + entry.stats["dropped_overflow"] > 0


def test_flood_unprotected_backlog_grows_without_bound():
    """Contrast run: same attack, no queue limit or rate limit — the
    entry daemon's backlog grows with the flood instead of being bounded."""
    _, overlay = _honest_under_flood(attack=True, forward_capacity_per_ms=1.0)
    assert overlay.daemon("cc1").queue_peak > 300
