"""Tests for the canonical encoding."""

from dataclasses import dataclass

import pytest

from repro.crypto import EncodingError, digest, encode
from repro.crypto.encoding import encode_cached


@dataclass(frozen=True)
class Point:
    x: int
    y: int


@dataclass(frozen=True)
class Named:
    x: int
    y: int


def test_scalars_encode():
    for value in (None, True, False, 0, -5, 10 ** 40, 1.5, "text", b"bytes"):
        assert isinstance(encode(value), bytes)


def test_deterministic():
    value = {"b": [1, 2.5, "x"], "a": (True, None)}
    assert encode(value) == encode({"a": (True, None), "b": [1, 2.5, "x"]})


def test_distinct_scalars_distinct_encodings():
    values = [None, True, False, 0, 1, -1, 0.0, 1.0, "", "0", b"", b"0", (), {}]
    encodings = [encode(v) for v in values]
    assert len(set(encodings)) == len(encodings)


def test_int_vs_string_of_int_differ():
    assert encode(42) != encode("42")


def test_nested_structure_differs_from_flat():
    assert encode([1, [2, 3]]) != encode([1, 2, 3])
    assert encode(((1,), 2)) != encode((1, (2,)))


def test_dict_key_order_irrelevant_value_order_not():
    assert encode({"a": 1, "b": 2}) == encode({"b": 2, "a": 1})
    assert encode({"a": 1, "b": 2}) != encode({"a": 2, "b": 1})


def test_frozenset_is_order_free():
    assert encode(frozenset([1, 2, 3])) == encode(frozenset([3, 1, 2]))


def test_dataclass_encodes_fields():
    assert encode(Point(1, 2)) != encode(Point(2, 1))


def test_dataclass_class_name_matters():
    assert encode(Point(1, 2)) != encode(Named(1, 2))


def test_unsupported_type_raises():
    with pytest.raises(EncodingError):
        encode(object())


def test_unsupported_nested_type_raises():
    with pytest.raises(EncodingError):
        encode({"k": object()})


def test_digest_is_hex_sha256():
    value = ("a", 1)
    d = digest(value)
    assert len(d) == 64
    assert d == digest(("a", 1))
    assert d != digest(("a", 2))


def test_list_and_tuple_equivalent():
    # lists and tuples are interchangeable containers on the wire
    assert encode([1, 2]) == encode((1, 2))


def test_encode_cached_matches_encode():
    value = Point(3, 4)
    assert encode_cached(value) == encode(value)
    # second call hits the cache and must return identical bytes
    assert encode_cached(value) == encode(value)


def test_encode_cached_distinguishes_objects():
    assert encode_cached(Point(1, 2)) != encode_cached(Point(9, 9))


def test_float_precision_preserved():
    assert encode(0.1) != encode(0.1000000001)


def test_bool_not_confused_with_int():
    assert encode(True) != encode(1)
    assert encode(False) != encode(0)


def test_deeply_nested_roundtrip_determinism():
    value = {"outer": [{"inner": (1, 2, frozenset(["x"]))}, Point(0, 0)]}
    assert encode(value) == encode(value)
