"""End-to-end self-healing tests: reroute around failures, per mode.

The static overlay's known weakness (``shortest`` keeps using a dead
link forever) must disappear with ``self_healing=True``; all three
routing strategies must rebuild from the observed topology. Also covers
daemon crash/recover re-participation under every routing mode
(both static and self-healing overlays).
"""

import pytest

from repro.crypto import FastCrypto
from repro.simnet import LinkSpec, Network, Process, Simulator
from repro.spines import (
    LinkMonitorConfig,
    OverlayStack,
    SpinesOverlay,
    wide_area_topology,
)

MODES = ["shortest", "flooding", "disjoint"]


class Endpoint(Process):
    def __init__(self, name, simulator, network):
        super().__init__(name, simulator, network)
        self.received = []

    def on_message(self, src, payload):
        unwrapped = OverlayStack.unwrap(payload)
        if unwrapped is not None:
            self.received.append((self.simulator.now, *unwrapped))


def build(mode, self_healing, seed=11):
    sim = Simulator(seed=seed)
    net = Network(sim, LinkSpec(latency_ms=0.1))
    overlay = SpinesOverlay(
        sim, net, wide_area_topology(), mode=mode, crypto=FastCrypto(),
        self_healing=self_healing,
    )
    a = Endpoint("ep:a", sim, net)
    b = Endpoint("ep:b", sim, net)
    stack_a = overlay.attach(a, "field")
    stack_b = overlay.attach(b, "dc2")
    return sim, net, overlay, (a, stack_a), (b, stack_b)


def first_hop(overlay, src_site="field", dst_site="dc2"):
    """The neighbour a datagram from src leaves through under shortest."""
    return overlay.routing.forward_targets(src_site, dst_site, None)[0]


def test_selfhealing_shortest_reroutes_around_dead_link():
    """The exact failure static shortest cannot survive."""
    outcomes = {}
    for self_healing in (False, True):
        sim, net, overlay, (a, sa), (b, sb) = build("shortest", self_healing)
        hop = first_hop(overlay)
        net.block_link("spines:field", f"spines:{hop}")
        bound = overlay.monitor_config.detection_bound_ms
        sim.run_for(bound + 100.0)  # let detection + reroute complete
        sa.send("ep:b", "after-cut")
        sim.run_for(500.0)
        outcomes[self_healing] = len(b.received)
    assert outcomes[False] == 0  # static tables keep using the dead link
    assert outcomes[True] == 1   # self-healing routed around it


@pytest.mark.parametrize("mode", MODES)
def test_delivery_resumes_within_detection_bound(mode):
    """A stream crossing a killed link resumes within the configured
    detection + reroute bound in every routing mode."""
    sim, net, overlay, (a, sa), (b, sb) = build(mode, self_healing=True)
    counter = {"n": 0}

    def send_one():
        counter["n"] += 1
        sa.send("ep:b", ("m", counter["n"]))

    sim.call_every(20.0, send_one)
    kill_at = 1000.0
    hop = (first_hop(overlay) if mode == "shortest" else "cc1")
    sim.schedule(kill_at, lambda: net.block_link(
        "spines:field", f"spines:{hop}"
    ))
    bound = overlay.monitor_config.detection_bound_ms
    sim.run_until(kill_at + bound + 500.0)
    arrivals = [at for at, _, _ in b.received]
    resumed = [at for at in arrivals if at >= kill_at]
    assert resumed, f"no delivery after link kill in mode={mode}"
    # flooding/disjoint never stall (redundant paths); shortest must
    # resume within the detection + reroute bound plus one send period
    assert min(resumed) <= kill_at + bound + 20.0


@pytest.mark.parametrize("mode", MODES)
def test_interior_daemon_kill_rerouted(mode):
    """Killing an interior daemon (cc1) must not stop field->dc2 traffic
    once the control plane reroutes around it."""
    sim, net, overlay, (a, sa), (b, sb) = build(mode, self_healing=True)
    overlay.daemon("cc1").crash()
    bound = overlay.monitor_config.detection_bound_ms
    sim.run_for(bound + 100.0)
    sa.send("ep:b", "x")
    sim.run_for(500.0)
    assert len(b.received) == 1
    # the control plane marked every cc1 link dead
    down = overlay.control_plane.links_down()
    assert all("cc1" in pair for pair in down)
    assert len(down) == 4  # cc1 touches cc2, dc1, dc2, field


# ----------------------------------------------------------------------
# on_recover re-participation (all three routing modes)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mode", MODES)
def test_static_daemon_recover_rejoins_forwarding(mode):
    """After crash+recover on a static overlay, the daemon forwards
    again: volatile state is gone but wiring and routing still stand."""
    sim, net, overlay, (a, sa), (b, sb) = build(mode, self_healing=False)
    hop = (first_hop(overlay) if mode == "shortest" else "cc1")
    daemon = overlay.daemon(hop)
    sa.send("ep:b", "before")
    sim.run_for(200.0)
    assert len(b.received) == 1
    daemon.crash()
    sim.run_for(100.0)
    daemon.recover()
    assert daemon.queue_depth() == 0  # volatile queues cleared
    forwarded_before = daemon.stats["forwarded"]
    sa.send("ep:b", "after")
    sim.run_for(500.0)
    assert [p for _, _, p in b.received] == ["before", "after"]
    if mode != "disjoint":
        # the recovered daemon itself is on the forwarding path again
        # (disjoint may route this pair around hop entirely)
        assert daemon.stats["forwarded"] > forwarded_before


@pytest.mark.parametrize("mode", MODES)
def test_selfhealing_daemon_recover_links_come_back(mode):
    """With self-healing, a crashed daemon's links go down; on recovery
    its restarted monitor re-announces them and they come back up."""
    config = LinkMonitorConfig(hello_interval_ms=50.0, miss_threshold=2)
    sim = Simulator(seed=11)
    net = Network(sim, LinkSpec(latency_ms=0.1))
    overlay = SpinesOverlay(
        sim, net, wide_area_topology(), mode=mode, crypto=FastCrypto(),
        self_healing=True, monitor_config=config,
    )
    a = Endpoint("ep:a", sim, net)
    b = Endpoint("ep:b", sim, net)
    sa = overlay.attach(a, "field")
    overlay.attach(b, "dc2")
    daemon = overlay.daemon("cc1")
    daemon.crash()
    sim.run_for(config.detection_bound_ms + 200.0)
    assert overlay.control_plane.links_down()  # cc1 links detected dead
    daemon.recover()
    sim.run_for(1000.0)
    assert overlay.control_plane.links_down() == set()
    sa.send("ep:b", "post-recovery")
    sim.run_for(500.0)
    assert len(b.received) == 1
