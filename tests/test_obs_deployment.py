"""Deployment-level observability tests: the overhead guard, options
presets/validation, and the scenario report."""

import json

import pytest

from repro.analysis import ScenarioReport
from repro.core import SpireDeployment, SpireOptions

#: event budget of the guard configuration measured before the
#: instrumentation layer existed (seed state of this repo) — the
#: disabled-observability run must stay within 5% of it
PRE_INSTRUMENTATION_EVENTS = 75_212
GUARD_OPTIONS = dict(num_substations=2, poll_interval_ms=200.0, seed=7)
GUARD_RUN_MS = 3000.0


def _run(observability):
    deployment = SpireDeployment(SpireOptions(
        observability=observability, **GUARD_OPTIONS,
    ))
    deployment.start()
    deployment.run_for(GUARD_RUN_MS)
    return deployment


# ----------------------------------------------------------------------
# Overhead guard
# ----------------------------------------------------------------------
def test_observability_disabled_within_event_budget():
    deployment = _run(observability=False)
    events = deployment.simulator.events_processed
    assert abs(events - PRE_INSTRUMENTATION_EVENTS) <= (
        0.05 * PRE_INSTRUMENTATION_EVENTS
    ), f"disabled-observability run processed {events} events"
    # disabled means *disabled*: no metrics, no events, no spans
    assert deployment.obs.enabled is False
    assert deployment.trace.count() == 0
    assert deployment.obs.registry.snapshot() == {}


def test_observability_never_perturbs_the_simulation():
    disabled = _run(observability=False)
    enabled = _run(observability=True)
    assert (
        enabled.simulator.events_processed
        == disabled.simulator.events_processed
    )
    assert enabled.network.stats.sent == disabled.network.stats.sent
    # and the enabled run did measure things
    metrics = enabled.obs.registry.snapshot()
    assert metrics["sim.events_processed"] > 0
    assert any(name.startswith("prime.msgs.") for name in metrics)
    assert any(name.startswith("spines.") for name in metrics)
    assert any(name.startswith("crypto.") for name in enabled.obs.registry.names())


def test_legacy_recorders_are_registry_views():
    deployment = _run(observability=True)
    assert deployment.obs.registry.get("proxy.status_latency") \
        is deployment.status_recorder
    assert deployment.obs.registry.get("hmi.command_latency") \
        is deployment.command_recorder
    assert deployment.obs.registry.get("hmi.delivered_updates") \
        is deployment.delivery_series
    assert deployment.status_recorder.stats().count > 0


# ----------------------------------------------------------------------
# SpireOptions presets + validation
# ----------------------------------------------------------------------
def test_wan_lan_presets_pin_coupled_knobs():
    wan = SpireOptions.wan(seed=3)
    assert (wan.prime_preset, wan.overlay_mode) == ("wan", "flooding")
    lan = SpireOptions.lan(seed=3, num_substations=2)
    assert (lan.prime_preset, lan.overlay_mode) == ("lan", "shortest")
    assert lan.num_substations == 2
    # overrides still win
    assert SpireOptions.lan(overlay_mode="flooding").overlay_mode == "flooding"


def test_validate_rejects_bad_placement_with_actionable_error():
    options = SpireOptions(f=1, k=1, placement={"a": 2, "b": 2})
    with pytest.raises(ValueError) as excinfo:
        options.validate()
    message = str(excinfo.value)
    assert "3f+2k+1" in message and "6" in message and "4" in message


@pytest.mark.parametrize("bad", [
    dict(f=-1),
    dict(num_substations=0),
    dict(poll_interval_ms=0.0),
    dict(overlay_mode="broadcast"),
    dict(prime_preset="metro"),
    dict(crypto_kind="quantum"),
    dict(checkpoint_interval_seqs=0),
    dict(proactive_recovery=(1000.0, 1000.0)),
    dict(proactive_recovery=(0.0, 100.0)),
])
def test_validate_rejects_inconsistent_knobs(bad):
    with pytest.raises(ValueError):
        SpireOptions(**bad).validate()


def test_deployment_validates_options_on_construction():
    with pytest.raises(ValueError):
        SpireDeployment(SpireOptions(placement={"solo": 1}))


# ----------------------------------------------------------------------
# Scenario report
# ----------------------------------------------------------------------
def test_scenario_report_structure_and_rendering():
    deployment = _run(observability=True)
    report = ScenarioReport.from_deployment(deployment, title="guard")
    data = report.to_dict()
    assert data["title"] == "guard"
    assert data["events_processed"] == deployment.simulator.events_processed
    assert "proxy.status_latency" in data["latency_cdfs"]
    assert len(data["latency_cdfs"]["proxy.status_latency"]) == len(
        data["cdf_marks"]
    )
    assert data["metrics"]["sim.events_processed"] > 0
    # the trace's dropped counter is surfaced, not hidden
    assert data["events"]["dropped"] == 0
    json.loads(report.to_json())  # valid JSON

    text = report.text()
    assert "scenario report: guard" in text
    assert "proxy.status_latency" in text
    assert "0 dropped" in text


def test_scenario_report_surfaces_dropped_trace_events():
    deployment = _run(observability=True)
    deployment.trace.max_events = deployment.trace.count()
    deployment.obs.event("test", "overflow-a")
    deployment.obs.event("test", "overflow-b")
    report = ScenarioReport.from_deployment(deployment)
    assert report.to_dict()["events"]["dropped"] == 2
    assert "2 dropped" in report.text()
    assert "TRACE CLIPPED" in report.text()


def test_scenario_report_deterministic_json_across_same_seed():
    first = ScenarioReport.from_deployment(_run(True))
    second = ScenarioReport.from_deployment(_run(True))
    assert first.to_json(deterministic_only=True) == \
        second.to_json(deterministic_only=True)
