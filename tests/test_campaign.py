"""Red-team campaign tests: traditional SCADA falls, Spire stands."""

import pytest

from repro.attacks import SpireCampaign, TraditionalCampaign
from repro.baselines import TraditionalDeployment
from repro.core import SpireDeployment, SpireOptions


def test_traditional_campaign_takes_the_grid():
    deployment = TraditionalDeployment(num_substations=5, seed=4)
    campaign = TraditionalCampaign(
        deployment, breach_time_ms=2000.0, sabotage_interval_ms=200.0
    )
    deployment.start()
    campaign.start()
    deployment.run_for(15_000)
    result = campaign.result
    assert result.exploit_successes == 1
    assert result.unauthorized_operations > 10
    total = deployment.grid.total_load_mw()
    assert result.min_served_fraction(total) < 0.2  # grid essentially dark
    # served load was full before the breach
    pre_breach = [load for at, load in result.served_load if at < 2000.0]
    assert min(pre_breach) == pytest.approx(total, rel=0.2)


def test_spire_campaign_service_survives():
    deployment = SpireDeployment(SpireOptions(
        num_substations=5, poll_interval_ms=250.0, seed=4,
        proactive_recovery=(8_000.0, 500.0),
    ))
    campaign = SpireCampaign(
        deployment,
        first_attempt_ms=2_000.0,
        dwell_ms=4_000.0,
        attempt_interval_ms=6_000.0,
    )
    deployment.start()
    campaign.start()
    deployment.run_for(40_000)
    result = campaign.result
    # attacker landed at most on a couple of replicas and recovery evicted
    assert result.exploit_attempts >= 5
    # grid stayed fully served: no unauthorized operation ever executed
    total = deployment.grid.total_load_mw()
    assert result.min_served_fraction(total) > 0.95
    # status updates kept flowing end to end
    assert deployment.proxy.submissions.acked_total > 100
    # compromised replicas were eventually evicted by rejuvenation
    assert result.exploits_invalidated + len(campaign.compromised) \
        <= result.exploit_attempts


def test_spire_campaign_eviction_via_recovery():
    deployment = SpireDeployment(SpireOptions(
        num_substations=3, poll_interval_ms=250.0, seed=8,
        proactive_recovery=(5_000.0, 400.0),
    ))
    campaign = SpireCampaign(
        deployment,
        first_attempt_ms=1_000.0,
        dwell_ms=1_000.0,          # fast weaponization: compromises land
        attempt_interval_ms=4_000.0,
        behavior="silent",
    )
    deployment.start()
    campaign.start()
    deployment.run_for(45_000)
    evictions = deployment.trace.count(component="campaign", kind="evicted")
    compromises = deployment.trace.count(component="campaign", kind="compromised")
    assert compromises >= 1
    assert evictions >= 1  # rejuvenation healed at least one intrusion
