"""Tests for scenario scripting (failure/attack injection)."""

import pytest

from repro.simnet import DosAttack, FailureInjector, LinkSpec, Network, Process, Simulator


class Echo(Process):
    def __init__(self, name, simulator, network):
        super().__init__(name, simulator, network)
        self.received = []

    def on_message(self, src, payload):
        self.received.append((self.simulator.now, payload))


def build():
    sim = Simulator(seed=4)
    net = Network(sim, LinkSpec(latency_ms=1.0))
    nodes = {n: Echo(n, sim, net) for n in ("a", "b", "c")}
    return sim, net, nodes, FailureInjector(sim, net)


def test_crash_window_crashes_and_recovers():
    sim, net, nodes, inj = build()
    inj.crash_window("b", start_ms=10.0, duration_ms=20.0)
    sim.run_until(15.0)
    assert not nodes["b"].is_up
    sim.run_until(40.0)
    assert nodes["b"].is_up


def test_partition_window():
    sim, net, nodes, inj = build()
    inj.partition_window(["a"], ["b"], start_ms=10.0, duration_ms=20.0)
    sim.run_until(15.0)
    nodes["a"].send("b", "during")
    sim.run_until(29.0)
    assert nodes["b"].received == []
    sim.run_until(35.0)
    nodes["a"].send("b", "after")
    sim.run()
    assert [p for _, p in nodes["b"].received] == ["after"]


def test_dos_node_degrades_all_links_in_window():
    sim, net, nodes, inj = build()
    attack = DosAttack("b", start_ms=10.0, duration_ms=20.0,
                       extra_delay_ms=50.0, extra_loss=0.0)
    inj.dos_node(attack, peers=["a", "c"])
    sim.run_until(12.0)
    nodes["a"].send("b", "slow")
    sim.run_until(70.0)
    assert nodes["b"].received[0][0] == pytest.approx(12.0 + 51.0)
    nodes["a"].send("b", "fast")  # window over: back to base latency
    sim.run()
    assert nodes["b"].received[1][0] == pytest.approx(70.0 + 1.0)


def test_dos_attack_end_property():
    attack = DosAttack("x", start_ms=100.0, duration_ms=50.0)
    assert attack.end_ms == 150.0


def test_dos_link_window():
    sim, net, nodes, inj = build()
    inj.dos_link_window("a", "b", start_ms=5.0, duration_ms=10.0,
                        extra_delay_ms=30.0, extra_loss=0.0)
    sim.run_until(6.0)
    nodes["a"].send("b", "x")
    sim.run_until(50.0)
    assert nodes["b"].received[0][0] == pytest.approx(6.0 + 31.0)


def test_injector_log_records_events():
    sim, net, nodes, inj = build()
    inj.crash_window("a", 1.0, 2.0)
    sim.run()
    log = inj.log
    assert any("CRASH a" in line for line in log)
    assert any("RECOVER a" in line for line in log)


# ----------------------------------------------------------------------
# Message-level fault primitives
# ----------------------------------------------------------------------

from dataclasses import dataclass

from repro.simnet import CorruptedPayload


@dataclass(frozen=True)
class SignedWrapper:
    sender: str
    payload: object


def test_drop_messages_window():
    sim, net, nodes, inj = build()
    inj.drop_messages(["b"], start_ms=10.0, duration_ms=20.0, probability=1.0)
    sim.run_until(15.0)
    nodes["a"].send("b", "lost")
    sim.run_until(40.0)
    assert nodes["b"].received == []
    nodes["a"].send("b", "kept")  # window over
    sim.run()
    assert [p for _, p in nodes["b"].received] == ["kept"]
    assert net.stats.dropped_filter == 1


def test_drop_messages_scopes_by_src_or_dst():
    sim, net, nodes, inj = build()
    inj.drop_messages(["b"], start_ms=0.0, duration_ms=100.0, probability=1.0)
    sim.run_until(5.0)
    nodes["a"].send("c", "unscoped")
    sim.run()
    assert [p for _, p in nodes["c"].received] == ["unscoped"]


def test_duplicate_messages_delivers_second_copy():
    sim, net, nodes, inj = build()
    inj.duplicate_messages(["b"], start_ms=0.0, duration_ms=100.0,
                           probability=1.0, extra_delay_ms=5.0)
    sim.run_until(10.0)
    nodes["a"].send("b", "twin")
    sim.run()
    assert [p for _, p in nodes["b"].received] == ["twin", "twin"]


def test_reorder_window_permutes_but_loses_nothing():
    sim, net, nodes, inj = build()
    inj.reorder_window(["b"], start_ms=10.0, duration_ms=50.0,
                       window_ms=30.0, probability=1.0)
    sim.run_until(11.0)
    sent = [f"m{i}" for i in range(8)]
    for msg in sent:
        nodes["a"].send("b", msg)
    sim.run()
    got = [p for _, p in nodes["b"].received]
    assert sorted(got) == sorted(sent)      # nothing lost or duplicated
    assert got != sent                      # order actually shuffled


def test_reorder_final_flush_releases_buffered_messages():
    sim, net, nodes, inj = build()
    inj.reorder_window(["b"], start_ms=10.0, duration_ms=15.0,
                       window_ms=100.0, probability=1.0)
    sim.run_until(12.0)
    nodes["a"].send("b", "tail")
    sim.run()
    assert [p for _, p in nodes["b"].received] == ["tail"]


def test_corrupt_payload_plain_becomes_unparseable():
    sim, net, nodes, inj = build()
    inj.corrupt_payload(["b"], start_ms=0.0, duration_ms=100.0, probability=1.0)
    sim.run_until(5.0)
    nodes["a"].send("b", "hello")
    sim.run()
    [(_, blob)] = nodes["b"].received
    assert isinstance(blob, CorruptedPayload)
    assert blob.original_type == "str"


def test_corrupt_payload_signed_wrapper_keeps_envelope():
    sim, net, nodes, inj = build()
    inj.corrupt_payload(["b"], start_ms=0.0, duration_ms=100.0, probability=1.0)
    sim.run_until(5.0)
    nodes["a"].send("b", SignedWrapper(sender="a", payload="inner"))
    sim.run()
    [(_, wrapped)] = nodes["b"].received
    assert isinstance(wrapped, SignedWrapper)
    assert wrapped.sender == "a"
    assert isinstance(wrapped.payload, CorruptedPayload)


def test_delay_spike_adds_latency_without_loss():
    sim, net, nodes, inj = build()
    inj.delay_spike(["b"], start_ms=0.0, duration_ms=100.0,
                    extra_ms=40.0, probability=1.0)
    sim.run_until(5.0)
    nodes["a"].send("b", "late")
    sim.run()
    [(at, payload)] = nodes["b"].received
    assert payload == "late"
    # injected copies bypass the link, so the spike replaces base latency
    assert at == pytest.approx(5.0 + 40.0)


def test_slow_node_is_asymmetric():
    sim, net, nodes, inj = build()
    inj.slow_node("a", start_ms=0.0, duration_ms=100.0, extra_delay_ms=30.0)
    sim.run_until(5.0)
    nodes["a"].send("b", "out")   # outbound from the slow node: degraded
    nodes["b"].send("a", "in")    # inbound: unaffected
    sim.run()
    assert nodes["b"].received[0][0] == pytest.approx(5.0 + 31.0)
    assert nodes["a"].received[0][0] == pytest.approx(5.0 + 1.0)


def test_asym_link_degrades_one_direction_only():
    sim, net, nodes, inj = build()
    inj.asym_link_window("a", "b", start_ms=0.0, duration_ms=100.0,
                         extra_delay_ms=25.0)
    sim.run_until(5.0)
    nodes["a"].send("b", "slow-dir")
    nodes["b"].send("a", "fast-dir")
    sim.run()
    assert nodes["b"].received[0][0] == pytest.approx(5.0 + 26.0)
    assert nodes["a"].received[0][0] == pytest.approx(5.0 + 1.0)


def test_jitter_storm_bounded_and_seeded():
    def arrivals(seed):
        sim = Simulator(seed=seed)
        net = Network(sim, LinkSpec(latency_ms=1.0))
        nodes = {n: Echo(n, sim, net) for n in ("a", "b")}
        inj = FailureInjector(sim, net)
        inj.jitter_storm(["b"], start_ms=0.0, duration_ms=200.0,
                         max_extra_ms=20.0, probability=1.0)
        sim.run_until(5.0)
        for i in range(10):
            nodes["a"].send("b", i)
        sim.run()
        return [at for at, _ in nodes["b"].received]

    first = arrivals(9)
    assert arrivals(9) == first          # same seed, same jitter
    assert arrivals(10) != first         # different stream
    assert all(6.0 <= at <= 26.0 for at in first)


def test_fault_randomness_is_stream_isolated():
    """Two runs differing only in an unrelated named stream's consumption
    produce identical fault decisions (the replay property)."""
    def run(poke_other_stream):
        sim = Simulator(seed=21)
        net = Network(sim, LinkSpec(latency_ms=1.0))
        nodes = {n: Echo(n, sim, net) for n in ("a", "b")}
        inj = FailureInjector(sim, net)
        inj.drop_messages(["b"], 0.0, 500.0, probability=0.5,
                          rng_name="chaos/drop/0")
        if poke_other_stream:
            sim.rng("chaos/unrelated").random()
        sim.run_until(1.0)
        for i in range(40):
            nodes["a"].send("b", i)
        sim.run()
        return [p for _, p in nodes["b"].received]

    assert run(False) == run(True)
