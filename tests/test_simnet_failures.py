"""Tests for scenario scripting (failure/attack injection)."""

import pytest

from repro.simnet import DosAttack, FailureInjector, LinkSpec, Network, Process, Simulator


class Echo(Process):
    def __init__(self, name, simulator, network):
        super().__init__(name, simulator, network)
        self.received = []

    def on_message(self, src, payload):
        self.received.append((self.simulator.now, payload))


def build():
    sim = Simulator(seed=4)
    net = Network(sim, LinkSpec(latency_ms=1.0))
    nodes = {n: Echo(n, sim, net) for n in ("a", "b", "c")}
    return sim, net, nodes, FailureInjector(sim, net)


def test_crash_window_crashes_and_recovers():
    sim, net, nodes, inj = build()
    inj.crash_window("b", start_ms=10.0, duration_ms=20.0)
    sim.run_until(15.0)
    assert not nodes["b"].is_up
    sim.run_until(40.0)
    assert nodes["b"].is_up


def test_partition_window():
    sim, net, nodes, inj = build()
    inj.partition_window(["a"], ["b"], start_ms=10.0, duration_ms=20.0)
    sim.run_until(15.0)
    nodes["a"].send("b", "during")
    sim.run_until(29.0)
    assert nodes["b"].received == []
    sim.run_until(35.0)
    nodes["a"].send("b", "after")
    sim.run()
    assert [p for _, p in nodes["b"].received] == ["after"]


def test_dos_node_degrades_all_links_in_window():
    sim, net, nodes, inj = build()
    attack = DosAttack("b", start_ms=10.0, duration_ms=20.0,
                       extra_delay_ms=50.0, extra_loss=0.0)
    inj.dos_node(attack, peers=["a", "c"])
    sim.run_until(12.0)
    nodes["a"].send("b", "slow")
    sim.run_until(70.0)
    assert nodes["b"].received[0][0] == pytest.approx(12.0 + 51.0)
    nodes["a"].send("b", "fast")  # window over: back to base latency
    sim.run()
    assert nodes["b"].received[1][0] == pytest.approx(70.0 + 1.0)


def test_dos_attack_end_property():
    attack = DosAttack("x", start_ms=100.0, duration_ms=50.0)
    assert attack.end_ms == 150.0


def test_dos_link_window():
    sim, net, nodes, inj = build()
    inj.dos_link_window("a", "b", start_ms=5.0, duration_ms=10.0,
                        extra_delay_ms=30.0, extra_loss=0.0)
    sim.run_until(6.0)
    nodes["a"].send("b", "x")
    sim.run_until(50.0)
    assert nodes["b"].received[0][0] == pytest.approx(6.0 + 31.0)


def test_injector_log_records_events():
    sim, net, nodes, inj = build()
    inj.crash_window("a", 1.0, 2.0)
    sim.run()
    log = inj.log
    assert any("CRASH a" in line for line in log)
    assert any("RECOVER a" in line for line in log)
