"""Tests for overlay routing, delivery, authentication, and resilience."""

import pytest

from repro.crypto import FastCrypto
from repro.simnet import LinkSpec, Network, Process, Simulator
from repro.spines import (
    FloodingRouting,
    OverlayStack,
    ShortestPathRouting,
    SpinesOverlay,
    make_routing,
    wide_area_topology,
)
from repro.spines.messages import OverlayData, OverlayForward, OverlayIngress


class Endpoint(Process):
    def __init__(self, name, simulator, network):
        super().__init__(name, simulator, network)
        self.received = []

    def on_message(self, src, payload):
        unwrapped = OverlayStack.unwrap(payload)
        if unwrapped is not None:
            self.received.append((self.simulator.now, *unwrapped))


def build(mode="flooding", **kwargs):
    sim = Simulator(seed=11)
    net = Network(sim, LinkSpec(latency_ms=0.1))
    topo = wide_area_topology()
    overlay = SpinesOverlay(sim, net, topo, mode=mode, crypto=FastCrypto(), **kwargs)
    a = Endpoint("ep:a", sim, net)
    b = Endpoint("ep:b", sim, net)
    stack_a = overlay.attach(a, "cc1")
    stack_b = overlay.attach(b, "dc2")
    return sim, net, overlay, (a, stack_a), (b, stack_b)


@pytest.mark.parametrize("mode", ["shortest", "flooding"])
def test_end_to_end_delivery(mode):
    sim, net, overlay, (a, sa), (b, sb) = build(mode)
    sa.send("ep:b", {"x": 1})
    sim.run_for(100)
    assert len(b.received) == 1
    assert b.received[0][1] == "ep:a"
    assert b.received[0][2] == {"x": 1}


@pytest.mark.parametrize("mode", ["shortest", "flooding"])
def test_latency_close_to_path(mode):
    sim, net, overlay, (a, sa), (b, sb) = build(mode)
    sa.send("ep:b", "x")
    sim.run_for(100)
    at = b.received[0][0]
    assert 11.0 < at < 16.0  # 12 ms cc1-dc2 link + last miles + jitter


def test_flooding_no_duplicate_delivery():
    # flooding guarantees exactly-once delivery but not ordering (copies
    # race along different paths)
    sim, net, overlay, (a, sa), (b, sb) = build("flooding")
    for i in range(5):
        sa.send("ep:b", i)
    sim.run_for(200)
    assert sorted(p for _, _, p in b.received) == [0, 1, 2, 3, 4]


def test_flooding_survives_link_failure_shortest_does_not():
    outcomes = {}
    for mode in ("shortest", "flooding"):
        sim, net, overlay, (a, sa), (b, sb) = build(mode)
        net.block_link("spines:cc1", "spines:dc2")
        sa.send("ep:b", "after-cut")
        sim.run_for(200)
        outcomes[mode] = len(b.received)
    assert outcomes["shortest"] == 0  # static tables keep using the dead link
    assert outcomes["flooding"] == 1  # any surviving path suffices


def test_flooding_survives_daemon_crash():
    sim, net, overlay, (a, sa), (b, sb) = build("flooding")
    overlay.daemon("dc1").crash()
    sa.send("ep:b", "x")
    sim.run_for(200)
    assert len(b.received) == 1


def test_bidirectional_traffic():
    sim, net, overlay, (a, sa), (b, sb) = build("flooding")
    sa.send("ep:b", "ping")
    sb.send("ep:a", "pong")
    sim.run_for(100)
    assert len(a.received) == 1 and len(b.received) == 1


def test_same_site_delivery():
    sim, net, overlay, (a, sa), (b, sb) = build("flooding")
    c = Endpoint("ep:c", sim, net)
    sc = overlay.attach(c, "cc1")
    sa.send("ep:c", "local")
    sim.run_for(50)
    assert len(c.received) == 1
    assert c.received[0][0] < 2.0  # never leaves the site


def test_unknown_destination_silently_dropped():
    sim, net, overlay, (a, sa), (b, sb) = build("flooding")
    sa.send("ep:nobody", "x")
    sim.run_for(100)  # must not raise; nothing delivered


def test_attach_unknown_site_rejected():
    sim, net, overlay, (a, sa), (b, sb) = build("flooding")
    c = Endpoint("ep:c", sim, net)
    with pytest.raises(KeyError):
        overlay.attach(c, "nowhere")


def test_double_attach_rejected():
    sim, net, overlay, (a, sa), (b, sb) = build("flooding")
    with pytest.raises(ValueError):
        overlay.attach(a, "cc2")


def test_forged_ingress_rejected():
    """An endpoint cannot inject traffic claiming another origin."""
    sim, net, overlay, (a, sa), (b, sb) = build("flooding")
    daemon = overlay.daemon("cc1")
    forged = OverlayData(origin="ep:b", dest="ep:a", seq=1, payload="forged")
    a.send(daemon.name, OverlayIngress(forged))
    sim.run_for(100)
    assert a.received == []
    assert daemon.stats["dropped_auth"] >= 1


def test_forward_without_valid_mac_rejected():
    sim, net, overlay, (a, sa), (b, sb) = build("flooding")
    daemon = overlay.daemon("cc2")
    data = OverlayData(origin="ep:a", dest="ep:b", seq=99, payload="spoof")
    # attacker process injects a forward with a bogus MAC from a neighbor id
    attacker = Endpoint("spines:evil", sim, net)
    attacker.send(daemon.name, OverlayForward(data, "cc1", b"bad-mac"))
    sim.run_for(100)
    assert b.received == []


def test_non_neighbor_forward_rejected():
    sim, net, overlay, (a, sa), (b, sb) = build("flooding")
    daemon = overlay.daemon("cc1")
    crypto = overlay.crypto
    data = OverlayData(origin="ep:a", dest="ep:b", seq=7, payload="x")
    evil = Endpoint("spines:field2", sim, net)
    mac = crypto.mac(evil.name, daemon.name, data)
    evil.send(daemon.name, OverlayForward(data, "field2", mac))
    sim.run_for(100)
    assert b.received == []
    assert daemon.stats["dropped_auth"] >= 1


def test_daemon_recover_clears_dedup():
    sim, net, overlay, (a, sa), (b, sb) = build("flooding")
    daemon = overlay.daemon("cc1")
    sa.send("ep:b", "x")
    sim.run_for(100)
    daemon.crash()
    daemon.recover()
    assert len(daemon._seen) == 0


def test_total_stats_aggregates():
    sim, net, overlay, (a, sa), (b, sb) = build("flooding")
    sa.send("ep:b", "x")
    sim.run_for(100)
    totals = overlay.total_stats()
    assert totals["delivered"] == 1
    assert totals["forwarded"] > 0


def test_make_routing_factory():
    topo = wide_area_topology()
    assert isinstance(make_routing("shortest", topo), ShortestPathRouting)
    assert isinstance(make_routing("flooding", topo), FloodingRouting)
    with pytest.raises(ValueError):
        make_routing("bogus", topo)


def test_shortest_path_next_hops():
    topo = wide_area_topology()
    routing = ShortestPathRouting(topo)
    assert routing.forward_targets("field", "dc1", None) in (["cc1"], ["cc2"])
    assert routing.forward_targets("cc1", "cc1", None) == []


def test_flooding_excludes_arrival_link():
    topo = wide_area_topology()
    routing = FloodingRouting(topo)
    targets = routing.forward_targets("cc1", "dc2", arrived_from="cc2")
    assert "cc2" not in targets
    assert "dc2" in targets


def test_fairness_keeps_honest_latency_low_under_flood():
    """With per-source fairness and limited forward capacity, a flooding
    source cannot starve an honest one; without fairness it can."""
    results = {}
    for fairness in (True, False):
        sim = Simulator(seed=5)
        net = Network(sim, LinkSpec(latency_ms=0.1))
        topo = wide_area_topology()
        overlay = SpinesOverlay(
            sim, net, topo, mode="shortest", crypto=FastCrypto(),
            fairness=fairness, forward_capacity_per_ms=1.0,
        )
        honest = Endpoint("ep:honest", sim, net)
        victim = Endpoint("ep:victim", sim, net)
        flooder = Endpoint("ep:flood", sim, net)
        s_honest = overlay.attach(honest, "cc1")
        overlay.attach(victim, "dc2")
        s_flood = overlay.attach(flooder, "cc1")
        # the attacker floods 200 messages at t=0 toward the victim
        for i in range(200):
            s_flood.send("ep:victim", ("junk", i))
        sim.run_for(1.0)
        s_honest.send("ep:victim", "honest")
        sim.run_for(2000)
        honest_arrivals = [
            at for at, origin, payload in victim.received if payload == "honest"
        ]
        results[fairness] = honest_arrivals[0] if honest_arrivals else float("inf")
    assert results[True] < 40.0
    assert results[False] > results[True] * 3
