"""Tests for Shoup-style threshold RSA."""

import pytest

from repro.crypto import PartialSignature, ThresholdGroup, generate_threshold_group


@pytest.fixture(scope="module")
def group_2_of_6():
    public, shares = generate_threshold_group(6, 2, bits=512, seed="t26")
    return public, shares, ThresholdGroup(public)


@pytest.fixture(scope="module")
def group_3_of_7():
    public, shares = generate_threshold_group(7, 3, bits=512, seed="t37")
    return public, shares, ThresholdGroup(public)


def test_exact_threshold_combines(group_2_of_6):
    public, shares, combiner = group_2_of_6
    data = b"update"
    sig = combiner.combine_shares(data, [shares[1].sign(data), shares[4].sign(data)])
    assert public.verify(data, sig)


def test_any_share_subset_works(group_3_of_7):
    public, shares, combiner = group_3_of_7
    data = b"payload"
    for subset in ((1, 2, 3), (2, 5, 7), (1, 4, 6)):
        sig = combiner.combine_shares(data, [shares[i].sign(data) for i in subset])
        assert public.verify(data, sig)


def test_too_few_shares_raises(group_3_of_7):
    _, shares, combiner = group_3_of_7
    data = b"x"
    with pytest.raises(ValueError):
        combiner.combine_shares(data, [shares[1].sign(data), shares[2].sign(data)])


def test_combined_signature_is_standard_rsa(group_2_of_6):
    # the combined value equals h(m)^d and verifies with plain RSA check
    public, shares, combiner = group_2_of_6
    data = b"m"
    sig = combiner.combine_shares(data, [shares[2].sign(data), shares[3].sign(data)])
    from repro.crypto.rsa import _fdh
    assert pow(sig, public.e, public.n) == _fdh(data, public.n)


def test_wrong_message_rejected(group_2_of_6):
    public, shares, combiner = group_2_of_6
    data = b"m"
    sig = combiner.combine_shares(data, [shares[1].sign(data), shares[2].sign(data)])
    assert not public.verify(b"other", sig)


def test_robust_combine_survives_corrupt_share(group_2_of_6):
    public, shares, combiner = group_2_of_6
    data = b"m"
    parts = [
        shares[1].sign(data),
        PartialSignature(3, 123456789),  # corrupt
        shares[5].sign(data),
    ]
    sig = combiner.combine_shares_robust(data, parts)
    assert sig is not None and public.verify(data, sig)


def test_robust_combine_fails_below_honest_threshold(group_3_of_7):
    _, shares, combiner = group_3_of_7
    data = b"m"
    parts = [
        shares[1].sign(data),
        shares[2].sign(data),
        PartialSignature(3, 1), PartialSignature(4, 2),
    ]
    assert combiner.combine_shares_robust(data, parts) is None


def test_shares_from_wrong_message_do_not_combine(group_2_of_6):
    _, shares, combiner = group_2_of_6
    parts = [shares[1].sign(b"a"), shares[2].sign(b"b")]
    assert combiner.combine_shares_robust(b"a", parts) is None


def test_duplicate_share_indices_do_not_count_twice(group_2_of_6):
    _, shares, combiner = group_2_of_6
    data = b"m"
    same = shares[1].sign(data)
    with pytest.raises(ValueError):
        combiner.combine_shares(data, [same, same])


def test_keygen_deterministic():
    a, _ = generate_threshold_group(4, 2, bits=512, seed="det")
    b, _ = generate_threshold_group(4, 2, bits=512, seed="det")
    assert a.n == b.n


def test_keygen_validation():
    with pytest.raises(ValueError):
        generate_threshold_group(4, 0)
    with pytest.raises(ValueError):
        generate_threshold_group(4, 5)
    with pytest.raises(ValueError):
        generate_threshold_group(10, 2, e=7)  # exponent must exceed players


def test_threshold_one_behaves_like_plain(group_2_of_6):
    public, shares, _ = group_2_of_6
    one_pub, one_shares = generate_threshold_group(3, 1, bits=512, seed="one")
    combiner = ThresholdGroup(one_pub)
    data = b"solo"
    sig = combiner.combine_shares(data, [one_shares[2].sign(data)])
    assert one_pub.verify(data, sig)


def test_full_group_signing(group_3_of_7):
    public, shares, combiner = group_3_of_7
    data = b"all"
    parts = [shares[i].sign(data) for i in range(1, 8)]
    sig = combiner.combine_shares_robust(data, parts)
    assert sig is not None and public.verify(data, sig)
