"""Unit tests for the ``repro.obs`` primitives.

Covers the redesigned instrumentation API: typed instruments and the
registry, hierarchical spans (wall + sim clock, nesting), the structured
event log, the no-op recorder, and snapshot determinism across runs of
the same seed.
"""

import pytest

from repro.obs import (
    NULL_OBS,
    EventLog,
    MetricRegistry,
    NullObservability,
    Observability,
    resolve_obs,
)
from repro.simnet import Simulator


# ----------------------------------------------------------------------
# Instruments + registry
# ----------------------------------------------------------------------
def test_counter_gauge_histogram_basics():
    registry = MetricRegistry()
    counter = registry.counter("c")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5

    gauge = registry.gauge("g")
    gauge.set(3.0)
    gauge.set(-1.0)
    gauge.set(2.0)
    assert gauge.value == 2.0
    assert gauge.minimum == -1.0
    assert gauge.maximum == 3.0

    histogram = registry.histogram("h")
    for value in (1.0, 2.0, 3.0, 4.0):
        histogram.observe(value)
    stats = histogram.stats()
    assert stats.count == 4
    assert stats.mean == pytest.approx(2.5)
    assert stats.maximum == 4.0


def test_registry_get_or_create_and_family_mismatch():
    registry = MetricRegistry()
    assert registry.counter("x") is registry.counter("x")
    with pytest.raises(TypeError):
        registry.histogram("x")
    assert registry.names() == ["x"]


def test_histogram_overflow_is_flagged_not_silent():
    registry = MetricRegistry()
    histogram = registry.histogram("h", max_samples=3)
    for value in range(10):
        histogram.observe(float(value))
    assert histogram.count == 10
    assert histogram.overflowed == 7
    assert "overflowed" in histogram.snapshot()


def test_latency_tracker_cdf_at_marks_matches_fig3_formula():
    registry = MetricRegistry()
    tracker = registry.latency("lat")
    for index in range(10):
        tracker.submitted(("k", index), at=0.0)
        tracker.acknowledged(("k", index), at=float(index + 1))
    values = sorted(tracker.latencies())
    marks = (0.10, 0.50, 1.0)
    expected = [
        values[min(len(values) - 1, max(0, int(mark * len(values)) - 1))]
        for mark in marks
    ]
    assert tracker.cdf_at_marks(marks) == expected


# ----------------------------------------------------------------------
# Spans: nesting, sim-vs-wall clocks
# ----------------------------------------------------------------------
def test_span_nesting_builds_paths_and_depths():
    obs = Observability(now_fn=lambda: 0.0)
    with obs.span("outer"):
        with obs.span("inner"):
            pass
        with obs.span("inner"):
            pass
    records = obs.spans.records
    paths = sorted(r.path for r in records)
    assert paths == ["outer", "outer/inner", "outer/inner"]
    by_depth = {r.path: r.depth for r in records}
    assert by_depth["outer"] == 0
    assert by_depth["outer/inner"] == 1


def test_span_sim_clock_independent_of_wall_clock():
    sim_now = {"t": 100.0}
    wall_now = {"t": 5.0}
    obs = Observability(
        now_fn=lambda: sim_now["t"], wall_now_fn=lambda: wall_now["t"]
    )
    with obs.span("work"):
        sim_now["t"] += 40.0     # virtual time advances 40 ms
        wall_now["t"] += 0.002   # wall time advances 2 ms
    (record,) = obs.spans.records
    assert record.sim_ms == pytest.approx(40.0)
    assert record.wall_ms == pytest.approx(2.0)  # wall clock is in seconds


def test_span_histograms_separate_deterministic_sim_from_wall():
    obs = Observability(now_fn=lambda: 0.0)
    with obs.span("step"):
        pass
    deterministic = obs.registry.snapshot(deterministic_only=True)
    everything = obs.registry.snapshot()
    assert "span.step.sim_ms" in deterministic
    assert "span.step.wall_ms" not in deterministic
    assert "span.step.wall_ms" in everything


def test_span_annotate_records_details():
    obs = Observability(now_fn=lambda: 0.0)
    with obs.span("op", phase="a") as span:
        span.annotate(result="ok")
    (record,) = obs.spans.records
    assert record.details["phase"] == "a"
    assert record.details["result"] == "ok"


# ----------------------------------------------------------------------
# Event log
# ----------------------------------------------------------------------
def test_event_log_records_and_counts_kinds():
    clock = {"t": 0.0}
    log = EventLog(now_fn=lambda: clock["t"])
    log.event("comp", "started", index=1)
    clock["t"] = 5.0
    log.event("comp", "stopped")
    assert len(log) == 2
    assert [e.time for e in log] == [0.0, 5.0]
    assert log.kind_counts() == {"started": 1, "stopped": 1}
    assert log.events("comp", "started")[0].details["index"] == 1


def test_event_log_bounded_with_dropped_counter():
    log = EventLog(now_fn=lambda: 0.0, max_events=2)
    for index in range(5):
        log.event("c", "k", i=index)
    assert len(log) == 2
    assert log.dropped == 3


# ----------------------------------------------------------------------
# Disabled recorder: everything is a no-op
# ----------------------------------------------------------------------
def test_null_obs_swallows_everything():
    obs = NULL_OBS
    assert obs.enabled is False
    obs.counter("c").inc()
    obs.gauge("g").set(1.0)
    obs.histogram("h").observe(1.0)
    obs.event("comp", "kind", a=1)
    with obs.span("s"):
        pass
    assert obs.counter("c").value == 0
    assert obs.registry.snapshot() == {}
    assert len(obs.log) == 0
    assert obs.spans.records == ()
    assert obs.snapshot()["metrics"] == {}


def test_null_obs_is_shared_singleton():
    assert isinstance(NULL_OBS, NullObservability)
    assert resolve_obs(None, None) is NULL_OBS
    # explicit obs always wins, even the null one
    assert resolve_obs(NULL_OBS, None) is NULL_OBS


def test_resolve_obs_shares_one_registry_per_trace():
    simulator = Simulator(seed=1)
    trace = EventLog(now_fn=lambda: simulator.now)
    first = resolve_obs(None, trace)
    second = resolve_obs(None, trace)
    assert first is second
    assert first.enabled
    first.counter("shared").inc()
    assert second.counter("shared").value == 1
    # events through obs land in the legacy trace (same log object)
    first.event("comp", "kind")
    assert trace.count() == 1


# ----------------------------------------------------------------------
# Snapshot determinism across identical seeds
# ----------------------------------------------------------------------
def _small_run(seed):
    from repro.core import SpireDeployment, SpireOptions

    deployment = SpireDeployment(SpireOptions(
        num_substations=2, poll_interval_ms=250.0, seed=seed,
    ))
    deployment.start()
    deployment.run_for(1500.0)
    return deployment.obs.snapshot(deterministic_only=True)


def test_deterministic_snapshot_identical_across_same_seed_runs():
    first = _small_run(seed=11)
    second = _small_run(seed=11)
    assert first == second


def test_deterministic_snapshot_excludes_wall_clock_instruments():
    snapshot = _small_run(seed=11)
    assert not any(name.endswith(".wall_ms") for name in snapshot["metrics"])
    # but the full snapshot does include the wall-clock profiles
    from repro.core import SpireDeployment, SpireOptions

    deployment = SpireDeployment(SpireOptions(
        num_substations=2, poll_interval_ms=250.0, seed=11,
    ))
    deployment.start()
    deployment.run_for(1500.0)
    full = deployment.obs.snapshot()
    assert any(name.endswith(".wall_ms") for name in full["metrics"])
