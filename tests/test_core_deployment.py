"""End-to-end tests of the full Spire deployment.

These exercise the entire stack: Modbus polling -> proxy -> overlay ->
Prime ordering -> replicated master -> threshold-signed delivery -> HMI
view and field commands. A module-scoped deployment keeps them fast.
"""

import pytest

from repro.core import SpireDeployment, SpireOptions


@pytest.fixture(scope="module")
def deployment():
    dep = SpireDeployment(SpireOptions(
        num_substations=4, poll_interval_ms=200.0, seed=3,
    ))
    dep.start()
    dep.run_for(4000)
    return dep


def test_default_placement_is_paper_shape(deployment):
    assert deployment.placement == {"cc1": 2, "cc2": 2, "dc1": 1, "dc2": 1}
    assert len(deployment.replicas) == 6


def test_status_updates_flow_and_ack(deployment):
    submissions = deployment.proxy.submissions
    assert submissions.submitted_total > 10
    assert submissions.acked_total == submissions.submitted_total - submissions.outstanding
    assert submissions.outstanding <= 4  # at most one poll cycle in flight


def test_wan_latency_in_paper_ballpark(deployment):
    stats = deployment.status_recorder.stats()
    assert stats.count > 10
    assert 20.0 < stats.mean < 100.0   # paper: ~43-60 ms wide-area
    assert stats.maximum < 250.0


def test_hmi_view_converges(deployment):
    hmi = deployment.hmis[0]
    assert sorted(hmi.view) == sorted(deployment.grid.substations)
    for substation in deployment.grid.substations:
        reading = hmi.substation_status(substation)
        assert reading is not None
        assert (reading.measurement("energized") or 0.0) == 1.0


def test_master_state_replicated_consistently(deployment):
    snapshots = {
        repr(sorted(replica.app.latest_status))
        for replica in deployment.replicas
    }
    assert len(snapshots) == 1


def test_operator_command_reaches_field(deployment):
    grid = deployment.grid
    substation = sorted(grid.substations)[1]
    breaker_id = sorted(grid.substations[substation].breakers)[0]
    assert grid.breaker_closed(substation, breaker_id)
    hmi = deployment.hmis[0]
    hmi.operate_breaker(substation, breaker_id, close=False, reason="test")
    deployment.run_for(1500)
    assert grid.breaker_closed(substation, breaker_id) is False
    assert deployment.command_recorder.stats().count >= 1
    # HMI eventually observes the new breaker position via polling
    deployment.run_for(1500)
    assert hmi.breaker_position(substation, breaker_id) is False
    # restore for other tests
    hmi.operate_breaker(substation, breaker_id, close=True, reason="restore")
    deployment.run_for(1500)


def test_confirmed_commands_recorded(deployment):
    hmi = deployment.hmis[0]
    assert len(hmi.confirmed_commands) >= 1
    order_index, command = hmi.confirmed_commands[0]
    assert command.issued_by == hmi.name


def test_current_leader_helper(deployment):
    leader = deployment.current_leader()
    assert leader in deployment.replica_names()


def test_delivery_series_counts_updates(deployment):
    series = deployment.delivery_series.series(0.0, deployment.simulator.now)
    # after warm-up every second sees deliveries
    active = [count for _, count in series[1:]]
    assert all(count > 0 for count in active)


def test_availability_metric(deployment):
    availability = deployment.delivery_series.availability(
        1000.0, deployment.simulator.now
    )
    assert availability == 1.0


def test_lan_preset_deployment_builds():
    from repro.spines import lan_topology

    dep = SpireDeployment(
        SpireOptions(num_substations=2, prime_preset="lan", seed=5,
                     poll_interval_ms=100.0),
        topology=lan_topology(1),
    )
    dep.start()
    dep.run_for(2000)
    stats = dep.status_recorder.stats()
    assert stats.count > 5
    assert stats.mean < 40.0  # LAN is much faster than WAN


def test_explicit_placement_respected():
    dep = SpireDeployment(SpireOptions(
        num_substations=2, seed=7,
        placement={"cc1": 3, "cc2": 3},
    ))
    assert len(dep.replicas) == 6
    sites = set(dep.replica_sites.values())
    assert sites == {"cc1", "cc2"}
