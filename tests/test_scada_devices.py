"""Tests for RTU and PLC device emulation."""

import pytest

from repro.scada import (
    PlcDevice,
    PowerGrid,
    ReadCoilsRequest,
    ReadRequest,
    RtuDevice,
    Substation,
    WriteCoilRequest,
    decode_frame,
    encode_frame,
    undervoltage_rule,
)
from repro.scada.modbus import (
    ExceptionResponse,
    ReadCoilsResponse,
    ReadResponse,
    WriteCoilResponse,
)
from repro.simnet import LinkSpec, Network, Process, Simulator


class Probe(Process):
    def __init__(self, name, simulator, network):
        super().__init__(name, simulator, network)
        self.frames = []

    def on_message(self, src, payload):
        frame = RtuDevice.unwrap(payload)
        if frame is not None:
            self.frames.append(decode_frame(frame))

    def ask(self, device, message):
        self.send(device, RtuDevice.wrap(encode_frame(message)), size_bytes=16)


def build(with_plc=False):
    sim = Simulator(seed=2)
    net = Network(sim, LinkSpec(latency_ms=0.2))
    grid = PowerGrid(seed=2)
    grid.add_substation(Substation("gen", load_mw=0.0, generation_mw=50.0))
    grid.add_substation(Substation("s1", load_mw=10.0))
    grid.add_line("gen", "s1")
    if with_plc:
        device = PlcDevice("dev", sim, net, grid, "s1", unit_id=7,
                           rules=[undervoltage_rule(threshold_kv=120.0)])
    else:
        device = RtuDevice("dev", sim, net, grid, "s1", unit_id=7)
    tester = Probe("probe", sim, net)
    return sim, net, grid, device, tester


def test_read_holding_registers():
    sim, net, grid, device, probe = build()
    probe.ask("dev", ReadRequest(7, 0, 4))
    sim.run()
    assert len(probe.frames) == 1
    response = probe.frames[0]
    assert isinstance(response, ReadResponse)
    assert len(response.values) == 4
    assert response.values[0] > 1300  # ~138 kV scaled by 10


def test_read_coils():
    sim, net, grid, device, probe = build()
    probe.ask("dev", ReadCoilsRequest(7, 0, 1))
    sim.run()
    response = probe.frames[0]
    assert isinstance(response, ReadCoilsResponse)
    assert response.values == (True,)


def test_write_coil_operates_breaker():
    sim, net, grid, device, probe = build()
    probe.ask("dev", WriteCoilRequest(7, 0, False))
    sim.run()
    assert isinstance(probe.frames[0], WriteCoilResponse)
    breaker_id = device.coil_ids()[0]
    assert grid.breaker_closed("s1", breaker_id) is False
    assert device.writes_applied == 1


def test_wrong_unit_ignored():
    sim, net, grid, device, probe = build()
    probe.ask("dev", ReadRequest(99, 0, 4))
    sim.run()
    assert probe.frames == []


def test_illegal_address_returns_exception():
    sim, net, grid, device, probe = build()
    probe.ask("dev", ReadRequest(7, 0, 40))
    sim.run()
    assert isinstance(probe.frames[0], ExceptionResponse)


def test_corrupt_frame_silently_dropped():
    sim, net, grid, device, probe = build()
    frame = bytearray(encode_frame(ReadRequest(7, 0, 4)))
    frame[1] ^= 0x55
    probe.send("dev", RtuDevice.wrap(bytes(frame)), size_bytes=16)
    sim.run()
    assert probe.frames == []
    assert device.requests_served == 0


def test_plc_answers_modbus_like_rtu():
    sim, net, grid, device, probe = build(with_plc=True)
    probe.ask("dev", ReadRequest(7, 0, 4))
    sim.run()
    assert isinstance(probe.frames[0], ReadResponse)


def test_plc_scan_counts():
    sim, net, grid, device, probe = build(with_plc=True)
    device.start()
    sim.run_for(1000)
    assert device.scans == 10  # 100 ms scan cycle


def test_plc_undervoltage_trip_with_debounce():
    sim, net, grid, device, probe = build(with_plc=True)
    device.start()
    # healthy voltage: no trips
    sim.run_for(500)
    assert device.trips == 0
    # de-energize the substation -> voltage 0 (not undervoltage: dead bus)
    grid.set_breaker("gen", "gen->s1", False)
    sim.run_for(500)
    assert device.trips == 0  # rule requires 0 < v < threshold
    # shrink nominal voltage to simulate a sag
    grid.set_breaker("gen", "gen->s1", True)
    grid.substations["s1"].nominal_kv = 100.0
    sim.run_for(250)
    assert device.trips == 0  # debounce: needs 3 consecutive scans
    sim.run_for(300)
    assert device.trips >= 1
    breaker_id = device.coil_ids()[0]
    assert grid.breaker_closed("s1", breaker_id) is False


def test_plc_pickup_resets_when_condition_clears():
    sim, net, grid, device, probe = build(with_plc=True)
    device.start()
    grid.substations["s1"].nominal_kv = 100.0
    sim.run_for(150)  # one or two scans under voltage
    grid.substations["s1"].nominal_kv = 138.0
    sim.run_for(400)
    assert device.trips == 0
