"""Tests for overlay topologies."""

import pytest

from repro.spines import (
    OverlayTopology,
    Site,
    continental_topology,
    lan_topology,
    wide_area_topology,
)


def test_site_kinds_validated():
    with pytest.raises(ValueError):
        Site("x", "bogus")


def test_site_daemon_name():
    assert Site("cc1").daemon_name == "spines:cc1"


def test_add_and_connect():
    topo = OverlayTopology()
    topo.add_site(Site("a"))
    topo.add_site(Site("b"))
    topo.connect("a", "b", latency_ms=5.0)
    assert topo.neighbors("a") == ["b"]
    assert topo.link_attributes("a", "b")["latency_ms"] == 5.0


def test_duplicate_site_rejected():
    topo = OverlayTopology()
    topo.add_site(Site("a"))
    with pytest.raises(ValueError):
        topo.add_site(Site("a"))


def test_connect_unknown_site_rejected():
    topo = OverlayTopology()
    topo.add_site(Site("a"))
    with pytest.raises(KeyError):
        topo.connect("a", "missing", 1.0)


def test_sites_of_kind():
    topo = wide_area_topology()
    assert {s.name for s in topo.sites_of_kind("control")} == {"cc1", "cc2"}
    assert {s.name for s in topo.sites_of_kind("data")} == {"dc1", "dc2"}
    assert {s.name for s in topo.sites_of_kind("field")} == {"field"}


def test_wide_area_is_connected_and_redundant():
    topo = wide_area_topology()
    # removing any single core site leaves the rest connected
    for removed in ("cc1", "cc2", "dc1", "dc2"):
        assert topo.is_connected_without([removed])


def test_shortest_paths_latency_weighted():
    topo = wide_area_topology()
    paths = topo.shortest_paths("field")
    assert paths["cc1"] == ["field", "cc1"]
    # dc2 via cc1 (3+12=15) beats via cc2 (5+10=15)... both 15; path exists
    assert paths["dc2"][0] == "field"
    assert paths["dc2"][-1] == "dc2"


def test_lan_topology_full_mesh():
    topo = lan_topology(4)
    for site in topo.sites:
        assert len(topo.neighbors(site.name)) == 3


def test_continental_topology_has_disjoint_paths():
    topo = continental_topology()
    assert len(topo.sites) == 10
    # at least two disjoint paths between the coasts
    import networkx as nx

    assert nx.node_connectivity(topo.graph, "nyc", "lax") >= 2
