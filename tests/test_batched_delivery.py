"""Batched ordering + Merkle-amortized delivery: options plumbing,
bit-identity of the inactive path, end-to-end convergence, and the
collector's handling of corrupt shares and tampered entries."""

from types import SimpleNamespace

import pytest

from repro.core import (
    BatchDeliveryShare,
    BatchingOptions,
    DeliveryCollector,
    SpireDeployment,
    SpireOptions,
    batch_record_for,
)
from repro.core.update import BatchEntry
from repro.crypto import FastCrypto
from repro.prime.messages import (
    ClientUpdate,
    sign_client_update,
    verify_client_updates_batch,
)
from repro.prime.ordering import slot_digest


# ----------------------------------------------------------------------
# BatchingOptions
# ----------------------------------------------------------------------


def test_batching_defaults_are_inactive():
    options = BatchingOptions()
    options.validate()
    assert not options.enabled
    assert not options.active


def test_batching_active_requires_enabled_and_size():
    assert BatchingOptions(enabled=True, max_batch_size=16).active
    assert not BatchingOptions(enabled=True, max_batch_size=1).active
    assert not BatchingOptions(enabled=False).active


@pytest.mark.parametrize("bad", [
    dict(enabled=True, max_batch_size=0),
    dict(enabled=True, max_batch_size=-3),
    dict(enabled=False, max_batch_delay_ms=50.0),
    dict(enabled=True, max_batch_delay_ms=0.0),
    dict(enabled=True, max_batch_delay_ms=-1.0),
    dict(enabled=False, max_batch_size=16),  # forgotten enabled=True
])
def test_batching_validate_rejects(bad):
    with pytest.raises(ValueError):
        BatchingOptions(**bad).validate()


def test_batching_roundtrip():
    options = BatchingOptions(enabled=True, max_batch_size=32,
                              max_batch_delay_ms=15.0)
    assert BatchingOptions.from_dict(options.to_dict()) == options


def test_deployment_validates_batching():
    with pytest.raises(ValueError):
        SpireOptions(
            batching=BatchingOptions(enabled=True, max_batch_size=0)
        ).validate()


# ----------------------------------------------------------------------
# slot digest versioning
# ----------------------------------------------------------------------


def summary_entry(sender, summary_seq, vector):
    # shape of a matrix entry: a signed envelope around a PO summary
    payload = SimpleNamespace(
        sender=sender, summary_seq=summary_seq, vector=vector
    )
    return SimpleNamespace(payload=payload)


def test_slot_digest_v2_is_prefixed_and_distinct():
    matrix = (
        summary_entry("origin#0", 1, ("d0",)),
        summary_entry("origin#1", 2, ("d1",)),
    )
    v1 = slot_digest(7, matrix)
    v2 = slot_digest(7, matrix, 2)
    assert not v1.startswith("v2:")
    assert v2.startswith("v2:")
    assert v1 != v2
    # v2 is seq- and content-sensitive like v1
    assert v2 != slot_digest(8, matrix, 2)
    assert v2 != slot_digest(7, matrix[:1], 2)
    assert v2 == slot_digest(7, matrix, 2)


def test_slot_digest_unknown_version_rejected():
    with pytest.raises(ValueError):
        slot_digest(1, (), 3)


# ----------------------------------------------------------------------
# batch signature verification helper
# ----------------------------------------------------------------------


def test_verify_client_updates_batch_semantics():
    crypto = FastCrypto(seed="vb")
    good = sign_client_update(crypto, "client:a", 1, ("op", 1))
    unsigned = ClientUpdate("client:b", 1, ("op", 2), None)
    misattributed = ClientUpdate("client:c", 1, ("op", 3), good.signature)
    good2 = sign_client_update(crypto, "client:d", 4, ("op", 4))
    verdicts = verify_client_updates_batch(
        crypto, (good, unsigned, misattributed, good2)
    )
    assert verdicts == (True, False, False, True)
    assert verify_client_updates_batch(crypto, ()) == ()


# ----------------------------------------------------------------------
# Collector: tampered entries and share caching (unit level)
# ----------------------------------------------------------------------


GROUP = "masters"


def make_batch(crypto, updates=4, po_seq=1):
    executed = [
        (ClientUpdate(f"client:{i}", i + 1, ("reading", i)), i + 1, None)
        for i in range(updates)
    ]
    return batch_record_for("origin#0", po_seq, executed)


def test_tampered_entry_rejected_batchmates_released():
    crypto = FastCrypto(seed="tamper")
    crypto.create_threshold_group(GROUP, 4, 2)
    collector = DeliveryCollector(crypto, GROUP)
    batch, entries = make_batch(crypto)
    # replace entry 2's record with a forged one; its proof no longer
    # matches the signed root
    forged = entries[2].record.__class__(
        **{**entries[2].record.__dict__, "order_index": 999}
    )
    tampered = entries[:2] + (
        BatchEntry(entries[2].index, forged, entries[2].proof),
    ) + entries[3:]
    released = []
    for index in (1, 2):
        share = crypto.threshold_sign_share(GROUP, index, batch)
        released += collector.add_batch(
            BatchDeliveryShare(f"replica:{index}", batch, share, tampered)
        )
    assert [record.order_index for record, _ in released] == [1, 2, 4]
    assert collector.rejected_entries >= 1
    assert all(
        crypto.threshold_verify(signature, batch) for _, signature in released
    )


def test_late_slice_verifies_against_cached_signature():
    crypto = FastCrypto(seed="late")
    crypto.create_threshold_group(GROUP, 4, 2)
    collector = DeliveryCollector(crypto, GROUP)
    batch, entries = make_batch(crypto)
    shares = {
        i: crypto.threshold_sign_share(GROUP, i, batch) for i in (1, 2, 3)
    }
    # first two senders carry only a partial slice; threshold reached on
    # the second share releases the union
    first = collector.add_batch(
        BatchDeliveryShare("replica:1", batch, shares[1], entries[:2])
    )
    assert first == []
    second = collector.add_batch(
        BatchDeliveryShare("replica:2", batch, shares[2], entries[1:3])
    )
    assert sorted(r.order_index for r, _ in second) == [1, 2, 3]
    # a later sender's remaining slice verifies against the cached batch
    # signature — no further combining, no duplicates for seen entries
    third = collector.add_batch(
        BatchDeliveryShare("replica:3", batch, shares[3], entries)
    )
    assert [r.order_index for r, _ in third] == [4]
    assert collector.verified == 4


def test_duplicate_sender_shares_do_not_reach_threshold():
    crypto = FastCrypto(seed="dup")
    crypto.create_threshold_group(GROUP, 4, 3)
    collector = DeliveryCollector(crypto, GROUP)
    batch, entries = make_batch(crypto)
    share = crypto.threshold_sign_share(GROUP, 1, batch)
    for _ in range(5):
        assert collector.add_batch(
            BatchDeliveryShare("replica:1", batch, share, entries)
        ) == []
    assert collector.verified == 0


# ----------------------------------------------------------------------
# End-to-end: batched deployments
# ----------------------------------------------------------------------


BASE = dict(num_substations=3, poll_interval_ms=250.0, seed=9)
RUN_MS = 3000.0


def run_deployment(**overrides):
    deployment = SpireDeployment(SpireOptions(**{**BASE, **overrides}))
    deployment.start()
    deployment.run_for(RUN_MS)
    return deployment


def trace_image(deployment):
    return tuple(
        (e.time, e.component, e.kind, tuple(sorted(e.details.items())))
        for e in deployment.trace
    )


@pytest.fixture(scope="module")
def unbatched():
    return run_deployment()


@pytest.fixture(scope="module")
def batched():
    return run_deployment(
        batching=BatchingOptions(enabled=True, max_batch_size=64)
    )


def test_inactive_batch_size_one_is_bit_identical(unbatched):
    shimmed = run_deployment(
        batching=BatchingOptions(enabled=True, max_batch_size=1)
    )
    assert shimmed.simulator.events_processed == \
        unbatched.simulator.events_processed
    assert trace_image(shimmed) == trace_image(unbatched)
    assert [r.last_executed_seq for r in shimmed.replicas] == \
        [r.last_executed_seq for r in unbatched.replicas]


def test_disabled_batching_is_bit_identical(unbatched):
    disabled = run_deployment(batching=BatchingOptions(enabled=False))
    assert disabled.simulator.events_processed == \
        unbatched.simulator.events_processed
    assert trace_image(disabled) == trace_image(unbatched)


def test_batched_deployment_converges(batched):
    hmi = batched.hmis[0]
    assert sorted(hmi.view) == sorted(batched.grid.substations)
    for substation in batched.grid.substations:
        reading = hmi.substation_status(substation)
        assert reading is not None
        assert (reading.measurement("energized") or 0.0) == 1.0
    assert sum(r.batches_sent for r in batched.replicas) > 0
    assert hmi.collector.rejected_entries == 0
    assert hmi.collector.verified > 0


def test_batched_state_matches_unbatched(unbatched, batched):
    # batching changes message shape, not the replicated state machine:
    # both modes execute the same updates in the same order
    batched_state = {
        repr(sorted(replica.app.latest_status))
        for replica in batched.replicas
    }
    unbatched_state = {
        repr(sorted(replica.app.latest_status))
        for replica in unbatched.replicas
    }
    assert len(batched_state) == 1
    assert batched_state == unbatched_state


def test_batching_cuts_delivery_messages(unbatched, batched):
    batched_sent = sum(r.deliveries_sent for r in batched.replicas)
    unbatched_sent = sum(r.deliveries_sent for r in unbatched.replicas)
    assert batched_sent < unbatched_sent / 2


def test_retry_cache_holds_single_entry_slices(batched):
    slices = [
        cached
        for replica in batched.replicas
        for cached in replica._recent_shares.values()
        if isinstance(cached, BatchDeliveryShare)
    ]
    assert slices
    assert all(len(cached.entries) == 1 for cached in slices)


def test_corrupt_share_tolerated_in_batched_mode():
    deployment = SpireDeployment(SpireOptions(
        **BASE, batching=BatchingOptions(enabled=True, max_batch_size=64),
    ))

    def corrupt(share):
        return share.__class__(share.group, share.index, "garbage")

    deployment.replicas[0].share_corruptor = corrupt
    deployment.start()
    deployment.run_for(RUN_MS)
    hmi = deployment.hmis[0]
    # robust combining routes around the corrupted replica's shares
    assert sorted(hmi.view) == sorted(deployment.grid.substations)
    assert hmi.collector.verified > 0
