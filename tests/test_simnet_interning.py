"""Tests for endpoint interning (repro.simnet.interning).

The network's per-message hot path now keys link state and delivery on
dense integer endpoint ids instead of name strings.  These tests pin the
three properties the refactor must keep: the symbol table round-trips
names and ids exactly, ids stay dense and collision-free at fleet scale
(10k endpoints), and a full small-n deployment produces a bit-identical
trace image to the pre-interning implementation (pinned digests).
"""

import os

import pytest

from repro.core import SpireDeployment, SpireOptions
from repro.crypto.encoding import digest
from repro.simnet import (
    EndpointTable,
    LinkSpec,
    Network,
    Process,
    Simulator,
)

DETERMINISTIC_HASHING = os.environ.get("PYTHONHASHSEED") == "0"


# ----------------------------------------------------------------------
# EndpointTable
# ----------------------------------------------------------------------

def test_intern_allocates_dense_ids_in_first_sight_order():
    table = EndpointTable()
    assert table.intern("c") == 0
    assert table.intern("a") == 1
    assert table.intern("b") == 2
    # re-interning returns the existing id, never a new one
    assert table.intern("a") == 1
    assert len(table) == 3


def test_round_trip_name_to_id_and_back():
    table = EndpointTable()
    names = [f"proc:{i}" for i in range(50)]
    ids = [table.intern(name) for name in names]
    assert [table.name_of(eid) for eid in ids] == names
    assert [table.id_of(name) for name in names] == ids
    assert list(table.names()) == names


def test_get_returns_none_for_unknown_without_interning():
    table = EndpointTable()
    assert table.get("ghost") is None
    assert "ghost" not in table
    assert len(table) == 0
    table.intern("real")
    assert table.get("real") == 0
    assert "real" in table


def test_id_of_raises_for_unknown():
    table = EndpointTable()
    with pytest.raises(KeyError):
        table.id_of("missing")
    with pytest.raises(IndexError):
        table.name_of(0)


def test_collision_free_at_fleet_scale():
    """10k endpoints: ids stay dense, unique, and stable."""
    table = EndpointTable()
    names = [f"region{i % 40}/rtu:s{i}" for i in range(10_000)]
    ids = [table.intern(name) for name in names]
    assert ids == list(range(10_000))
    assert len(set(ids)) == 10_000
    # every name still resolves to its original id after full load
    for offset in (0, 1, 4_999, 9_999):
        assert table.id_of(names[offset]) == offset
        assert table.name_of(offset) == names[offset]


# ----------------------------------------------------------------------
# Network integration
# ----------------------------------------------------------------------

def _make_net():
    simulator = Simulator(seed=5)
    network = Network(simulator, LinkSpec(latency_ms=1.0, jitter_ms=0.0))
    return simulator, network


def test_network_registers_processes_into_symbol_table():
    simulator, network = _make_net()
    a = Process("a", simulator, network)
    b = Process("b", simulator, network)
    assert a.endpoint_id == 0
    assert b.endpoint_id == 1
    assert network.endpoints.id_of("a") == 0
    assert network.process_by_id(1) is b
    # registration-ordered name iteration is part of the determinism
    # contract (failure injection samples from it)
    assert list(network.process_names) == ["a", "b"]


def test_send_delivers_through_interned_path():
    simulator, network = _make_net()
    inbox = []

    class Sink(Process):
        def on_message(self, src, payload):
            inbox.append((src, payload))

    a = Process("a", simulator, network)
    Sink("b", simulator, network)
    assert a.send("b", "hello") is True
    simulator.run_until(10.0)
    assert inbox == [("a", "hello")]
    assert network.stats.delivered == 1


def test_send_to_unknown_destination_is_dropped():
    simulator, network = _make_net()
    a = Process("a", simulator, network)
    assert a.send("ghost", "x") is False
    simulator.run_until(10.0)
    assert network.stats.dropped_down == 1


# ----------------------------------------------------------------------
# Pinned small-n trace image
# ----------------------------------------------------------------------

def _trace_fingerprint(options, run_ms):
    deployment = SpireDeployment(options)
    deployment.start()
    deployment.simulator.run_until(run_ms)
    image = tuple(
        (e.time, e.component, e.kind, tuple(sorted(e.details.items())))
        for e in deployment.trace.events()
    )
    return digest((image, deployment.simulator.events_processed))


#: digests captured on the pre-interning implementation — the interned
#: hot path must keep every delivery bit-identical
PINNED_TRACES = {
    "wan7": (
        dict(seed=7, num_substations=3),
        6000.0,
        "17afe859c70e52c1bb3678aca02ac59f8770441a42ede0a82ef8ff7e93867e67",
    ),
    "lan21": (
        dict(seed=21, num_substations=2, poll_interval_ms=200.0),
        4000.0,
        "2eca385b6efaab3445349853259fff7ef6144645592ef4daf0910ac35b75ade8",
    ),
}


@pytest.mark.skipif(
    not DETERMINISTIC_HASHING,
    reason="pinned digests need PYTHONHASHSEED=0",
)
@pytest.mark.parametrize("case", sorted(PINNED_TRACES))
def test_trace_image_pinned_across_interning(case):
    overrides, run_ms, expected = PINNED_TRACES[case]
    preset = SpireOptions.wan if case.startswith("wan") else SpireOptions.lan
    assert _trace_fingerprint(preset(**overrides), run_ms) == expected
