"""Tests for Prime configuration math."""

import pytest

from repro.prime import PrimeConfig, lan_prime_config, wan_prime_config


def names(n):
    return tuple(f"r{i}" for i in range(n))


def test_n_and_quorum():
    config = PrimeConfig(names(6), num_faults=1, num_recovering=1)
    assert config.n == 6
    assert config.quorum == 4  # 2f + k + 1


def test_minimum_replicas_enforced():
    with pytest.raises(ValueError):
        PrimeConfig(names(5), num_faults=1, num_recovering=1)  # needs 6
    with pytest.raises(ValueError):
        PrimeConfig(names(3), num_faults=1, num_recovering=0)  # needs 4


def test_f2_k1_needs_nine():
    config = PrimeConfig(names(9), num_faults=2, num_recovering=1)
    assert config.quorum == 6
    with pytest.raises(ValueError):
        PrimeConfig(names(8), num_faults=2, num_recovering=1)


def test_duplicate_names_rejected():
    with pytest.raises(ValueError):
        PrimeConfig(("a", "a", "b", "c", "d", "e"))


def test_signing_threshold_is_f_plus_one():
    config = PrimeConfig(names(6), num_faults=1, num_recovering=1)
    assert config.signing_threshold == 2


def test_leader_rotates_through_views():
    config = PrimeConfig(names(6))
    leaders = [config.leader_of_view(v) for v in range(12)]
    assert leaders[:6] == list(names(6))
    assert leaders[6:] == list(names(6))


def test_index_of():
    config = PrimeConfig(names(6))
    assert config.index_of("r3") == 3


def test_presets_build():
    lan = lan_prime_config(names(6))
    wan = wan_prime_config(names(6))
    assert lan.pre_prepare_interval_ms < wan.pre_prepare_interval_ms
    assert lan.n == wan.n == 6


def test_with_replicas():
    config = PrimeConfig(names(6))
    bigger = config.with_replicas(names(8))
    assert bigger.n == 8
    assert config.n == 6  # original unchanged
