"""Tests for the Modbus-like framing."""

import pytest

from repro.scada import (
    ExceptionResponse,
    ModbusError,
    ReadCoilsRequest,
    ReadCoilsResponse,
    ReadRequest,
    ReadResponse,
    WriteCoilRequest,
    WriteCoilResponse,
    crc16,
    decode_frame,
    encode_frame,
    scale_measurement,
    unscale_measurement,
)


@pytest.mark.parametrize("message", [
    ReadRequest(1, 0, 4),
    ReadRequest(255, 100, 2),
    ReadCoilsRequest(3, 0, 5),
    WriteCoilRequest(2, 1, True),
    WriteCoilRequest(2, 1, False),
    ReadResponse(1, (0, 1380, 65535)),
    ReadCoilsResponse(4, (True, False, True)),
    ReadCoilsResponse(4, ()),
    WriteCoilResponse(2, 3, True),
    ExceptionResponse(1, 3, 2),
])
def test_roundtrip(message):
    assert decode_frame(encode_frame(message)) == message


def test_crc16_known_vector():
    # classic Modbus test vector: 01 03 00 00 00 02 -> CRC C40B
    assert crc16(bytes([0x01, 0x03, 0x00, 0x00, 0x00, 0x02])) == 0x0BC4


def test_corrupted_frame_rejected():
    frame = bytearray(encode_frame(ReadRequest(1, 0, 4)))
    frame[2] ^= 0xFF
    with pytest.raises(ModbusError):
        decode_frame(bytes(frame))


def test_corrupted_crc_rejected():
    frame = bytearray(encode_frame(ReadRequest(1, 0, 4)))
    frame[-1] ^= 0x01
    with pytest.raises(ModbusError):
        decode_frame(bytes(frame))


def test_short_frame_rejected():
    with pytest.raises(ModbusError):
        decode_frame(b"\x01\x02")


def test_unknown_function_rejected():
    body = bytes([1, 0x2B, 0, 0])
    frame = body + crc16(body).to_bytes(2, "little")
    with pytest.raises(ModbusError):
        decode_frame(frame)


def test_odd_read_response_length_rejected():
    body = bytes([1, 0x43, 3, 0, 0, 0])
    frame = body + crc16(body).to_bytes(2, "little")
    with pytest.raises(ModbusError):
        decode_frame(frame)


def test_coils_bit_packing_many():
    values = tuple((i % 3) == 0 for i in range(16))
    assert decode_frame(encode_frame(ReadCoilsResponse(1, values))) == \
        ReadCoilsResponse(1, values)


def test_scale_unscale_roundtrip():
    for value in (0.0, 1.5, 138.2, 6553.5):
        register = scale_measurement(value)
        assert unscale_measurement(register) == pytest.approx(value, abs=0.1)


def test_scale_clamps():
    assert scale_measurement(-5.0) == 0
    assert scale_measurement(10 ** 9) == 0xFFFF


def test_write_coil_wire_values():
    on = encode_frame(WriteCoilRequest(1, 0, True))
    off = encode_frame(WriteCoilRequest(1, 0, False))
    assert on != off
    assert decode_frame(on).value is True
    assert decode_frame(off).value is False
