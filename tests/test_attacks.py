"""Tests for the attack library against the full system."""

import pytest

from repro.attacks import (
    FloodingAttacker,
    LeaderChaser,
    compromise_daemon_delay,
    compromise_daemon_drop_all,
    compromise_daemon_drop_fraction,
    make_delivery_forger,
    make_share_corruptor,
    make_silent,
)
from repro.core import BreakerCommand, DeliveryRecord, SpireDeployment, SpireOptions


@pytest.fixture
def deployment():
    dep = SpireDeployment(SpireOptions(
        num_substations=3, poll_interval_ms=200.0, seed=9,
    ))
    dep.start()
    dep.run_for(1500)
    return dep


def test_f_corrupt_share_replicas_tolerated(deployment):
    make_share_corruptor(deployment.replicas[2])
    before = deployment.proxy.submissions.acked_total
    deployment.run_for(3000)
    after = deployment.proxy.submissions.acked_total
    assert after > before  # service continues despite garbage shares
    outstanding = deployment.proxy.submissions.outstanding
    assert outstanding <= 3


def test_silent_replica_tolerated(deployment):
    make_silent(deployment.replicas[4])
    before = deployment.proxy.submissions.acked_total
    deployment.run_for(3000)
    assert deployment.proxy.submissions.acked_total > before


def test_forged_delivery_never_executed(deployment):
    grid = deployment.grid
    substation = sorted(grid.substations)[0]
    breaker_id = sorted(grid.substations[substation].breakers)[0]

    def fake_record():
        return DeliveryRecord(
            kind="command", client="hmi:0", client_seq=999_999,
            order_index=999_999,
            payload=BreakerCommand(substation, breaker_id, close=False,
                                   issued_by="attacker"),
        )

    make_delivery_forger(deployment.replicas[1], fake_record, interval_ms=100.0)
    deployment.run_for(3000)
    # one replica's shares are below the f+1 threshold: breaker untouched
    assert grid.breaker_closed(substation, breaker_id) is True
    assert deployment.proxy.collector.pending_records >= 1


def test_two_colluding_forgers_would_reach_threshold_doc(deployment):
    """Documents the boundary: threshold is f+1=2, so the system tolerates
    exactly f=1 compromised replica for forgery resistance."""
    assert deployment.prime_config.signing_threshold == 2


def test_leader_chaser_retargets(deployment):
    chaser = LeaderChaser(
        deployment.simulator,
        deployment.network,
        leader_fn=deployment.current_leader,
        peers_fn=deployment.dos_peers_of,
        extra_delay_ms=250.0,
        retarget_interval_ms=1500.0,
    )
    chaser.start()
    deployment.run_for(12_000)
    chaser.stop()
    # the DoS forced at least one view change, so the chaser moved
    assert chaser.retargets >= 2
    views = {replica.view for replica in deployment.replicas}
    assert max(views) >= 1
    # service continued throughout
    assert deployment.proxy.submissions.acked_total > 20


def test_compromised_daemon_drop_all_flooding_survives(deployment):
    """Dropping one overlay daemon's traffic cannot stop flooding."""
    stop = compromise_daemon_drop_all(deployment.overlay.daemon("dc1"))
    before = deployment.proxy.submissions.acked_total
    deployment.run_for(2000)
    assert deployment.proxy.submissions.acked_total > before
    stop()


def test_compromised_daemon_drop_fraction(deployment):
    stop = compromise_daemon_drop_fraction(
        deployment.overlay.daemon("dc2"), fraction=0.5
    )
    before = deployment.proxy.submissions.acked_total
    deployment.run_for(2000)
    assert deployment.proxy.submissions.acked_total > before
    stop()
    daemon = deployment.overlay.daemon("dc2")
    assert daemon.stats["dropped_behavior"] > 0


def test_compromised_daemon_delay(deployment):
    stop = compromise_daemon_delay(deployment.overlay.daemon("cc2"), delay_ms=50.0)
    before = deployment.proxy.submissions.acked_total
    deployment.run_for(2000)
    assert deployment.proxy.submissions.acked_total > before
    stop()


def test_flooding_attacker_counts():
    from repro.crypto import FastCrypto
    from repro.simnet import LinkSpec, Network, Simulator
    from repro.spines import SpinesOverlay, wide_area_topology

    sim = Simulator(seed=4)
    net = Network(sim, LinkSpec(latency_ms=0.1))
    overlay = SpinesOverlay(sim, net, wide_area_topology(), crypto=FastCrypto())
    attacker = FloodingAttacker(
        "ep:attacker", sim, net, overlay, "dc1", "ep:victim", rate_per_ms=1.0
    )
    attacker.start()
    sim.run_for(100)
    attacker.stop()
    sim.run_for(100)
    assert 90 <= attacker.sent <= 110
