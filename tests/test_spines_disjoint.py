"""Tests for k-disjoint-paths overlay routing."""

import pytest

from repro.crypto import FastCrypto
from repro.simnet import LinkSpec, Network, Process, Simulator
from repro.spines import (
    DisjointPathsRouting,
    OverlayStack,
    SpinesOverlay,
    continental_topology,
    make_routing,
)


class Endpoint(Process):
    def __init__(self, name, simulator, network):
        super().__init__(name, simulator, network)
        self.received = []

    def on_message(self, src, payload):
        unwrapped = OverlayStack.unwrap(payload)
        if unwrapped is not None:
            self.received.append(unwrapped)


def build(**kwargs):
    sim = Simulator(seed=17)
    net = Network(sim, LinkSpec(latency_ms=0.1))
    topo = continental_topology()
    overlay = SpinesOverlay(sim, net, topo, mode="disjoint",
                            crypto=FastCrypto(), **kwargs)
    a = Endpoint("ep:a", sim, net)
    b = Endpoint("ep:b", sim, net)
    sa = overlay.attach(a, "nyc")
    overlay.attach(b, "lax")
    return sim, net, overlay, a, b, sa


def test_factory_builds_disjoint():
    topo = continental_topology()
    assert isinstance(make_routing("disjoint", topo), DisjointPathsRouting)


def test_paths_are_node_disjoint():
    routing = DisjointPathsRouting(continental_topology(), k=2)
    paths = routing._k_disjoint_paths("nyc", "lax")
    assert len(paths) == 2
    interior_a = set(paths[0][1:-1])
    interior_b = set(paths[1][1:-1])
    assert not (interior_a & interior_b)


def test_end_to_end_delivery():
    sim, net, overlay, a, b, sa = build()
    sa.send("ep:b", "hello")
    sim.run_for(200)
    assert len(b.received) == 1


def test_survives_single_interior_daemon_crash():
    sim, net, overlay, a, b, sa = build()
    routing = overlay.routing
    paths = routing._k_disjoint_paths("nyc", "lax")
    victim = paths[0][1]  # first interior hop of the primary path
    overlay.daemon(victim).crash()
    sa.send("ep:b", "after-crash")
    sim.run_for(300)
    assert len(b.received) == 1  # the second disjoint path delivers


def test_cheaper_than_flooding():
    """Disjoint-path routing forwards far fewer copies than flooding."""
    costs = {}
    for mode in ("disjoint", "flooding"):
        sim = Simulator(seed=19)
        net = Network(sim, LinkSpec(latency_ms=0.1))
        overlay = SpinesOverlay(sim, net, continental_topology(), mode=mode,
                                crypto=FastCrypto())
        a = Endpoint("ep:a", sim, net)
        b = Endpoint("ep:b", sim, net)
        sa = overlay.attach(a, "nyc")
        overlay.attach(b, "lax")
        for i in range(20):
            sa.send("ep:b", i)
        sim.run_for(500)
        totals = overlay.total_stats()
        assert totals["delivered"] == 20
        costs[mode] = totals["forwarded"]
    assert costs["disjoint"] < costs["flooding"] / 2


def test_forward_targets_exclude_arrival():
    routing = DisjointPathsRouting(continental_topology(), k=2)
    paths = routing._k_disjoint_paths("nyc", "lax")
    first_hop = paths[0][1]
    targets = routing.forward_targets(first_hop, "lax", arrived_from="nyc")
    assert "nyc" not in targets
    assert targets  # keeps moving toward the destination
