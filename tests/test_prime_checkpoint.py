"""Unit tests for checkpointing and state-transfer proofs."""

import pytest

from repro.crypto import FastCrypto, digest
from repro.prime import CheckpointManager, CheckpointMsg, PrimeConfig, SignedMessage


@pytest.fixture
def setup():
    names = tuple(f"r{i}" for i in range(6))
    config = PrimeConfig(names)
    crypto = FastCrypto()
    manager = CheckpointManager(config)

    def vote(sender, seq, state_digest):
        msg = CheckpointMsg(sender, seq, state_digest)
        return SignedMessage(msg, crypto.sign(sender, msg)), msg

    def verify(signed):
        return crypto.verify(signed.signature, signed.payload)

    return config, crypto, manager, vote, verify


def test_becomes_stable_at_quorum(setup):
    config, crypto, manager, vote, verify = setup
    for index in range(config.quorum - 1):
        signed, msg = vote(f"r{index}", 50, "d1")
        assert manager.add_vote(signed, msg) is None
    signed, msg = vote(f"r{config.quorum - 1}", 50, "d1")
    assert manager.add_vote(signed, msg) == 50
    assert manager.stable_seq == 50
    assert manager.stable_digest == "d1"
    assert len(manager.stable_proof) == config.quorum


def test_mismatched_digests_do_not_stabilize(setup):
    config, crypto, manager, vote, verify = setup
    for index in range(5):
        signed, msg = vote(f"r{index}", 50, f"d{index}")
        assert manager.add_vote(signed, msg) is None
    assert manager.stable_seq == 0


def test_votes_below_stable_ignored(setup):
    config, crypto, manager, vote, verify = setup
    for index in range(config.quorum):
        signed, msg = vote(f"r{index}", 50, "d")
        manager.add_vote(signed, msg)
    signed, msg = vote("r5", 40, "old")
    assert manager.add_vote(signed, msg) is None


def test_record_own_keeps_two_snapshots(setup):
    config, crypto, manager, vote, verify = setup
    for seq in (50, 100, 150):
        manager.record_own(seq, {"state": seq})
    assert manager.snapshot_at(50) is None
    assert manager.snapshot_at(100) == {"state": 100}
    assert manager.snapshot_at(150) == {"state": 150}


def test_stable_snapshot_requires_matching_digest(setup):
    config, crypto, manager, vote, verify = setup
    snapshot = {"state": 1}
    state_digest = manager.record_own(50, snapshot)
    for index in range(config.quorum):
        signed, msg = vote(f"r{index}", 50, state_digest)
        manager.add_vote(signed, msg)
    assert manager.stable_snapshot() == snapshot


def test_stable_snapshot_none_when_diverged(setup):
    config, crypto, manager, vote, verify = setup
    manager.record_own(50, {"state": "mine"})
    for index in range(config.quorum):
        signed, msg = vote(f"r{index}", 50, "other-digest")
        manager.add_vote(signed, msg)
    assert manager.stable_snapshot() is None  # never serve diverged state


def test_verify_proof_accepts_valid(setup):
    config, crypto, manager, vote, verify = setup
    proof = tuple(vote(f"r{i}", 50, "d")[0] for i in range(config.quorum))
    assert manager.verify_proof(50, "d", proof, verify)


def test_verify_proof_rejects_below_quorum(setup):
    config, crypto, manager, vote, verify = setup
    proof = tuple(vote(f"r{i}", 50, "d")[0] for i in range(config.quorum - 1))
    assert not manager.verify_proof(50, "d", proof, verify)


def test_verify_proof_rejects_duplicate_senders(setup):
    config, crypto, manager, vote, verify = setup
    one = vote("r0", 50, "d")[0]
    assert not manager.verify_proof(50, "d", (one,) * config.quorum, verify)


def test_verify_proof_rejects_wrong_seq_or_digest(setup):
    config, crypto, manager, vote, verify = setup
    proof = tuple(vote(f"r{i}", 50, "d")[0] for i in range(config.quorum))
    assert not manager.verify_proof(51, "d", proof, verify)
    assert not manager.verify_proof(50, "other", proof, verify)


def test_verify_proof_rejects_forged_signature(setup):
    config, crypto, manager, vote, verify = setup
    msg = CheckpointMsg("r0", 50, "d")
    forged = SignedMessage(msg, crypto.sign("r1", msg))  # signer mismatch
    rest = tuple(vote(f"r{i}", 50, "d")[0] for i in range(1, config.quorum))
    assert not manager.verify_proof(50, "d", (forged,) + rest, verify)


def test_genesis_proof_trivially_valid(setup):
    config, crypto, manager, vote, verify = setup
    assert manager.verify_proof(0, "anything", (), verify)


def test_adopt_stable_moves_forward_only(setup):
    config, crypto, manager, vote, verify = setup
    manager.adopt_stable(100, "d", ())
    assert manager.stable_seq == 100
    manager.adopt_stable(50, "older", ())
    assert manager.stable_seq == 100


def test_reset_clears_everything(setup):
    config, crypto, manager, vote, verify = setup
    manager.record_own(50, {"s": 1})
    manager.adopt_stable(50, "d", ())
    manager.reset()
    assert manager.stable_seq == 0
    assert manager.stable_snapshot() is None
