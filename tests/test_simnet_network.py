"""Unit tests for the network model."""

import pytest

from repro.simnet import LinkSpec, Network, Process, Simulator


class Sink(Process):
    def __init__(self, name, simulator, network):
        super().__init__(name, simulator, network)
        self.received = []

    def on_message(self, src, payload):
        self.received.append((self.simulator.now, src, payload))


@pytest.fixture
def net():
    sim = Simulator(seed=1)
    network = Network(sim, LinkSpec(latency_ms=2.0))
    a = Sink("a", sim, network)
    b = Sink("b", sim, network)
    return sim, network, a, b


def test_basic_delivery(net):
    sim, network, a, b = net
    a.send("b", "hello")
    sim.run()
    assert len(b.received) == 1
    assert b.received[0][1] == "a"
    assert b.received[0][2] == "hello"


def test_latency_applied(net):
    sim, network, a, b = net
    a.send("b", "x")
    sim.run()
    assert b.received[0][0] == pytest.approx(2.0)


def test_jitter_bounded():
    sim = Simulator(seed=3)
    network = Network(sim, LinkSpec(latency_ms=2.0, jitter_ms=1.0))
    a = Sink("a", sim, network)
    b = Sink("b", sim, network)
    for _ in range(50):
        a.send("b", "x")
    sim.run()
    for at, _, _ in b.received:
        assert 2.0 <= at < 3.0


def test_loss_drops_fraction():
    sim = Simulator(seed=3)
    network = Network(sim, LinkSpec(latency_ms=1.0, loss=0.5))
    a = Sink("a", sim, network)
    b = Sink("b", sim, network)
    for _ in range(400):
        a.send("b", "x")
    sim.run()
    assert 100 < len(b.received) < 300
    assert network.stats.dropped_loss == 400 - len(b.received)


def test_per_link_spec_overrides_default(net):
    sim, network, a, b = net
    network.set_link("a", "b", LinkSpec(latency_ms=10.0))
    a.send("b", "x")
    sim.run()
    assert b.received[0][0] == pytest.approx(10.0)


def test_symmetric_link_spec(net):
    sim, network, a, b = net
    network.set_link("a", "b", LinkSpec(latency_ms=10.0), symmetric=True)
    b.send("a", "x")
    sim.run()
    assert a.received[0][0] == pytest.approx(10.0)


def test_asymmetric_link_spec(net):
    sim, network, a, b = net
    network.set_link("a", "b", LinkSpec(latency_ms=10.0), symmetric=False)
    b.send("a", "x")
    sim.run()
    assert a.received[0][0] == pytest.approx(2.0)  # reverse stays default


def test_bandwidth_serialization_queues_messages():
    sim = Simulator(seed=1)
    # 1 Mbps -> 1000 bytes take 8 ms to serialize
    network = Network(sim, LinkSpec(latency_ms=1.0, bandwidth_mbps=1.0))
    a = Sink("a", sim, network)
    b = Sink("b", sim, network)
    a.send("b", "one", size_bytes=1000)
    a.send("b", "two", size_bytes=1000)
    sim.run()
    first, second = (at for at, _, _ in b.received)
    assert first == pytest.approx(9.0)    # 8 serialize + 1 propagate
    assert second == pytest.approx(17.0)  # queued behind the first


def test_partition_blocks_and_heals(net):
    sim, network, a, b = net
    heal = network.partition(["a"], ["b"])
    a.send("b", "lost")
    sim.run()
    assert b.received == []
    assert network.stats.dropped_partition == 1
    heal()
    a.send("b", "through")
    sim.run()
    assert len(b.received) == 1


def test_partition_is_bidirectional(net):
    sim, network, a, b = net
    network.partition(["a"], ["b"])
    b.send("a", "x")
    sim.run()
    assert a.received == []


def test_filter_can_drop(net):
    sim, network, a, b = net
    network.add_filter(lambda s, d, p: None if p == "bad" else p)
    a.send("b", "bad")
    a.send("b", "good")
    sim.run()
    assert [p for _, _, p in b.received] == ["good"]
    assert network.stats.dropped_filter == 1


def test_filter_can_rewrite(net):
    sim, network, a, b = net
    remove = network.add_filter(lambda s, d, p: p.upper())
    a.send("b", "x")
    sim.run()
    remove()
    a.send("b", "y")
    sim.run()
    assert [p for _, _, p in b.received] == ["X", "y"]


def test_degrade_link_adds_delay_and_restores(net):
    sim, network, a, b = net
    restore = network.degrade_link("a", "b", extra_delay_ms=20.0)
    a.send("b", "slow")
    sim.run()
    restore()
    a.send("b", "fast")
    sim.run()
    slow, fast = b.received
    assert slow[0] == pytest.approx(22.0)
    assert fast[0] - slow[0] == pytest.approx(2.0)


def test_degrade_link_adds_loss():
    sim = Simulator(seed=9)
    network = Network(sim, LinkSpec(latency_ms=1.0))
    a = Sink("a", sim, network)
    b = Sink("b", sim, network)
    network.degrade_link("a", "b", extra_loss=1.0)
    for _ in range(10):
        a.send("b", "x")
    sim.run()
    assert b.received == []


def test_block_link_and_unblock(net):
    sim, network, a, b = net
    unblock = network.block_link("a", "b")
    a.send("b", "x")
    sim.run()
    assert b.received == []
    unblock()
    a.send("b", "y")
    sim.run()
    assert len(b.received) == 1


def test_send_to_unknown_destination_returns_false(net):
    sim, network, a, b = net
    assert a.send("nobody", "x") is False
    assert network.stats.dropped_down == 1


def test_crashed_destination_drops(net):
    sim, network, a, b = net
    a.send("b", "x")
    b.crash()
    sim.run()
    assert b.received == []


def test_crashed_sender_cannot_send(net):
    sim, network, a, b = net
    a.crash()
    assert a.send("b", "x") is False


def test_broadcast_counts(net):
    sim, network, a, b = net
    c = Sink("c", sim, network)
    count = network.broadcast("a", ["b", "c", "missing"], "x")
    sim.run()
    assert count == 2
    assert len(b.received) == 1 and len(c.received) == 1


def test_duplicate_registration_rejected(net):
    sim, network, a, b = net
    with pytest.raises(ValueError):
        Sink("a", sim, network)


def test_stats_counters(net):
    sim, network, a, b = net
    a.send("b", "x")
    sim.run()
    assert network.stats.sent == 1
    assert network.stats.delivered == 1
    assert network.stats.bytes_sent == 256
