"""Tests for the at-most-once client filter."""

from repro.prime.dedup import ClientDedup


def test_fresh_sequence_not_duplicate():
    dedup = ClientDedup()
    assert not dedup.is_duplicate("c", 1)


def test_marked_sequence_is_duplicate():
    dedup = ClientDedup()
    dedup.mark("c", 1)
    assert dedup.is_duplicate("c", 1)
    assert not dedup.is_duplicate("c", 2)


def test_out_of_order_marks_accepted():
    dedup = ClientDedup()
    dedup.mark("c", 3)
    assert not dedup.is_duplicate("c", 1)
    dedup.mark("c", 1)
    assert dedup.is_duplicate("c", 1)
    assert not dedup.is_duplicate("c", 2)
    dedup.mark("c", 2)
    for seq in (1, 2, 3):
        assert dedup.is_duplicate("c", seq)


def test_contiguous_floor_advances():
    dedup = ClientDedup()
    for seq in (2, 1, 3):
        dedup.mark("c", seq)
    assert dedup._low["c"] == 3
    assert dedup._recent["c"] == set()


def test_clients_independent():
    dedup = ClientDedup()
    dedup.mark("a", 1)
    assert not dedup.is_duplicate("b", 1)


def test_highest():
    dedup = ClientDedup()
    dedup.mark("c", 5)
    dedup.mark("c", 2)
    assert dedup.highest("c") == 5


def test_window_forces_floor():
    dedup = ClientDedup(window=4)
    for seq in range(10, 20):  # leave 1..9 as a permanent gap
        dedup.mark("c", seq)
    # the floor advanced past the gap: old seqs count as duplicates
    assert dedup.is_duplicate("c", 5)


def test_snapshot_restore_roundtrip():
    dedup = ClientDedup()
    dedup.mark("c", 1)
    dedup.mark("c", 5)
    dedup.mark("d", 2)
    snapshot = dedup.snapshot()
    other = ClientDedup()
    other.restore(snapshot)
    for client, seq, expect in (("c", 1, True), ("c", 5, True),
                                ("c", 3, False), ("d", 2, True)):
        assert other.is_duplicate(client, seq) == expect


def test_snapshot_is_encodable():
    from repro.crypto import encode

    dedup = ClientDedup()
    dedup.mark("c", 1)
    dedup.mark("c", 7)
    encode(dedup.snapshot())  # must not raise


def test_snapshot_deterministic():
    a = ClientDedup()
    b = ClientDedup()
    for seq in (4, 1, 2, 9):
        a.mark("x", seq)
        b.mark("x", seq)
    assert a.snapshot() == b.snapshot()
