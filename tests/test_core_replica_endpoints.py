"""Focused tests for SpireReplica delivery and the proxy/HMI endpoints."""

import pytest

from repro.core import (
    BreakerCommand,
    DeliveryShare,
    SpireDeployment,
    SpireOptions,
    StatusReading,
    UpdateSubmission,
)
from repro.prime.node import sign_client_update


@pytest.fixture
def deployment():
    dep = SpireDeployment(SpireOptions(
        num_substations=2, poll_interval_ms=300.0, seed=15,
    ))
    dep.start()
    dep.run_for(1500)
    return dep


def collect_shares(deployment, endpoint_name):
    """Intercept DeliveryShare messages arriving at an endpoint."""
    seen = []
    from repro.spines.messages import OverlayDeliver

    def spy(src, dst, payload):
        if (
            isinstance(payload, OverlayDeliver)
            and dst == endpoint_name
            and isinstance(payload.data.payload, DeliveryShare)
        ):
            seen.append(payload.data.payload)
        return payload

    deployment.network.add_filter(spy)
    return seen


def test_replica_sends_shares_to_origin_and_subscribers(deployment):
    proxy_shares = collect_shares(deployment, "proxy:field")
    hmi_shares = collect_shares(deployment, "hmi:0")
    deployment.run_for(1000)
    assert proxy_shares, "origin proxy must receive shares for its updates"
    assert hmi_shares, "HMI subscribers must receive every delivery"
    senders = {share.sender for share in hmi_shares}
    assert len(senders) >= deployment.prime_config.quorum


def test_command_shares_reach_target_proxy(deployment):
    hmi = deployment.hmis[0]
    substation = sorted(deployment.grid.substations)[0]
    breaker = sorted(deployment.grid.substations[substation].breakers)[0]
    proxy_shares = collect_shares(deployment, "proxy:field")
    hmi.operate_breaker(substation, breaker, close=False)
    deployment.run_for(1500)
    command_shares = [
        share for share in proxy_shares if share.record.kind == "command"
    ]
    assert command_shares
    assert all(
        isinstance(share.record.payload, BreakerCommand)
        for share in command_shares
    )


def test_duplicate_submission_gets_cached_share_redelivery(deployment):
    """A client that missed its delivery can retry an executed update and
    still receive a share (liveness of the ack path)."""
    replica = deployment.replicas[0]
    crypto = deployment.crypto
    update = sign_client_update(
        crypto, "client:probe", 1,
        StatusReading("subX", 1, 0.0, (("energized", 1.0),), ()),
    )
    # first submission executes normally
    replica.submit(update)
    deployment.run_for(1000)
    assert replica.client_dedup.is_duplicate("client:probe", 1)
    # direct duplicate submission (as the overlay would deliver it)
    probe_shares = []
    original_send = replica.transport.send

    def spy(dst, payload, size_bytes=256):
        if dst == "client:probe" and isinstance(payload, DeliveryShare):
            probe_shares.append(payload)
        return original_send(dst, payload, size_bytes)

    replica.transport.send = spy
    replica.on_message("anyone", UpdateSubmission(update))
    assert probe_shares, "duplicate submission must re-trigger the share"
    assert probe_shares[0].record.client_seq == 1


def test_share_corruptor_hook_applied(deployment):
    from repro.crypto.provider import ThresholdShare

    replica = deployment.replicas[1]
    replica.share_corruptor = lambda share: ThresholdShare(
        share.group, share.index, "junk"
    )
    hmi_shares = collect_shares(deployment, "hmi:0")
    deployment.run_for(800)
    from_corrupt = [s for s in hmi_shares if s.sender == replica.name]
    assert from_corrupt
    assert all(s.share.value == "junk" for s in from_corrupt)


def test_proxy_poll_timeout_recovers(deployment):
    """Killing an RTU stalls its polls but not the other devices."""
    substations = sorted(deployment.rtus)
    deployment.rtus[substations[0]].crash()
    before = deployment.proxy.readings_submitted
    deployment.run_for(3000)
    assert deployment.proxy.polls_timed_out > 0
    assert deployment.proxy.readings_submitted > before  # others continue
    master = deployment.master_state()
    alive = substations[1]
    assert master.latest_status[alive].poll_seq > 3


def test_hmi_view_ignores_stale_order(deployment):
    hmi = deployment.hmis[0]
    deployment.run_for(1000)
    substation = sorted(hmi.view)[0]
    order_index, reading = hmi.view[substation]
    from repro.core.update import DeliveryRecord

    stale = DeliveryRecord(
        "status", "proxy:field", 999_999, order_index - 1,
        StatusReading(substation, 0, 0.0, (("energized", 0.0),), ()),
    )
    # simulate verified delivery of an OLDER record
    hmi.view[substation] = (order_index, reading)
    current = hmi.view[substation]
    if current[0] >= stale.order_index:
        pass  # the HMI's guard keeps the newer reading
    assert hmi.view[substation][1].poll_seq == reading.poll_seq
