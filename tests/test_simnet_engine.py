"""Unit tests for the discrete-event engine."""

import pytest

from repro.simnet import SimulationError, Simulator


def test_initial_clock_is_zero():
    assert Simulator().now == 0.0


def test_schedule_runs_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, fired.append, "b")
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(9.0, fired.append, "c")
    sim.run()
    assert fired == ["a", "b", "c"]


def test_clock_advances_to_event_time():
    sim = Simulator()
    times = []
    sim.schedule(3.5, lambda: times.append(sim.now))
    sim.run()
    assert times == [3.5]
    assert sim.now == 3.5


def test_simultaneous_events_fire_in_insertion_order():
    sim = Simulator()
    fired = []
    for tag in range(10):
        sim.schedule(1.0, fired.append, tag)
    sim.run()
    assert fired == list(range(10))


def test_priority_orders_simultaneous_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "late", priority=1)
    sim.schedule(1.0, fired.append, "early", priority=0)
    sim.run()
    assert fired == ["early", "late"]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_at_in_past_rejected():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(1.0, lambda: None)


def test_timer_cancel_prevents_firing():
    sim = Simulator()
    fired = []
    timer = sim.schedule(1.0, fired.append, "x")
    timer.cancel()
    sim.run()
    assert fired == []


def test_timer_active_and_fire_at():
    sim = Simulator()
    timer = sim.schedule(4.0, lambda: None)
    assert timer.active
    assert timer.fire_at == 4.0
    timer.cancel()
    assert not timer.active


def test_run_until_stops_at_time():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(10.0, fired.append, 10)
    sim.run_until(5.0)
    assert fired == [1]
    assert sim.now == 5.0
    sim.run()
    assert fired == [1, 10]


def test_run_until_backwards_rejected():
    sim = Simulator()
    sim.run_until(10.0)
    with pytest.raises(SimulationError):
        sim.run_until(5.0)


def test_run_for_advances_relative():
    sim = Simulator()
    sim.run_for(3.0)
    sim.run_for(4.0)
    assert sim.now == 7.0


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(1.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert sim.now == 4.0


def test_stop_halts_run():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(2.0, sim.stop)
    sim.schedule(3.0, fired.append, 3)
    sim.run()
    assert fired == [1]


def test_max_events_bound():
    sim = Simulator()
    for i in range(10):
        sim.schedule(float(i + 1), lambda: None)
    sim.run(max_events=4)
    assert sim.events_processed == 4


def test_call_every_repeats_until_stopped():
    sim = Simulator()
    fired = []
    stop = sim.call_every(10.0, lambda: fired.append(sim.now))
    sim.run_until(45.0)
    stop()
    sim.run_until(100.0)
    assert fired == [10.0, 20.0, 30.0, 40.0]


def test_call_every_first_delay():
    sim = Simulator()
    fired = []
    sim.call_every(10.0, lambda: fired.append(sim.now), first_delay=1.0)
    sim.run_until(25.0)
    assert fired == [1.0, 11.0, 21.0]


def test_call_every_invalid_interval():
    with pytest.raises(SimulationError):
        Simulator().call_every(0.0, lambda: None)


def test_call_every_jitter_bounded():
    sim = Simulator(seed=5)
    fired = []
    sim.call_every(10.0, lambda: fired.append(sim.now), jitter=2.0)
    sim.run_until(200.0)
    gaps = [b - a for a, b in zip(fired, fired[1:])]
    assert all(10.0 <= gap < 12.0 for gap in gaps)


def test_rng_streams_are_deterministic():
    a = Simulator(seed=1).rng("x").random()
    b = Simulator(seed=1).rng("x").random()
    assert a == b


def test_rng_streams_are_independent():
    sim = Simulator(seed=1)
    first = sim.rng("a").random()
    sim2 = Simulator(seed=1)
    sim2.rng("b").random()  # draw from an unrelated stream first
    second = sim2.rng("a").random()
    assert first == second


def test_rng_different_seeds_differ():
    assert Simulator(seed=1).rng("x").random() != Simulator(seed=2).rng("x").random()


def test_step_returns_false_when_empty():
    sim = Simulator()
    assert sim.step() is False


def test_pending_events_counts_queue():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending_events == 2
