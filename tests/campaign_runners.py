"""Custom campaign runners used by ``test_parallel_campaign.py``.

These live in a plain module (not a ``test_*`` file) so spawned workers
can import them by ``"campaign_runners:<name>"`` path — the tests dir is
on ``sys.path`` under pytest, and spawn children inherit the parent's
resolved ``sys.path``.
"""

from __future__ import annotations

import os
import time


def echo(options, schedule):
    """Deterministic payload derived from options; optional sleep.

    ``options`` is a plain dict: ``value`` keys the payload, ``delay_s``
    shuffles completion order under parallel execution, and the
    ``wall_runtime_s`` stat checks the host-key stripping path.
    """
    delay = options.get("delay_s", 0.0)
    if delay:
        time.sleep(delay)
    return {
        "ok": True,
        "fingerprint": f"echo-{options['value']}",
        "stats": {"value": options["value"], "wall_runtime_s": delay},
        "obs_snapshot": {
            "metrics": {"echo.calls": 1},
            "events": {"recorded": 2, "dropped": 0, "kinds": {"echo": 2}},
        },
    }


def crash(options, schedule):
    """Hard-kill the worker process (no Python-level cleanup)."""
    os._exit(23)


def hang(options, schedule):
    """Overrun any reasonable per-task deadline."""
    time.sleep(120.0)
    return {"ok": True}


def boom(options, schedule):
    raise ValueError("scripted runner failure")


def unpicklable(options, schedule):
    """Result payload that cannot cross the process boundary."""
    return {"ok": True, "closure": lambda: None}
