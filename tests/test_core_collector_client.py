"""Tests for delivery-share collection and client submission management."""

import pytest

from repro.core import DeliveryCollector, DeliveryRecord, DeliveryShare, SubmissionManager
from repro.obs import LatencyTracker
from repro.crypto import FastCrypto, ThresholdShare


@pytest.fixture
def crypto():
    provider = FastCrypto(seed="coll")
    provider.create_threshold_group("g", 6, 2)
    return provider


def record(seq=1, kind="status"):
    return DeliveryRecord(kind, "proxy:a", seq, order_index=seq, payload=("p", seq))


def share_for(crypto, rec, index, sender=None):
    share = crypto.threshold_sign_share("g", index, rec)
    return DeliveryShare(sender or f"replica:{index}", rec, share)


def test_combines_at_threshold(crypto):
    collector = DeliveryCollector(crypto, "g")
    rec = record()
    assert collector.add(share_for(crypto, rec, 1)) is None
    result = collector.add(share_for(crypto, rec, 2))
    assert result is not None
    combined_record, signature = result
    assert combined_record == rec
    assert crypto.threshold_verify(signature, rec)


def test_deduplicates_records(crypto):
    collector = DeliveryCollector(crypto, "g")
    rec = record()
    collector.add(share_for(crypto, rec, 1))
    assert collector.add(share_for(crypto, rec, 2)) is not None
    # further shares for the same record do nothing
    assert collector.add(share_for(crypto, rec, 3)) is None
    assert collector.verified == 1


def test_distinct_records_both_verify(crypto):
    collector = DeliveryCollector(crypto, "g")
    for seq in (1, 2):
        rec = record(seq)
        collector.add(share_for(crypto, rec, 1))
        assert collector.add(share_for(crypto, rec, 2)) is not None
    assert collector.verified == 2


def test_single_share_insufficient(crypto):
    collector = DeliveryCollector(crypto, "g")
    assert collector.add(share_for(crypto, record(), 1)) is None
    assert collector.pending_records == 1


def test_same_sender_does_not_double_count(crypto):
    collector = DeliveryCollector(crypto, "g")
    rec = record()
    collector.add(share_for(crypto, rec, 1, sender="replica:1"))
    assert collector.add(share_for(crypto, rec, 1, sender="replica:1")) is None


def test_corrupt_share_does_not_block(crypto):
    collector = DeliveryCollector(crypto, "g")
    rec = record()
    bogus = DeliveryShare("replica:9", rec, ThresholdShare("g", 3, "junk"))
    collector.add(bogus)
    collector.add(share_for(crypto, rec, 1))
    result = collector.add(share_for(crypto, rec, 2))
    assert result is not None


def test_forged_record_variant_cannot_combine(crypto):
    """A compromised replica vouching a different payload for the same key
    never reaches the threshold with honest shares."""
    collector = DeliveryCollector(crypto, "g")
    honest = record()
    forged = DeliveryRecord("status", "proxy:a", 1, order_index=1,
                            payload=("evil",))
    collector.add(share_for(crypto, forged, 1))
    assert collector.add(share_for(crypto, honest, 2)) is None  # split 1/1
    result = collector.add(share_for(crypto, honest, 3))
    assert result is not None and result[0] == honest


# ----------------------------------------------------------------------
# SubmissionManager
# ----------------------------------------------------------------------


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def manager(sent, clock, recorder=None, **kwargs):
    return SubmissionManager(
        client_name="client:a",
        crypto=FastCrypto(seed="sm"),
        replicas=["r0", "r1", "r2"],
        send_fn=lambda replica, payload, size: sent.append((replica, payload)) or True,
        now_fn=clock,
        recorder=recorder,
        **kwargs,
    )


def test_submit_signs_and_sends():
    sent = []
    clock = FakeClock()
    sm = manager(sent, clock, start_index=0)
    key = sm.submit(("payload",))
    assert key == ("client:a", 1)
    assert len(sent) == 1
    assert sent[0][0] == "r0"
    update = sent[0][1].update
    assert update.client == "client:a" and update.client_seq == 1
    assert update.signature is not None


def test_sequences_increment():
    sent = []
    sm = manager(sent, FakeClock())
    assert sm.submit("a")[1] == 1
    assert sm.submit("b")[1] == 2


def test_ack_clears_outstanding_and_measures():
    sent = []
    clock = FakeClock()
    recorder = LatencyTracker()
    sm = manager(sent, clock, recorder=recorder)
    key = sm.submit("x")
    clock.now = 42.0
    latency = sm.acknowledged(*key)
    assert latency == pytest.approx(42.0)
    assert sm.outstanding == 0
    assert recorder.stats().count == 1


def test_ack_for_unknown_key_ignored():
    sm = manager([], FakeClock())
    assert sm.acknowledged("client:a", 99) is None
    assert sm.acknowledged("client:other", 1) is None


def test_retry_rotates_target():
    sent = []
    clock = FakeClock()
    sm = manager(sent, clock, resubmit_timeout_ms=100.0, start_index=0)
    sm.submit("x")
    clock.now = 50.0
    assert sm.retry_tick() == 0  # not timed out yet
    clock.now = 150.0
    assert sm.retry_tick() == 1
    assert sent[-1][0] == "r1"  # failover to the next replica
    clock.now = 300.0
    sm.retry_tick()
    assert sent[-1][0] == "r2"
    assert sm.retries_total == 2


def test_retry_preserves_update_identity():
    sent = []
    clock = FakeClock()
    sm = manager(sent, clock, resubmit_timeout_ms=10.0)
    key = sm.submit("x")
    clock.now = 20.0
    sm.retry_tick()
    first, second = (payload.update for _, payload in sent)
    assert first == second  # same signed update, safe to dedup


def test_requires_replicas():
    with pytest.raises(ValueError):
        SubmissionManager("c", FastCrypto(), [], lambda *a: True, lambda: 0.0)
