"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.crypto import FastCrypto, RealCrypto
from repro.prime import (
    LoggingApp,
    PrimeNode,
    lan_prime_config,
    sign_client_update,
)
from repro.obs import EventLog
from repro.simnet import LinkSpec, Network, Simulator


@pytest.fixture
def simulator():
    return Simulator(seed=42)


@pytest.fixture
def network(simulator):
    return Network(simulator, LinkSpec(latency_ms=0.3, jitter_ms=0.1))


@pytest.fixture
def crypto():
    return FastCrypto(seed="tests")


@pytest.fixture(params=["fast", "real"])
def any_crypto(request):
    """Parametrized provider: every test using it runs on both backends."""
    if request.param == "fast":
        return FastCrypto(seed="tests")
    return RealCrypto(seed="tests", bits=512)


class PrimeCluster:
    """A ready-to-use Prime cluster on a direct LAN network."""

    def __init__(self, n=6, f=1, k=1, seed=7, latency_ms=0.3, loss=0.0,
                 app_factory=LoggingApp, crypto=None, config=None):
        self.simulator = Simulator(seed=seed)
        self.network = Network(
            self.simulator, LinkSpec(latency_ms=latency_ms, jitter_ms=0.1, loss=loss)
        )
        self.crypto = crypto or FastCrypto(seed=f"cluster/{seed}")
        self.trace = EventLog(now_fn=lambda: self.simulator.now)
        names = tuple(f"replica:{i}" for i in range(n))
        self.config = config or lan_prime_config(names, f=f, k=k)
        self.nodes = [
            PrimeNode(name, self.simulator, self.network, self.config,
                      self.crypto, app_factory(), trace=self.trace)
            for name in names
        ]
        self._client_seq = 0

    def start(self, warmup_ms=50.0):
        for node in self.nodes:
            node.start()
        self.simulator.run_for(warmup_ms)
        return self

    def submit(self, payload, node_index=0, client="client:test"):
        self._client_seq += 1
        update = sign_client_update(self.crypto, client, self._client_seq, payload)
        return self.nodes[node_index].submit(update), self._client_seq

    def pump(self, count, gap_ms=20.0, node_index=None):
        """Submit ``count`` updates, advancing virtual time between them."""
        for i in range(count):
            index = (i % len(self.nodes)) if node_index is None else node_index
            node = self.nodes[index]
            if not node.is_up:
                node = next(n for n in self.nodes if n.is_up)
            self.submit(("op", self._client_seq + 1), self.nodes.index(node))
            self.simulator.run_for(gap_ms)

    def run_for(self, ms):
        self.simulator.run_for(ms)

    def logs(self, only_up=False):
        return [
            tuple(node.app.log)
            for node in self.nodes
            if node.is_up or not only_up
        ]

    def assert_safety(self, only_up=True):
        """Every pair of (healthy) replicas executed consistent prefixes."""
        logs = [tuple(n.app.log) for n in self.nodes if n.is_up or not only_up]
        reference = max(logs, key=len)
        for log in logs:
            assert log == reference[: len(log)], "divergent execution order"
        return reference


@pytest.fixture
def cluster():
    return PrimeCluster().start()


@pytest.fixture
def cluster_factory():
    return PrimeCluster
