"""Tests for the pluggable crypto providers.

``any_crypto`` is parametrized over FastCrypto and RealCrypto, so every
test here asserts behavioural parity between the two backends.
"""

import pytest

from repro.crypto import Signature, ThresholdShare, ThresholdSignature


def test_sign_verify_roundtrip(any_crypto):
    sig = any_crypto.sign("alice", ("msg", 1))
    assert any_crypto.verify(sig, ("msg", 1))


def test_verify_rejects_wrong_message(any_crypto):
    sig = any_crypto.sign("alice", ("msg", 1))
    assert not any_crypto.verify(sig, ("msg", 2))


def test_verify_rejects_wrong_signer(any_crypto):
    sig = any_crypto.sign("alice", "m")
    forged = Signature("bob", sig.value)
    assert not any_crypto.verify(forged, "m")


def test_signatures_bound_to_signer(any_crypto):
    assert any_crypto.sign("alice", "m") != any_crypto.sign("bob", "m")


def test_mac_roundtrip(any_crypto):
    tag = any_crypto.mac("a", "b", {"k": 1})
    assert any_crypto.check_mac("a", "b", {"k": 1}, tag)


def test_mac_symmetric_key(any_crypto):
    tag = any_crypto.mac("a", "b", "m")
    assert any_crypto.check_mac("b", "a", "m", tag)


def test_mac_rejects_tamper(any_crypto):
    tag = any_crypto.mac("a", "b", "m")
    assert not any_crypto.check_mac("a", "b", "other", tag)
    assert not any_crypto.check_mac("a", "c", "m", tag)


def test_threshold_group_lifecycle(any_crypto):
    any_crypto.create_threshold_group("g", 6, 2)
    assert any_crypto.threshold_parameters("g") == (6, 2)
    # idempotent re-creation with identical parameters
    any_crypto.create_threshold_group("g", 6, 2)
    with pytest.raises(ValueError):
        any_crypto.create_threshold_group("g", 6, 3)


def test_threshold_combine_and_verify(any_crypto):
    any_crypto.create_threshold_group("tg", 6, 2)
    message = ("record", 7)
    shares = [
        any_crypto.threshold_sign_share("tg", index, message)
        for index in (2, 5)
    ]
    combined = any_crypto.threshold_combine("tg", message, shares)
    assert combined is not None
    assert any_crypto.threshold_verify(combined, message)
    assert not any_crypto.threshold_verify(combined, ("record", 8))


def test_threshold_below_threshold_fails(any_crypto):
    any_crypto.create_threshold_group("tg2", 6, 3)
    message = "m"
    shares = [any_crypto.threshold_sign_share("tg2", i, message) for i in (1, 2)]
    assert any_crypto.threshold_combine("tg2", message, shares) is None


def test_threshold_duplicate_indices_do_not_count(any_crypto):
    any_crypto.create_threshold_group("tg3", 6, 2)
    message = "m"
    share = any_crypto.threshold_sign_share("tg3", 1, message)
    assert any_crypto.threshold_combine("tg3", message, [share, share]) is None


def test_threshold_corrupt_share_tolerated(any_crypto):
    any_crypto.create_threshold_group("tg4", 6, 2)
    message = "m"
    shares = [
        any_crypto.threshold_sign_share("tg4", 1, message),
        ThresholdShare("tg4", 2, "garbage"),
        any_crypto.threshold_sign_share("tg4", 3, message),
    ]
    combined = any_crypto.threshold_combine("tg4", message, shares)
    assert combined is not None
    assert any_crypto.threshold_verify(combined, message)


def test_threshold_shares_over_wrong_message_rejected(any_crypto):
    any_crypto.create_threshold_group("tg5", 6, 2)
    shares = [
        any_crypto.threshold_sign_share("tg5", 1, "a"),
        any_crypto.threshold_sign_share("tg5", 2, "b"),
    ]
    assert any_crypto.threshold_combine("tg5", "a", shares) is None


def test_threshold_verify_unknown_group(any_crypto):
    fake = ThresholdSignature("nope", "value")
    assert not any_crypto.threshold_verify(fake, "m")


def test_threshold_share_from_other_group_ignored(any_crypto):
    any_crypto.create_threshold_group("g1", 6, 2)
    any_crypto.create_threshold_group("g2", 6, 2)
    shares = [
        any_crypto.threshold_sign_share("g1", 1, "m"),
        any_crypto.threshold_sign_share("g2", 2, "m"),
    ]
    assert any_crypto.threshold_combine("g1", "m", shares) is None


def test_fast_share_index_out_of_range():
    from repro.crypto import FastCrypto

    provider = FastCrypto()
    provider.create_threshold_group("g", 4, 2)
    with pytest.raises(ValueError):
        provider.threshold_sign_share("g", 9, "m")


def test_providers_deterministic_per_seed():
    from repro.crypto import FastCrypto

    a = FastCrypto(seed="s").sign("x", "m")
    b = FastCrypto(seed="s").sign("x", "m")
    c = FastCrypto(seed="t").sign("x", "m")
    assert a == b
    assert a != c
