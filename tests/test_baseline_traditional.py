"""Tests for the traditional SCADA baseline."""

import pytest

from repro.baselines import TCommand, TraditionalDeployment
from repro.baselines.traditional import TOperatorCommand


@pytest.fixture
def deployment():
    dep = TraditionalDeployment(num_substations=4, seed=2)
    dep.start()
    dep.run_for(2000)
    return dep


def test_status_reaches_master(deployment):
    assert len(deployment.primary.latest_status) == 4
    status = deployment.primary.latest_status["sub1"]
    assert status.poll_seq > 5


def test_backup_also_receives_status(deployment):
    assert len(deployment.backup.latest_status) == 4


def test_master_command_operates_breaker(deployment):
    grid = deployment.grid
    substation = sorted(grid.substations)[1]
    breaker_id = sorted(grid.substations[substation].breakers)[0]
    deployment.primary.issue_command(substation, breaker_id, close=False)
    deployment.run_for(200)
    assert grid.breaker_closed(substation, breaker_id) is False


def test_wrong_token_rejected(deployment):
    grid = deployment.grid
    substation = sorted(grid.substations)[0]
    breaker_id = sorted(grid.substations[substation].breakers)[0]
    # attacker without the shared credential sends a command directly
    deployment.primary.send(
        deployment.proxy.name,
        TCommand("wrong-token", substation, breaker_id, False),
    )
    deployment.run_for(200)
    assert grid.breaker_closed(substation, breaker_id) is True


def test_operator_command_via_primary(deployment):
    grid = deployment.grid
    substation = sorted(grid.substations)[2]
    breaker_id = sorted(grid.substations[substation].breakers)[0]
    deployment.proxy.send(
        deployment.primary.name,
        TOperatorCommand(substation, breaker_id, False),
    )
    deployment.run_for(200)
    assert grid.breaker_closed(substation, breaker_id) is False


def test_backup_promotes_on_primary_crash(deployment):
    assert deployment.backup.is_primary is False
    deployment.primary.crash()
    deployment.run_for(5000)
    assert deployment.backup.is_primary is True


def test_single_compromise_grants_full_control(deployment):
    """The baseline's fatal property: one host compromise controls the
    whole field (contrast with Spire's threshold gate)."""
    grid = deployment.grid
    deployment.primary.compromise()
    served_before = grid.served_load_mw()
    for substation in sorted(grid.substations):
        for breaker_id in sorted(grid.substations[substation].breakers):
            deployment.primary.issue_command(substation, breaker_id, close=False)
    deployment.run_for(500)
    assert grid.served_load_mw() == 0.0
    assert grid.served_load_mw() < served_before


def test_no_backup_configuration():
    dep = TraditionalDeployment(num_substations=2, seed=3, with_backup=False)
    dep.start()
    dep.run_for(500)
    assert dep.backup is None
    assert len(dep.primary.latest_status) == 2
