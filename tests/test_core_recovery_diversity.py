"""Tests for proactive recovery scheduling and the diversity model."""

import pytest

from repro.core import DiversityManager, Exploit, ProactiveRecoveryScheduler
from repro.simnet import LinkSpec, Network, Process, Simulator


class Dummy(Process):
    pass


def build(n=6):
    sim = Simulator(seed=3)
    net = Network(sim, LinkSpec())
    replicas = [Dummy(f"r{i}", sim, net) for i in range(n)]
    return sim, net, replicas


def test_round_robin_rotation():
    sim, net, replicas = build()
    scheduler = ProactiveRecoveryScheduler(
        sim, replicas, period_ms=100.0, recovery_duration_ms=10.0
    )
    scheduler.start()
    sim.run_for(650)
    assert scheduler.recoveries_started == 6
    assert scheduler.recoveries_completed == 6
    assert all(r.is_up for r in replicas)


def test_at_most_k_concurrent():
    sim, net, replicas = build()
    # duration longer than the period: without the cap two would overlap
    scheduler = ProactiveRecoveryScheduler(
        sim, replicas, period_ms=50.0, recovery_duration_ms=120.0,
        max_concurrent=1,
    )
    scheduler.start()
    down_counts = []
    sim.call_every(10.0, lambda: down_counts.append(
        sum(1 for r in replicas if not r.is_up)))
    sim.run_for(1000)
    assert max(down_counts) <= 1
    assert scheduler.skipped > 0


def test_max_concurrent_two():
    sim, net, replicas = build()
    scheduler = ProactiveRecoveryScheduler(
        sim, replicas, period_ms=50.0, recovery_duration_ms=120.0,
        max_concurrent=2,
    )
    scheduler.start()
    down_counts = []
    sim.call_every(10.0, lambda: down_counts.append(
        sum(1 for r in replicas if not r.is_up)))
    sim.run_for(1000)
    assert max(down_counts) == 2


def test_skips_already_down_replicas():
    sim, net, replicas = build()
    replicas[0].crash()
    scheduler = ProactiveRecoveryScheduler(
        sim, replicas, period_ms=100.0, recovery_duration_ms=10.0
    )
    scheduler.start()
    sim.run_for(120)
    # first tick skipped r0 (already down) and rejuvenated r1 instead
    assert scheduler.recoveries_started == 1
    assert not replicas[0].is_up


def test_on_rejuvenate_hook_called():
    sim, net, replicas = build()
    rejuvenated = []
    scheduler = ProactiveRecoveryScheduler(
        sim, replicas, period_ms=100.0, recovery_duration_ms=10.0,
        on_rejuvenate=lambda replica: rejuvenated.append(replica.name),
    )
    scheduler.start()
    sim.run_for(250)
    assert rejuvenated == ["r0", "r1"]


def test_stop_halts_rotation():
    sim, net, replicas = build()
    scheduler = ProactiveRecoveryScheduler(
        sim, replicas, period_ms=100.0, recovery_duration_ms=10.0
    )
    scheduler.start()
    sim.run_for(150)
    scheduler.stop()
    sim.run_for(1000)
    assert scheduler.recoveries_started == 1


def test_start_twice_does_not_leak_previous_timer():
    sim, net, replicas = build()
    scheduler = ProactiveRecoveryScheduler(
        sim, replicas, period_ms=100.0, recovery_duration_ms=10.0
    )
    scheduler.start()
    scheduler.start()  # must replace the first timer, not add a second
    sim.run_for(650)
    # with the leaked timer two rotations would run interleaved,
    # doubling the count (12) within the same window
    assert scheduler.recoveries_started == 6
    scheduler.stop()
    sim.run_for(1000)
    assert scheduler.recoveries_started == 6


def test_invalid_max_concurrent():
    sim, net, replicas = build()
    with pytest.raises(ValueError):
        ProactiveRecoveryScheduler(sim, replicas, 100.0, 10.0, max_concurrent=0)


# ----------------------------------------------------------------------
# Diversity
# ----------------------------------------------------------------------


def test_variant_assignment_stable():
    manager = DiversityManager(seed=1)
    assert manager.assign("r0") == manager.assign("r0")


def test_rejuvenation_changes_variant_with_high_probability():
    manager = DiversityManager(variant_space=2 ** 20, seed=1)
    before = manager.assign("r0")
    after = manager.rejuvenate("r0")
    assert manager.variant_of("r0") == after
    assert before != after  # overwhelmingly likely in a 2^20 space


def test_exploit_targets_current_variant():
    manager = DiversityManager(seed=2)
    exploit = manager.exploit_for("r0")
    assert manager.is_vulnerable("r0", exploit)
    manager.rejuvenate("r0")
    assert not manager.is_vulnerable("r0", exploit)


def test_exploit_rarely_transfers_between_replicas():
    manager = DiversityManager(variant_space=2 ** 20, seed=3)
    exploit = manager.exploit_for("r0")
    for index in range(1, 10):
        manager.assign(f"r{index}")
    assert manager.vulnerable_replicas(exploit) == ["r0"]


def test_monoculture_exposure():
    manager = DiversityManager(variant_space=2 ** 20, seed=4)
    replicas = [f"r{i}" for i in range(10)]
    diversified = manager.monoculture_exposure(replicas)
    assert diversified == pytest.approx(0.1)
    # an undiversified fleet: force every replica onto one variant
    for replica in replicas:
        manager._variants[replica] = 7
    assert manager.monoculture_exposure(replicas) == 1.0


def test_variant_space_validation():
    with pytest.raises(ValueError):
        DiversityManager(variant_space=1)
