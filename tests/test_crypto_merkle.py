"""Merkle tree construction and inclusion-proof verification."""

import pytest

from repro.crypto import merkle_proof, merkle_root, verify_merkle_proof
from repro.crypto.merkle import _leaf_hash, _node_hash


def leaves_of(count):
    return [f"leaf-{i}" for i in range(count)]


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------


def test_singleton_root_is_tagged_leaf_hash():
    assert merkle_root(["only"]) == _leaf_hash("only")


def test_two_leaf_root_is_node_of_leaf_hashes():
    root = merkle_root(["a", "b"])
    assert root == _node_hash(_leaf_hash("a"), _leaf_hash("b"))


def test_empty_tree_rejected():
    with pytest.raises(ValueError):
        merkle_root([])


def test_root_deterministic_and_content_sensitive():
    leaves = leaves_of(7)
    assert merkle_root(leaves) == merkle_root(list(leaves))
    changed = leaves[:3] + ["tampered"] + leaves[4:]
    assert merkle_root(changed) != merkle_root(leaves)


def test_leaf_and_node_domains_separated():
    # A one-leaf tree whose leaf equals an internal node's input must not
    # produce that node's hash: leaf and node hashing use distinct tags.
    left, right = _leaf_hash("a"), _leaf_hash("b")
    assert merkle_root([left + right]) != _node_hash(left, right)


# ----------------------------------------------------------------------
# Proof round-trips across shapes
# ----------------------------------------------------------------------


@pytest.mark.parametrize("count", [1, 2, 3, 4, 5, 6, 7, 8, 9, 16, 33])
def test_every_index_verifies(count):
    leaves = leaves_of(count)
    root = merkle_root(leaves)
    for index in range(count):
        proof = merkle_proof(leaves, index)
        assert verify_merkle_proof(leaves[index], index, count, proof, root), (
            f"index {index} of {count}"
        )


@pytest.mark.parametrize("count", [2, 4, 8, 16])
def test_power_of_two_proof_length(count):
    leaves = leaves_of(count)
    expected = count.bit_length() - 1
    for index in range(count):
        assert len(merkle_proof(leaves, index)) == expected


def test_ragged_shapes_have_carried_levels():
    # leaf 4 of a 5-leaf tree is carried up unpaired twice: its proof has
    # a single sibling (the root of the 4-leaf subtree)
    leaves = leaves_of(5)
    assert len(merkle_proof(leaves, 4)) == 1
    assert len(merkle_proof(leaves, 0)) == 3


def test_singleton_proof_is_empty():
    leaves = ["solo"]
    proof = merkle_proof(leaves, 0)
    assert proof == ()
    assert verify_merkle_proof("solo", 0, 1, (), merkle_root(leaves))


# ----------------------------------------------------------------------
# Rejection
# ----------------------------------------------------------------------


@pytest.mark.parametrize("count", [3, 6, 8])
def test_tampered_leaf_rejected(count):
    leaves = leaves_of(count)
    root = merkle_root(leaves)
    for index in range(count):
        proof = merkle_proof(leaves, index)
        assert not verify_merkle_proof("tampered", index, count, proof, root)


def test_wrong_index_rejected():
    leaves = leaves_of(6)
    root = merkle_root(leaves)
    proof = merkle_proof(leaves, 2)
    for wrong in (0, 1, 3, 4, 5):
        assert not verify_merkle_proof(leaves[2], wrong, 6, proof, root)


def test_wrong_count_rejected():
    leaves = leaves_of(6)
    root = merkle_root(leaves)
    proof = merkle_proof(leaves, 2)
    # Counts that change the fold shape along index 2's path are rejected
    # (shape-equivalent counts like 5 fold identically — the batch record
    # binds the true count under the threshold signature, so the verifier
    # is never handed an attacker-chosen count).
    for wrong_count in (1, 2, 3, 12):
        assert not verify_merkle_proof(leaves[2], 2, wrong_count, proof, root)


def test_out_of_range_index_rejected():
    leaves = leaves_of(4)
    root = merkle_root(leaves)
    proof = merkle_proof(leaves, 0)
    assert not verify_merkle_proof(leaves[0], -1, 4, proof, root)
    assert not verify_merkle_proof(leaves[0], 4, 4, proof, root)
    assert not verify_merkle_proof(leaves[0], 0, 0, proof, root)


def test_truncated_and_padded_proofs_rejected():
    leaves = leaves_of(8)
    root = merkle_root(leaves)
    proof = merkle_proof(leaves, 3)
    assert not verify_merkle_proof(leaves[3], 3, 8, proof[:-1], root)
    assert not verify_merkle_proof(leaves[3], 3, 8, proof + (proof[0],), root)


def test_proof_for_wrong_root_rejected():
    leaves = leaves_of(8)
    other_root = merkle_root(leaves_of(9)[:8:][::-1])
    proof = merkle_proof(leaves, 3)
    assert not verify_merkle_proof(leaves[3], 3, 8, proof, other_root)


def test_proof_index_out_of_range_raises():
    leaves = leaves_of(4)
    with pytest.raises(IndexError):
        merkle_proof(leaves, 4)
    with pytest.raises(IndexError):
        merkle_proof(leaves, -1)
