"""Tests for the adaptive intrusion-tolerance control loop (repro.control).

Covers the estimator/policy state machines, signal collection, the
feedback strategy's targeted rejuvenation and quiet fallback, the quorum
floor, decision determinism at fixed seeds, and — critically — that the
default (controller off) recovery path stayed bit-identical with the
pre-refactor scheduler.
"""

import os

import pytest

from repro.chaos import ChaosEngine, ChaosOptions, QuorumFloorMonitor
from repro.control import (
    ControlOptions,
    ControlPolicy,
    FeedbackStrategy,
    HealthEstimator,
    SignalBatch,
    SignalHub,
)
from repro.core import PeriodicStrategy, SpireDeployment, SpireOptions
from repro.crypto.encoding import digest
from repro.obs import (
    COMP_RECOVERY_CONTROLLER,
    EV_CONTROL_DECISION,
    EV_CONTROL_FALLBACK,
    EV_OVERLAY_LINK_DOWN,
    EV_SUSPECT,
    EventLog,
)
from repro.simnet import FailureInjector, LinkSpec, Network, Process, Simulator

DETERMINISTIC_HASHING = os.environ.get("PYTHONHASHSEED") == "0"

OPTS = ControlOptions()


# ----------------------------------------------------------------------
# ControlOptions
# ----------------------------------------------------------------------

def test_options_validate_rejects_bad_knobs():
    with pytest.raises(ValueError, match="sense_interval_ms"):
        ControlOptions(sense_interval_ms=0.0).validate()
    with pytest.raises(ValueError, match="hysteresis"):
        ControlOptions(trigger_threshold=0.3, clear_threshold=0.4).validate()
    with pytest.raises(ValueError, match="ewma_alpha"):
        ControlOptions(ewma_alpha=1.5).validate()
    with pytest.raises(ValueError, match="lag_threshold_seqs"):
        ControlOptions(lag_threshold_seqs=0).validate()


def test_options_dict_roundtrip():
    opts = ControlOptions(trigger_threshold=0.7, cooldown_ms=9000.0)
    assert ControlOptions.from_dict(opts.to_dict()) == opts


# ----------------------------------------------------------------------
# HealthEstimator
# ----------------------------------------------------------------------

def test_estimator_bump_saturates_at_one():
    estimator = HealthEstimator(["r0"], OPTS)
    for _ in range(50):
        estimator.observe(SignalBatch(crashed=("r0",)), dt_ms=0.0)
    assert estimator.suspicion("r0") <= 1.0
    assert estimator.suspicion("r0") > 0.99


def test_estimator_decays_with_half_life():
    estimator = HealthEstimator(["r0"], OPTS)
    estimator.scores["r0"] = 0.8
    estimator.observe(SignalBatch(), dt_ms=OPTS.decay_half_life_ms)
    assert estimator.suspicion("r0") == pytest.approx(0.4)


def test_estimator_reset_and_unknown_names():
    estimator = HealthEstimator(["r0"], OPTS)
    estimator.observe(
        SignalBatch(suspect_votes={"r0": 2, "ghost": 5}), dt_ms=250.0
    )
    assert estimator.suspicion("r0") > 0.0
    assert estimator.suspicion("ghost") == 0.0  # ignored, not created
    estimator.reset("r0")
    assert estimator.suspicion("r0") == 0.0


def test_estimator_violations_spread_across_fleet():
    estimator = HealthEstimator(["r0", "r1"], OPTS)
    estimator.observe(SignalBatch(violations=2), dt_ms=250.0)
    assert estimator.suspicion("r0") == estimator.suspicion("r1") > 0.0


# ----------------------------------------------------------------------
# ControlPolicy: hysteresis / cooldown transitions
# ----------------------------------------------------------------------

def _always(_name):
    return True


def test_policy_fires_above_trigger_and_cools_down():
    policy = ControlPolicy(["r0", "r1"], OPTS)
    scores = {"r0": 0.9, "r1": 0.0}
    pick = policy.decide(1000.0, scores, _always)
    assert pick == "r0"
    policy.note_fired("r0", 1000.0)
    assert not policy.is_armed("r0")
    # still hot inside the cooldown: no re-fire
    assert policy.decide(1000.0 + OPTS.cooldown_ms / 2, scores, _always) is None


def test_policy_rearms_after_clear_and_cooldown():
    policy = ControlPolicy(["r0"], OPTS)
    policy.note_fired("r0", 0.0)
    after = OPTS.cooldown_ms + 1.0
    # hovering inside the hysteresis band: stays un-armed
    mid_band = (OPTS.clear_threshold + OPTS.trigger_threshold) / 2
    policy.decide(after, {"r0": mid_band}, _always)
    assert not policy.is_armed("r0")
    # cleared: re-arms
    policy.decide(after + 1.0, {"r0": 0.0}, _always)
    assert policy.is_armed("r0")


def test_policy_rearms_on_persistent_suspicion_after_cooldown():
    # a replica whose score sits above the trigger after its cooldown has
    # fresh evidence (the estimator was reset at rejuvenation-done), so
    # it must be treatable again — not locked out by the clear threshold
    policy = ControlPolicy(["r0"], OPTS)
    policy.note_fired("r0", 0.0)
    scores = {"r0": 0.95}
    assert policy.decide(OPTS.cooldown_ms / 2, scores, _always) is None
    pick = policy.decide(
        OPTS.cooldown_ms + OPTS.decision_gap_ms + 1.0, scores, _always
    )
    assert pick == "r0"


def test_policy_decision_gap_spaces_picks():
    policy = ControlPolicy(["r0", "r1"], OPTS)
    scores = {"r0": 0.9, "r1": 0.8}
    assert policy.decide(1000.0, scores, _always) == "r0"
    policy.note_fired("r0", 1000.0)
    # r1 is also above trigger but the global gap holds it back
    gap = OPTS.decision_gap_ms
    assert policy.decide(1000.0 + gap / 2, scores, _always) is None
    assert policy.decide(1000.0 + gap + 1.0, scores, _always) == "r1"


def test_policy_skips_ineligible_candidates():
    policy = ControlPolicy(["r0", "r1"], OPTS)
    scores = {"r0": 0.9, "r1": 0.7}
    assert policy.decide(0.0, scores, lambda n: n != "r0") == "r1"


def test_policy_deterministic_tie_break():
    policy = ControlPolicy(["r1", "r0"], OPTS)
    assert policy.decide(0.0, {"r0": 0.8, "r1": 0.8}, _always) == "r0"


def test_policy_fallback_clock():
    policy = ControlPolicy(["r0"], OPTS)
    assert policy.in_fallback(OPTS.fallback_after_ms + 1.0)
    # activity above baseline resets the clock
    policy.decide(5000.0, {"r0": OPTS.baseline_threshold + 0.01}, _always)
    assert not policy.in_fallback(5000.0 + OPTS.fallback_after_ms - 1.0)
    assert policy.in_fallback(5000.0 + OPTS.fallback_after_ms)


# ----------------------------------------------------------------------
# SignalHub
# ----------------------------------------------------------------------

class _FakeReplica:
    def __init__(self, name, up=True, seq=0):
        self.name = name
        self.is_up = up
        self.last_executed_seq = seq


def _hub(replicas, log=None, **kwargs):
    return SignalHub(
        log if log is not None else EventLog(),
        replicas,
        {r.name: "site1" for r in replicas},
        leader_of_view=lambda view: replicas[view % len(replicas)].name,
        **kwargs,
    )


def test_hub_maps_suspect_votes_to_view_leader():
    log = EventLog()
    replicas = [_FakeReplica(f"r{i}") for i in range(3)]
    hub = _hub(replicas, log)
    log.event("r1", EV_SUSPECT, view=2, reason="tat")
    log.event("r2", EV_SUSPECT, view=2, reason="tat")
    batch = hub.poll(set())
    assert batch.suspect_votes == {"r2": 2}
    # incremental: a second poll with nothing new is quiet
    assert hub.poll(set()).quiet


def test_hub_discounts_votes_against_recovering_replica():
    log = EventLog()
    replicas = [_FakeReplica(f"r{i}") for i in range(3)]
    hub = _hub(replicas, log)
    log.event("r1", EV_SUSPECT, view=2, reason="tat")
    batch = hub.poll({"r2"})
    assert not batch.suspect_votes
    assert "r2" not in batch.crashed  # its downtime is expected too


def test_hub_crash_and_lag_probes():
    replicas = [
        _FakeReplica("r0", up=False),
        _FakeReplica("r1", seq=100),
        _FakeReplica("r2", seq=100 - OPTS.lag_threshold_seqs),
        _FakeReplica("r3", seq=99),  # below threshold: not reported
    ]
    batch = _hub(replicas).poll(set())
    assert batch.crashed == ("r0",)
    assert batch.lagging == {"r2": OPTS.lag_threshold_seqs}


def test_hub_maps_overlay_trouble_to_site_replicas():
    log = EventLog()
    replicas = [_FakeReplica("r0"), _FakeReplica("r1")]
    hub = SignalHub(
        log, replicas, {"r0": "siteA", "r1": "siteB"},
        leader_of_view=lambda view: "r0",
    )
    log.event("overlay", EV_OVERLAY_LINK_DOWN, link="siteA<->siteC")
    batch = hub.poll(set())
    assert batch.overlay == {"r0": 1}


# ----------------------------------------------------------------------
# FeedbackStrategy (unit level, no full deployment)
# ----------------------------------------------------------------------

class _Dummy(Process):
    pass


def _fleet(n=6, seed=3):
    sim = Simulator(seed=seed)
    net = Network(sim, LinkSpec())
    replicas = [_Dummy(f"r{i}", sim, net) for i in range(n)]
    return sim, net, replicas


def test_feedback_without_hub_rotates_periodically():
    sim, net, replicas = _fleet()
    strategy = FeedbackStrategy(
        sim, replicas, period_ms=100.0, recovery_duration_ms=10.0,
        control=ControlOptions(sense_interval_ms=100.0),
    )
    strategy.start()
    sim.run_for(650)
    assert strategy.hub is None
    assert strategy.fallback_rotations == 6
    assert strategy.recoveries_completed == 6
    assert all(r.is_up for r in replicas)


def test_feedback_start_twice_does_not_leak_timer():
    sim, net, replicas = _fleet()
    strategy = FeedbackStrategy(
        sim, replicas, period_ms=100.0, recovery_duration_ms=10.0,
        control=ControlOptions(sense_interval_ms=100.0),
    )
    strategy.start()
    strategy.start()
    sim.run_for(650)
    assert strategy.recoveries_started == 6


def test_feedback_defers_at_quorum_floor():
    sim, net, replicas = _fleet(n=4)
    for replica in replicas[:1]:
        replica.crash()
    # 3 live, floor 3: any rejuvenation would drop below — defer forever
    strategy = FeedbackStrategy(
        sim, replicas, period_ms=100.0, recovery_duration_ms=10.0,
        min_live=3,
    )
    strategy.start()
    sim.run_for(500)
    assert strategy.recoveries_started == 0
    assert strategy.deferred_rounds > 0


# ----------------------------------------------------------------------
# QuorumFloorMonitor
# ----------------------------------------------------------------------

def test_quorum_floor_monitor_flags_floor_break():
    sim, net, replicas = _fleet(n=6)
    # f=1, k=1 -> floor 4; with two already down, any rejuvenation of a
    # third drops live to 3 — an unguarded strategy must be flagged
    replicas[0].crash()
    replicas[1].crash()
    strategy = PeriodicStrategy(
        sim, replicas, period_ms=100.0, recovery_duration_ms=10.0,
        min_live=None,  # guard off: the monitor must catch it
    )
    monitor = QuorumFloorMonitor(sim, replicas, f=1, k=1)
    monitor.attach(strategy)
    strategy.start()
    sim.run_for(150)
    violations = monitor.violations()
    assert violations and violations[0].kind == "recovery-below-floor"
    assert monitor.rejuvenations_checked >= 1


def test_quorum_floor_monitor_quiet_when_guard_active():
    sim, net, replicas = _fleet(n=6)
    replicas[0].crash()
    replicas[1].crash()
    strategy = PeriodicStrategy(
        sim, replicas, period_ms=100.0, recovery_duration_ms=10.0,
        min_live=4,  # the deferral guard respects the floor
    )
    monitor = QuorumFloorMonitor(sim, replicas, f=1, k=1)
    monitor.attach(strategy)
    strategy.start()
    sim.run_for(550)
    assert not monitor.violations()
    assert strategy.deferred_rounds > 0


# ----------------------------------------------------------------------
# Full-deployment behaviour
# ----------------------------------------------------------------------

def _feedback_deployment(seed=7, **overrides):
    return SpireDeployment(SpireOptions(
        num_substations=2,
        poll_interval_ms=250.0,
        seed=seed,
        f=1, k=1,
        proactive_recovery=(4000.0, 500.0),
        control=ControlOptions(),
        **overrides,
    ))


def test_controller_targets_crashed_replica():
    deployment = _feedback_deployment()
    injector = FailureInjector(deployment.simulator, deployment.network)
    target = deployment.replicas[2].name
    injector.crash_window(target, 2000.0, 1500.0)
    deployment.start()
    deployment.run_for(8000.0)
    decisions = deployment.trace.events(
        COMP_RECOVERY_CONTROLLER, EV_CONTROL_DECISION
    )
    assert decisions, "controller never acted on the crash"
    assert decisions[0].details["replica"] == target
    assert decisions[0].details["score"] >= ControlOptions().trigger_threshold
    # suspicion gauges landed in the registry for the report
    snapshot = deployment.obs.registry.snapshot()
    assert snapshot[f"control.suspicion.{target}"]["max"] > 0.5


def test_controller_decisions_deterministic_at_fixed_seed():
    def run():
        deployment = _feedback_deployment(seed=11)
        injector = FailureInjector(deployment.simulator, deployment.network)
        injector.crash_window(deployment.replicas[1].name, 2000.0, 1500.0)
        deployment.start()
        deployment.run_for(9000.0)
        return [
            (e.time, tuple(sorted(e.details.items())))
            for e in deployment.trace.events(COMP_RECOVERY_CONTROLLER)
        ], deployment.simulator.events_processed

    first, second = run(), run()
    assert first == second
    assert first[0], "expected controller activity"


def test_observability_off_falls_back_to_rotation():
    deployment = _feedback_deployment(observability=False)
    assert deployment.recovery_scheduler.hub is None
    deployment.start()
    deployment.run_for(12_000.0)
    assert deployment.recovery_scheduler.recoveries_completed >= 1
    assert deployment.recovery_scheduler.fallback_rotations >= 1


def test_quiet_system_reverts_to_periodic_cadence():
    deployment = _feedback_deployment()
    deployment.start()
    deployment.run_for(18_000.0)
    fallbacks = deployment.trace.events(
        COMP_RECOVERY_CONTROLLER, EV_CONTROL_FALLBACK
    )
    decisions = deployment.trace.events(
        COMP_RECOVERY_CONTROLLER, EV_CONTROL_DECISION
    )
    # no evidence: no targeted decisions, but rotation coverage continues
    assert not decisions
    assert len(fallbacks) >= 2


def test_control_requires_proactive_recovery():
    with pytest.raises(ValueError, match="proactive_recovery"):
        SpireOptions(
            proactive_recovery=None, control=ControlOptions()
        ).validate()


def test_recovery_gauges_land_in_registry():
    deployment = SpireDeployment(SpireOptions(
        num_substations=2, poll_interval_ms=250.0, seed=5, f=1, k=1,
        proactive_recovery=(3000.0, 400.0),
    ))
    deployment.start()
    deployment.run_for(8000.0)
    snapshot = deployment.obs.registry.snapshot()
    assert snapshot["recovery.recoveries_started"]["value"] >= 1
    assert snapshot["recovery.recoveries_completed"]["value"] >= 1
    assert "recovery.deferred_rounds" in snapshot


# ----------------------------------------------------------------------
# Chaos integration
# ----------------------------------------------------------------------

def test_chaos_options_feedback_roundtrip():
    opts = ChaosOptions(
        feedback_control=True,
        control_overrides=ControlOptions(cooldown_ms=8000.0).to_dict(),
    )
    restored = ChaosOptions.from_dict(opts.to_dict())
    assert restored.feedback_control
    assert ControlOptions.from_dict(restored.control_overrides).cooldown_ms \
        == 8000.0


def test_chaos_run_with_feedback_control():
    result = ChaosEngine(ChaosOptions(
        seed=3, warmup_ms=800.0, chaos_ms=3000.0, settle_ms=2000.0,
        poll_interval_ms=250.0, proactive_recovery=(5000.0, 400.0),
        feedback_control=True,
    )).run()
    assert result.ok, result.violations
    assert result.stats["floor_rejuvenations_checked"] >= 0


# ----------------------------------------------------------------------
# Bit-identity of the default (controller off) path
# ----------------------------------------------------------------------

SMOKE = dict(
    warmup_ms=800.0, chaos_ms=3000.0, settle_ms=2000.0,
    poll_interval_ms=250.0, proactive_recovery=(5000.0, 400.0),
)

#: pre-refactor fingerprints captured from the monolithic
#: ProactiveRecoveryScheduler (commit e4fbe54 lineage) at PYTHONHASHSEED=0
PINNED_CHAOS = {
    3: ("876958131b73ed346a932b8d547dbea676a2cdf1bb067be9f87876d6c6d21b31",
        40_456),
    11: ("b21f40105ad22ede8526a6e57c7107f15a0fd053171e2e3cf3ad1a748f86493c",
         58_300),
}

PINNED_FIG6 = "8ad6e8c24d85e99273fdfaef23192a5783170167a9ae1290964f100ac02566ed"


@pytest.mark.skipif(
    not DETERMINISTIC_HASHING, reason="fingerprints pinned at PYTHONHASHSEED=0"
)
@pytest.mark.parametrize("seed", sorted(PINNED_CHAOS))
def test_periodic_strategy_chaos_fingerprints_unchanged(seed):
    fingerprint, events = PINNED_CHAOS[seed]
    result = ChaosEngine(ChaosOptions(seed=seed, **SMOKE)).run()
    assert result.fingerprint == fingerprint
    assert result.stats["events_processed"] == events


@pytest.mark.skipif(
    not DETERMINISTIC_HASHING, reason="fingerprints pinned at PYTHONHASHSEED=0"
)
def test_periodic_strategy_fig6_digest_unchanged():
    deployment = SpireDeployment(SpireOptions(
        num_substations=2, poll_interval_ms=250.0, seed=55, f=1, k=1,
        proactive_recovery=(4000.0, 500.0),
    ))
    deployment.start()
    deployment.run_for(12_000.0)
    trace_image = tuple(
        (e.time, e.component, e.kind, tuple(sorted(e.details.items())))
        for e in deployment.trace
    )
    scheduler = deployment.recovery_scheduler
    fingerprint = digest((
        trace_image,
        deployment.simulator.events_processed,
        tuple(r.last_executed_seq for r in deployment.replicas),
        scheduler.recoveries_completed,
        scheduler.recoveries_started,
        scheduler.deferred_rounds,
    ))
    assert deployment.simulator.events_processed == 321_238
    assert fingerprint == PINNED_FIG6
