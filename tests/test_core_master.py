"""Tests for the replicated SCADA master application."""

import pytest

from repro.core import BreakerCommand, ScadaMasterApp, StatusReading
from repro.crypto import digest
from repro.prime import ClientUpdate


def reading(substation="sub1", poll_seq=1, voltage=138.0, energized=1.0,
            frequency=60.0, breakers=(("b1", True),)):
    return StatusReading(
        substation=substation,
        poll_seq=poll_seq,
        polled_at=100.0,
        measurements=(
            ("energized", energized),
            ("flow_mw", 12.0),
            ("frequency_hz", frequency),
            ("voltage_kv", voltage),
        ),
        breakers=breakers,
    )


def update(payload, seq=1, client="proxy:x"):
    return ClientUpdate(client, seq, payload, None)


@pytest.fixture
def app():
    return ScadaMasterApp()


def test_status_accepted(app):
    result = app.execute(update(reading()), 1)
    assert result == ("status-accepted", "sub1")
    assert app.latest_status["sub1"].poll_seq == 1
    assert app.status_updates_applied == 1


def test_stale_status_dropped(app):
    app.execute(update(reading(poll_seq=5)), 1)
    result = app.execute(update(reading(poll_seq=3)), 2)
    assert result == ("stale", "sub1")
    assert app.latest_status["sub1"].poll_seq == 5
    assert app.stale_updates_dropped == 1


def test_command_applied(app):
    command = BreakerCommand("sub1", "b1", close=False, issued_by="hmi:0")
    result = app.execute(update(command), 1)
    assert result[0] == "command-accepted"
    assert app.breaker_intent[("sub1", "b1")] is False
    assert app.command_log[-1][2] == "sub1"


def test_unknown_payload_rejected(app):
    assert app.execute(update(("garbage",)), 1)[0] == "rejected"


def test_undervoltage_alarm_raised_and_cleared(app):
    app.execute(update(reading(voltage=100.0)), 1)
    assert ("sub1", "undervoltage") in app.alarms
    app.execute(update(reading(poll_seq=2, voltage=138.0)), 2)
    assert ("sub1", "undervoltage") not in app.alarms


def test_deenergized_alarm(app):
    app.execute(update(reading(voltage=0.0, energized=0.0, frequency=0.0)), 1)
    assert ("sub1", "de-energized") in app.alarms


def test_frequency_alarms(app):
    app.execute(update(reading(frequency=59.0)), 1)
    assert ("sub1", "underfrequency") in app.alarms
    app.execute(update(reading(poll_seq=2, frequency=61.0)), 2)
    assert ("sub1", "overfrequency") in app.alarms
    assert ("sub1", "underfrequency") not in app.alarms


def test_active_alarms_sorted(app):
    app.execute(update(reading(substation="z", voltage=100.0)), 1)
    app.execute(update(reading(substation="a", voltage=100.0), seq=2), 2)
    alarms = app.active_alarms()
    assert [a.substation for a in alarms] == ["a", "z"]


def test_command_log_bounded():
    app = ScadaMasterApp(max_command_log=5)
    for index in range(10):
        app.execute(update(BreakerCommand("s", "b", True, "hmi"), seq=index + 1), index + 1)
    assert len(app.command_log) == 5
    assert app.command_log[0][0] == 6  # oldest retained is order 6


def test_snapshot_restore_roundtrip(app):
    app.execute(update(reading(voltage=100.0)), 1)
    app.execute(update(BreakerCommand("sub1", "b1", False, "hmi"), seq=2), 2)
    snapshot = app.snapshot()
    other = ScadaMasterApp()
    other.restore(snapshot)
    assert other.snapshot() == snapshot
    assert other.latest_status.keys() == app.latest_status.keys()
    assert other.breaker_intent == app.breaker_intent
    assert other.alarms == app.alarms


def test_snapshot_is_deterministic_and_encodable(app):
    app.execute(update(reading()), 1)
    first = digest(app.snapshot())
    second = digest(app.snapshot())
    assert first == second


def test_identical_histories_identical_digests():
    a = ScadaMasterApp()
    b = ScadaMasterApp()
    for index, payload in enumerate(
        [reading(), BreakerCommand("sub1", "b1", False, "hmi"),
         reading(poll_seq=2)], start=1
    ):
        a.execute(update(payload, seq=index), index)
        b.execute(update(payload, seq=index), index)
    assert digest(a.snapshot()) == digest(b.snapshot())


def test_substation_view(app):
    assert app.substation_view("sub1") is None
    app.execute(update(reading()), 1)
    assert app.substation_view("sub1").substation == "sub1"
