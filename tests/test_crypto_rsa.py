"""Tests for the from-scratch RSA."""

import random

import pytest

from repro.crypto import generate_keypair
from repro.crypto.rsa import generate_prime, is_probable_prime


def test_keygen_deterministic_from_seed():
    a = generate_keypair(bits=512, seed="k1")
    b = generate_keypair(bits=512, seed="k1")
    assert a.n == b.n and a.d == b.d


def test_keygen_different_seeds_differ():
    assert generate_keypair(512, "k1").n != generate_keypair(512, "k2").n


def test_modulus_size():
    pair = generate_keypair(bits=512, seed="size")
    assert 500 <= pair.n.bit_length() <= 512


def test_sign_verify_roundtrip():
    pair = generate_keypair(bits=512, seed="sv")
    sig = pair.sign(b"message")
    assert pair.public.verify(b"message", sig)


def test_verify_rejects_other_message():
    pair = generate_keypair(bits=512, seed="sv")
    sig = pair.sign(b"message")
    assert not pair.public.verify(b"other", sig)


def test_verify_rejects_tampered_signature():
    pair = generate_keypair(bits=512, seed="sv")
    sig = pair.sign(b"message")
    assert not pair.public.verify(b"message", sig + 1)


def test_verify_rejects_out_of_range_signature():
    pair = generate_keypair(bits=512, seed="sv")
    assert not pair.public.verify(b"m", 0)
    assert not pair.public.verify(b"m", pair.n)


def test_signatures_differ_per_message():
    pair = generate_keypair(bits=512, seed="sv")
    assert pair.sign(b"a") != pair.sign(b"b")


def test_cross_key_verification_fails():
    a = generate_keypair(bits=512, seed="a")
    b = generate_keypair(bits=512, seed="b")
    sig = a.sign(b"m")
    assert not b.public.verify(b"m", sig)


def test_is_probable_prime_known_values():
    rng = random.Random(0)
    for p in (2, 3, 5, 7, 97, 7919, 2 ** 61 - 1):
        assert is_probable_prime(p, rng)
    for c in (0, 1, 4, 100, 7917, 2 ** 61 - 2):
        assert not is_probable_prime(c, rng)


def test_generate_prime_has_requested_size():
    rng = random.Random(1)
    p = generate_prime(128, rng)
    assert p.bit_length() == 128
    assert is_probable_prime(p, random.Random(2))


def test_small_keys_work_fast():
    pair = generate_keypair(bits=256, seed="small")
    sig = pair.sign(b"x")
    assert pair.public.verify(b"x", sig)
