"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LatencyStats
from repro.core.config import base_requirement, minimal_replicas, quorum
from repro.crypto import FastCrypto, encode
from repro.prime.dedup import ClientDedup
from repro.prime.node import PrimeNode
from repro.scada.modbus import crc16, scale_measurement, unscale_measurement

# ----------------------------------------------------------------------
# Canonical encoding
# ----------------------------------------------------------------------

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10 ** 18), max_value=10 ** 18),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
    st.binary(max_size=20),
)

values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4).map(tuple),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=12,
)


@given(values)
def test_encode_total_on_supported_domain(value):
    assert isinstance(encode(value), bytes)


@given(values)
def test_encode_deterministic(value):
    assert encode(value) == encode(value)


@given(st.tuples(values, values))
def test_encode_injective_on_samples(pair):
    a, b = pair
    if encode(a) == encode(b):
        # the only permitted collision is list/tuple container equivalence
        def normalize(v):
            if isinstance(v, (list, tuple)):
                return tuple(normalize(x) for x in v)
            if isinstance(v, dict):
                return {k: normalize(x) for k, x in v.items()}
            return v
        assert normalize(a) == normalize(b)


# ----------------------------------------------------------------------
# Signatures (FastCrypto model)
# ----------------------------------------------------------------------


@given(st.text(min_size=1, max_size=10), values)
def test_sign_verify_roundtrip_property(signer, message):
    crypto = FastCrypto(seed="prop")
    assert crypto.verify(crypto.sign(signer, message), message)


@given(st.text(min_size=1, max_size=10), values, values)
def test_signature_binds_message(signer, message, other):
    crypto = FastCrypto(seed="prop")
    sig = crypto.sign(signer, message)
    if encode(message) != encode(other):
        assert not crypto.verify(sig, other)


# ----------------------------------------------------------------------
# CRC-16
# ----------------------------------------------------------------------


@given(st.binary(max_size=64))
def test_crc_detects_single_bit_flips(data):
    if not data:
        return
    original = crc16(data)
    corrupted = bytearray(data)
    corrupted[0] ^= 0x01
    assert crc16(bytes(corrupted)) != original


@given(st.floats(min_value=0.0, max_value=6000.0))
def test_measurement_scaling_bounded_error(value):
    # Half a register step (0.05 at scale 10), plus one ulp of slack: at
    # exact half-steps (e.g. 0.75) the float subtraction itself rounds a
    # hair above 0.05 even though the fixed-point error is exactly half.
    assert abs(unscale_measurement(scale_measurement(value)) - value) <= 0.05 + 1e-12


# ----------------------------------------------------------------------
# ClientDedup vs a naive set model
# ----------------------------------------------------------------------


@given(st.lists(st.tuples(st.sampled_from(["a", "b"]),
                          st.integers(min_value=1, max_value=200)),
                max_size=120))
def test_dedup_matches_set_model(operations):
    dedup = ClientDedup(window=1024)
    model = set()
    for client, seq in operations:
        expected = (client, seq) in model
        assert dedup.is_duplicate(client, seq) == expected
        if not expected:
            dedup.mark(client, seq)
            model.add((client, seq))


@given(st.lists(st.integers(min_value=1, max_value=100),
                min_size=1, max_size=80, unique=True))
def test_dedup_snapshot_roundtrip_property(seqs):
    dedup = ClientDedup()
    for seq in seqs:
        dedup.mark("c", seq)
    restored = ClientDedup()
    restored.restore(dedup.snapshot())
    for seq in range(1, 101):
        assert restored.is_duplicate("c", seq) == (seq in seqs)


# ----------------------------------------------------------------------
# LatencyStats invariants
# ----------------------------------------------------------------------


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1,
                max_size=200))
def test_latency_stats_invariants(samples):
    stats = LatencyStats.from_samples(samples)
    assert stats.count == len(samples)
    assert stats.minimum <= stats.median <= stats.p90 <= stats.p99
    assert stats.p99 <= stats.p999 <= stats.maximum
    assert stats.minimum <= stats.mean <= stats.maximum + 1e-9


# ----------------------------------------------------------------------
# Configuration math
# ----------------------------------------------------------------------


@given(st.integers(min_value=0, max_value=4), st.integers(min_value=0, max_value=4))
def test_requirement_and_quorum_relation(f, k):
    n = base_requirement(f, k)
    q = quorum(f, k)
    # two quorums overlap in at least f+1 replicas (safety core)
    assert 2 * q - n >= f + 1
    # a quorum survives f Byzantine + k recovering replicas
    assert n - f - k >= q


@given(st.integers(min_value=0, max_value=3), st.integers(min_value=0, max_value=2),
       st.integers(min_value=2, max_value=6))
def test_minimal_replicas_site_tolerance_holds(f, k, sites):
    n = minimal_replicas(f, k, sites, tolerate_site_failure=True)
    largest = math.ceil(n / sites)
    assert n - largest >= base_requirement(f, k)
    # minimality: one replica fewer violates the requirement
    if n > base_requirement(f, k):
        smaller = n - 1
        assert smaller - math.ceil(smaller / sites) < base_requirement(f, k)


# ----------------------------------------------------------------------
# Coverage cutoffs
# ----------------------------------------------------------------------


@given(st.lists(st.integers(min_value=0, max_value=50), min_size=0, max_size=6))
def test_coverage_cutoff_is_quorum_th_largest(reported):
    from repro.crypto.provider import Signature
    from repro.prime.messages import PoSummary, SignedMessage

    matrix = tuple(
        SignedMessage(PoSummary(f"r{i}", 1, (("o#0", upto),)),
                      Signature(f"r{i}", "x"))
        for i, upto in enumerate(reported)
    )
    cutoffs = PrimeNode.coverage_cutoffs(matrix, n=6, quorum=4)
    padded = sorted(reported + [0] * (6 - len(reported)), reverse=True)
    expected = padded[3] if reported else None
    if reported:
        assert cutoffs["o#0"] == expected
        # safety property: at least quorum rows claim >= cutoff
        claims = sum(1 for v in padded if v >= cutoffs["o#0"])
        assert claims >= 4
    else:
        assert cutoffs == {}


# ----------------------------------------------------------------------
# Grid invariants
# ----------------------------------------------------------------------


@given(st.integers(min_value=2, max_value=12), st.integers(min_value=0, max_value=30),
       st.randoms(use_true_random=False))
def test_grid_served_monotone_under_breaker_opening(size, opens, rnd):
    from repro.scada import build_radial_grid

    grid = build_radial_grid(num_substations=size, seed=7)
    previous = grid.served_load_mw()
    total = grid.total_load_mw()
    assert previous <= total + 1e-9
    breakers = [
        (sub, breaker)
        for sub in grid.substations
        for breaker in grid.substations[sub].breakers
    ]
    for _ in range(min(opens, len(breakers))):
        sub, breaker = rnd.choice(breakers)
        grid.set_breaker(sub, breaker, False)
        current = grid.served_load_mw()
        assert current <= previous + 1e-9  # opening only ever sheds load
        previous = current
