"""Unit tests for the process abstraction (timers, crash/recover)."""

from repro.simnet import LinkSpec, Network, Process, Simulator


class Worker(Process):
    def __init__(self, name, simulator, network):
        super().__init__(name, simulator, network)
        self.fired = []
        self.crashes = 0
        self.recoveries = 0

    def on_crash(self):
        self.crashes += 1

    def on_recover(self):
        self.recoveries += 1


def build():
    sim = Simulator(seed=2)
    net = Network(sim, LinkSpec(latency_ms=1.0))
    return sim, net, Worker("w", sim, net)


def test_set_timer_fires():
    sim, net, w = build()
    w.set_timer(5.0, w.fired.append, "x")
    sim.run()
    assert w.fired == ["x"]


def test_timer_does_not_fire_after_crash():
    sim, net, w = build()
    w.set_timer(5.0, w.fired.append, "x")
    w.crash()
    sim.run()
    assert w.fired == []


def test_timer_from_before_crash_dead_after_recovery():
    sim, net, w = build()
    w.set_timer(5.0, w.fired.append, "pre-crash")
    w.crash()
    w.recover()
    sim.run()
    assert w.fired == []  # incarnation changed; stale timer must not fire


def test_timer_set_after_recovery_fires():
    sim, net, w = build()
    w.crash()
    w.recover()
    w.set_timer(1.0, w.fired.append, "post")
    sim.run()
    assert w.fired == ["post"]


def test_every_loop_stops_on_crash():
    sim, net, w = build()
    w.every(10.0, lambda: w.fired.append(sim.now))
    sim.run_until(35.0)
    w.crash()
    sim.run_until(100.0)
    assert len(w.fired) == 3


def test_every_returns_stop_function():
    sim, net, w = build()
    stop = w.every(10.0, lambda: w.fired.append(sim.now))
    sim.run_until(25.0)
    stop()
    sim.run_until(100.0)
    assert len(w.fired) == 2


def test_crash_recover_hooks_called_once():
    sim, net, w = build()
    w.crash()
    w.crash()  # idempotent
    assert w.crashes == 1
    w.recover()
    w.recover()
    assert w.recoveries == 1


def test_crashed_process_receives_nothing():
    sim, net, w = build()
    other = Worker("o", sim, net)
    received = []
    w.on_message = lambda src, p: received.append(p)
    w.crash()
    other.send("w", "x")
    sim.run()
    assert received == []


def test_is_up_flag():
    sim, net, w = build()
    assert w.is_up
    w.crash()
    assert not w.is_up
    w.recover()
    assert w.is_up


def test_send_returns_true_when_on_wire():
    sim, net, w = build()
    Worker("o", sim, net)
    assert w.send("o", "x") is True
