"""Tests for structured tracing (via the deprecated ``Trace`` shim)."""

import pytest

from repro.obs import EventLog
from repro.simnet import Simulator, Trace

# The shim must keep its legacy behaviour while it warns; silence the
# deprecation in the behavioural tests, assert it explicitly below.
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


def test_trace_shim_emits_deprecation_warning():
    sim = Simulator()
    with pytest.warns(DeprecationWarning, match="repro.obs.EventLog"):
        trace = Trace(sim)
    assert isinstance(trace, EventLog)
    assert trace.simulator is sim


def test_event_recorded_with_time():
    sim = Simulator()
    trace = Trace(sim)
    sim.schedule(5.0, lambda: trace.event("c", "k", value=1))
    sim.run()
    events = trace.events()
    assert len(events) == 1
    assert events[0].time == 5.0
    assert events[0].details == {"value": 1}


def test_filter_by_component_and_kind():
    sim = Simulator()
    trace = Trace(sim)
    trace.event("a", "x")
    trace.event("a", "y")
    trace.event("b", "x")
    assert trace.count(component="a") == 2
    assert trace.count(kind="x") == 2
    assert trace.count(component="b", kind="x") == 1


def test_filter_by_time_window():
    sim = Simulator()
    trace = Trace(sim)
    for at in (1.0, 5.0, 9.0):
        sim.schedule_at(at, lambda: trace.event("c", "k"))
    sim.run()
    assert len(trace.events(since=2.0, until=8.0)) == 1


def test_bounded_capacity_drops():
    sim = Simulator()
    trace = Trace(sim, max_events=3)
    for _ in range(5):
        trace.event("c", "k")
    assert len(trace) == 3
    assert trace.dropped == 2


def test_clear_resets():
    sim = Simulator()
    trace = Trace(sim)
    trace.event("c", "k")
    trace.clear()
    assert len(trace) == 0


def test_iteration_and_str():
    sim = Simulator()
    trace = Trace(sim)
    trace.event("comp", "kind", a=1)
    text = str(next(iter(trace)))
    assert "comp" in text and "kind" in text
