"""Leader-failure chaos smoke: view-change recovery pinned under faults.

Drives ``leader_kill`` / ``leader_partition`` faults — resolved against
the *current* leader at fire time — through both protocols:

* **Prime** inside the full Spire deployment (``ChaosEngine`` with
  ``leader_faults=True``), with delivery batching alternating per seed so
  both paths stay covered.
* **PBFT** on the flat baseline cluster (``run_pbft_chaos``).

Every run is gated on the :class:`ViewRecoveryMonitor` (a quorum must
adopt a strictly higher view and ordering must resume within the bound),
the :class:`SafetyMonitor` (agreement + exactly-once over the global
order), and — for PBFT — per-replica double-execution bookkeeping.
"""

import time

from repro.chaos import (
    ChaosEngine,
    ChaosOptions,
    FaultAction,
    FaultSchedule,
    PbftChaosOptions,
    run_pbft_chaos,
)

#: compact scenario shape shared with test_chaos_smoke.py
SMOKE = dict(
    warmup_ms=800.0,
    chaos_ms=3000.0,
    settle_ms=2000.0,
    poll_interval_ms=250.0,
    proactive_recovery=(5000.0, 400.0),
    leader_faults=True,
)
SMOKE_SEEDS = range(25)
WALL_BUDGET_S = 240.0


def leader_options(seed: int) -> ChaosOptions:
    # alternate batching per seed: both delivery paths see leader faults
    return ChaosOptions(seed=seed, batching=(seed % 2 == 1), **SMOKE)


def test_prime_leader_smoke_sweep():
    """25 seeded leader-fault scenarios against full Spire deployments:
    zero violations, and the sweep actually checks leader recoveries."""
    started = time.time()
    failures = []
    faults_checked = 0
    leader_kinds_seen = set()
    for seed in SMOKE_SEEDS:
        result = ChaosEngine(leader_options(seed)).run()
        if result.violations:
            failures.append((seed, [str(v) for v in result.violations]))
        faults_checked += result.stats["view_faults_checked"]
        leader_kinds_seen.update(
            a.kind for a in result.schedule if a.kind.startswith("leader_")
        )
    wall = time.time() - started
    assert not failures, f"violations in seeds: {failures}"
    # non-vacuous: the monitor judged real leader faults of both kinds
    assert faults_checked >= 10
    assert {"leader_kill", "leader_partition"} <= leader_kinds_seen
    assert wall < WALL_BUDGET_S, f"leader sweep too slow: {wall:.0f}s"


def test_prime_leader_chaos_deterministic():
    """Fire-time leader resolution stays a pure function of the seed."""
    first = ChaosEngine(leader_options(4)).run()
    second = ChaosEngine(leader_options(4)).run()
    assert first.schedule == second.schedule
    assert first.fingerprint == second.fingerprint
    assert first.stats == second.stats


def test_prime_mid_batch_leader_kill_exactly_once():
    """Pinned scenario: the leader dies mid-run with traffic in flight.
    With batching on and off, in-flight records are re-proposed and
    executed exactly once (no duplicate-execution safety violations)."""
    schedule = FaultSchedule((
        FaultAction("leader_kill", 1500.0, 2000.0),
    ))
    for batching in (False, True):
        options = ChaosOptions(seed=6, batching=batching, **SMOKE)
        result = ChaosEngine(options, schedule=schedule).run()
        assert result.ok, (batching, [str(v) for v in result.violations])
        assert result.stats["view_faults_checked"] == 1
        assert result.stats["executions_checked"] > 50


def test_pbft_leader_smoke_sweep():
    """25 seeded leader-fault runs against the PBFT baseline: zero
    safety/view-recovery/exactly-once violations."""
    started = time.time()
    failures = []
    faults_checked = 0
    adoptions = 0
    for seed in SMOKE_SEEDS:
        result = run_pbft_chaos(PbftChaosOptions(seed=seed))
        if result.violations:
            failures.append((seed, [str(v) for v in result.violations]))
        faults_checked += result.stats["view_faults_checked"]
        adoptions += result.stats["new_view_adoptions"]
    wall = time.time() - started
    assert not failures, f"violations in seeds: {failures}"
    assert faults_checked >= 15
    assert adoptions >= 25
    assert wall < WALL_BUDGET_S, f"pbft sweep too slow: {wall:.0f}s"


def test_pbft_leader_chaos_deterministic():
    first = run_pbft_chaos(PbftChaosOptions(seed=5))
    second = run_pbft_chaos(PbftChaosOptions(seed=5))
    assert first.schedule == second.schedule
    assert first.stats == second.stats
    assert [v.to_dict() for v in first.violations] == \
        [v.to_dict() for v in second.violations]
