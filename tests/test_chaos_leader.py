"""Leader-failure chaos smoke: view-change recovery pinned under faults.

Drives ``leader_kill`` / ``leader_partition`` faults — resolved against
the *current* leader at fire time — through both protocols:

* **Prime** inside the full Spire deployment (``ChaosEngine`` with
  ``leader_faults=True``), with delivery batching alternating per seed so
  both paths stay covered.
* **PBFT** on the flat baseline cluster (``run_pbft_chaos``).

Every run is gated on the :class:`ViewRecoveryMonitor` (a quorum must
adopt a strictly higher view and ordering must resume within the bound),
the :class:`SafetyMonitor` (agreement + exactly-once over the global
order), and — for PBFT — per-replica double-execution bookkeeping.
"""

import time

from repro.chaos import (
    ChaosEngine,
    ChaosOptions,
    FaultAction,
    FaultSchedule,
    PbftChaosOptions,
    run_pbft_chaos,
)
from repro.parallel import (
    CampaignTask,
    resolve_workers,
    run_campaign,
    seed_tasks,
)

#: compact scenario shape shared with test_chaos_smoke.py
SMOKE = dict(
    warmup_ms=800.0,
    chaos_ms=3000.0,
    settle_ms=2000.0,
    poll_interval_ms=250.0,
    proactive_recovery=(5000.0, 400.0),
    leader_faults=True,
)
SMOKE_SEEDS = range(25)
WALL_BUDGET_S = 240.0


def leader_options(seed: int) -> ChaosOptions:
    # alternate batching per seed: both delivery paths see leader faults
    return ChaosOptions(seed=seed, batching=(seed % 2 == 1), **SMOKE)


def test_prime_leader_smoke_sweep():
    """25 seeded leader-fault scenarios against full Spire deployments:
    zero violations, and the sweep actually checks leader recoveries.

    Runs through the shared campaign runner (``CHAOS_WORKERS`` fans it
    across cores in CI); batching alternates per seed, so the tasks are
    built explicitly rather than via ``seed_tasks``."""
    started = time.time()
    report = run_campaign(
        [
            CampaignTask(f"leader/seed-{seed}", "chaos", leader_options(seed))
            for seed in SMOKE_SEEDS
        ],
        workers=resolve_workers(default=1),
    )
    wall = time.time() - started
    failures = [
        (record.task_id, [str(v) for v in record.violations])
        for record in report.records
        if not record.ok
    ]
    assert not failures, f"violations in seeds: {failures}"
    # non-vacuous: the monitor judged real leader faults of both kinds
    results = report.results
    assert sum(r.stats["view_faults_checked"] for r in results) >= 10
    leader_kinds_seen = set()
    for result in results:
        leader_kinds_seen.update(
            kind for kind in result.stats["fault_kinds"]
            if kind.startswith("leader_")
        )
    assert {"leader_kill", "leader_partition"} <= leader_kinds_seen
    assert wall < WALL_BUDGET_S, f"leader sweep too slow: {wall:.0f}s"


def test_prime_leader_chaos_deterministic():
    """Fire-time leader resolution stays a pure function of the seed."""
    first = ChaosEngine(leader_options(4)).run()
    second = ChaosEngine(leader_options(4)).run()
    assert first.schedule == second.schedule
    assert first.fingerprint == second.fingerprint
    assert first.deterministic_stats == second.deterministic_stats


def test_prime_mid_batch_leader_kill_exactly_once():
    """Pinned scenario: the leader dies mid-run with traffic in flight.
    With batching on and off, in-flight records are re-proposed and
    executed exactly once (no duplicate-execution safety violations)."""
    schedule = FaultSchedule((
        FaultAction("leader_kill", 1500.0, 2000.0),
    ))
    for batching in (False, True):
        options = ChaosOptions(seed=6, batching=batching, **SMOKE)
        result = ChaosEngine(options, schedule=schedule).run()
        assert result.ok, (batching, [str(v) for v in result.violations])
        assert result.stats["view_faults_checked"] == 1
        assert result.stats["executions_checked"] > 50


def test_pbft_leader_smoke_sweep():
    """25 seeded leader-fault runs against the PBFT baseline: zero
    safety/view-recovery/exactly-once violations."""
    started = time.time()
    report = run_campaign(
        seed_tasks("pbft_chaos", PbftChaosOptions(), SMOKE_SEEDS),
        workers=resolve_workers(default=1),
    )
    wall = time.time() - started
    failures = [
        (record.task_id, [str(v) for v in record.violations])
        for record in report.records
        if not record.ok
    ]
    assert not failures, f"violations in seeds: {failures}"
    results = report.results
    assert sum(r.stats["view_faults_checked"] for r in results) >= 15
    assert sum(r.stats["new_view_adoptions"] for r in results) >= 25
    assert wall < WALL_BUDGET_S, f"pbft sweep too slow: {wall:.0f}s"


def test_pbft_leader_chaos_deterministic():
    first = run_pbft_chaos(PbftChaosOptions(seed=5))
    second = run_pbft_chaos(PbftChaosOptions(seed=5))
    assert first.schedule == second.schedule
    assert first.fingerprint == second.fingerprint
    assert first.deterministic_stats == second.deterministic_stats
    assert [v.to_dict() for v in first.violations] == \
        [v.to_dict() for v in second.violations]
