"""Chaos coverage for the overlay fault kinds and the reroute monitor.

The three new fault kinds (``link_kill``, ``link_degrade``,
``daemon_kill``) target overlay *sites*, not process names; the engine
maps them onto spines daemon processes. With ``self_healing=True`` the
:class:`RerouteBoundMonitor` asserts a verified delivery lands within
the configured bound of every overlay fault's start.
"""

import json

from repro.chaos import (
    OVERLAY_FAULT_KINDS,
    ChaosEngine,
    ChaosOptions,
    ChaosProfile,
    FaultAction,
    FaultSchedule,
    RerouteBoundMonitor,
    generate_schedule,
)
from repro.simnet import Simulator

OVERLAY_LINKS = [
    ("cc1", "cc2"), ("cc1", "dc1"), ("cc1", "dc2"),
    ("cc2", "dc1"), ("cc2", "dc2"), ("dc1", "dc2"),
]
OVERLAY_SITES = ["cc1", "cc2", "dc1", "dc2"]


# ----------------------------------------------------------------------
# Schedule model + generator
# ----------------------------------------------------------------------
def test_overlay_fault_actions_roundtrip_json():
    actions = [
        FaultAction("link_kill", 100.0, 500.0, targets=("cc1", "dc2")),
        FaultAction("link_degrade", 200.0, 400.0, targets=("cc2", "dc1"),
                    params=(("extra_delay_ms", 150.0), ("extra_loss", 0.2))),
        FaultAction("daemon_kill", 300.0, 600.0, targets=("dc1",)),
    ]
    for action in actions:
        assert action.kind in OVERLAY_FAULT_KINDS
        restored = FaultAction.from_dict(json.loads(json.dumps(action.to_dict())))
        assert restored == action
    schedule = FaultSchedule(tuple(actions))
    assert FaultSchedule.from_json(schedule.to_json()) == schedule


def test_generator_draws_overlay_faults_deterministically():
    profile = ChaosProfile(
        kinds=("link_kill", "link_degrade", "daemon_kill"),
        window_start_ms=500.0, window_end_ms=4000.0,
        min_actions=4, max_actions=8,
    )
    first = generate_schedule(
        21, [f"replica:{i}" for i in range(6)], profile=profile,
        overlay_links=OVERLAY_LINKS, overlay_sites=OVERLAY_SITES,
    )
    second = generate_schedule(
        21, [f"replica:{i}" for i in range(6)], profile=profile,
        overlay_links=OVERLAY_LINKS, overlay_sites=OVERLAY_SITES,
    )
    assert first == second
    assert len(first) >= 4
    assert all(a.kind in OVERLAY_FAULT_KINDS for a in first)
    for action in first:
        if action.kind in ("link_kill", "link_degrade"):
            assert tuple(action.targets) in [
                tuple(l) for l in OVERLAY_LINKS
            ] or tuple(reversed(action.targets)) in [
                tuple(l) for l in OVERLAY_LINKS
            ]
        else:
            assert action.targets[0] in OVERLAY_SITES


def test_generator_skips_overlay_kinds_without_topology():
    profile = ChaosProfile(
        kinds=("link_kill", "daemon_kill", "crash"),
        window_start_ms=500.0, window_end_ms=4000.0,
        min_actions=3, max_actions=6,
    )
    schedule = generate_schedule(
        9, [f"replica:{i}" for i in range(6)], profile=profile,
    )
    # with no overlay links/sites supplied, only crash survives
    assert all(a.kind == "crash" for a in schedule)


# ----------------------------------------------------------------------
# RerouteBoundMonitor in isolation
# ----------------------------------------------------------------------
def test_reroute_monitor_passes_when_delivery_resumes():
    monitor = RerouteBoundMonitor(Simulator(seed=1), bound_ms=1000.0)
    monitor.evaluate(
        delivery_times=[100.0, 2100.0, 2900.0],
        fault_starts=[2000.0],
        total_ms=5000.0,
    )
    assert monitor.faults_checked == 1
    assert monitor.violations() == []


def test_reroute_monitor_flags_stall():
    monitor = RerouteBoundMonitor(Simulator(seed=1), bound_ms=1000.0)
    monitor.evaluate(
        delivery_times=[100.0, 4000.0],  # gap covers [2000, 3000]
        fault_starts=[2000.0],
        total_ms=5000.0,
    )
    (violation,) = monitor.violations()
    assert violation.kind == "reroute-stall"
    assert dict(violation.details)["fault_start_ms"] == 2000.0


def test_reroute_monitor_skips_faults_too_close_to_end():
    monitor = RerouteBoundMonitor(Simulator(seed=1), bound_ms=1000.0)
    monitor.evaluate(
        delivery_times=[100.0],
        fault_starts=[4500.0],  # bound extends past total_ms: not judged
        total_ms=5000.0,
    )
    assert monitor.faults_checked == 0
    assert monitor.violations() == []


# ----------------------------------------------------------------------
# End to end: explicit overlay schedule through a full deployment
# ----------------------------------------------------------------------
def _overlay_options(seed=13):
    return ChaosOptions(
        seed=seed,
        warmup_ms=800.0,
        chaos_ms=3000.0,
        settle_ms=2000.0,
        poll_interval_ms=250.0,
        proactive_recovery=(5000.0, 400.0),
        self_healing=True,
        overlay_queue_limit=64,
    )


def _overlay_schedule():
    return FaultSchedule((
        FaultAction("link_kill", 1200.0, 1500.0, targets=("cc1", "dc2")),
        FaultAction("daemon_kill", 2600.0, 600.0, targets=("dc2",)),
    ))


def test_chaos_run_survives_overlay_faults_with_self_healing():
    result = ChaosEngine(_overlay_options(), schedule=_overlay_schedule()).run()
    assert result.violations == []
    assert result.stats["reroute_faults_checked"] == 2
    assert result.stats["overlay_reroutes"] >= 1
    # injector actually applied the faults
    notes = " ".join(result.injector_log)
    assert "LINK-KILL" in notes and "CRASH" in notes


def test_chaos_overlay_run_is_deterministic():
    first = ChaosEngine(_overlay_options(), schedule=_overlay_schedule()).run()
    second = ChaosEngine(_overlay_options(), schedule=_overlay_schedule()).run()
    assert first.fingerprint == second.fingerprint
    assert first.deterministic_stats == second.deterministic_stats


def test_chaos_link_degrade_applies_dos_window():
    schedule = FaultSchedule((
        FaultAction("link_degrade", 1200.0, 1200.0, targets=("cc1", "cc2"),
                    params=(("extra_delay_ms", 120.0), ("extra_loss", 0.1))),
    ))
    result = ChaosEngine(_overlay_options(seed=14), schedule=schedule).run()
    assert result.violations == []
    assert result.stats["reroute_faults_checked"] == 1
