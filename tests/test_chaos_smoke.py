"""Tier-1 chaos smoke suite.

Runs a batch of seeded randomized fault scenarios against full Spire
deployments with every invariant monitor armed, and exercises the
dump → replay → shrink loop end to end, including a deliberately weakened
proxy gate that the monitors must catch. Scenarios here use a compact
deployment (f=1, k=1, 6 replicas on the 4-site WAN, 2 substations) and
short windows to stay inside the tier-1 wall-clock budget; the full-scale
200-scenario sweep lives in ``benchmarks/bench_chaos_sweep.py`` behind the
``chaos`` marker.
"""

import time

import pytest

from repro.chaos import (
    ChaosEngine,
    ChaosOptions,
    ReplayMismatch,
    dump_scenario,
    replay_scenario,
    scenario_dict,
    shrink_schedule,
)
from repro.crypto.provider import ThresholdSignature
from repro.parallel import resolve_workers, run_campaign, seed_tasks

#: compact-but-complete scenario shape for the smoke budget
SMOKE = dict(
    warmup_ms=800.0,
    chaos_ms=3000.0,
    settle_ms=2000.0,
    poll_interval_ms=250.0,
    proactive_recovery=(5000.0, 400.0),
)
SMOKE_SEEDS = range(25)
WALL_BUDGET_S = 240.0


def smoke_options(seed: int) -> ChaosOptions:
    return ChaosOptions(seed=seed, **SMOKE)


def test_chaos_smoke_sweep():
    """>= 25 seeded scenarios, zero invariant violations, bounded wall time.

    Runs through the shared campaign runner (serial by default; set
    ``CHAOS_WORKERS`` to fan the sweep across cores, as CI does)."""
    started = time.time()
    report = run_campaign(
        seed_tasks("chaos", ChaosOptions(**SMOKE), SMOKE_SEEDS),
        workers=resolve_workers(default=1),
    )
    wall = time.time() - started
    failures = [
        (result.task_id, [str(v) for v in result.violations])
        for result in report.records
        if not result.ok
    ]
    assert not failures, f"invariant violations in seeds: {failures}"
    # the sweep must be non-vacuous: monitors saw real traffic and the
    # generator exercised a healthy slice of the fault taxonomy
    results = report.results
    assert sum(r.stats["executions_checked"] for r in results) > 1000
    assert sum(
        r.stats["hmi_verified"] + r.stats["proxy_verified"] for r in results
    ) > 100
    fault_kinds_seen = set()
    for result in results:
        fault_kinds_seen.update(result.stats["fault_kinds"])
    assert len(fault_kinds_seen) >= 6
    assert wall < WALL_BUDGET_S, f"smoke sweep too slow: {wall:.0f}s"


def test_chaos_run_is_deterministic():
    """Same (seed, schedule) => identical trace fingerprint and verdicts."""
    first = ChaosEngine(smoke_options(3)).run()
    second = ChaosEngine(smoke_options(3)).run()
    assert first.schedule == second.schedule
    assert first.fingerprint == second.fingerprint
    assert [v.to_dict() for v in first.violations] == \
        [v.to_dict() for v in second.violations]
    # wall_runtime_s is a host fact and excluded from the deterministic view
    assert first.deterministic_stats == second.deterministic_stats


def test_scenario_dump_replays_byte_for_byte(tmp_path):
    result = ChaosEngine(smoke_options(5)).run()
    path = dump_scenario(result, tmp_path / "scenario.json")
    replayed = replay_scenario(path)  # raises ReplayMismatch on divergence
    assert replayed.fingerprint == result.fingerprint
    assert [v.to_dict() for v in replayed.violations] == \
        [v.to_dict() for v in result.violations]
    # re-dumping the replay reproduces the scenario file byte-for-byte
    again = dump_scenario(replayed, tmp_path / "scenario-replayed.json")
    assert path.read_text() == again.read_text()


def test_replay_detects_divergence():
    result = ChaosEngine(smoke_options(2)).run()
    stale = scenario_dict(result)
    stale["fingerprint"] = "0" * 32
    with pytest.raises(ReplayMismatch):
        replay_scenario(stale)


def weaken_proxy_gate(deployment):
    """Test-only mutant: the proxy's collector 'verifies' after a single
    share and vouches with a forged combined signature — the bug class the
    proxy-gate monitor exists to catch."""
    collector = deployment.proxy.collector

    def gullible_add(share):
        record = share.record
        key = record.key()
        if key in collector._done:
            return None
        collector._done.add(key)
        collector.verified += 1
        return record, ThresholdSignature(collector.group, "forged")

    collector.add = gullible_add


def test_weakened_gate_caught_replayed_and_shrunk(tmp_path):
    result = ChaosEngine(smoke_options(8), mutator=weaken_proxy_gate).run()
    kinds = {v.kind for v in result.violations}
    assert "unverified-delivery" in kinds

    # the violation dumps to a scenario file that replays exactly...
    path = dump_scenario(result, tmp_path / "weak-gate.json")
    replayed = replay_scenario(path, mutator=weaken_proxy_gate)
    assert replayed.fingerprint == result.fingerprint
    assert {v.kind for v in replayed.violations} == kinds

    # ...and shrinks to the minimal reproducer: the violation does not
    # depend on any scheduled fault, so ddmin collapses the schedule
    shrunk = shrink_schedule(
        result.options, result.schedule, mutator=weaken_proxy_gate, max_runs=8,
    )
    assert shrunk.reproduced
    assert len(shrunk.schedule) == 0
