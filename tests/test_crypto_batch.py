"""Batch crypto operations: equivalence with per-message ops, fail-fast
MAC bisection, TimedCrypto batch accounting, and the deprecation shims."""

import pytest

from repro.crypto import (
    FastCrypto,
    RealCrypto,
    Signature,
    ThresholdGroup,
    TimedCrypto,
    bisect_mismatches,
    generate_threshold_group,
)
from repro.obs import Observability


MESSAGES = [("reading", i, float(i)) for i in range(9)]


@pytest.fixture(params=["fast", "real"])
def provider(request):
    if request.param == "fast":
        return FastCrypto(seed="batch-test")
    return RealCrypto(seed="batch-test", bits=512)


# ----------------------------------------------------------------------
# Batch ops match the per-message ops bit-for-bit
# ----------------------------------------------------------------------


def test_sign_batch_matches_loop(provider):
    looped = [provider.sign("alice", m) for m in MESSAGES]
    batched = provider.sign_batch("alice", MESSAGES)
    assert batched == looped
    assert provider.verify_batch(batched, MESSAGES) == [True] * len(MESSAGES)


def test_verify_batch_flags_bad_signatures(provider):
    signatures = provider.sign_batch("alice", MESSAGES)
    # mallory's signature value attributed to alice must not verify
    forged = provider.sign("mallory", MESSAGES[3])
    signatures[3] = Signature("alice", forged.value)
    flags = provider.verify_batch(signatures, MESSAGES)
    assert flags == [i != 3 for i in range(len(MESSAGES))]


def test_verify_batch_length_mismatch_raises(provider):
    signatures = provider.sign_batch("alice", MESSAGES)
    with pytest.raises(ValueError):
        provider.verify_batch(signatures[:-1], MESSAGES)


def test_mac_batch_matches_loop(provider):
    looped = [provider.mac("a", "b", m) for m in MESSAGES]
    assert provider.mac_batch("a", "b", MESSAGES) == looped


def test_check_mac_batch_all_good(provider):
    tags = provider.mac_batch("a", "b", MESSAGES)
    assert provider.check_mac_batch("a", "b", MESSAGES, tags) == [True] * len(MESSAGES)


def test_check_mac_batch_flags_exact_corruption(provider):
    tags = provider.mac_batch("a", "b", MESSAGES)
    tags[1] = b"\x00" * 32
    tags[7] = b"\x01" * 32
    flags = provider.check_mac_batch("a", "b", MESSAGES, tags)
    assert flags == [i not in (1, 7) for i in range(len(MESSAGES))]


def test_threshold_sign_share_batch_matches_loop(provider):
    provider.create_threshold_group("g", 4, 2)
    looped = [provider.threshold_sign_share("g", 2, m) for m in MESSAGES]
    batched = provider.threshold_sign_share_batch("g", 2, MESSAGES)
    assert batched == looped
    # shares from the batch path combine exactly like per-message shares
    other = provider.threshold_sign_share_batch("g", 4, MESSAGES)
    for message, s1, s2 in zip(MESSAGES, batched, other):
        combined = provider.threshold_combine("g", message, [s1, s2])
        assert combined is not None
        assert provider.threshold_verify(combined, message)


def test_threshold_sign_share_batch_bad_index(provider):
    provider.create_threshold_group("g", 4, 2)
    if isinstance(provider, FastCrypto):
        with pytest.raises(ValueError):
            provider.threshold_sign_share_batch("g", 5, MESSAGES)
    else:
        with pytest.raises(KeyError):
            provider.threshold_sign_share_batch("g", 5, MESSAGES)


# ----------------------------------------------------------------------
# Fail-fast bisection
# ----------------------------------------------------------------------


def tags_of(n):
    return [bytes([i]) * 32 for i in range(n)]


def test_bisect_all_good_costs_one_comparison():
    expected = tags_of(64)
    bad, comparisons = bisect_mismatches(expected, list(expected))
    assert bad == []
    assert comparisons == 1


def test_bisect_isolates_single_corruption_logarithmically():
    expected = tags_of(64)
    received = list(expected)
    received[37] = b"\xff" * 32
    bad, comparisons = bisect_mismatches(expected, received)
    assert bad == [37]
    # one aggregate per level on the path to the leaf, plus the sibling
    # aggregates that short-circuit: far fewer than 64 comparisons
    assert comparisons <= 2 * 64 .bit_length() + 2


def test_bisect_finds_multiple_corruptions_in_order():
    expected = tags_of(32)
    received = list(expected)
    for index in (0, 13, 31):
        received[index] = b"\xee" * 32
    bad, comparisons = bisect_mismatches(expected, received)
    assert bad == [0, 13, 31]
    assert comparisons < 32


def test_bisect_empty_and_mismatched_lengths():
    assert bisect_mismatches([], []) == ([], 0)
    with pytest.raises(ValueError):
        bisect_mismatches(tags_of(3), tags_of(4))


def test_bisect_all_corrupt():
    expected = tags_of(8)
    received = [b"\xaa" * 32] * 8
    bad, _ = bisect_mismatches(expected, received)
    assert bad == list(range(8))


# ----------------------------------------------------------------------
# TimedCrypto batch accounting
# ----------------------------------------------------------------------


def test_timed_crypto_counts_batches_and_items():
    obs = Observability()
    timed = TimedCrypto(FastCrypto(seed="timed"), obs)
    timed.create_threshold_group("g", 4, 2)

    signatures = timed.sign_batch("alice", MESSAGES)
    timed.verify_batch(signatures, MESSAGES)
    tags = timed.mac_batch("a", "b", MESSAGES)
    timed.check_mac_batch("a", "b", MESSAGES, tags)
    timed.threshold_sign_share_batch("g", 1, MESSAGES)

    metrics = obs.snapshot()["metrics"]
    n = len(MESSAGES)
    for op in (
        "sign_batch",
        "verify_batch",
        "mac_batch",
        "check_mac_batch",
        "threshold_sign_share_batch",
    ):
        assert metrics[f"crypto.{op}.calls"] == 1, op
        assert metrics[f"crypto.{op}.items"] == n, op


def test_timed_crypto_batch_results_match_inner():
    inner = FastCrypto(seed="timed-eq")
    timed = TimedCrypto(FastCrypto(seed="timed-eq"), Observability())
    assert timed.sign_batch("alice", MESSAGES) == inner.sign_batch("alice", MESSAGES)
    assert timed.mac_batch("a", "b", MESSAGES) == inner.mac_batch("a", "b", MESSAGES)


# ----------------------------------------------------------------------
# Deprecated ThresholdGroup entry points
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def legacy_group():
    public, shares = generate_threshold_group(4, 2, bits=512, seed="legacy")
    return public, shares, ThresholdGroup(public)


def test_combine_shim_warns_and_delegates(legacy_group):
    public, shares, combiner = legacy_group
    data = b"update"
    partials = [shares[1].sign(data), shares[3].sign(data)]
    with pytest.warns(DeprecationWarning, match="combine_shares"):
        signature = combiner.combine(data, partials)
    assert signature == combiner.combine_shares(data, partials)
    assert public.verify(data, signature)


def test_combine_robust_shim_warns_and_delegates(legacy_group):
    public, shares, combiner = legacy_group
    data = b"update"
    partials = [shares[1].sign(data), shares[2].sign(data)]
    with pytest.warns(DeprecationWarning, match="combine_shares_robust"):
        signature = combiner.combine_robust(data, partials)
    assert signature is not None
    assert public.verify(data, signature)
