"""Tests for the power-grid process model."""

import pytest

from repro.scada import PowerGrid, Substation, build_radial_grid


@pytest.fixture
def grid():
    g = PowerGrid(seed=1)
    g.add_substation(Substation("gen", load_mw=0.0, generation_mw=100.0))
    g.add_substation(Substation("a", load_mw=10.0))
    g.add_substation(Substation("b", load_mw=20.0))
    g.add_line("gen", "a")
    g.add_line("a", "b")
    return g


def test_duplicate_substation_rejected(grid):
    with pytest.raises(ValueError):
        grid.add_substation(Substation("a"))


def test_line_to_unknown_substation_rejected(grid):
    with pytest.raises(KeyError):
        grid.add_line("a", "missing")


def test_line_creates_breaker_at_each_end(grid):
    assert "a->b" in grid.substations["a"].breakers
    assert "b->a" in grid.substations["b"].breakers


def test_all_energized_initially(grid):
    assert grid.energized_substations() == {"gen", "a", "b"}


def test_opening_breaker_deenergizes_downstream(grid):
    grid.set_breaker("a", "a->b", False)
    assert grid.energized_substations() == {"gen", "a"}


def test_line_needs_both_breakers_closed(grid):
    grid.set_breaker("b", "b->a", False)
    assert not grid.line_energized("a", "b")
    grid.set_breaker("b", "b->a", True)
    assert grid.line_energized("a", "b")


def test_set_breaker_reports_change(grid):
    assert grid.set_breaker("a", "a->b", False) is True
    assert grid.set_breaker("a", "a->b", False) is False


def test_unknown_breaker_rejected(grid):
    with pytest.raises(KeyError):
        grid.set_breaker("a", "nope", False)


def test_served_load_drops_when_shedding(grid):
    full = grid.served_load_mw()
    grid.set_breaker("a", "a->b", False)
    shed = grid.served_load_mw()
    assert shed < full
    assert grid.shed_load_mw() == pytest.approx(full - shed)


def test_served_never_exceeds_total(grid):
    assert grid.served_load_mw() <= grid.total_load_mw() + 1e-9


def test_load_factor_diurnal_cycle(grid):
    factors = []
    for hour in range(24):
        grid.time_hours = float(hour)
        factors.append(grid.load_factor())
    assert min(factors) > 0.5
    assert max(factors) < 1.2
    assert max(factors) != min(factors)


def test_advance_time(grid):
    grid.advance_time(2.5)
    assert grid.time_hours == 2.5


def test_measurements_energized(grid):
    m = grid.measurements("a")
    assert 130.0 < m["voltage_kv"] < 145.0
    assert m["energized"] == 1.0
    assert 59.9 < m["frequency_hz"] < 60.1


def test_measurements_deenergized(grid):
    grid.set_breaker("a", "a->b", False)
    m = grid.measurements("b")
    assert m["voltage_kv"] == 0.0
    assert m["energized"] == 0.0


def test_breaker_states_map(grid):
    states = grid.breaker_states("a")
    assert states == {"a->gen": True, "a->b": True}


def test_radial_builder_properties():
    grid = build_radial_grid(num_substations=12, seed=3, sources=2)
    assert len(grid.substations) == 12
    assert sum(1 for s in grid.substations.values() if s.is_source) == 2
    # everything energized at build time
    assert len(grid.energized_substations()) == 12


def test_radial_builder_deterministic():
    a = build_radial_grid(num_substations=8, seed=5)
    b = build_radial_grid(num_substations=8, seed=5)
    assert set(a.graph.edges) == set(b.graph.edges)


def test_radial_builder_min_size():
    with pytest.raises(ValueError):
        build_radial_grid(num_substations=1)


def test_isolating_source_sheds_everything():
    grid = PowerGrid()
    grid.add_substation(Substation("gen", load_mw=0.0, generation_mw=10.0))
    grid.add_substation(Substation("x", load_mw=5.0))
    grid.add_line("gen", "x")
    grid.set_breaker("gen", "gen->x", False)
    assert grid.served_load_mw() == 0.0
