"""Integration tests for Prime ordering on a direct LAN network."""

import pytest

from repro.crypto import FastCrypto
from repro.prime import (
    ClientUpdate,
    KeyValueApp,
    PrimeNode,
    sign_client_update,
)
from repro.prime.node import verify_client_update


def test_single_update_executes_everywhere(cluster):
    cluster.submit(("op", 1))
    cluster.run_for(500)
    reference = cluster.assert_safety()
    assert len(reference) == 1


def test_many_updates_all_execute_in_same_order(cluster):
    cluster.pump(30, gap_ms=15)
    cluster.run_for(1000)
    reference = cluster.assert_safety()
    assert len(reference) == 30


def test_updates_from_all_origins_interleave_consistently(cluster):
    for index in range(6):
        cluster.submit(("from", index), node_index=index)
    cluster.run_for(1000)
    reference = cluster.assert_safety()
    assert len(reference) == 6


def test_duplicate_submission_executes_once(cluster):
    update = sign_client_update(cluster.crypto, "client:x", 1, ("op",))
    cluster.nodes[0].submit(update)
    cluster.nodes[1].submit(update)  # client failover duplicate
    cluster.nodes[2].submit(update)
    cluster.run_for(1000)
    reference = cluster.assert_safety()
    assert len(reference) == 1


def test_resubmission_after_execution_rejected(cluster):
    update = sign_client_update(cluster.crypto, "client:x", 1, ("op",))
    cluster.nodes[0].submit(update)
    cluster.run_for(500)
    assert cluster.nodes[0].submit(update) is False


def test_unsigned_update_rejected(cluster):
    bogus = ClientUpdate("client:x", 1, ("op",), None)
    assert cluster.nodes[0].submit(bogus) is False


def test_wrong_signature_rejected(cluster):
    update = sign_client_update(cluster.crypto, "client:x", 1, ("op",))
    forged = ClientUpdate("client:y", 1, ("op",), update.signature)
    assert cluster.nodes[0].submit(forged) is False
    assert not verify_client_update(cluster.crypto, forged)


def test_batching_groups_updates(cluster):
    # submit several updates at the same instant to one node: they must
    # travel in a single PoRequest
    for seq in range(5):
        cluster.submit(("burst", seq), node_index=2)
    cluster.run_for(500)
    node = cluster.nodes[2]
    origin_state = node.origins[node.origin_id]
    assert origin_state.certified_upto == 1  # one batch
    assert len(origin_state.requests[1].payload.updates) == 5


def test_batch_respects_max_size(cluster_factory):
    import dataclasses

    cluster = cluster_factory()
    cluster.config = dataclasses.replace(cluster.config, batch_max_updates=2)
    for node in cluster.nodes:
        node.config = cluster.config
    cluster.start()
    for seq in range(5):
        cluster.submit(("burst", seq), node_index=0)
    cluster.run_for(500)
    origin_state = cluster.nodes[0].origins[cluster.nodes[0].origin_id]
    assert origin_state.certified_upto == 3  # 2 + 2 + 1
    cluster.assert_safety()


def test_execution_is_deterministic_across_seeds(cluster_factory):
    logs = []
    for seed in (1, 1):
        cluster = cluster_factory(seed=seed).start()
        cluster.pump(10, gap_ms=10)
        cluster.run_for(500)
        logs.append(cluster.logs()[0])
    assert logs[0] == logs[1]


def test_app_state_converges(cluster_factory):
    cluster = cluster_factory(app_factory=KeyValueApp).start()
    cluster.submit(("set", "a", 1))
    cluster.run_for(200)
    cluster.submit(("set", "b", 2))
    cluster.run_for(500)
    states = [node.app.data for node in cluster.nodes]
    assert all(state == {"a": 1, "b": 2} for state in states)


def test_survives_message_loss(cluster_factory):
    cluster = cluster_factory(loss=0.05, seed=13).start()
    cluster.pump(20, gap_ms=30)
    cluster.run_for(5000)
    reference = cluster.assert_safety()
    assert len(reference) == 20


def test_survives_heavy_loss(cluster_factory):
    cluster = cluster_factory(loss=0.2, seed=17).start()
    cluster.pump(10, gap_ms=50)
    cluster.run_for(15000)
    reference = cluster.assert_safety()
    assert len(reference) == 10


def test_coverage_cutoffs_quorum_th_largest():
    from repro.prime.messages import PoSummary, SignedMessage
    from repro.crypto.provider import Signature

    def row(sender, upto):
        summary = PoSummary(sender, 1, (("origin:a#0", upto),))
        return SignedMessage(summary, Signature(sender, "x"))

    matrix = tuple(row(f"r{i}", upto) for i, upto in enumerate([9, 7, 5, 3, 1, 0]))
    cutoffs = PrimeNode.coverage_cutoffs(matrix, n=6, quorum=4)
    assert cutoffs["origin:a#0"] == 3  # 4th largest of [9,7,5,3,1,0]


def test_coverage_cutoffs_missing_rows_count_as_zero():
    from repro.prime.messages import PoSummary, SignedMessage
    from repro.crypto.provider import Signature

    def row(sender, upto):
        summary = PoSummary(sender, 1, (("o#0", upto),))
        return SignedMessage(summary, Signature(sender, "x"))

    matrix = tuple(row(f"r{i}", 10) for i in range(3))  # only 3 of 6 rows
    cutoffs = PrimeNode.coverage_cutoffs(matrix, n=6, quorum=4)
    assert cutoffs["o#0"] == 0


def test_crashed_node_does_not_accept_submissions(cluster):
    cluster.nodes[3].crash()
    update = sign_client_update(cluster.crypto, "c", 1, ("op",))
    assert cluster.nodes[3].submit(update) is False


def test_progress_with_k_nodes_down(cluster):
    cluster.nodes[5].crash()  # k = 1 budget
    cluster.pump(10, gap_ms=20)
    cluster.run_for(1500)
    reference = cluster.assert_safety(only_up=True)
    assert len(reference) == 10


def test_no_progress_beyond_fault_budget(cluster):
    # f=1, k=1: quorum 4 of 6; with 3 down no quorum can form
    for index in (3, 4, 5):
        cluster.nodes[index].crash()
    cluster.submit(("op", 1))
    cluster.run_for(3000)
    assert all(len(node.app.log) == 0 for node in cluster.nodes if node.is_up)


def test_checkpoint_garbage_collects_slots(cluster_factory):
    import dataclasses

    cluster = cluster_factory()
    cluster.config = dataclasses.replace(cluster.config, checkpoint_interval_seqs=5)
    for node in cluster.nodes:
        node.config = cluster.config
        node.checkpoints.config = cluster.config
    cluster.start()
    cluster.pump(30, gap_ms=25)
    cluster.run_for(2000)
    node = cluster.nodes[0]
    assert node.checkpoints.stable_seq > 0
    horizon = node.checkpoints.stable_seq - cluster.config.checkpoint_interval_seqs
    assert all(seq > horizon for seq in node.slots)
    cluster.assert_safety()
