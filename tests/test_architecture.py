"""Architecture guards: keep the decomposition from regressing.

The PrimeNode monolith was decomposed into stage objects mounted on
``repro.replication`` (see DESIGN.md §8). These guards fail loudly if the
composition root starts reabsorbing stage logic, or if protocol nodes
stop going through the shared runtime.
"""

import pathlib

import repro.pbft.node
import repro.prime.node

SRC = pathlib.Path(repro.prime.node.__file__).resolve().parents[2]


def _line_count(module) -> int:
    return len(pathlib.Path(module.__file__).read_text().splitlines())


def test_prime_node_stays_a_composition_root():
    # The pre-refactor monolith was ~1200 lines. The composition root
    # wires stages together; protocol logic belongs in the stage modules
    # (preorder/ordering/execution/leadership/recovery/checkpoint).
    assert _line_count(repro.prime.node) < 600


def test_both_nodes_mount_the_shared_runtime():
    for module in (repro.prime.node, repro.pbft.node):
        text = pathlib.Path(module.__file__).read_text()
        assert "ReplicationRuntime(" in text
        assert "Dispatcher(" in text


def test_protocol_packages_do_not_import_each_others_internals():
    # The shared substrate is repro.replication; prime must not reach
    # into pbft (pbft reuses prime's app/client-update helpers only).
    for path in (SRC / "repro" / "prime").glob("*.py"):
        assert "from ..pbft" not in path.read_text(), path


def test_view_vote_tables_are_garbage_collected():
    # Both protocols must drop view-change vote state below the adopted
    # view after a new-view installs — the vote tables are the only
    # unbounded-by-construction state on the view-change path.
    pbft_text = pathlib.Path(repro.pbft.node.__file__).read_text()
    assert "._view_changes.drop_below(" in pbft_text
    leadership = SRC / "repro" / "prime" / "leadership.py"
    assert ".garbage_collect(" in leadership.read_text()
