"""Tests for fleet-scale scenarios (repro.fleet + repro.scada.region).

Covers: spec validation (inconsistent fleet knobs fail with actionable
errors), generator determinism (same seed ⇒ byte-identical topology and
traffic, different seeds differ), the sharded poll driver's equivalence
with the per-device timers it replaces, lazy materialization, and a
small fleet deployment end to end (readings ordered and verified,
operator commands routed through the region resolver and executed).
"""

import os

import pytest

from repro.core import BatchingOptions, SpireDeployment, SpireOptions
from repro.crypto.encoding import digest
from repro.fleet import (
    FleetSpec,
    FleetTrafficDriver,
    OperatorTrafficModel,
    PollClass,
    RegionSpec,
    TrafficSpec,
    generate_fleet,
)
from repro.scada import RegionShard, ShardedPollDriver
from repro.simnet import LinkSpec, Network, Process, Simulator

DETERMINISTIC_HASHING = os.environ.get("PYTHONHASHSEED") == "0"


# ----------------------------------------------------------------------
# FleetSpec validation
# ----------------------------------------------------------------------

def test_sized_splits_evenly_and_validates():
    spec = FleetSpec.sized(1000, num_regions=4)
    assert [r.device_count for r in spec.regions] == [250, 250, 250, 250]
    spec.validate()
    uneven = FleetSpec.sized(10, num_regions=3)
    assert [r.device_count for r in uneven.regions] == [4, 3, 3]


def test_sized_auto_region_count_respects_unit_id_budget():
    spec = FleetSpec.sized(10_000)
    assert all(r.device_count <= 255 for r in spec.regions)
    assert sum(r.device_count for r in spec.regions) == 10_000
    spec.validate()


def test_validate_rejects_total_mismatch():
    spec = FleetSpec(
        total_devices=10,
        regions=(RegionSpec("east", 4), RegionSpec("west", 4)),
    )
    with pytest.raises(ValueError, match="sum to 8"):
        spec.validate()


def test_validate_rejects_nonpositive_arrival_rate():
    spec = FleetSpec.sized(8, num_regions=2)
    bad = FleetSpec(
        total_devices=8,
        regions=spec.regions,
        traffic=TrafficSpec(rate_per_s=0.0),
    )
    with pytest.raises(ValueError, match="rate_per_s must be positive"):
        bad.validate()


def test_validate_rejects_oversized_region():
    spec = FleetSpec(total_devices=300, regions=(RegionSpec("big", 300),))
    with pytest.raises(ValueError, match="at most 255"):
        spec.validate()


def test_validate_rejects_unaligned_poll_class():
    spec = FleetSpec(
        total_devices=4,
        regions=(RegionSpec("r", 4),),
        poll_classes=(PollClass("odd", 150.0, 1.0),),
        base_tick_ms=100.0,
    )
    with pytest.raises(ValueError, match="multiple of base_tick_ms"):
        spec.validate()


def test_validate_rejects_duplicate_and_slashed_region_names():
    with pytest.raises(ValueError, match="duplicate region names"):
        FleetSpec(
            total_devices=4,
            regions=(RegionSpec("a", 2), RegionSpec("a", 2)),
        ).validate()
    with pytest.raises(ValueError, match="must not contain '/'"):
        FleetSpec(
            total_devices=2, regions=(RegionSpec("a/b", 2),)
        ).validate()


def test_options_validate_calls_fleet_validate():
    bad = FleetSpec(
        total_devices=10,
        regions=(RegionSpec("east", 4), RegionSpec("west", 4)),
    )
    with pytest.raises(ValueError, match="sum to 8"):
        SpireOptions.wan(fleet=bad).validate()


# ----------------------------------------------------------------------
# Generator determinism
# ----------------------------------------------------------------------

def test_same_seed_same_topology_different_seed_differs():
    spec = FleetSpec.sized(120, num_regions=3)
    first = generate_fleet(spec, seed=11).manifest()
    second = generate_fleet(spec, seed=11).manifest()
    other = generate_fleet(spec, seed=12).manifest()
    assert first == second
    assert first != other


@pytest.mark.skipif(
    not DETERMINISTIC_HASHING,
    reason="digest comparison across runs needs PYTHONHASHSEED=0",
)
def test_manifest_digest_is_stable_across_processes():
    spec = FleetSpec.sized(60, num_regions=2)
    assert digest(generate_fleet(spec, seed=3).manifest()) == digest(
        generate_fleet(spec, seed=3).manifest()
    )


def test_generator_respects_spec_shape():
    spec = FleetSpec.sized(100, num_regions=4, plc_fraction=1.0)
    topology = generate_fleet(spec, seed=5)
    assert topology.device_count == 100
    assert [shard.device_count for shard in topology.regions] == [25] * 4
    assert all(
        slot.kind == "plc"
        for shard in topology.regions
        for slot in shard.slots
    )
    # substation names are globally unique and region-prefixed
    names = [
        slot.substation
        for shard in topology.regions
        for slot in shard.slots
    ]
    assert len(set(names)) == 100
    assert all("/" in name for name in names)


def test_traffic_model_deterministic_and_open_loop():
    sizes = [30, 20]
    spec = TrafficSpec(process="poisson", rate_per_s=5.0)
    first = OperatorTrafficModel(spec, sizes, seed=9).preview(64)
    second = OperatorTrafficModel(spec, sizes, seed=9).preview(64)
    other = OperatorTrafficModel(spec, sizes, seed=10).preview(64)
    assert first == second
    assert first != other
    for gap_ms, region, device, _close in first:
        assert gap_ms > 0
        assert 0 <= region < 2
        assert 0 <= device < sizes[region]


def test_periodic_traffic_has_fixed_gaps():
    model = OperatorTrafficModel(
        TrafficSpec(process="periodic", rate_per_s=4.0), [10], seed=1
    )
    gaps = {action[0] for action in model.preview(16)}
    assert gaps == {250.0}


# ----------------------------------------------------------------------
# Sharded poll driver ≡ per-device timers
# ----------------------------------------------------------------------

def _drive(mode, run_ms=4000.0):
    """Run a mixed-class roster under one driver mode; returns the
    (time, slot_index) poll sequence."""
    simulator = Simulator(seed=2)
    network = Network(simulator, LinkSpec(latency_ms=0.5, jitter_ms=0.0))
    owner = Process(f"driver:{mode}", simulator, network)
    shard = RegionShard(
        "ctl", seed=2, poll_intervals_ms=(100.0, 500.0, 1000.0),
        base_tick_ms=100.0,
    )
    # interleave classes so slot order and class order disagree
    for index in range(9):
        shard.add_slot(f"ctl/s{index}", "rtu", index % 3, load_mw=10.0)
    fired = []
    driver = ShardedPollDriver(
        owner, shard,
        poll=lambda slot: fired.append((simulator.now, slot.index)),
        mode=mode,
    )
    driver.start()
    simulator.run_until(run_ms)
    return fired


def test_sharded_driver_matches_per_device_timers():
    """The region-level driver must poll every device at the same virtual
    time, in the same order, as one periodic timer per device would."""
    sharded = _drive("sharded")
    per_device = _drive("per-device")
    assert sharded == per_device
    assert len(sharded) > 0


def test_driver_rejects_unknown_mode_and_unaligned_interval():
    with pytest.raises(ValueError, match="not a positive multiple"):
        RegionShard("r", seed=1, poll_intervals_ms=(150.0,), base_tick_ms=100.0)
    shard = RegionShard("r", seed=1, poll_intervals_ms=(100.0,), base_tick_ms=100.0)
    simulator = Simulator(seed=1)
    network = Network(simulator)
    owner = Process("o", simulator, network)
    with pytest.raises(ValueError, match="unknown driver mode"):
        ShardedPollDriver(owner, shard, poll=lambda s: None, mode="bogus")


def test_lazy_materialization_only_touches_polled_slots():
    simulator = Simulator(seed=3)
    network = Network(simulator, LinkSpec(latency_ms=0.5, jitter_ms=0.0))
    Process("proxy:r", simulator, network)
    shard = RegionShard(
        "r", seed=3, poll_intervals_ms=(100.0, 100000.0), base_tick_ms=100.0
    )
    fast = shard.add_slot("r/fast", "rtu", 0, load_mw=5.0)
    slow = shard.add_slot("r/slow", "plc", 1, load_mw=5.0)
    assert shard.materialized == 0
    device = shard.materialize(fast, simulator, network, "proxy:r")
    assert shard.materialized == 1
    assert fast.device is device
    assert fast.coil_ids == (f"r/fast->{shard.source}",)
    assert slow.device is None
    # idempotent: re-materializing returns the same process
    assert shard.materialize(fast, simulator, network, "proxy:r") is device
    # the star feeder energizes the materialized leaf
    assert "r/fast" in shard.grid.energized_substations()


# ----------------------------------------------------------------------
# Fleet deployment end to end
# ----------------------------------------------------------------------

def _small_fleet_options(**overrides):
    spec = FleetSpec.sized(24, num_regions=2)
    base = dict(
        seed=13,
        fleet=spec,
        batching=BatchingOptions(enabled=True, max_batch_size=16),
    )
    base.update(overrides)
    return SpireOptions.wan(**base)


def test_fleet_deployment_orders_readings_end_to_end():
    deployment = SpireDeployment(_small_fleet_options())
    deployment.start()
    deployment.run_for(3000.0)
    assert deployment.device_count == 24
    assert len(deployment.region_proxies) == 2
    readings = sum(
        p.readings_submitted for p in deployment.region_proxies
    )
    assert readings > 0
    # threshold-verified status updates reached the operator console
    assert deployment.hmis[0].status_updates_seen > 0
    # open-loop traffic issued commands and the proxies executed them
    assert deployment.traffic_driver is not None
    assert deployment.traffic_driver.commands_issued > 0
    assert sum(p.commands_executed for p in deployment.region_proxies) > 0


def test_fleet_deployment_materializes_lazily():
    # one poll class at 1000 ms, run for less than one interval: nothing
    # should materialize, yet the deployment builds and starts fine
    spec = FleetSpec(
        total_devices=24,
        regions=(RegionSpec("east", 12), RegionSpec("west", 12)),
        poll_classes=(PollClass("slow", 1000.0, 1.0),),
        traffic=None,
    )
    deployment = SpireDeployment(_small_fleet_options(fleet=spec))
    deployment.start()
    deployment.run_for(500.0)
    assert sum(s.materialized for s in deployment.fleet_topology.regions) == 0
    deployment.run_for(1500.0)
    assert sum(s.materialized for s in deployment.fleet_topology.regions) == 24


def test_fleet_run_is_deterministic():
    def run():
        deployment = SpireDeployment(_small_fleet_options())
        deployment.start()
        deployment.run_for(2500.0)
        return (
            deployment.simulator.events_processed,
            sum(p.readings_submitted for p in deployment.region_proxies),
            deployment.hmis[0].status_updates_seen,
            deployment.traffic_driver.commands_issued,
        )

    assert run() == run()


def test_region_resolver_routes_commands_to_owning_proxy():
    deployment = SpireDeployment(_small_fleet_options())
    replica = deployment.replicas[0]
    east = deployment.fleet_topology.regions[0]
    substation = east.slots[0].substation
    assert replica._proxy_for(substation) == f"proxy:{east.name}"
    assert replica._proxy_for("nowhere/s0") is None


def test_fleet_traffic_driver_requires_hmis():
    topology = generate_fleet(FleetSpec.sized(8, num_regions=2), seed=1)
    with pytest.raises(ValueError, match="at least one HMI"):
        FleetTrafficDriver(
            Simulator(seed=1), [], topology, TrafficSpec(), seed=1
        )
