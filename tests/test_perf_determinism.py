"""Determinism proofs for the hot-path overhaul (DESIGN.md §10).

The live engine replaced dataclass-ordered events with slotted records in
a tuple-keyed heap, added lazy tombstone compaction, re-armable periodic
timers, and a handle-less ``post()`` fast path. None of that may change
*what* a simulation does. These tests replay identical workloads through
the live engine and the frozen seed implementation
(``benchmarks/perf/seed_impl.py``) and require event-for-event identical
behaviour — including same-``(time, priority)`` ties, which only the
insertion sequence number may break.
"""

import os
import sys
from typing import Tuple

import pytest

from repro.crypto import encoding
from repro.crypto.encoding import IdentityMemo
from repro.crypto.provider import FastCrypto
from repro.simnet.engine import Simulator

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), "..", "benchmarks", "perf")
)
from seed_impl import (  # noqa: E402
    SeedFastCrypto,
    SeedSimulator,
    seed_digest,
    seed_encode,
)


def _tie_heavy_workload(sim, log):
    """Schedule a workload dense in same-(time, priority) ties.

    Returns the cancel handles so callers can exercise cancellation.
    """
    timers = []
    for wave in range(5):
        when = 10.0 * (wave + 1)
        for i in range(40):
            # same fire time, same priority — only insertion order ties
            timers.append(
                sim.schedule(when, log.append, (wave, i))
            )
        for i in range(10):
            # explicit priorities interleaved with the default ones
            timers.append(
                sim.schedule(when, log.append, (wave, "prio", i), priority=-1)
            )
    return timers


class TestFiringOrderParity:
    def test_tied_events_fire_in_seed_order(self):
        live_log, seed_log = [], []
        live, seed = Simulator(seed=5), SeedSimulator(seed=5)
        _tie_heavy_workload(live, live_log)
        _tie_heavy_workload(seed, seed_log)
        live.run_until(100.0)
        seed.run_until(100.0)
        assert live_log == seed_log
        assert live.events_processed == seed.events_processed
        assert live.now == seed.now

    def test_cancellation_and_compaction_preserve_order(self):
        """Cancel enough timers to force the live engine's heap compaction
        (>512 tombstones and >25% of the queue); the surviving events must
        still fire exactly as in the seed engine, which never compacts."""
        live_log, seed_log = [], []
        live, seed = Simulator(seed=9), SeedSimulator(seed=9)
        for sim, log in ((live, live_log), (seed, seed_log)):
            keep = []
            cancel = []
            for i in range(2000):
                timer = sim.schedule(
                    1.0 + (i % 17) * 0.5, log.append, i, priority=i % 3 - 1
                )
                (cancel if i % 4 else keep).append(timer)
            for timer in cancel:
                timer.cancel()
        assert live._cancelled_in_heap < 1500  # compaction actually ran
        live.run_until(50.0)
        seed.run_until(50.0)
        assert live_log == seed_log
        assert live.events_processed == seed.events_processed

    def test_periodic_timers_consume_identical_rng(self):
        """Re-arming one event record must draw jitter exactly like the
        seed's fresh-closure-per-tick implementation."""
        live_log, seed_log = [], []
        live, seed = Simulator(seed=3), SeedSimulator(seed=3)
        for sim, log in ((live, live_log), (seed, seed_log)):
            stops = []
            stops.append(sim.call_every(
                7.0, lambda log=log, sim=sim: log.append(("a", sim.now)),
                jitter=2.0, rng_name="p/a",
            ))
            stops.append(sim.call_every(
                5.0, lambda log=log, sim=sim: log.append(("b", sim.now)),
                jitter=0.0, rng_name="p/b",
            ))
            sim.schedule(40.0, stops[0])  # stop mid-run, tick already queued
            sim.run_until(120.0)
        assert live_log == seed_log
        assert live.events_processed == seed.events_processed

    def test_post_orders_like_schedule(self):
        """post() entries share the (time, priority, seq) ordering domain
        with full events, so interleaved post/schedule at one instant fire
        in submission order."""
        sim = Simulator()
        log = []
        sim.post(5.0, log.append, "p1")
        sim.schedule(5.0, log.append, "s1")
        sim.post(5.0, log.append, "p2")
        sim.schedule(5.0, log.append, "s2", priority=-1)
        sim.run_until(10.0)
        assert log == ["s2", "p1", "s1", "p2"]
        assert sim.events_processed == 4

    def test_step_executes_post_entries(self):
        sim = Simulator()
        log = []
        sim.post(1.0, log.append, "x")
        sim.schedule(2.0, log.append, "y")
        assert sim.step() and sim.step()
        assert log == ["x", "y"]
        assert not sim.step()


class TestTimerSemantics:
    def test_remaining_counts_down_and_zeroes(self):
        sim = Simulator()
        timer = sim.schedule(10.0, lambda: None)
        assert timer.remaining == 10.0
        sim.run_until(4.0)
        assert timer.remaining == pytest.approx(6.0)
        sim.run_until(10.0)
        assert timer.remaining == 0.0

    def test_active_false_immediately_after_firing(self):
        """At the very instant a timer fires, active flips to False —
        the seed implementation reported True until the clock moved on."""
        sim = Simulator()
        fired_state = []
        timer = sim.schedule(5.0, lambda: fired_state.append(timer.active))
        assert timer.active
        sim.run_until(5.0)
        assert fired_state == [False]
        assert not timer.active
        assert timer.remaining == 0.0

    def test_cancel_deactivates(self):
        sim = Simulator()
        log = []
        timer = sim.schedule(5.0, log.append, "x")
        timer.cancel()
        assert not timer.active and timer.remaining == 0.0
        sim.run_until(10.0)
        assert log == []

    def test_reschedule_after_firing_reuses_record(self):
        sim = Simulator()
        log = []
        timer = sim.schedule(3.0, lambda: log.append(sim.now))
        sim.run_until(5.0)
        event_before = timer._event
        timer.reschedule(4.0)
        assert timer._event is event_before  # reused, not reallocated
        assert timer.active and timer.fire_at == 9.0
        sim.run_until(20.0)
        assert log == [3.0, 9.0]

    def test_reschedule_while_pending_moves_the_firing(self):
        sim = Simulator()
        log = []
        timer = sim.schedule(10.0, lambda: log.append(sim.now))
        sim.run_until(2.0)
        timer.reschedule(1.0)
        assert timer.fire_at == 3.0
        sim.run_until(20.0)
        assert log == [3.0]  # fired once, at the rescheduled time only
        assert sim.events_processed == 1  # tombstone pop is not an event

    def test_reschedule_negative_delay_rejected(self):
        sim = Simulator()
        timer = sim.schedule(1.0, lambda: None)
        sim.run_until(2.0)
        with pytest.raises(Exception):
            timer.reschedule(-0.5)


class TestTwoGenerationMemo:
    def test_flush_keeps_recently_touched_entries(self):
        """A flush ages hot→cold instead of dropping everything; entries
        touched since the previous flush survive (the seed epoch-clear
        evicted the live working set)."""
        memo = IdentityMemo(cap=4)
        objs = [object() for _ in range(4)]
        for i, obj in enumerate(objs):
            memo.put(id(obj), [obj, i])
        hot_obj = objs[0]
        overflow = object()
        memo.put(id(overflow), [overflow, "new"])  # triggers flush
        assert memo.flushes == 1
        # previous generation still readable (cold), and the hit promotes
        entry = memo.get(id(hot_obj), hot_obj)
        assert entry is not None and entry[1] == 0
        assert id(hot_obj) in memo.hot

    def test_cold_hit_promotion_survives_next_flush(self):
        memo = IdentityMemo(cap=2)
        keeper = object()
        memo.put(id(keeper), [keeper, "keep"])
        filler1 = object()
        memo.put(id(filler1), [filler1, 1])
        filler2 = object()
        memo.put(id(filler2), [filler2, 2])  # flush #1: keeper now cold
        assert memo.get(id(keeper), keeper) is not None  # promote
        filler3 = object()
        memo.put(id(filler3), [filler3, 3])  # flush #2
        assert memo.get(id(keeper), keeper) is not None  # still alive

    def test_untouched_entries_die_after_two_flushes(self):
        memo = IdentityMemo(cap=1)
        stale, fill1, fill2 = object(), object(), object()
        memo.put(id(stale), [stale, "stale"])
        memo.put(id(fill1), [fill1, 1])  # flush #1 → stale cold
        memo.put(id(fill2), [fill2, 2])  # flush #2 → stale dropped
        assert memo.get(id(stale), stale) is None

    def test_identity_recheck_rejects_reused_ids(self):
        memo = IdentityMemo(cap=8)
        obj = object()
        memo.put(id(obj), [obj, "v"])
        impostor = object()
        assert memo.get(id(obj), impostor) is None


class TestEncodingAndCryptoParity:
    SAMPLES = None

    @classmethod
    def _samples(cls):
        if cls.SAMPLES is None:
            from dataclasses import dataclass as dc

            @dc(frozen=True)
            class Inner:
                x: int
                y: Tuple = ()

            @dc(frozen=True)
            class Outer:
                name: str
                inner: "Inner"
                blob: bytes

            from enum import IntEnum

            class Kind(IntEnum):
                A = 1
                B = 2

            cls.SAMPLES = [
                None, True, False, 0, -17, 3.5, float("inf"), "", "hé",
                b"\x00\xff", (), (1, ("two", 3.0)), [1, [2, [3]]],
                frozenset({1, 2, 3}), {"b": 1, "a": (2,)},
                Kind.B, Inner(4, (5, 6)),
                Outer("o", Inner(1, ()), b"raw"),
            ]
        return cls.SAMPLES

    def test_encode_matches_seed_bytes(self):
        for value in self._samples():
            assert encoding.encode(value) == seed_encode(value), value

    def test_digest_matches_seed(self):
        for value in self._samples():
            assert encoding.digest(value) == seed_digest(value), value

    def test_fastcrypto_tags_match_seed(self):
        live, seed = FastCrypto(seed="par"), SeedFastCrypto(seed="par")
        for message in self._samples():
            assert (
                live.sign("r1", message).value
                == seed.sign("r1", message).value
            )
            assert live.mac("a", "b", message) == seed.mac("a", "b", message)
            assert live.mac("b", "a", message) == live.mac("a", "b", message)
