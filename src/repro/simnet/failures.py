"""Failure and attack injection scheduled against the virtual clock.

This module provides the scenario-scripting layer the benchmarks use: crash
a node at t=X, partition a site between t=X and t=Y, run a DoS against a
replica's links for a window, etc. All injections are expressed against
virtual time, which is what makes the attack benchmarks deterministic.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, List, Optional

from .engine import Simulator
from .network import Network

__all__ = ["FailureInjector", "DosAttack", "CorruptedPayload"]


@dataclass(frozen=True)
class CorruptedPayload:
    """Stand-in for a payload mangled on the wire.

    No protocol component recognizes this type, so a fully-corrupted
    message is discarded at the receiver's parsing layer — the same fate a
    mangled frame meets in a real deployment. When the corrupted message is
    a signed wrapper, only its inner payload is replaced, so the receiver
    instead exercises its signature-verification rejection path.
    """

    original_type: str
    nonce: int


@dataclass
class DosAttack:
    """Description of a denial-of-service attack on a target's links.

    The paper's network-level attacker floods the links of chosen replicas
    (most effectively the current Prime leader). We model the effect on
    the victim: every link touching ``target`` gains ``extra_delay_ms``
    and ``extra_loss`` for the duration of the attack.
    """

    target: str
    start_ms: float
    duration_ms: float
    extra_delay_ms: float = 300.0
    extra_loss: float = 0.2

    @property
    def end_ms(self) -> float:
        return self.start_ms + self.duration_ms


class FailureInjector:
    """Schedules crashes, partitions, and DoS windows on the virtual clock."""

    def __init__(self, simulator: Simulator, network: Network) -> None:
        self.simulator = simulator
        self.network = network
        self._log: List[str] = []

    @property
    def log(self) -> List[str]:
        """Human-readable record of every injected event (for reports)."""
        return list(self._log)

    def _note(self, text: str) -> None:
        self._log.append(f"[t={self.simulator.now:10.1f}ms] {text}")

    # ------------------------------------------------------------------
    # Crash / recover
    # ------------------------------------------------------------------
    def crash_at(self, when_ms: float, node_name: str) -> None:
        def do() -> None:
            self.network.process(node_name).crash()
            self._note(f"CRASH {node_name}")

        self.simulator.schedule_at(when_ms, do)

    def recover_at(self, when_ms: float, node_name: str) -> None:
        def do() -> None:
            self.network.process(node_name).recover()
            self._note(f"RECOVER {node_name}")

        self.simulator.schedule_at(when_ms, do)

    def crash_window(self, node_name: str, start_ms: float, duration_ms: float) -> None:
        """Crash a node for a bounded window, then recover it."""
        self.crash_at(start_ms, node_name)
        self.recover_at(start_ms + duration_ms, node_name)

    def crash_resolved_window(
        self,
        resolve: Callable[[], str],
        start_ms: float,
        duration_ms: float,
        label: str = "CRASH-RESOLVED",
    ) -> None:
        """Crash whichever node ``resolve()`` names when the window opens.

        The target is chosen at *fire* time, not schedule time — this is
        what a ``leader_kill`` needs: the adversary observes who holds the
        leader role at the instant of attack and kills that process.
        """
        target_holder: dict = {}

        def do_crash() -> None:
            target = resolve()
            target_holder["target"] = target
            self.network.process(target).crash()
            self._note(f"{label} CRASH {target}")

        def do_recover() -> None:
            target = target_holder.get("target")
            if target is not None:
                self.network.process(target).recover()
                self._note(f"{label} RECOVER {target}")

        self.simulator.schedule_at(start_ms, do_crash)
        self.simulator.schedule_at(start_ms + duration_ms, do_recover)

    # ------------------------------------------------------------------
    # Partitions
    # ------------------------------------------------------------------
    def partition_window(
        self,
        group_a: Iterable[str],
        group_b: Iterable[str],
        start_ms: float,
        duration_ms: float,
    ) -> None:
        """Cut connectivity between two groups for a window (site outage)."""
        group_a = list(group_a)
        group_b = list(group_b)
        heal_holder: dict = {}

        def cut() -> None:
            heal_holder["heal"] = self.network.partition(group_a, group_b)
            self._note(f"PARTITION {group_a} | {group_b}")

        def heal() -> None:
            fn = heal_holder.get("heal")
            if fn is not None:
                fn()
            self._note(f"HEAL {group_a} | {group_b}")

        self.simulator.schedule_at(start_ms, cut)
        self.simulator.schedule_at(start_ms + duration_ms, heal)

    def partition_resolved_window(
        self,
        resolve_groups: Callable[[], tuple],
        start_ms: float,
        duration_ms: float,
        label: str = "PARTITION-RESOLVED",
    ) -> None:
        """Partition the two groups ``resolve_groups()`` returns at fire time.

        Fire-time resolution mirrors :meth:`crash_resolved_window`: a
        ``leader_partition`` isolates whoever is leader *when the attack
        lands*, not whoever was leader when the schedule was drawn.
        """
        heal_holder: dict = {}

        def cut() -> None:
            group_a, group_b = resolve_groups()
            group_a, group_b = list(group_a), list(group_b)
            heal_holder["heal"] = self.network.partition(group_a, group_b)
            self._note(f"{label} PARTITION {group_a} | {group_b}")

        def heal() -> None:
            fn = heal_holder.get("heal")
            if fn is not None:
                fn()
            self._note(f"{label} HEAL")

        self.simulator.schedule_at(start_ms, cut)
        self.simulator.schedule_at(start_ms + duration_ms, heal)

    # ------------------------------------------------------------------
    # DoS
    # ------------------------------------------------------------------
    def dos_node(self, attack: DosAttack, peers: Optional[Iterable[str]] = None) -> None:
        """Degrade every link between the target and its peers for a window.

        ``peers`` defaults to every registered process; narrowing it keeps
        large scenarios cheap.
        """
        peer_list = list(peers) if peers is not None else [
            name for name in self.network.process_names if name != attack.target
        ]
        restores: List[Callable[[], None]] = []

        def start() -> None:
            for peer in peer_list:
                restores.append(
                    self.network.degrade_link(
                        attack.target,
                        peer,
                        extra_delay_ms=attack.extra_delay_ms,
                        extra_loss=attack.extra_loss,
                    )
                )
            self._note(
                f"DOS start on {attack.target} "
                f"(+{attack.extra_delay_ms}ms, +{attack.extra_loss:.0%} loss)"
            )

        def stop() -> None:
            for restore in restores:
                restore()
            restores.clear()
            self._note(f"DOS stop on {attack.target}")

        self.simulator.schedule_at(attack.start_ms, start)
        self.simulator.schedule_at(attack.end_ms, stop)

    # ------------------------------------------------------------------
    # Message-level faults
    # ------------------------------------------------------------------
    # Each primitive installs a network filter for a bounded window. The
    # filter matches messages whose source or destination is in ``targets``
    # (or every message when ``targets`` is None) and draws all randomness
    # from a named simulator stream, so fault decisions are reproducible
    # from (seed, schedule).

    def _filter_window(
        self, fn: Callable, start_ms: float, duration_ms: float, label: str
    ) -> None:
        holder: dict = {}

        def install() -> None:
            holder["remove"] = self.network.add_filter(fn)
            self._note(f"{label} start")

        def remove() -> None:
            remover = holder.get("remove")
            if remover is not None:
                remover()
            self._note(f"{label} stop")

        self.simulator.schedule_at(start_ms, install)
        self.simulator.schedule_at(start_ms + duration_ms, remove)

    @staticmethod
    def _matches(targets: Optional[frozenset], src: str, dst: str) -> bool:
        return targets is None or src in targets or dst in targets

    def drop_messages(
        self,
        targets: Optional[Iterable[str]],
        start_ms: float,
        duration_ms: float,
        probability: float = 0.3,
        rng_name: str = "faults/drop",
    ) -> None:
        """Drop each matching message independently with ``probability``."""
        scope = frozenset(targets) if targets is not None else None
        rng = self.simulator.rng(rng_name)

        def fn(src: str, dst: str, payload: Any) -> Optional[Any]:
            if self._matches(scope, src, dst) and rng.random() < probability:
                return None
            return payload

        self._filter_window(
            fn, start_ms, duration_ms,
            f"DROP p={probability} on {sorted(scope) if scope else 'all'}",
        )

    def duplicate_messages(
        self,
        targets: Optional[Iterable[str]],
        start_ms: float,
        duration_ms: float,
        probability: float = 0.3,
        extra_delay_ms: float = 5.0,
        rng_name: str = "faults/duplicate",
    ) -> None:
        """Deliver a delayed second copy of matching messages."""
        scope = frozenset(targets) if targets is not None else None
        rng = self.simulator.rng(rng_name)

        def fn(src: str, dst: str, payload: Any) -> Optional[Any]:
            if self._matches(scope, src, dst) and rng.random() < probability:
                self.network.inject(
                    src, dst, payload, delay_ms=rng.random() * extra_delay_ms
                )
            return payload

        self._filter_window(
            fn, start_ms, duration_ms,
            f"DUPLICATE p={probability} on {sorted(scope) if scope else 'all'}",
        )

    def reorder_window(
        self,
        targets: Optional[Iterable[str]],
        start_ms: float,
        duration_ms: float,
        window_ms: float = 20.0,
        probability: float = 1.0,
        rng_name: str = "faults/reorder",
    ) -> None:
        """Buffer matching messages and release them shuffled.

        Messages captured during each ``window_ms`` slice are re-injected
        in a random permutation at the end of the slice, which is the
        strongest reordering an asynchronous network can apply within the
        window. A final flush at the window end releases any remainder, so
        the primitive never swallows messages.
        """
        scope = frozenset(targets) if targets is not None else None
        rng = self.simulator.rng(rng_name)
        buffer: List[tuple] = []
        state = {"active": False}

        def flush() -> None:
            if not buffer:
                return
            batch = list(buffer)
            buffer.clear()
            rng.shuffle(batch)
            for index, (src, dst, payload) in enumerate(batch):
                # strictly increasing sub-ms offsets preserve the permutation
                self.network.inject(src, dst, payload, delay_ms=index * 1e-3)

        def fn(src: str, dst: str, payload: Any) -> Optional[Any]:
            if self._matches(scope, src, dst) and rng.random() < probability:
                buffer.append((src, dst, payload))
                return None
            return payload

        def tick() -> None:
            flush()
            if state["active"]:
                self.simulator.schedule(window_ms, tick)

        def start() -> None:
            state["active"] = True
            self.simulator.schedule(window_ms, tick)

        def stop() -> None:
            state["active"] = False
            flush()

        # The filter is scheduled first so that, at the window end, it is
        # removed before the final flush runs (events at equal times fire
        # in scheduling order) — no message can enter the buffer after the
        # last flush.
        self._filter_window(
            fn, start_ms, duration_ms,
            f"REORDER w={window_ms}ms on {sorted(scope) if scope else 'all'}",
        )
        self.simulator.schedule_at(start_ms, start)
        self.simulator.schedule_at(start_ms + duration_ms, stop)

    def corrupt_payload(
        self,
        targets: Optional[Iterable[str]],
        start_ms: float,
        duration_ms: float,
        probability: float = 0.2,
        rng_name: str = "faults/corrupt",
    ) -> None:
        """Mangle matching messages in flight.

        Signed wrappers (any dataclass with a ``payload`` field) keep their
        signature but lose their content, so receivers reject them through
        signature verification; everything else becomes an unparseable
        :class:`CorruptedPayload`.
        """
        scope = frozenset(targets) if targets is not None else None
        rng = self.simulator.rng(rng_name)

        def mangle(payload: Any) -> Any:
            nonce = rng.getrandbits(32)
            blob = CorruptedPayload(type(payload).__name__, nonce)
            if dataclasses.is_dataclass(payload) and not isinstance(payload, type):
                names = {f.name for f in dataclasses.fields(payload)}
                if "payload" in names:
                    try:
                        return dataclasses.replace(payload, payload=blob)
                    except (TypeError, ValueError):
                        return blob
            return blob

        def fn(src: str, dst: str, payload: Any) -> Optional[Any]:
            if self._matches(scope, src, dst) and rng.random() < probability:
                return mangle(payload)
            return payload

        self._filter_window(
            fn, start_ms, duration_ms,
            f"CORRUPT p={probability} on {sorted(scope) if scope else 'all'}",
        )

    def delay_spike(
        self,
        targets: Optional[Iterable[str]],
        start_ms: float,
        duration_ms: float,
        extra_ms: float = 100.0,
        jitter_ms: float = 0.0,
        probability: float = 1.0,
        rng_name: str = "faults/delay",
    ) -> None:
        """Add a latency spike to matching messages (they bypass loss)."""
        scope = frozenset(targets) if targets is not None else None
        rng = self.simulator.rng(rng_name)

        def fn(src: str, dst: str, payload: Any) -> Optional[Any]:
            if self._matches(scope, src, dst) and rng.random() < probability:
                self.network.inject(
                    src, dst, payload,
                    delay_ms=extra_ms + rng.random() * jitter_ms,
                )
                return None
            return payload

        self._filter_window(
            fn, start_ms, duration_ms,
            f"DELAY +{extra_ms}ms on {sorted(scope) if scope else 'all'}",
        )

    # ------------------------------------------------------------------
    # Gray failures
    # ------------------------------------------------------------------
    def slow_node(
        self,
        node_name: str,
        start_ms: float,
        duration_ms: float,
        extra_delay_ms: float = 50.0,
        peers: Optional[Iterable[str]] = None,
    ) -> None:
        """A node that is up but sluggish: all its outbound links slow down
        (asymmetric — replies still arrive promptly, the classic gray
        failure that defeats naive crash detectors)."""
        peer_list = list(peers) if peers is not None else [
            name for name in self.network.process_names if name != node_name
        ]
        restores: List[Callable[[], None]] = []

        def start() -> None:
            for peer in peer_list:
                restores.append(
                    self.network.degrade_link(
                        node_name, peer,
                        extra_delay_ms=extra_delay_ms, symmetric=False,
                    )
                )
            self._note(f"SLOW-NODE start {node_name} (+{extra_delay_ms}ms out)")

        def stop() -> None:
            for restore in restores:
                restore()
            restores.clear()
            self._note(f"SLOW-NODE stop {node_name}")

        self.simulator.schedule_at(start_ms, start)
        self.simulator.schedule_at(start_ms + duration_ms, stop)

    def asym_link_window(
        self,
        src: str,
        dst: str,
        start_ms: float,
        duration_ms: float,
        extra_delay_ms: float = 100.0,
        extra_loss: float = 0.0,
    ) -> None:
        """Degrade one direction of one link (asymmetric gray failure)."""
        holder: dict = {}

        def start() -> None:
            holder["restore"] = self.network.degrade_link(
                src, dst, extra_delay_ms=extra_delay_ms,
                extra_loss=extra_loss, symmetric=False,
            )
            self._note(f"ASYM-LINK start {src}->{dst}")

        def stop() -> None:
            restore = holder.get("restore")
            if restore is not None:
                restore()
            self._note(f"ASYM-LINK stop {src}->{dst}")

        self.simulator.schedule_at(start_ms, start)
        self.simulator.schedule_at(start_ms + duration_ms, stop)

    def jitter_storm(
        self,
        targets: Optional[Iterable[str]],
        start_ms: float,
        duration_ms: float,
        max_extra_ms: float = 30.0,
        probability: float = 0.5,
        rng_name: str = "faults/jitter",
    ) -> None:
        """Random per-message extra delay: desynchronizes timers the way
        head-of-line blocking and GC pauses do."""
        self.delay_spike(
            targets, start_ms, duration_ms,
            extra_ms=0.0, jitter_ms=max_extra_ms,
            probability=probability, rng_name=rng_name,
        )

    def block_link_window(
        self,
        a: str,
        b: str,
        start_ms: float,
        duration_ms: float,
    ) -> None:
        """Sever one (bidirectional) link for a window — a clean link kill,
        as opposed to :meth:`dos_link_window`'s degradation. The overlay's
        self-healing control plane should detect this and reroute."""
        holder: dict = {}

        def start() -> None:
            holder["unblock"] = self.network.block_link(a, b)
            self._note(f"LINK-KILL start {a}<->{b}")

        def stop() -> None:
            fn = holder.get("unblock")
            if fn is not None:
                fn()
            self._note(f"LINK-KILL stop {a}<->{b}")

        self.simulator.schedule_at(start_ms, start)
        self.simulator.schedule_at(start_ms + duration_ms, stop)

    def dos_link_window(
        self,
        src: str,
        dst: str,
        start_ms: float,
        duration_ms: float,
        extra_delay_ms: float = 300.0,
        extra_loss: float = 0.2,
    ) -> None:
        """Degrade a single (bidirectional) link for a window."""
        holder: dict = {}

        def start() -> None:
            holder["restore"] = self.network.degrade_link(
                src, dst, extra_delay_ms=extra_delay_ms, extra_loss=extra_loss
            )
            self._note(f"DOS-LINK start {src}<->{dst}")

        def stop() -> None:
            fn = holder.get("restore")
            if fn is not None:
                fn()
            self._note(f"DOS-LINK stop {src}<->{dst}")

        self.simulator.schedule_at(start_ms, start)
        self.simulator.schedule_at(start_ms + duration_ms, stop)
