"""Failure and attack injection scheduled against the virtual clock.

This module provides the scenario-scripting layer the benchmarks use: crash
a node at t=X, partition a site between t=X and t=Y, run a DoS against a
replica's links for a window, etc. All injections are expressed against
virtual time, which is what makes the attack benchmarks deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional

from .engine import Simulator
from .network import Network

__all__ = ["FailureInjector", "DosAttack"]


@dataclass
class DosAttack:
    """Description of a denial-of-service attack on a target's links.

    The paper's network-level attacker floods the links of chosen replicas
    (most effectively the current Prime leader). We model the effect on
    the victim: every link touching ``target`` gains ``extra_delay_ms``
    and ``extra_loss`` for the duration of the attack.
    """

    target: str
    start_ms: float
    duration_ms: float
    extra_delay_ms: float = 300.0
    extra_loss: float = 0.2

    @property
    def end_ms(self) -> float:
        return self.start_ms + self.duration_ms


class FailureInjector:
    """Schedules crashes, partitions, and DoS windows on the virtual clock."""

    def __init__(self, simulator: Simulator, network: Network) -> None:
        self.simulator = simulator
        self.network = network
        self._log: List[str] = []

    @property
    def log(self) -> List[str]:
        """Human-readable record of every injected event (for reports)."""
        return list(self._log)

    def _note(self, text: str) -> None:
        self._log.append(f"[t={self.simulator.now:10.1f}ms] {text}")

    # ------------------------------------------------------------------
    # Crash / recover
    # ------------------------------------------------------------------
    def crash_at(self, when_ms: float, node_name: str) -> None:
        def do() -> None:
            self.network.process(node_name).crash()
            self._note(f"CRASH {node_name}")

        self.simulator.schedule_at(when_ms, do)

    def recover_at(self, when_ms: float, node_name: str) -> None:
        def do() -> None:
            self.network.process(node_name).recover()
            self._note(f"RECOVER {node_name}")

        self.simulator.schedule_at(when_ms, do)

    def crash_window(self, node_name: str, start_ms: float, duration_ms: float) -> None:
        """Crash a node for a bounded window, then recover it."""
        self.crash_at(start_ms, node_name)
        self.recover_at(start_ms + duration_ms, node_name)

    # ------------------------------------------------------------------
    # Partitions
    # ------------------------------------------------------------------
    def partition_window(
        self,
        group_a: Iterable[str],
        group_b: Iterable[str],
        start_ms: float,
        duration_ms: float,
    ) -> None:
        """Cut connectivity between two groups for a window (site outage)."""
        group_a = list(group_a)
        group_b = list(group_b)
        heal_holder: dict = {}

        def cut() -> None:
            heal_holder["heal"] = self.network.partition(group_a, group_b)
            self._note(f"PARTITION {group_a} | {group_b}")

        def heal() -> None:
            fn = heal_holder.get("heal")
            if fn is not None:
                fn()
            self._note(f"HEAL {group_a} | {group_b}")

        self.simulator.schedule_at(start_ms, cut)
        self.simulator.schedule_at(start_ms + duration_ms, heal)

    # ------------------------------------------------------------------
    # DoS
    # ------------------------------------------------------------------
    def dos_node(self, attack: DosAttack, peers: Optional[Iterable[str]] = None) -> None:
        """Degrade every link between the target and its peers for a window.

        ``peers`` defaults to every registered process; narrowing it keeps
        large scenarios cheap.
        """
        peer_list = list(peers) if peers is not None else [
            name for name in self.network.process_names if name != attack.target
        ]
        restores: List[Callable[[], None]] = []

        def start() -> None:
            for peer in peer_list:
                restores.append(
                    self.network.degrade_link(
                        attack.target,
                        peer,
                        extra_delay_ms=attack.extra_delay_ms,
                        extra_loss=attack.extra_loss,
                    )
                )
            self._note(
                f"DOS start on {attack.target} "
                f"(+{attack.extra_delay_ms}ms, +{attack.extra_loss:.0%} loss)"
            )

        def stop() -> None:
            for restore in restores:
                restore()
            restores.clear()
            self._note(f"DOS stop on {attack.target}")

        self.simulator.schedule_at(attack.start_ms, start)
        self.simulator.schedule_at(attack.end_ms, stop)

    def dos_link_window(
        self,
        src: str,
        dst: str,
        start_ms: float,
        duration_ms: float,
        extra_delay_ms: float = 300.0,
        extra_loss: float = 0.2,
    ) -> None:
        """Degrade a single (bidirectional) link for a window."""
        holder: dict = {}

        def start() -> None:
            holder["restore"] = self.network.degrade_link(
                src, dst, extra_delay_ms=extra_delay_ms, extra_loss=extra_loss
            )
            self._note(f"DOS-LINK start {src}<->{dst}")

        def stop() -> None:
            fn = holder.get("restore")
            if fn is not None:
                fn()
            self._note(f"DOS-LINK stop {src}<->{dst}")

        self.simulator.schedule_at(start_ms, start)
        self.simulator.schedule_at(start_ms + duration_ms, stop)
