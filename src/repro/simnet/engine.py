"""Deterministic discrete-event simulation engine.

The engine is the substitute for the paper's physical testbed: every
component of the reproduced system (Prime replicas, Spines daemons, RTUs,
HMIs, attackers) runs as callbacks scheduled on a single virtual clock.
Virtual time is measured in *milliseconds* (floats), which matches the
granularity the paper reports latencies in.

Determinism guarantees:

* Events are ordered by ``(time, priority, sequence)`` where ``sequence``
  is a monotonically increasing insertion counter, so simultaneous events
  fire in the order they were scheduled.
* All randomness flows through named, seeded streams obtained from
  :meth:`Simulator.rng`, so two runs with the same seed produce identical
  traces regardless of scheduling of unrelated components.
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

__all__ = ["Simulator", "Timer", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulation engine."""


@dataclass(order=True)
class _Event:
    time: float
    priority: int
    seq: int
    action: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)


class Timer:
    """Handle to a scheduled event that can be cancelled or queried."""

    def __init__(self, event: _Event, simulator: "Simulator") -> None:
        self._event = event
        self._simulator = simulator

    @property
    def fire_at(self) -> float:
        """Virtual time (ms) at which the timer fires."""
        return self._event.time

    @property
    def active(self) -> bool:
        """True while the timer is pending and not cancelled."""
        return not self._event.cancelled and self._event.time >= self._simulator.now

    def cancel(self) -> None:
        """Cancel the timer; a no-op if it already fired."""
        self._event.cancelled = True


class Simulator:
    """Single-threaded event loop with a virtual millisecond clock.

    Parameters
    ----------
    seed:
        Master seed. Every named RNG stream derives from it, so the whole
        simulation is reproducible from this one integer.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.now: float = 0.0
        self._queue: list[_Event] = []
        self._seq = itertools.count()
        self._rngs: dict[str, random.Random] = {}
        self._events_processed = 0
        self._stopped = False
        # Observability: bound lazily so un-observed simulations pay only
        # a None test per event in the hot loop.
        self._obs = None
        self._obs_events = None
        self._obs_scheduled = None

    def bind_obs(self, obs) -> None:
        """Mirror engine counters into an ``repro.obs`` recorder.

        The engine itself stays import-independent of ``repro.obs``; the
        deployment (or test) passes the recorder in. Counters are
        pre-resolved here so :meth:`step` never does a registry lookup.
        """
        if obs is None or not getattr(obs, "enabled", False):
            self._obs = None
            self._obs_events = None
            self._obs_scheduled = None
            return
        self._obs = obs
        self._obs_events = obs.counter("sim.events_processed")
        self._obs_scheduled = obs.counter("sim.events_scheduled")

    # ------------------------------------------------------------------
    # Randomness
    # ------------------------------------------------------------------
    def rng(self, name: str) -> random.Random:
        """Return the named RNG stream, creating it deterministically.

        Streams are independent: drawing from one never perturbs another,
        which keeps e.g. link jitter reproducible when an attacker is
        added to the scenario.
        """
        if name not in self._rngs:
            self._rngs[name] = random.Random(f"{self.seed}/{name}")
        return self._rngs[name]

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        action: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> Timer:
        """Schedule ``action(*args)`` to run ``delay`` ms from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self.now + delay, action, *args, priority=priority)

    def schedule_at(
        self,
        when: float,
        action: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> Timer:
        """Schedule ``action(*args)`` at absolute virtual time ``when``."""
        if when < self.now:
            raise SimulationError(
                f"cannot schedule at {when} (now={self.now})"
            )
        event = _Event(when, priority, next(self._seq), action, args)
        heapq.heappush(self._queue, event)
        if self._obs_scheduled is not None:
            self._obs_scheduled.inc()
        return Timer(event, self)

    def call_every(
        self,
        interval: float,
        action: Callable[..., None],
        *args: Any,
        first_delay: Optional[float] = None,
        jitter: float = 0.0,
        rng_name: str = "periodic",
    ) -> Callable[[], None]:
        """Run ``action`` every ``interval`` ms until the returned stop
        function is called.

        ``jitter`` adds a uniform random offset in ``[0, jitter)`` to each
        firing, drawn from the named RNG stream; this is used to break the
        synchrony of replica timers the same way real deployments do.
        """
        if interval <= 0:
            raise SimulationError("interval must be positive")
        stopped = {"value": False}
        rng = self.rng(rng_name)

        def fire() -> None:
            if stopped["value"]:
                return
            action(*args)
            if not stopped["value"]:
                self.schedule(interval + (rng.random() * jitter), fire)

        delay = first_delay if first_delay is not None else interval
        self.schedule(delay + (rng.random() * jitter), fire)

        def stop() -> None:
            stopped["value"] = True

        return stop

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    @property
    def pending_events(self) -> int:
        """Number of queued (possibly cancelled) events."""
        return len(self._queue)

    @property
    def events_processed(self) -> int:
        """Total events executed so far."""
        return self._events_processed

    def stop(self) -> None:
        """Stop the current :meth:`run` / :meth:`run_until` call."""
        self._stopped = True

    def step(self) -> bool:
        """Execute the next event. Returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            if event.time < self.now:
                raise SimulationError("event queue corrupted: time went backwards")
            self.now = event.time
            event.action(*event.args)
            self._events_processed += 1
            if self._obs_events is not None:
                self._obs_events.inc()
            return True
        return False

    def run(self, max_events: Optional[int] = None) -> None:
        """Run until the event queue drains (or ``max_events`` executed)."""
        self._stopped = False
        count = 0
        while not self._stopped and self.step():
            count += 1
            if max_events is not None and count >= max_events:
                return

    def run_until(self, when: float) -> None:
        """Run all events with time <= ``when``, then set clock to ``when``."""
        if when < self.now:
            raise SimulationError(f"cannot run backwards to {when} (now={self.now})")
        self._stopped = False
        while not self._stopped and self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if head.time > when:
                break
            self.step()
        if not self._stopped:
            self.now = when

    def run_for(self, duration: float) -> None:
        """Run the simulation for ``duration`` ms of virtual time."""
        self.run_until(self.now + duration)
