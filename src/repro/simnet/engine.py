"""Deterministic discrete-event simulation engine.

The engine is the substitute for the paper's physical testbed: every
component of the reproduced system (Prime replicas, Spines daemons, RTUs,
HMIs, attackers) runs as callbacks scheduled on a single virtual clock.
Virtual time is measured in *milliseconds* (floats), which matches the
granularity the paper reports latencies in.

Determinism guarantees:

* Events are ordered by ``(time, priority, sequence)`` where ``sequence``
  is a monotonically increasing insertion counter, so simultaneous events
  fire in the order they were scheduled.
* All randomness flows through named, seeded streams obtained from
  :meth:`Simulator.rng`, so two runs with the same seed produce identical
  traces regardless of scheduling of unrelated components.

Hot-path design (see DESIGN.md §10): events are ``__slots__`` records
compared by one precomputed key tuple (the dataclass-generated
field-by-field comparison used to be the hottest call under profile);
periodic timers re-arm one event record instead of allocating a fresh
closure + heap entry per tick; and the queue compacts lazily-cancelled
entries once they exceed a fixed fraction of the heap. None of this is
observable: firing order, RNG stream consumption, and
``events_processed`` are bit-identical to the seed implementation
(enforced by ``tests/test_perf_determinism.py``).
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Any, Callable, Optional

__all__ = ["Simulator", "Timer", "PeriodicTimer", "SimulationError"]

#: compact the heap when at least this many cancelled entries linger...
_COMPACT_MIN_CANCELLED = 512
#: ...and they exceed this fraction of the queue
_COMPACT_FRACTION = 0.25


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulation engine."""


class _Event:
    """One queue entry.

    The heap itself holds ``(time, priority, seq, event)`` tuples, so
    heapq orders entries entirely in C — ``seq`` is unique, which means
    two entries always differ before the comparison could reach the
    event object, and the record needs no ordering methods of its own.

    ``in_heap`` tracks whether the record currently sits in the queue;
    it is what lets :class:`Timer.reschedule` and :class:`PeriodicTimer`
    safely *reuse* a fired record (mutating a record while it is inside
    the heap would corrupt the heap invariant, so reuse is only legal
    once the record has been popped or compacted out).
    """

    __slots__ = ("time", "priority", "seq", "action", "args", "cancelled", "in_heap")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        action: Callable[..., None],
        args: tuple = (),
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.action = action
        self.args = args
        self.cancelled = False
        self.in_heap = False


class Timer:
    """Handle to a scheduled event that can be cancelled, queried, or
    re-armed."""

    __slots__ = ("_event", "_simulator")

    def __init__(self, event: _Event, simulator: "Simulator") -> None:
        self._event = event
        self._simulator = simulator

    @property
    def fire_at(self) -> float:
        """Virtual time (ms) at which the timer fires (or fired)."""
        return self._event.time

    @property
    def active(self) -> bool:
        """True while the timer is pending and not cancelled.

        A timer whose event has already executed reports False even when
        the clock still equals its fire time, so ``active`` is consistent
        before and after the :meth:`Simulator.step` that fires it.
        """
        event = self._event
        return event.in_heap and not event.cancelled

    @property
    def remaining(self) -> float:
        """Milliseconds of virtual time until the timer fires; 0.0 once
        it has fired or been cancelled."""
        if not self.active:
            return 0.0
        return max(0.0, self._event.time - self._simulator.now)

    def cancel(self) -> None:
        """Cancel the timer; a no-op if it already fired."""
        event = self._event
        if not event.cancelled:
            event.cancelled = True
            if event.in_heap:
                self._simulator._note_cancelled()

    def reschedule(self, delay: float) -> "Timer":
        """Re-arm the timer ``delay`` ms from now; returns ``self``.

        If the underlying event already fired (or was cancelled and
        drained), its record is reused in place — no new allocation. A
        still-pending event cannot be moved inside the heap, so it is
        left behind as a cancelled tombstone and the timer swaps to a
        fresh record.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        simulator = self._simulator
        event = self._event
        when = simulator.now + delay
        if event.in_heap:
            if not event.cancelled:
                event.cancelled = True
                simulator._note_cancelled()
            event = self._event = _Event(
                when, event.priority, next(simulator._seq), event.action, event.args
            )
        else:
            event.cancelled = False
            event.time = when
            event.seq = next(simulator._seq)
        simulator._push(event)
        return self


class PeriodicTimer:
    """Re-armable periodic timer returned by :meth:`Simulator.call_every`.

    One event record is reused across every tick: after the action runs,
    the (just-popped) record gets a new ``(time, priority, seq)`` key and
    goes straight back on the heap — no per-tick closure or event
    allocation, which matters because replica/hello/RTU timers dominate
    queue churn.

    Calling the object (legacy style: ``stop = sim.call_every(...);
    stop()``) or :meth:`stop` ends the series. As in the seed engine, a
    stop does *not* retract the already-queued tick — that tick still
    executes (as a no-op) and counts toward ``events_processed``, keeping
    event budgets bit-identical with the pre-overhaul implementation.
    """

    __slots__ = (
        "_simulator", "_event", "_interval", "_jitter", "_rng",
        "_action", "_args", "_stopped",
    )

    def __init__(
        self,
        simulator: "Simulator",
        interval: float,
        action: Callable[..., None],
        args: tuple,
        first_delay: Optional[float],
        jitter: float,
        rng: random.Random,
    ) -> None:
        self._simulator = simulator
        self._interval = interval
        self._jitter = jitter
        self._rng = rng
        self._action = action
        self._args = args
        self._stopped = False
        delay = first_delay if first_delay is not None else interval
        # parenthesization matches the seed engine's ``now + (delay + j)``
        # exactly — float addition is not associative, and a one-ULP shift
        # in a timer would change every fingerprint downstream
        when = simulator.now + (delay + (rng.random() * jitter))
        event = _Event(when, 0, next(simulator._seq), self._fire)
        self._event = event
        simulator._push(event)

    @property
    def active(self) -> bool:
        """True until :meth:`stop` is called."""
        return not self._stopped

    def _fire(self) -> None:
        if self._stopped:
            return
        self._action(*self._args)
        if self._stopped:
            return
        simulator = self._simulator
        event = self._event
        # the record was just popped by step(); reuse it for the next tick
        # (same ``now + (interval + j)`` grouping as the seed engine)
        event.time = simulator.now + (
            self._interval + (self._rng.random() * self._jitter)
        )
        event.seq = next(simulator._seq)
        simulator._push(event)

    def stop(self) -> None:
        """Stop the series after the currently queued tick."""
        self._stopped = True

    #: legacy call style — ``call_every`` used to return a stop function
    __call__ = stop


class Simulator:
    """Single-threaded event loop with a virtual millisecond clock.

    Parameters
    ----------
    seed:
        Master seed. Every named RNG stream derives from it, so the whole
        simulation is reproducible from this one integer.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.now: float = 0.0
        # heap of (time, priority, seq, event) tuples — compared entirely
        # in C, and seq is unique so the event object is never reached
        self._queue: list[tuple] = []
        self._seq = itertools.count()
        self._rngs: dict[str, random.Random] = {}
        self._events_processed = 0
        self._cancelled_in_heap = 0
        self._stopped = False
        # Observability: bound lazily so un-observed simulations pay only
        # a None test per event in the hot loop.
        self._obs = None
        self._obs_events = None
        self._obs_scheduled = None

    def bind_obs(self, obs) -> None:
        """Mirror engine counters into an ``repro.obs`` recorder.

        The engine itself stays import-independent of ``repro.obs``; the
        deployment (or test) passes the recorder in. Counters are
        pre-resolved here so :meth:`step` never does a registry lookup.
        """
        if obs is None or not getattr(obs, "enabled", False):
            self._obs = None
            self._obs_events = None
            self._obs_scheduled = None
            return
        self._obs = obs
        self._obs_events = obs.counter("sim.events_processed")
        self._obs_scheduled = obs.counter("sim.events_scheduled")

    # ------------------------------------------------------------------
    # Randomness
    # ------------------------------------------------------------------
    def rng(self, name: str) -> random.Random:
        """Return the named RNG stream, creating it deterministically.

        Streams are independent: drawing from one never perturbs another,
        which keeps e.g. link jitter reproducible when an attacker is
        added to the scenario.
        """
        if name not in self._rngs:
            self._rngs[name] = random.Random(f"{self.seed}/{name}")
        return self._rngs[name]

    # ------------------------------------------------------------------
    # Queue internals
    # ------------------------------------------------------------------
    def _push(self, event: _Event) -> None:
        event.in_heap = True
        heapq.heappush(
            self._queue, (event.time, event.priority, event.seq, event)
        )
        if self._obs_scheduled is not None:
            self._obs_scheduled.value += 1

    def _note_cancelled(self) -> None:
        """Account an in-heap cancellation; compact when tombstones pile up."""
        self._cancelled_in_heap += 1
        if (
            self._cancelled_in_heap >= _COMPACT_MIN_CANCELLED
            and self._cancelled_in_heap > len(self._queue) * _COMPACT_FRACTION
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify.

        Keys are unique (the ``seq`` component), so re-heapifying the
        surviving records can never reorder them relative to a lazy
        drain — the heap pops in total ``key`` order either way.
        """
        survivors = []
        for entry in self._queue:
            event = entry[3]
            if event is not None and event.cancelled:
                event.in_heap = False
            else:
                survivors.append(entry)
        heapq.heapify(survivors)
        self._queue = survivors
        self._cancelled_in_heap = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        action: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> Timer:
        """Schedule ``action(*args)`` to run ``delay`` ms from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        event = _Event(self.now + delay, priority, next(self._seq), action, args)
        self._push(event)
        return Timer(event, self)

    def post(self, delay: float, action: Callable[..., None], *args: Any) -> None:
        """Schedule ``action(*args)`` with no :class:`Timer` handle.

        Fire-and-forget fast path for the network layer, which schedules
        one delivery per message and never cancels them. The queue entry
        is a bare ``(time, 0, seq, None, action, args)`` tuple — no
        :class:`_Event` record, no :class:`Timer` — because a handle-less
        event needs neither cancellation state nor a stable identity.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        heapq.heappush(
            self._queue, (self.now + delay, 0, next(self._seq), None, action, args)
        )
        if self._obs_scheduled is not None:
            self._obs_scheduled.value += 1

    def schedule_at(
        self,
        when: float,
        action: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> Timer:
        """Schedule ``action(*args)`` at absolute virtual time ``when``."""
        if when < self.now:
            raise SimulationError(
                f"cannot schedule at {when} (now={self.now})"
            )
        event = _Event(when, priority, next(self._seq), action, args)
        self._push(event)
        return Timer(event, self)

    def call_every(
        self,
        interval: float,
        action: Callable[..., None],
        *args: Any,
        first_delay: Optional[float] = None,
        jitter: float = 0.0,
        rng_name: str = "periodic",
    ) -> PeriodicTimer:
        """Run ``action`` every ``interval`` ms until the returned
        :class:`PeriodicTimer` is stopped (calling it also stops it).

        ``jitter`` adds a uniform random offset in ``[0, jitter)`` to each
        firing, drawn from the named RNG stream; this is used to break the
        synchrony of replica timers the same way real deployments do. The
        draw happens every tick even at ``jitter=0`` so stream consumption
        stays identical whatever the jitter setting.
        """
        if interval <= 0:
            raise SimulationError("interval must be positive")
        return PeriodicTimer(
            self, interval, action, args, first_delay, jitter, self.rng(rng_name)
        )

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    @property
    def pending_events(self) -> int:
        """Number of queued (possibly cancelled) events."""
        return len(self._queue)

    @property
    def events_processed(self) -> int:
        """Total events executed so far."""
        return self._events_processed

    def stop(self) -> None:
        """Stop the current :meth:`run` / :meth:`run_until` call."""
        self._stopped = True

    def step(self) -> bool:
        """Execute the next event. Returns False when the queue is empty."""
        queue = self._queue
        while queue:
            entry = heapq.heappop(queue)
            event = entry[3]
            if event is None:
                if entry[0] < self.now:
                    raise SimulationError(
                        "event queue corrupted: time went backwards"
                    )
                self.now = entry[0]
                entry[4](*entry[5])
            else:
                event.in_heap = False
                if event.cancelled:
                    self._cancelled_in_heap -= 1
                    continue
                if event.time < self.now:
                    raise SimulationError(
                        "event queue corrupted: time went backwards"
                    )
                self.now = event.time
                event.action(*event.args)
            self._events_processed += 1
            if self._obs_events is not None:
                self._obs_events.value += 1
            return True
        return False

    def run(self, max_events: Optional[int] = None) -> None:
        """Run until the event queue drains (or ``max_events`` executed)."""
        self._stopped = False
        count = 0
        while not self._stopped and self.step():
            count += 1
            if max_events is not None and count >= max_events:
                return

    def run_until(self, when: float) -> None:
        """Run all events with time <= ``when``, then set clock to ``when``.

        This is the main loop of every deployment run, so the body of
        :meth:`step` is inlined here — one peek plus one pop per event
        instead of peek, call, and a second scan.
        """
        if when < self.now:
            raise SimulationError(f"cannot run backwards to {when} (now={self.now})")
        self._stopped = False
        queue = self._queue
        heappop = heapq.heappop
        while not self._stopped and queue:
            entry = queue[0]
            event = entry[3]
            if event is None:
                # handle-less post() entry: never cancelled, fire directly
                if entry[0] > when:
                    break
                heappop(queue)
                self.now = entry[0]
                entry[4](*entry[5])
            else:
                if event.cancelled:
                    heappop(queue)
                    event.in_heap = False
                    self._cancelled_in_heap -= 1
                    continue
                if event.time > when:
                    break
                heappop(queue)
                event.in_heap = False
                self.now = event.time
                event.action(*event.args)
            self._events_processed += 1
            if self._obs_events is not None:
                self._obs_events.value += 1
        if not self._stopped:
            self.now = when

    def run_for(self, duration: float) -> None:
        """Run the simulation for ``duration`` ms of virtual time."""
        self.run_until(self.now + duration)
