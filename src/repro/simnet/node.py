"""Process abstraction: anything with a name that sends/receives messages.

Every component of the reproduced system — Prime replicas, Spines overlay
daemons, RTU proxies, RTUs, HMIs, attacker processes — subclasses
:class:`Process`. The base class wires the process into the simulator and
the network and provides crash/recover semantics used by the proactive
recovery and failure-injection machinery.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from .engine import Simulator, Timer
from .network import Network

__all__ = ["Process"]


class Process:
    """A named process attached to a simulator and network.

    Crash semantics: while down, a process receives no messages and its
    timers do not fire (timers check :attr:`is_up` via :meth:`set_timer`'s
    wrapper). Recovery calls :meth:`on_recover`, where subclasses rebuild
    volatile state (this is what proactive recovery exercises).
    """

    def __init__(self, name: str, simulator: Simulator, network: Network) -> None:
        self.name = name
        self.simulator = simulator
        self.network = network
        self.is_up = True
        self._incarnation = 0
        #: dense integer identity interned by the network's symbol table
        #: (see :mod:`repro.simnet.interning`); names stay the public
        #: addressing API, ids key the hot per-message structures
        self.endpoint_id = network.register(self)

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    def send(self, dst: str, payload: Any, size_bytes: int = 256) -> bool:
        """Send a message; silently refuses while crashed."""
        if not self.is_up:
            return False
        return self.network.send(self.name, dst, payload, size_bytes)

    def deliver(self, src: str, payload: Any) -> None:
        """Called by the network; dispatches to :meth:`on_message`."""
        if not self.is_up:
            return
        self.on_message(src, payload)

    def on_message(self, src: str, payload: Any) -> None:
        """Handle an incoming message. Subclasses override."""

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def set_timer(self, delay: float, action: Callable[..., None], *args: Any) -> Timer:
        """Schedule an action that only fires if this incarnation is up.

        A timer set before a crash never fires after recovery: recovery
        bumps the incarnation counter, modelling loss of volatile state.
        """
        incarnation = self._incarnation

        def guarded() -> None:
            if self.is_up and self._incarnation == incarnation:
                action(*args)

        return self.simulator.schedule(delay, guarded)

    def every(self, interval: float, action: Callable[..., None], jitter: float = 0.0) -> Callable[[], None]:
        """Periodic timer guarded by liveness/incarnation; returns stop fn."""
        incarnation = self._incarnation

        def guarded() -> None:
            if self.is_up and self._incarnation == incarnation:
                action()

        return self.simulator.call_every(
            interval, guarded, jitter=jitter, rng_name=f"periodic/{self.name}"
        )

    # ------------------------------------------------------------------
    # Crash / recovery
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Take the process down; in-flight timers are invalidated."""
        if not self.is_up:
            return
        self.is_up = False
        self._incarnation += 1
        self.on_crash()

    def recover(self) -> None:
        """Bring the process back up with fresh volatile state."""
        if self.is_up:
            return
        self.is_up = True
        self._incarnation += 1
        self.on_recover()

    def on_crash(self) -> None:
        """Hook invoked when the process crashes. Subclasses override."""

    def on_recover(self) -> None:
        """Hook invoked when the process recovers. Subclasses override."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        status = "up" if self.is_up else "down"
        return f"<{type(self).__name__} {self.name} ({status})>"
