"""Deterministic discrete-event simulation substrate.

This package substitutes for the paper's physical testbed: a virtual-time
event loop (:class:`Simulator`), a point-to-point network model with
latency/jitter/loss/bandwidth and attack hooks (:class:`Network`), a process
abstraction with crash/recover semantics (:class:`Process`), and scenario
scripting (:class:`FailureInjector`). Structured event logging lives in
:mod:`repro.obs` (:class:`~repro.obs.EventLog`).
"""

from .engine import PeriodicTimer, SimulationError, Simulator, Timer
from .failures import CorruptedPayload, DosAttack, FailureInjector
from .interning import EndpointTable
from .network import LinkSpec, Network, NetworkStats
from .node import Process

__all__ = [
    "EndpointTable",
    "PeriodicTimer",
    "SimulationError",
    "Simulator",
    "Timer",
    "CorruptedPayload",
    "DosAttack",
    "FailureInjector",
    "LinkSpec",
    "Network",
    "NetworkStats",
    "Process",
]
