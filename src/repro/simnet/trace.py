"""Structured tracing for simulated components.

A :class:`Trace` is a bounded, in-memory structured log keyed by virtual
time. Components emit events (``trace.event("prime", "view-change",
view=3)``); tests and benchmarks query them to assert protocol behaviour
(e.g. "exactly one view change happened during the DoS window") without
parsing text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from .engine import Simulator

__all__ = ["Trace", "TraceEvent"]


@dataclass(frozen=True)
class TraceEvent:
    """One structured trace record."""

    time: float
    component: str
    kind: str
    details: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - debug aid
        detail = " ".join(f"{k}={v}" for k, v in self.details.items())
        return f"[t={self.time:10.1f}ms] {self.component:16s} {self.kind} {detail}"


class Trace:
    """Bounded structured event log shared by a simulation's components."""

    def __init__(self, simulator: Simulator, max_events: int = 200_000) -> None:
        self.simulator = simulator
        self.max_events = max_events
        self._events: List[TraceEvent] = []
        self.dropped = 0

    def event(self, component: str, kind: str, **details: Any) -> None:
        """Record one event at the current virtual time."""
        if len(self._events) >= self.max_events:
            self.dropped += 1
            return
        self._events.append(TraceEvent(self.simulator.now, component, kind, details))

    def events(
        self,
        component: Optional[str] = None,
        kind: Optional[str] = None,
        since: float = 0.0,
        until: Optional[float] = None,
    ) -> List[TraceEvent]:
        """Query events, optionally filtered by component/kind/time window."""
        out = []
        for ev in self._events:
            if component is not None and ev.component != component:
                continue
            if kind is not None and ev.kind != kind:
                continue
            if ev.time < since:
                continue
            if until is not None and ev.time > until:
                continue
            out.append(ev)
        return out

    def count(self, component: Optional[str] = None, kind: Optional[str] = None) -> int:
        return len(self.events(component, kind))

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterable[TraceEvent]:
        return iter(self._events)
