"""Structured tracing for simulated components.

.. deprecated::
    :class:`Trace` is now a thin compatibility shim over
    :class:`repro.obs.EventLog` — the structured event log of the unified
    observability layer — kept for one PR. New code should go through a
    deployment's ``obs`` handle (``deployment.obs.event(...)``) or create
    a :class:`repro.obs.EventLog` directly; ``TraceEvent`` is an alias of
    :class:`repro.obs.Event`.

A :class:`Trace` is a bounded, in-memory structured log keyed by virtual
time. Components emit events (``trace.event("prime", "view-change",
view=3)``); tests and benchmarks query them to assert protocol behaviour
(e.g. "exactly one view change happened during the DoS window") without
parsing text. Events past ``max_events`` are counted in :attr:`Trace.
dropped` rather than silently discarded.
"""

from __future__ import annotations

import warnings

from repro.obs.events import Event, EventLog

from .engine import Simulator

__all__ = ["Trace", "TraceEvent"]

# Backwards-compatible alias: trace records *are* obs events.
TraceEvent = Event


class Trace(EventLog):
    """Bounded structured event log bound to a simulator's virtual clock.

    Deprecated shim: all behaviour lives in :class:`repro.obs.EventLog`;
    this subclass only binds ``now_fn`` to ``simulator.now`` and keeps
    the legacy ``simulator`` attribute.
    """

    def __init__(self, simulator: Simulator, max_events: int = 200_000) -> None:
        warnings.warn(
            "repro.simnet.Trace is deprecated; use repro.obs.EventLog "
            "(e.g. EventLog(now_fn=lambda: simulator.now)) or a "
            "deployment's obs handle instead",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(now_fn=lambda: simulator.now, max_events=max_events)
        self.simulator = simulator
