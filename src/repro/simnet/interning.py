"""Endpoint identity interning.

At fleet scale (10k field devices) every per-message dictionary keyed by
endpoint *name* pays string hashing and keeps one key reference per entry
per table. The :class:`EndpointTable` is the network's symbol table: each
endpoint name is interned once into a dense integer id, and the hot data
structures (link table, process registry, delivery scheduling) are keyed
by those ids. Names remain the public addressing API — the table is an
implementation detail behind :class:`~repro.simnet.Network`; interning an
unknown name is always legal (links can be described before both ends are
registered) and ids are stable for the lifetime of the network.

Determinism: ids are allocated in first-intern order, which is itself a
deterministic function of the deployment build order, so nothing observable
depends on hash seeds or allocation addresses.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

__all__ = ["EndpointTable"]


class EndpointTable:
    """Bidirectional name ⇄ dense-integer-id symbol table."""

    __slots__ = ("_ids", "_names")

    def __init__(self) -> None:
        self._ids: Dict[str, int] = {}
        self._names: List[str] = []

    def intern(self, name: str) -> int:
        """Return the id for ``name``, allocating the next dense id on
        first sight."""
        eid = self._ids.get(name)
        if eid is None:
            eid = len(self._names)
            self._ids[name] = eid
            self._names.append(name)
        return eid

    def get(self, name: str) -> Optional[int]:
        """The id for ``name`` if already interned, else None."""
        return self._ids.get(name)

    def id_of(self, name: str) -> int:
        """The id for ``name``; raises KeyError if never interned."""
        return self._ids[name]

    def name_of(self, eid: int) -> str:
        """The name for an id; raises IndexError for unallocated ids."""
        return self._names[eid]

    def __contains__(self, name: str) -> bool:
        return name in self._ids

    def __len__(self) -> int:
        return len(self._names)

    def names(self) -> Iterator[str]:
        """All interned names in id (first-intern) order."""
        return iter(self._names)
