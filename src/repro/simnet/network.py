"""Simulated message-passing network.

Models point-to-point links between named processes with per-link latency,
jitter, loss, and bandwidth, plus the failure hooks the attack models need
(partitions, per-link degradation, message filters).

The network is *unauthenticated and unreliable* by design — exactly the
substrate the paper assumes. Authentication is layered on top by
``repro.crypto`` and the Spines link protocol; reliability is layered on by
the protocols themselves (Prime retransmits, Spines floods).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Optional, Tuple, TYPE_CHECKING

from .engine import Simulator
from .interning import EndpointTable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .node import Process

__all__ = ["LinkSpec", "Network", "NetworkStats"]

#: A message filter receives (src, dst, payload) and returns either the
#: payload (possibly replaced), or None to drop the message.
MessageFilter = Callable[[str, str, Any], Optional[Any]]


@dataclass
class LinkSpec:
    """Static properties of a directed link.

    latency_ms:     one-way propagation delay.
    jitter_ms:      uniform extra delay in [0, jitter_ms).
    loss:           independent drop probability in [0, 1].
    bandwidth_mbps: serialization rate; 0 means infinite.
    """

    latency_ms: float = 1.0
    jitter_ms: float = 0.0
    loss: float = 0.0
    bandwidth_mbps: float = 0.0

    def copy(self) -> "LinkSpec":
        return LinkSpec(self.latency_ms, self.jitter_ms, self.loss, self.bandwidth_mbps)


class _LinkState:
    """Dynamic, attack-modifiable state of a directed link.

    The derived fields (``base_delay_ms``, ``loss``, ``fast``) are
    recomputed by :meth:`refresh` whenever the spec or the attack state
    changes, so :meth:`Network.send` decides the clean-LAN fast path —
    fixed delay, no loss/jitter/bandwidth draws — with one attribute
    test instead of re-deriving it per message.
    """

    __slots__ = (
        "spec", "extra_delay_ms", "extra_loss", "blocked", "queue_free_at",
        "base_delay_ms", "loss", "fast",
    )

    def __init__(self, spec: LinkSpec) -> None:
        self.spec = spec
        self.extra_delay_ms = 0.0
        self.extra_loss = 0.0
        self.blocked = False
        self.queue_free_at = 0.0  # next time the serialization "wire" is free
        self.refresh()

    def refresh(self) -> None:
        spec = self.spec
        # same expressions send() used to evaluate per message — keep the
        # float arithmetic identical so delivery times stay bit-identical
        self.base_delay_ms = spec.latency_ms + self.extra_delay_ms
        self.loss = min(1.0, spec.loss + self.extra_loss)
        self.fast = (
            not self.blocked
            and self.loss == 0.0
            and spec.jitter_ms == 0.0
            and spec.bandwidth_mbps == 0.0
        )


@dataclass(slots=True)
class NetworkStats:
    """Counters kept by the network for reporting."""

    sent: int = 0
    delivered: int = 0
    dropped_loss: int = 0
    dropped_partition: int = 0
    dropped_filter: int = 0
    dropped_down: int = 0
    bytes_sent: int = 0


class Network:
    """Registry of processes plus the link model between them.

    Links default to ``default_link`` and can be specialized per directed
    pair with :meth:`set_link`. Site-aware helpers let deployment code set
    LAN latencies within a site and WAN latencies between sites.
    """

    def __init__(self, simulator: Simulator, default_link: Optional[LinkSpec] = None) -> None:
        self.simulator = simulator
        self.default_link = default_link or LinkSpec()
        #: symbol table interning endpoint names to dense integer ids;
        #: all hot per-message structures below are keyed by these ids
        self.endpoints = EndpointTable()
        # registration-ordered name view (failure injectors sample from
        # it, so iteration order is part of the determinism contract)
        self._processes: Dict[str, "Process"] = {}
        # dense id -> process (None for interned-but-unregistered names)
        self._procs_by_id: list[Optional["Process"]] = []
        # src id -> dst id -> state: integer keys, no per-message string
        # hashing and no (src, dst) tuple allocation
        self._links: Dict[int, Dict[int, _LinkState]] = {}
        self._partitions: list[Tuple[frozenset, frozenset]] = []
        self._filters: list[MessageFilter] = []
        self.stats = NetworkStats()
        # one shared stream (draw order is part of the determinism
        # contract); the bound method skips two attribute lookups per draw
        self._rng = simulator.rng("network")
        self._rng_random = self._rng.random

    # ------------------------------------------------------------------
    # Registration and topology
    # ------------------------------------------------------------------
    def register(self, process: "Process") -> int:
        """Register a process; returns its interned endpoint id."""
        if process.name in self._processes:
            raise ValueError(f"duplicate process name: {process.name}")
        eid = self.endpoints.intern(process.name)
        while len(self._procs_by_id) <= eid:
            self._procs_by_id.append(None)
        self._procs_by_id[eid] = process
        self._processes[process.name] = process
        return eid

    def process(self, name: str) -> "Process":
        return self._processes[name]

    def process_by_id(self, eid: int) -> Optional["Process"]:
        """The registered process for an endpoint id (None if the name
        was interned but never registered)."""
        if 0 <= eid < len(self._procs_by_id):
            return self._procs_by_id[eid]
        return None

    def has_process(self, name: str) -> bool:
        return name in self._processes

    @property
    def process_names(self) -> Iterable[str]:
        return self._processes.keys()

    def _link_ids(self, src_id: int, dst_id: int) -> _LinkState:
        by_src = self._links.setdefault(src_id, {})
        state = by_src.get(dst_id)
        if state is None:
            state = by_src[dst_id] = _LinkState(self.default_link.copy())
        return state

    def _link(self, src: str, dst: str) -> _LinkState:
        return self._link_ids(self.endpoints.intern(src), self.endpoints.intern(dst))

    def set_link(self, src: str, dst: str, spec: LinkSpec, symmetric: bool = True) -> None:
        """Set the static link spec between two processes."""
        state = self._link(src, dst)
        state.spec = spec.copy()
        state.refresh()
        if symmetric:
            state = self._link(dst, src)
            state.spec = spec.copy()
            state.refresh()

    def link_spec(self, src: str, dst: str) -> LinkSpec:
        return self._link(src, dst).spec

    # ------------------------------------------------------------------
    # Failure / attack hooks
    # ------------------------------------------------------------------
    def partition(self, group_a: Iterable[str], group_b: Iterable[str]) -> Callable[[], None]:
        """Cut all links between two groups; returns a heal function."""
        entry = (frozenset(group_a), frozenset(group_b))
        self._partitions.append(entry)

        def heal() -> None:
            if entry in self._partitions:
                self._partitions.remove(entry)

        return heal

    def degrade_link(
        self,
        src: str,
        dst: str,
        extra_delay_ms: float = 0.0,
        extra_loss: float = 0.0,
        symmetric: bool = True,
    ) -> Callable[[], None]:
        """Add delay/loss to a link (a targeted DoS); returns a restore fn."""
        states = [self._link(src, dst)]
        if symmetric:
            states.append(self._link(dst, src))
        for state in states:
            state.extra_delay_ms += extra_delay_ms
            state.extra_loss = min(1.0, state.extra_loss + extra_loss)
            state.refresh()

        def restore() -> None:
            for state in states:
                state.extra_delay_ms = max(0.0, state.extra_delay_ms - extra_delay_ms)
                state.extra_loss = max(0.0, state.extra_loss - extra_loss)
                state.refresh()

        return restore

    def block_link(self, src: str, dst: str, symmetric: bool = True) -> Callable[[], None]:
        """Completely block a link; returns an unblock function."""
        states = [self._link(src, dst)]
        if symmetric:
            states.append(self._link(dst, src))
        for state in states:
            state.blocked = True
            state.refresh()

        def unblock() -> None:
            for state in states:
                state.blocked = False
                state.refresh()

        return unblock

    def add_filter(self, fn: MessageFilter) -> Callable[[], None]:
        """Install a message filter (attack hook); returns a remove fn."""
        self._filters.append(fn)

        def remove() -> None:
            if fn in self._filters:
                self._filters.remove(fn)

        return remove

    def _partitioned(self, src: str, dst: str) -> bool:
        for group_a, group_b in self._partitions:
            if (src in group_a and dst in group_b) or (src in group_b and dst in group_a):
                return True
        return False

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, src: str, dst: str, payload: Any, size_bytes: int = 256) -> bool:
        """Send ``payload`` from ``src`` to ``dst``.

        Returns True if the message was put on the wire (it may still be
        lost); False if it was dropped immediately (partition, filter,
        blocked link, or destination unknown).
        """
        stats = self.stats
        stats.sent += 1
        stats.bytes_sent += size_bytes
        endpoints = self.endpoints
        dst_id = endpoints.get(dst)
        process = (
            self._procs_by_id[dst_id]
            if dst_id is not None and dst_id < len(self._procs_by_id)
            else None
        )
        if process is None:
            stats.dropped_down += 1
            return False
        if self._partitions and self._partitioned(src, dst):
            stats.dropped_partition += 1
            return False
        if self._filters:
            for fn in self._filters:
                payload = fn(src, dst, payload)
                if payload is None:
                    stats.dropped_filter += 1
                    return False
        src_id = endpoints.intern(src)
        by_src = self._links.get(src_id)
        link = by_src.get(dst_id) if by_src is not None else None
        if link is None:
            link = self._link_ids(src_id, dst_id)
        if link.fast:
            # clean link: fixed delay, no loss/jitter/bandwidth draws
            self.simulator.post(link.base_delay_ms, self._deliver, src, process, payload)
            return True
        if link.blocked:
            stats.dropped_partition += 1
            return False
        loss = link.loss
        if loss > 0.0 and self._rng_random() < loss:
            stats.dropped_loss += 1
            return False
        delay = link.base_delay_ms
        spec = link.spec
        if spec.jitter_ms > 0.0:
            delay += self._rng_random() * spec.jitter_ms
        if spec.bandwidth_mbps > 0.0:
            serialize_ms = (size_bytes * 8) / (spec.bandwidth_mbps * 1000.0)
            start = max(self.simulator.now, link.queue_free_at)
            link.queue_free_at = start + serialize_ms
            delay += (start - self.simulator.now) + serialize_ms
        self.simulator.post(delay, self._deliver, src, process, payload)
        return True

    def inject(self, src: str, dst: str, payload: Any, delay_ms: float = 0.0) -> None:
        """Schedule a delivery directly, bypassing filters, loss and links.

        This is the fault-injection escape hatch: message-level fault
        primitives (duplicate, reorder, delay-spike) intercept a message in
        a filter and re-introduce copies of it through here, without the
        re-introduced copy being filtered again (which would recurse).
        """
        self.simulator.post(delay_ms, self._deliver_named, src, dst, payload)

    def _deliver_named(self, src: str, dst: str, payload: Any) -> None:
        """Name-resolving delivery used by :meth:`inject` only: the
        destination may not be registered when the injection is scheduled,
        so resolution is deferred to delivery time (the pre-interning
        behavior)."""
        process = self._processes.get(dst)
        if process is None:
            self.stats.dropped_down += 1
            return
        self._deliver(src, process, payload)

    def _deliver(self, src: str, process: "Process", payload: Any) -> None:
        # processes are never deregistered, so send() resolves the
        # destination once and the scheduled delivery holds the process
        # itself — no per-message name lookup on the delivery side
        if not process.is_up:
            self.stats.dropped_down += 1
            return
        self.stats.delivered += 1
        # equivalent to process.deliver(src, payload) — liveness was just
        # checked, so skip the wrapper and its re-check per message
        process.on_message(src, payload)

    def broadcast(self, src: str, dsts: Iterable[str], payload: Any, size_bytes: int = 256) -> int:
        """Send ``payload`` to every destination; returns count put on wire."""
        return sum(1 for dst in dsts if self.send(src, dst, payload, size_bytes))
