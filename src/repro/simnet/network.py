"""Simulated message-passing network.

Models point-to-point links between named processes with per-link latency,
jitter, loss, and bandwidth, plus the failure hooks the attack models need
(partitions, per-link degradation, message filters).

The network is *unauthenticated and unreliable* by design — exactly the
substrate the paper assumes. Authentication is layered on top by
``repro.crypto`` and the Spines link protocol; reliability is layered on by
the protocols themselves (Prime retransmits, Spines floods).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Optional, Tuple, TYPE_CHECKING

from .engine import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .node import Process

__all__ = ["LinkSpec", "Network", "NetworkStats"]

#: A message filter receives (src, dst, payload) and returns either the
#: payload (possibly replaced), or None to drop the message.
MessageFilter = Callable[[str, str, Any], Optional[Any]]


@dataclass
class LinkSpec:
    """Static properties of a directed link.

    latency_ms:     one-way propagation delay.
    jitter_ms:      uniform extra delay in [0, jitter_ms).
    loss:           independent drop probability in [0, 1].
    bandwidth_mbps: serialization rate; 0 means infinite.
    """

    latency_ms: float = 1.0
    jitter_ms: float = 0.0
    loss: float = 0.0
    bandwidth_mbps: float = 0.0

    def copy(self) -> "LinkSpec":
        return LinkSpec(self.latency_ms, self.jitter_ms, self.loss, self.bandwidth_mbps)


@dataclass
class _LinkState:
    """Dynamic, attack-modifiable state of a directed link."""

    spec: LinkSpec
    extra_delay_ms: float = 0.0
    extra_loss: float = 0.0
    blocked: bool = False
    queue_free_at: float = 0.0  # next time the serialization "wire" is free


@dataclass
class NetworkStats:
    """Counters kept by the network for reporting."""

    sent: int = 0
    delivered: int = 0
    dropped_loss: int = 0
    dropped_partition: int = 0
    dropped_filter: int = 0
    dropped_down: int = 0
    bytes_sent: int = 0


class Network:
    """Registry of processes plus the link model between them.

    Links default to ``default_link`` and can be specialized per directed
    pair with :meth:`set_link`. Site-aware helpers let deployment code set
    LAN latencies within a site and WAN latencies between sites.
    """

    def __init__(self, simulator: Simulator, default_link: Optional[LinkSpec] = None) -> None:
        self.simulator = simulator
        self.default_link = default_link or LinkSpec()
        self._processes: Dict[str, "Process"] = {}
        self._links: Dict[Tuple[str, str], _LinkState] = {}
        self._partitions: list[Tuple[frozenset, frozenset]] = []
        self._filters: list[MessageFilter] = []
        self.stats = NetworkStats()
        self._rng = simulator.rng("network")

    # ------------------------------------------------------------------
    # Registration and topology
    # ------------------------------------------------------------------
    def register(self, process: "Process") -> None:
        if process.name in self._processes:
            raise ValueError(f"duplicate process name: {process.name}")
        self._processes[process.name] = process

    def process(self, name: str) -> "Process":
        return self._processes[name]

    def has_process(self, name: str) -> bool:
        return name in self._processes

    @property
    def process_names(self) -> Iterable[str]:
        return self._processes.keys()

    def _link(self, src: str, dst: str) -> _LinkState:
        key = (src, dst)
        if key not in self._links:
            self._links[key] = _LinkState(self.default_link.copy())
        return self._links[key]

    def set_link(self, src: str, dst: str, spec: LinkSpec, symmetric: bool = True) -> None:
        """Set the static link spec between two processes."""
        self._link(src, dst).spec = spec.copy()
        if symmetric:
            self._link(dst, src).spec = spec.copy()

    def link_spec(self, src: str, dst: str) -> LinkSpec:
        return self._link(src, dst).spec

    # ------------------------------------------------------------------
    # Failure / attack hooks
    # ------------------------------------------------------------------
    def partition(self, group_a: Iterable[str], group_b: Iterable[str]) -> Callable[[], None]:
        """Cut all links between two groups; returns a heal function."""
        entry = (frozenset(group_a), frozenset(group_b))
        self._partitions.append(entry)

        def heal() -> None:
            if entry in self._partitions:
                self._partitions.remove(entry)

        return heal

    def degrade_link(
        self,
        src: str,
        dst: str,
        extra_delay_ms: float = 0.0,
        extra_loss: float = 0.0,
        symmetric: bool = True,
    ) -> Callable[[], None]:
        """Add delay/loss to a link (a targeted DoS); returns a restore fn."""
        states = [self._link(src, dst)]
        if symmetric:
            states.append(self._link(dst, src))
        for state in states:
            state.extra_delay_ms += extra_delay_ms
            state.extra_loss = min(1.0, state.extra_loss + extra_loss)

        def restore() -> None:
            for state in states:
                state.extra_delay_ms = max(0.0, state.extra_delay_ms - extra_delay_ms)
                state.extra_loss = max(0.0, state.extra_loss - extra_loss)

        return restore

    def block_link(self, src: str, dst: str, symmetric: bool = True) -> Callable[[], None]:
        """Completely block a link; returns an unblock function."""
        states = [self._link(src, dst)]
        if symmetric:
            states.append(self._link(dst, src))
        for state in states:
            state.blocked = True

        def unblock() -> None:
            for state in states:
                state.blocked = False

        return unblock

    def add_filter(self, fn: MessageFilter) -> Callable[[], None]:
        """Install a message filter (attack hook); returns a remove fn."""
        self._filters.append(fn)

        def remove() -> None:
            if fn in self._filters:
                self._filters.remove(fn)

        return remove

    def _partitioned(self, src: str, dst: str) -> bool:
        for group_a, group_b in self._partitions:
            if (src in group_a and dst in group_b) or (src in group_b and dst in group_a):
                return True
        return False

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, src: str, dst: str, payload: Any, size_bytes: int = 256) -> bool:
        """Send ``payload`` from ``src`` to ``dst``.

        Returns True if the message was put on the wire (it may still be
        lost); False if it was dropped immediately (partition, filter,
        blocked link, or destination unknown).
        """
        self.stats.sent += 1
        self.stats.bytes_sent += size_bytes
        if dst not in self._processes:
            self.stats.dropped_down += 1
            return False
        if self._partitioned(src, dst):
            self.stats.dropped_partition += 1
            return False
        for fn in self._filters:
            payload = fn(src, dst, payload)
            if payload is None:
                self.stats.dropped_filter += 1
                return False
        link = self._link(src, dst)
        if link.blocked:
            self.stats.dropped_partition += 1
            return False
        loss = min(1.0, link.spec.loss + link.extra_loss)
        if loss > 0.0 and self._rng.random() < loss:
            self.stats.dropped_loss += 1
            return False
        delay = link.spec.latency_ms + link.extra_delay_ms
        if link.spec.jitter_ms > 0.0:
            delay += self._rng.random() * link.spec.jitter_ms
        if link.spec.bandwidth_mbps > 0.0:
            serialize_ms = (size_bytes * 8) / (link.spec.bandwidth_mbps * 1000.0)
            start = max(self.simulator.now, link.queue_free_at)
            link.queue_free_at = start + serialize_ms
            delay += (start - self.simulator.now) + serialize_ms
        self.simulator.schedule(delay, self._deliver, src, dst, payload)
        return True

    def inject(self, src: str, dst: str, payload: Any, delay_ms: float = 0.0) -> None:
        """Schedule a delivery directly, bypassing filters, loss and links.

        This is the fault-injection escape hatch: message-level fault
        primitives (duplicate, reorder, delay-spike) intercept a message in
        a filter and re-introduce copies of it through here, without the
        re-introduced copy being filtered again (which would recurse).
        """
        self.simulator.schedule(delay_ms, self._deliver, src, dst, payload)

    def _deliver(self, src: str, dst: str, payload: Any) -> None:
        process = self._processes.get(dst)
        if process is None or not process.is_up:
            self.stats.dropped_down += 1
            return
        self.stats.delivered += 1
        process.deliver(src, payload)

    def broadcast(self, src: str, dsts: Iterable[str], payload: Any, size_bytes: int = 256) -> int:
        """Send ``payload`` to every destination; returns count put on wire."""
        return sum(1 for dst in dsts if self.send(src, dst, payload, size_bytes))
