"""Region-sharded field-device state with lazy materialization.

A production grid has thousands of field devices, but a simulation that
instantiates an RTU process, a grid row, and a poll timer for every one
of them up front pays heap and event-queue pressure for substations that
never do anything in the scenario window.  This module shards that state
per *region*:

* :class:`RegionShard` owns one region's device roster as lightweight
  :class:`DeviceSlot` records.  A slot holds only strings and ints until
  its first poll comes due; at that point :meth:`RegionShard.materialize`
  lazily creates the substation row in the region's
  :class:`~repro.scada.grid.PowerGrid`, the RTU/PLC process, and the
  serial link — so idle substations cost no heap.

* :class:`ShardedPollDriver` replaces per-device periodic timers with one
  region-level driver ticking at the shard's base rate.  Each poll class
  polls every ``interval / base_tick`` ticks; due devices are visited in
  exactly the order the per-device timers they replace would have fired
  (see :meth:`RegionShard.due_slots`) — a property the test suite pins on
  a small-n control case.  One region is one heap entry per tick instead
  of one per device.

The shard is engine-agnostic: it schedules nothing itself.  The fleet
region proxy (:mod:`repro.fleet.deploy`) owns the driver's timer and the
polling state machine; small-n deployments never touch this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..simnet import LinkSpec, Network, Simulator
from .grid import PowerGrid, Substation
from .plc import PlcDevice
from .rtu import RtuDevice

__all__ = ["DeviceSlot", "RegionShard", "ShardedPollDriver"]

#: serial-like last-hop link between a region proxy and its devices
DEVICE_LINK = LinkSpec(latency_ms=0.3, jitter_ms=0.05)


@dataclass(slots=True)
class DeviceSlot:
    """One field device's static identity; runtime state is lazy."""

    index: int                 #: position in the shard roster
    substation: str            #: globally unique substation name
    unit_id: int               #: Modbus unit id (unique within the shard)
    kind: str                  #: "rtu" or "plc"
    poll_class: int            #: index into the shard's poll-class table
    load_mw: float             #: served load once materialized
    device: Optional[RtuDevice] = None
    coil_ids: Tuple[str, ...] = ()


class RegionShard:
    """One region's device roster, grid shard, and materialization."""

    def __init__(
        self,
        name: str,
        seed: int,
        poll_intervals_ms: Sequence[float],
        base_tick_ms: float,
    ) -> None:
        if not poll_intervals_ms:
            raise ValueError("a region shard needs at least one poll class")
        for interval in poll_intervals_ms:
            ratio = interval / base_tick_ms
            if abs(ratio - round(ratio)) > 1e-9 or round(ratio) < 1:
                raise ValueError(
                    f"poll interval {interval}ms is not a positive multiple "
                    f"of the region base tick {base_tick_ms}ms"
                )
        self.name = name
        self.seed = seed
        self.base_tick_ms = base_tick_ms
        #: poll interval per class, expressed in base ticks
        self.class_periods: Tuple[int, ...] = tuple(
            int(round(interval / base_tick_ms)) for interval in poll_intervals_ms
        )
        self.poll_intervals_ms: Tuple[float, ...] = tuple(poll_intervals_ms)
        self.slots: List[DeviceSlot] = []
        #: the region's grid shard — populated lazily, one source bus
        self.grid = PowerGrid(seed=seed)
        self._source = f"{name}/src"
        self.grid.add_substation(
            Substation(name=self._source, load_mw=0.0, generation_mw=10_000.0)
        )
        self.materialized = 0

    # ------------------------------------------------------------------
    # Roster construction (cheap: strings + ints only)
    # ------------------------------------------------------------------
    def add_slot(
        self, substation: str, kind: str, poll_class: int, load_mw: float
    ) -> DeviceSlot:
        if kind not in ("rtu", "plc"):
            raise ValueError(f"unknown device kind {kind!r}")
        if not 0 <= poll_class < len(self.class_periods):
            raise ValueError(
                f"poll_class {poll_class} out of range "
                f"(shard has {len(self.class_periods)} classes)"
            )
        slot = DeviceSlot(
            index=len(self.slots),
            substation=substation,
            unit_id=len(self.slots) + 1,
            kind=kind,
            poll_class=poll_class,
            load_mw=load_mw,
        )
        self.slots.append(slot)
        return slot

    @property
    def device_count(self) -> int:
        return len(self.slots)

    @property
    def source(self) -> str:
        """The region's feeder substation; a leaf's only breaker is
        ``f"{slot.substation}->{shard.source}"``."""
        return self._source

    # ------------------------------------------------------------------
    # Lazy materialization
    # ------------------------------------------------------------------
    def materialize(
        self,
        slot: DeviceSlot,
        simulator: Simulator,
        network: Network,
        proxy_name: str,
    ) -> RtuDevice:
        """Create the device's grid row, process, and serial link on
        first use; idempotent thereafter."""
        if slot.device is not None:
            return slot.device
        self.grid.add_substation(
            Substation(name=slot.substation, load_mw=slot.load_mw)
        )
        # star feeder from the region source: opening either end's
        # breaker de-energizes the substation, exactly like the small-n
        # radial grid's leaf lines
        self.grid.add_line(self._source, slot.substation, capacity_mw=150.0)
        cls = PlcDevice if slot.kind == "plc" else RtuDevice
        device = cls(
            f"rtu:{slot.substation}", simulator, network,
            self.grid, slot.substation, slot.unit_id,
        )
        # PLC scan cycles stay un-armed at fleet scale: protection logic
        # is not what the fleet bench measures, and 10k scan timers would
        # reintroduce exactly the queue pressure sharding removes
        slot.device = device
        slot.coil_ids = tuple(device.coil_ids())
        network.set_link(proxy_name, device.name, DEVICE_LINK)
        self.materialized += 1
        return device

    # ------------------------------------------------------------------
    # Poll scheduling
    # ------------------------------------------------------------------
    def due_slots(self, tick_index: int) -> List[DeviceSlot]:
        """Slots whose class polls on base tick ``tick_index`` (1-based),
        in per-device-timer order.

        A per-device periodic timer due at tick ``T`` was last scheduled
        at tick ``T - period``, so in the event heap's (time, seq) order
        longer-period timers drain first, ties in slot (creation) order.
        Visiting due slots in that exact order makes the sharded driver's
        poll sequence indistinguishable from the per-device layout it
        replaces.
        """
        periods = self.class_periods
        due = [
            slot for slot in self.slots
            if tick_index % periods[slot.poll_class] == 0
        ]
        due.sort(key=lambda slot: (-periods[slot.poll_class], slot.index))
        return due


class ShardedPollDriver:
    """One periodic driver replacing per-device poll timers.

    ``mode="sharded"`` (the default) arms a single periodic timer on the
    owning process at the shard's base tick and visits due slots in slot
    order.  ``mode="per-device"`` arms one timer per slot (the layout the
    driver replaces) and exists so tests can pin the equivalence: both
    modes invoke ``poll(slot)`` at identical virtual times in identical
    order for any roster whose intervals are multiples of the base tick.
    """

    def __init__(
        self,
        owner,  # a simnet Process: supplies guarded periodic timers
        shard: RegionShard,
        poll: Callable[[DeviceSlot], None],
        mode: str = "sharded",
    ) -> None:
        if mode not in ("sharded", "per-device"):
            raise ValueError(f"unknown driver mode {mode!r}")
        self.owner = owner
        self.shard = shard
        self.poll = poll
        self.mode = mode
        self.ticks = 0
        self.polls_driven = 0

    def start(self) -> None:
        if self.mode == "per-device":
            # one periodic timer per slot, created in slot order — the
            # layout the sharded mode must reproduce tick-for-tick
            for slot in self.shard.slots:
                interval = self.shard.poll_intervals_ms[slot.poll_class]
                self.owner.every(interval, lambda s=slot: self._poll_one(s))
            return
        self.owner.every(self.shard.base_tick_ms, self._tick)

    def _poll_one(self, slot: DeviceSlot) -> None:
        self.polls_driven += 1
        self.poll(slot)

    def _tick(self) -> None:
        self.ticks += 1
        for slot in self.shard.due_slots(self.ticks):
            self.polls_driven += 1
            self.poll(slot)
