"""Emulated remote terminal unit (RTU).

One RTU per substation. It owns the substation's telemetry and breaker
coils and answers Modbus frames arriving over the (local, serial-like)
simulated network from its proxy. The RTU itself is *dumb* — exactly as
the paper's architecture assumes: all intelligence lives in the SCADA
master; RTUs just expose registers/coils. Byte frames are exchanged so
the protocol path (encode → CRC → decode) is exercised end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..simnet import Network, Process, Simulator
from .grid import PowerGrid
from .modbus import (
    EXC_ILLEGAL_ADDRESS,
    ExceptionResponse,
    FUNC_READ_COILS,
    FUNC_READ_HOLDING,
    FUNC_WRITE_COIL,
    ModbusError,
    ReadCoilsRequest,
    ReadCoilsResponse,
    ReadRequest,
    ReadResponse,
    WriteCoilRequest,
    WriteCoilResponse,
    decode_frame,
    encode_frame,
    scale_measurement,
)

__all__ = ["RtuDevice", "MEASUREMENT_ORDER"]

#: Fixed register layout: index in this list == holding-register address.
MEASUREMENT_ORDER = ("voltage_kv", "flow_mw", "frequency_hz", "energized")


@dataclass(frozen=True)
class _ModbusFrame:
    """Wire wrapper so RTU traffic is distinguishable on the network."""

    frame: bytes


class RtuDevice(Process):
    """Modbus server bound to one substation of a :class:`PowerGrid`."""

    def __init__(
        self,
        name: str,
        simulator: Simulator,
        network: Network,
        grid: PowerGrid,
        substation: str,
        unit_id: int,
    ) -> None:
        super().__init__(name, simulator, network)
        self.grid = grid
        self.substation = substation
        self.unit_id = unit_id
        self.requests_served = 0
        self.writes_applied = 0

    # ------------------------------------------------------------------
    def coil_ids(self) -> List[str]:
        """Breaker identifiers in coil-address order."""
        return sorted(self.grid.substations[self.substation].breakers)

    @staticmethod
    def wrap(frame: bytes) -> Any:
        return _ModbusFrame(frame)

    @staticmethod
    def unwrap(payload: Any) -> Optional[bytes]:
        if isinstance(payload, _ModbusFrame):
            return payload.frame
        return None

    # ------------------------------------------------------------------
    def on_message(self, src: str, payload: Any) -> None:
        frame = self.unwrap(payload)
        if frame is None:
            return
        try:
            request = decode_frame(frame)
        except ModbusError:
            return  # corrupted frames are silently dropped, like serial noise
        if getattr(request, "unit", None) != self.unit_id:
            return
        response = self._serve(request)
        if response is not None:
            self.requests_served += 1
            self.send(src, _ModbusFrame(encode_frame(response)), size_bytes=64)

    def _serve(self, request: Any) -> Optional[Any]:
        if isinstance(request, ReadRequest):
            return self._read_holding(request)
        if isinstance(request, ReadCoilsRequest):
            return self._read_coils(request)
        if isinstance(request, WriteCoilRequest):
            return self._write_coil(request)
        return None

    def _read_holding(self, request: ReadRequest) -> Any:
        measurements = self.grid.measurements(self.substation)
        registers = [
            scale_measurement(measurements[key]) for key in MEASUREMENT_ORDER
        ]
        end = request.address + request.count
        if request.address < 0 or end > len(registers):
            return ExceptionResponse(self.unit_id, FUNC_READ_HOLDING, EXC_ILLEGAL_ADDRESS)
        return ReadResponse(self.unit_id, tuple(registers[request.address:end]))

    def _read_coils(self, request: ReadCoilsRequest) -> Any:
        coils = self.coil_ids()
        end = request.address + request.count
        if request.address < 0 or end > len(coils):
            return ExceptionResponse(self.unit_id, FUNC_READ_COILS, EXC_ILLEGAL_ADDRESS)
        states = self.grid.breaker_states(self.substation)
        values = tuple(states[c] for c in coils[request.address:end])
        return ReadCoilsResponse(self.unit_id, values)

    def _write_coil(self, request: WriteCoilRequest) -> Any:
        coils = self.coil_ids()
        if not 0 <= request.address < len(coils):
            return ExceptionResponse(self.unit_id, FUNC_WRITE_COIL, EXC_ILLEGAL_ADDRESS)
        breaker_id = coils[request.address]
        self.grid.set_breaker(self.substation, breaker_id, request.value)
        self.writes_applied += 1
        return WriteCoilResponse(self.unit_id, request.address, request.value)
