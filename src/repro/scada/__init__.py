"""Field layer: the power grid process, Modbus-like protocol, and devices."""

from .grid import Breaker, PowerGrid, Substation, build_radial_grid
from .modbus import (
    ExceptionResponse,
    ModbusError,
    ReadCoilsRequest,
    ReadCoilsResponse,
    ReadRequest,
    ReadResponse,
    WriteCoilRequest,
    WriteCoilResponse,
    crc16,
    decode_frame,
    encode_frame,
    scale_measurement,
    unscale_measurement,
)
from .plc import PlcDevice, ProtectionRule, undervoltage_rule
from .region import DeviceSlot, RegionShard, ShardedPollDriver
from .rtu import MEASUREMENT_ORDER, RtuDevice

__all__ = [
    "Breaker",
    "PowerGrid",
    "Substation",
    "build_radial_grid",
    "ExceptionResponse",
    "ModbusError",
    "ReadCoilsRequest",
    "ReadCoilsResponse",
    "ReadRequest",
    "ReadResponse",
    "WriteCoilRequest",
    "WriteCoilResponse",
    "crc16",
    "decode_frame",
    "encode_frame",
    "scale_measurement",
    "unscale_measurement",
    "PlcDevice",
    "ProtectionRule",
    "undervoltage_rule",
    "DeviceSlot",
    "RegionShard",
    "ShardedPollDriver",
    "MEASUREMENT_ORDER",
    "RtuDevice",
]
