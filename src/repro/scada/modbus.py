"""A compact Modbus-RTU-like field protocol.

Spire's proxies speak Modbus/DNP3 to the field devices; we implement a
Modbus-flavoured binary framing with function codes, 16-bit registers,
coils, exceptions, and CRC-16 — enough to exercise a realistic device
polling/command path (including corrupted-frame rejection) without
importing a protocol stack.

Register map convention used by :class:`repro.scada.rtu.RtuDevice`:

* Holding registers 0..N: measurements, scaled to 16-bit fixed point.
* Coils 0..M: breakers, in the sorted order of their identifiers.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

__all__ = [
    "FUNC_READ_HOLDING",
    "FUNC_READ_COILS",
    "FUNC_WRITE_COIL",
    "EXC_ILLEGAL_FUNCTION",
    "EXC_ILLEGAL_ADDRESS",
    "ModbusError",
    "ReadRequest",
    "ReadCoilsRequest",
    "WriteCoilRequest",
    "ReadResponse",
    "ReadCoilsResponse",
    "WriteCoilResponse",
    "ExceptionResponse",
    "crc16",
    "encode_frame",
    "decode_frame",
]

FUNC_READ_HOLDING = 0x03
FUNC_READ_COILS = 0x01
FUNC_WRITE_COIL = 0x05

EXC_ILLEGAL_FUNCTION = 0x01
EXC_ILLEGAL_ADDRESS = 0x02


class ModbusError(ValueError):
    """Raised for malformed or corrupted frames."""


@dataclass(frozen=True)
class ReadRequest:
    unit: int
    address: int
    count: int


@dataclass(frozen=True)
class ReadCoilsRequest:
    unit: int
    address: int
    count: int


@dataclass(frozen=True)
class WriteCoilRequest:
    unit: int
    address: int
    value: bool


@dataclass(frozen=True)
class ReadResponse:
    unit: int
    values: Tuple[int, ...]


@dataclass(frozen=True)
class ReadCoilsResponse:
    unit: int
    values: Tuple[bool, ...]


@dataclass(frozen=True)
class WriteCoilResponse:
    unit: int
    address: int
    value: bool


@dataclass(frozen=True)
class ExceptionResponse:
    unit: int
    function: int
    code: int


Message = Union[
    ReadRequest, ReadCoilsRequest, WriteCoilRequest,
    ReadResponse, ReadCoilsResponse, WriteCoilResponse, ExceptionResponse,
]


def crc16(data: bytes) -> int:
    """Modbus CRC-16 (polynomial 0xA001)."""
    crc = 0xFFFF
    for byte in data:
        crc ^= byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ 0xA001
            else:
                crc >>= 1
    return crc


def _with_crc(body: bytes) -> bytes:
    return body + struct.pack("<H", crc16(body))


def encode_frame(message: Message) -> bytes:
    """Serialize a protocol message to a CRC-protected frame."""
    if isinstance(message, ReadRequest):
        body = struct.pack(">BBHH", message.unit, FUNC_READ_HOLDING,
                           message.address, message.count)
    elif isinstance(message, ReadCoilsRequest):
        body = struct.pack(">BBHH", message.unit, FUNC_READ_COILS,
                           message.address, message.count)
    elif isinstance(message, WriteCoilRequest):
        body = struct.pack(">BBHH", message.unit, FUNC_WRITE_COIL,
                           message.address, 0xFF00 if message.value else 0x0000)
    elif isinstance(message, ReadResponse):
        payload = b"".join(struct.pack(">H", v & 0xFFFF) for v in message.values)
        body = struct.pack(">BBB", message.unit, FUNC_READ_HOLDING | 0x40,
                           len(payload)) + payload
    elif isinstance(message, ReadCoilsResponse):
        bits = 0
        for i, value in enumerate(message.values):
            if value:
                bits |= 1 << i
        nbytes = (len(message.values) + 7) // 8
        body = struct.pack(">BBBB", message.unit, FUNC_READ_COILS | 0x40,
                           len(message.values), nbytes)
        body += bits.to_bytes(nbytes or 1, "little")
    elif isinstance(message, WriteCoilResponse):
        body = struct.pack(">BBHH", message.unit, FUNC_WRITE_COIL | 0x40,
                           message.address, 0xFF00 if message.value else 0x0000)
    elif isinstance(message, ExceptionResponse):
        body = struct.pack(">BBB", message.unit, message.function | 0x80, message.code)
    else:
        raise ModbusError(f"cannot encode {type(message).__name__}")
    return _with_crc(body)


def decode_frame(frame: bytes) -> Message:
    """Parse and CRC-check a frame; raises :class:`ModbusError` if invalid."""
    if len(frame) < 4:
        raise ModbusError("frame too short")
    body, crc_bytes = frame[:-2], frame[-2:]
    if struct.unpack("<H", crc_bytes)[0] != crc16(body):
        raise ModbusError("CRC mismatch")
    unit, function = body[0], body[1]
    if function == FUNC_READ_HOLDING:
        address, count = struct.unpack(">HH", body[2:6])
        return ReadRequest(unit, address, count)
    if function == FUNC_READ_COILS:
        address, count = struct.unpack(">HH", body[2:6])
        return ReadCoilsRequest(unit, address, count)
    if function == FUNC_WRITE_COIL:
        address, raw = struct.unpack(">HH", body[2:6])
        return WriteCoilRequest(unit, address, raw == 0xFF00)
    if function == (FUNC_READ_HOLDING | 0x40):
        nbytes = body[2]
        payload = body[3:3 + nbytes]
        if len(payload) != nbytes or nbytes % 2:
            raise ModbusError("bad read response length")
        values = tuple(
            struct.unpack(">H", payload[i:i + 2])[0] for i in range(0, nbytes, 2)
        )
        return ReadResponse(unit, values)
    if function == (FUNC_READ_COILS | 0x40):
        count, nbytes = body[2], body[3]
        bits = int.from_bytes(body[4:4 + max(nbytes, 1)], "little")
        return ReadCoilsResponse(unit, tuple(bool(bits >> i & 1) for i in range(count)))
    if function == (FUNC_WRITE_COIL | 0x40):
        address, raw = struct.unpack(">HH", body[2:6])
        return WriteCoilResponse(unit, address, raw == 0xFF00)
    if function & 0x80:
        return ExceptionResponse(unit, function & 0x7F, body[2])
    raise ModbusError(f"unknown function 0x{function:02x}")


def scale_measurement(value: float, scale: float = 10.0) -> int:
    """Fixed-point scale a measurement into a 16-bit register."""
    return max(0, min(0xFFFF, int(round(value * scale))))


def unscale_measurement(register: int, scale: float = 10.0) -> float:
    return register / scale
