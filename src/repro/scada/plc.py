"""Emulated programmable logic controller (PLC).

Spire's field sites contain PLCs as well as RTUs. The PLC here runs a
classic *scan cycle*: read inputs (its substation's measurements), evaluate
a small ladder of protection rules, drive outputs (trip breakers). The
canonical rule shipped is over/under-voltage protection — it demonstrates
local automation acting beneath the SCADA layer, and the red-team example
uses it to show protection still firing while the SCADA master is under
attack.

The PLC also answers Modbus reads like an RTU (it shares the register
layout), so proxies can poll PLCs and RTUs uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..simnet import Network, Simulator
from .grid import PowerGrid
from .rtu import RtuDevice

__all__ = ["ProtectionRule", "PlcDevice", "undervoltage_rule"]


@dataclass
class ProtectionRule:
    """One ladder rung: a predicate over measurements plus an action.

    ``action`` receives (plc, measurements) and performs breaker
    operations through the PLC.
    """

    name: str
    predicate: Callable[[Dict[str, float]], bool]
    action: Callable[["PlcDevice", Dict[str, float]], None]
    #: scans the predicate must hold before the action fires (debounce)
    pickup_scans: int = 3


def undervoltage_rule(threshold_kv: float = 120.0) -> ProtectionRule:
    """Trip all local breakers when voltage collapses below threshold
    (isolating a faulted section)."""

    def predicate(measurements: Dict[str, float]) -> bool:
        return 0.0 < measurements["voltage_kv"] < threshold_kv

    def action(plc: "PlcDevice", measurements: Dict[str, float]) -> None:
        for breaker_id in plc.coil_ids():
            plc.grid.set_breaker(plc.substation, breaker_id, False)
        plc.trips += 1

    return ProtectionRule("undervoltage", predicate, action)


class PlcDevice(RtuDevice):
    """An RTU that additionally runs a protection scan cycle."""

    def __init__(
        self,
        name: str,
        simulator: Simulator,
        network: Network,
        grid: PowerGrid,
        substation: str,
        unit_id: int,
        rules: Optional[List[ProtectionRule]] = None,
        scan_interval_ms: float = 100.0,
    ) -> None:
        super().__init__(name, simulator, network, grid, substation, unit_id)
        self.rules = rules if rules is not None else [undervoltage_rule()]
        self.scan_interval_ms = scan_interval_ms
        self.scans = 0
        self.trips = 0
        self._pickup: Dict[str, int] = {}

    def start(self) -> None:
        """Arm the scan cycle."""
        self.every(self.scan_interval_ms, self._scan)

    def _scan(self) -> None:
        self.scans += 1
        measurements = self.grid.measurements(self.substation)
        for rule in self.rules:
            if rule.predicate(measurements):
                count = self._pickup.get(rule.name, 0) + 1
                self._pickup[rule.name] = count
                if count == rule.pickup_scans:
                    rule.action(self, measurements)
            else:
                self._pickup[rule.name] = 0

    def on_recover(self) -> None:
        self._pickup.clear()
