"""Power-grid process model.

This is the physical process the reproduced SCADA system supervises: a
distribution network of substations connected by lines, with breakers that
can isolate lines, generation points, and time-varying load. The model is
deliberately simple but honest about the properties the evaluation needs:

* breaker positions change which loads are *served* (connectivity to a
  generation source), so an attacker that opens breakers causes measurable
  load shed — this is the damage metric of the red-team experiment;
* measurements (flows, voltages) are derived deterministically from grid
  state plus seeded noise, so RTU polling produces realistic, reproducible
  telemetry.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx

__all__ = ["Breaker", "Substation", "PowerGrid", "build_radial_grid"]


@dataclass
class Breaker:
    """A controllable breaker on a line endpoint."""

    breaker_id: str
    line: Tuple[str, str]
    closed: bool = True


@dataclass
class Substation:
    """One substation: optional generation, a load, and its breakers."""

    name: str
    load_mw: float = 10.0
    generation_mw: float = 0.0
    nominal_kv: float = 138.0
    breakers: Dict[str, Breaker] = field(default_factory=dict)

    @property
    def is_source(self) -> bool:
        return self.generation_mw > 0.0


class PowerGrid:
    """The grid state plus derived electrical quantities."""

    def __init__(self, seed: int = 0) -> None:
        self.graph = nx.Graph()
        self.substations: Dict[str, Substation] = {}
        self._rng = random.Random(f"grid/{seed}")
        self.time_hours: float = 0.0
        # energization is a pure function of topology + breaker state, so
        # it is cached between breaker operations: polling n substations
        # costs one connectivity sweep, not n (the fleet-scale hot path)
        self._energized_cache: Optional[set] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_substation(self, substation: Substation) -> Substation:
        if substation.name in self.substations:
            raise ValueError(f"duplicate substation {substation.name}")
        self.substations[substation.name] = substation
        self.graph.add_node(substation.name)
        self._energized_cache = None
        return substation

    def add_line(self, a: str, b: str, capacity_mw: float = 100.0) -> Tuple[str, str]:
        """Add a line with a breaker at each end."""
        for name in (a, b):
            if name not in self.substations:
                raise KeyError(f"unknown substation {name}")
        self.graph.add_edge(a, b, capacity_mw=capacity_mw)
        for end, other in ((a, b), (b, a)):
            breaker_id = f"{end}->{other}"
            self.substations[end].breakers[breaker_id] = Breaker(breaker_id, (end, other))
        self._energized_cache = None
        return (a, b)

    # ------------------------------------------------------------------
    # Control
    # ------------------------------------------------------------------
    def set_breaker(self, substation: str, breaker_id: str, closed: bool) -> bool:
        """Operate a breaker; returns True if the state changed."""
        sub = self.substations[substation]
        breaker = sub.breakers.get(breaker_id)
        if breaker is None:
            raise KeyError(f"no breaker {breaker_id} at {substation}")
        if breaker.closed == closed:
            return False
        breaker.closed = closed
        self._energized_cache = None
        return True

    def breaker_closed(self, substation: str, breaker_id: str) -> bool:
        return self.substations[substation].breakers[breaker_id].closed

    def line_energized(self, a: str, b: str) -> bool:
        """A line carries power only when the breakers at both ends close."""
        return (
            self.substations[a].breakers[f"{a}->{b}"].closed
            and self.substations[b].breakers[f"{b}->{a}"].closed
        )

    # ------------------------------------------------------------------
    # Derived state
    # ------------------------------------------------------------------
    def _energized_graph(self) -> nx.Graph:
        g = nx.Graph()
        g.add_nodes_from(self.graph.nodes)
        for a, b in self.graph.edges:
            if self.line_energized(a, b):
                g.add_edge(a, b)
        return g

    def energized_substations(self) -> set:
        """Substations connected to at least one generation source.

        The result is cached until the next breaker/topology change;
        treat the returned set as read-only.
        """
        cached = self._energized_cache
        if cached is not None:
            return cached
        g = self._energized_graph()
        energized = set()
        for component in nx.connected_components(g):
            if any(self.substations[n].is_source for n in component):
                energized |= component
        self._energized_cache = energized
        return energized

    def load_factor(self) -> float:
        """Diurnal demand multiplier (simple double-peak daily curve)."""
        t = self.time_hours % 24.0
        return 0.7 + 0.2 * math.sin((t - 7.0) * math.pi / 12.0) ** 2 \
            + 0.1 * math.sin((t - 18.0) * math.pi / 6.0) ** 2

    def demand_mw(self, substation: str) -> float:
        return self.substations[substation].load_mw * self.load_factor()

    def served_load_mw(self) -> float:
        """Total demand currently served (the red-team damage metric)."""
        energized = self.energized_substations()
        return sum(self.demand_mw(name) for name in energized)

    def total_load_mw(self) -> float:
        return sum(self.demand_mw(name) for name in self.substations)

    def shed_load_mw(self) -> float:
        return self.total_load_mw() - self.served_load_mw()

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def advance_time(self, hours: float) -> None:
        self.time_hours += hours

    def measurements(self, substation: str) -> Dict[str, float]:
        """Deterministic noisy measurements for one substation's RTU."""
        sub = self.substations[substation]
        energized = substation in self.energized_substations()
        noise = lambda scale: (self._rng.random() - 0.5) * scale
        voltage = sub.nominal_kv * (1.0 + noise(0.02)) if energized else 0.0
        flow = self.demand_mw(substation) * (1.0 + noise(0.05)) if energized else 0.0
        frequency = (60.0 + noise(0.02)) if energized else 0.0
        return {
            "voltage_kv": round(voltage, 3),
            "flow_mw": round(flow, 3),
            "frequency_hz": round(frequency, 4),
            "energized": 1.0 if energized else 0.0,
        }

    def breaker_states(self, substation: str) -> Dict[str, bool]:
        return {
            breaker_id: breaker.closed
            for breaker_id, breaker in self.substations[substation].breakers.items()
        }


def build_radial_grid(
    num_substations: int = 10, seed: int = 0, sources: int = 2
) -> PowerGrid:
    """A radial distribution grid: ``sources`` transmission inlets feeding
    a tree of substations, with a few tie lines for reconfiguration."""
    if num_substations < 2:
        raise ValueError("need at least 2 substations")
    grid = PowerGrid(seed=seed)
    rng = random.Random(f"grid-build/{seed}")
    for i in range(num_substations):
        is_source = i < sources
        grid.add_substation(
            Substation(
                name=f"sub{i}",
                load_mw=0.0 if is_source else 5.0 + rng.random() * 20.0,
                generation_mw=500.0 if is_source else 0.0,
            )
        )
    # radial spine: each substation fed from an earlier one
    for i in range(1, num_substations):
        parent = rng.randrange(0, i)
        grid.add_line(f"sub{parent}", f"sub{i}", capacity_mw=150.0)
    # a few tie lines for redundancy
    for _ in range(max(1, num_substations // 5)):
        a, b = rng.sample(range(num_substations), 2)
        if not grid.graph.has_edge(f"sub{a}", f"sub{b}"):
            grid.add_line(f"sub{a}", f"sub{b}", capacity_mw=80.0)
    return grid
