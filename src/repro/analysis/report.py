"""Plain-text table/figure rendering for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures; these
helpers print them in a consistent, diff-friendly format (tables as
aligned columns, figures as series listings plus ASCII sparklines).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

__all__ = ["print_table", "print_series", "sparkline", "format_row"]

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def format_row(cells: Sequence[object], widths: Sequence[int]) -> str:
    parts = []
    for cell, width in zip(cells, widths):
        text = f"{cell:.2f}" if isinstance(cell, float) else str(cell)
        parts.append(text.rjust(width) if _is_numeric(cell) else text.ljust(width))
    return "  ".join(parts)


def _is_numeric(cell: object) -> bool:
    return isinstance(cell, (int, float)) and not isinstance(cell, bool)


def print_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    out=print,
) -> None:
    """Print an aligned table with a title rule."""
    rows = [list(r) for r in rows]
    widths = [len(h) for h in headers]
    rendered: List[List[str]] = []
    for row in rows:
        cells = []
        for index, cell in enumerate(row):
            text = f"{cell:.2f}" if isinstance(cell, float) else str(cell)
            cells.append(text)
            widths[index] = max(widths[index], len(text))
        rendered.append(cells)
    out("")
    out(f"=== {title} ===")
    out("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out("  ".join("-" * w for w in widths))
    for row, cells in zip(rows, rendered):
        out("  ".join(
            c.rjust(w) if _is_numeric(v) else c.ljust(w)
            for c, w, v in zip(cells, widths, row)
        ))


def sparkline(values: Sequence[float]) -> str:
    """Render a numeric series as a unicode sparkline."""
    if not values:
        return ""
    low = min(values)
    high = max(values)
    span = (high - low) or 1.0
    return "".join(
        _SPARK_CHARS[int((v - low) / span * (len(_SPARK_CHARS) - 1))]
        for v in values
    )


def print_series(
    title: str,
    series: Sequence[Tuple[float, float]],
    unit: str = "",
    max_points: int = 60,
    out=print,
) -> None:
    """Print a (t, value) series as a sparkline plus summary stats."""
    out("")
    out(f"--- {title} ---")
    if not series:
        out("(empty)")
        return
    values = [v for _, v in series]
    step = max(1, len(values) // max_points)
    out(sparkline(values[::step]))
    out(
        f"min={min(values):.2f}{unit}  max={max(values):.2f}{unit}  "
        f"mean={sum(values) / len(values):.2f}{unit}  points={len(values)}"
    )
