"""Scenario reports: one call from a finished run to a figure-ready summary.

:class:`ScenarioReport` aggregates everything a run's
:class:`~repro.obs.Observability` handle collected — latency trackers
(with CDF marks matching the paper's figures), counters, gauges,
histograms, interval series, and the structured event log (including its
``dropped`` counter, so a clipped trace is never mistaken for a quiet
one) — and renders it as JSON (for archival/diffing) or aligned text
(for benchmark stdout). Benchmarks and examples build one instead of
hand-rolling their own aggregation::

    report = ScenarioReport.from_deployment(deployment, title="quickstart")
    report.render(print)                 # text form
    report.write("results/quickstart")  # -> .json + .txt
"""

from __future__ import annotations

import json
import sys
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..obs import LatencyTracker, Observability
from .report import print_table

__all__ = ["ScenarioReport", "DEFAULT_CDF_MARKS", "current_peak_rss"]


def current_peak_rss() -> Optional[int]:
    """This process's peak resident set size in bytes, or None where the
    platform doesn't report it (``ru_maxrss`` is KB on Linux, bytes on
    macOS)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if peak <= 0:  # pragma: no cover - platform quirk
        return None
    return peak if sys.platform == "darwin" else peak * 1024

#: the CDF fractions the paper's latency figures tabulate
DEFAULT_CDF_MARKS: Tuple[float, ...] = (
    0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 0.999, 1.0,
)


class ScenarioReport:
    """Aggregated view of one run's observability data."""

    def __init__(
        self,
        obs: Observability,
        title: str = "scenario",
        sim_time_ms: Optional[float] = None,
        events_processed: Optional[int] = None,
        cdf_marks: Sequence[float] = DEFAULT_CDF_MARKS,
        extra: Optional[Dict[str, Any]] = None,
        wall_runtime_s: Optional[float] = None,
        peak_rss_bytes: Optional[int] = None,
        device_count: Optional[int] = None,
    ) -> None:
        self.obs = obs
        self.title = title
        self.sim_time_ms = sim_time_ms
        self.events_processed = events_processed
        self.cdf_marks = tuple(cdf_marks)
        self.extra = dict(extra or {})
        self.wall_runtime_s = wall_runtime_s
        self.peak_rss_bytes = peak_rss_bytes
        self.device_count = device_count

    @classmethod
    def from_deployment(
        cls,
        deployment: Any,
        title: str = "scenario",
        cdf_marks: Sequence[float] = DEFAULT_CDF_MARKS,
        extra: Optional[Dict[str, Any]] = None,
    ) -> "ScenarioReport":
        """Build a report from a :class:`~repro.core.SpireDeployment`
        (or anything exposing ``obs`` and ``simulator``)."""
        return cls(
            deployment.obs,
            title=title,
            sim_time_ms=deployment.simulator.now,
            events_processed=deployment.simulator.events_processed,
            cdf_marks=cdf_marks,
            extra=extra,
            wall_runtime_s=getattr(deployment, "wall_runtime_s", None),
            peak_rss_bytes=current_peak_rss(),
            device_count=getattr(deployment, "device_count", None),
        )

    @property
    def events_per_sec(self) -> Optional[float]:
        """Simulated events executed per host wall-clock second."""
        if not self.wall_runtime_s or self.events_processed is None:
            return None
        return self.events_processed / self.wall_runtime_s

    # ------------------------------------------------------------------
    # Typed accessors
    # ------------------------------------------------------------------
    def latency(self, name: str) -> Optional[LatencyTracker]:
        instrument = self.obs.registry.get(name)
        return instrument if isinstance(instrument, LatencyTracker) else None

    def _by_kind(self, kind: str) -> List[Any]:
        return [
            self.obs.registry.get(name)
            for name in self.obs.registry.names()
            if getattr(self.obs.registry.get(name), "kind", None) == kind
        ]

    # ------------------------------------------------------------------
    # Structured form
    # ------------------------------------------------------------------
    def to_dict(self, deterministic_only: bool = False) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "title": self.title,
            "sim_time_ms": self.sim_time_ms,
            "events_processed": self.events_processed,
            "cdf_marks": list(self.cdf_marks),
            "latency_cdfs": {
                tracker.name: tracker.cdf_at_marks(self.cdf_marks)
                for tracker in self._by_kind("latency")
            },
        }
        if not deterministic_only:
            # host-dependent sizing stays out of deterministic-only dumps
            # (which are diffed/fingerprinted across hosts); device_count
            # rides with it so fleet sizing never perturbs pinned dumps
            if self.wall_runtime_s is not None:
                data["wall_runtime_s"] = round(self.wall_runtime_s, 4)
                rate = self.events_per_sec
                if rate is not None:
                    data["events_per_sec"] = round(rate, 1)
            if self.peak_rss_bytes is not None:
                data["peak_rss_bytes"] = self.peak_rss_bytes
            if self.device_count is not None:
                data["device_count"] = self.device_count
        data.update(self.obs.snapshot(deterministic_only))
        if self.extra:
            data["extra"] = self.extra
        return data

    def to_json(self, indent: int = 2, deterministic_only: bool = False) -> str:
        return json.dumps(
            self.to_dict(deterministic_only), indent=indent, sort_keys=True
        )

    # ------------------------------------------------------------------
    # Text form
    # ------------------------------------------------------------------
    def render(self, out: Callable[[str], None] = print) -> None:
        """Print the report as aligned, diff-friendly text."""
        out("")
        out(f"### scenario report: {self.title} ###")
        if self.sim_time_ms is not None:
            summary = f"simulated {self.sim_time_ms / 1000.0:.1f} s"
            if self.events_processed is not None:
                summary += f" in {self.events_processed} events"
            out(summary)
        if self.wall_runtime_s:
            rate = self.events_per_sec
            line = f"wall clock: {self.wall_runtime_s:.2f} s"
            if rate is not None:
                line += f" ({rate:,.0f} events/s)"
            out(line)
        if self.device_count is not None:
            out(f"field devices: {self.device_count}")
        if self.peak_rss_bytes is not None:
            out(f"peak RSS: {self.peak_rss_bytes / (1024 * 1024):.1f} MiB")

        trackers = self._by_kind("latency")
        for tracker in trackers:
            stats = tracker.stats()
            out("")
            out(f"latency: {tracker.name}")
            out(f"  {stats.row()}")
            if stats.count:
                values = tracker.cdf_at_marks(self.cdf_marks)
                print_table(
                    f"{tracker.name} CDF (ms)",
                    ["fraction", "latency"],
                    [[f"{mark:.1%}", value]
                     for mark, value in zip(self.cdf_marks, values)],
                    out=out,
                )

        counters = [c for c in self._by_kind("counter")]
        if counters:
            print_table(
                "counters",
                ["name", "value"],
                [[c.name, c.value] for c in counters],
                out=out,
            )

        histograms = self._by_kind("histogram")
        deterministic_hists = [h for h in histograms if h.deterministic]
        wall_hists = [h for h in histograms if not h.deterministic]
        for label, group in (
            ("histograms (sim)", deterministic_hists),
            ("histograms (wall-clock)", wall_hists),
        ):
            if group:
                print_table(
                    label,
                    ["name", "n", "mean", "p99", "max"],
                    [
                        [h.name, h.count, h.mean,
                         h.stats().p99, h.stats().maximum]
                        for h in group
                    ],
                    out=out,
                )

        intervals = self._by_kind("intervals")
        if intervals:
            print_table(
                "interval series",
                ["name", "interval_ms", "total"],
                [[i.name, i.interval_ms, i.snapshot()["total"]]
                 for i in intervals],
                out=out,
            )

        kinds = self.obs.log.kind_counts()
        if kinds:
            print_table(
                "events",
                ["kind", "count"],
                [[key, count] for key, count in sorted(kinds.items())],
                out=out,
            )
        dropped = self.obs.log.dropped
        out("")
        out(f"event log: {len(self.obs.log)} recorded, {dropped} dropped"
            + (" (TRACE CLIPPED — raise max_events)" if dropped else ""))
        for key, value in sorted(self.extra.items()):
            out(f"{key}: {value}")

    def text(self) -> str:
        lines: List[str] = []
        self.render(lines.append)
        return "\n".join(lines) + "\n"

    # ------------------------------------------------------------------
    def write(self, path_base: str) -> Tuple[str, str]:
        """Write ``<path_base>.json`` and ``<path_base>.txt``; returns
        the two paths."""
        json_path = f"{path_base}.json"
        txt_path = f"{path_base}.txt"
        with open(json_path, "w") as handle:
            handle.write(self.to_json() + "\n")
        with open(txt_path, "w") as handle:
            handle.write(self.text())
        return json_path, txt_path
