"""Wall-clock hot-spot table from an ``Observability`` handle.

Every wall-clock histogram in a run's registry — ``crypto.<op>.wall_ms``
from :class:`~repro.crypto.TimedCrypto`, ``span.<path>.wall_ms`` from the
span recorder — is a measurement of where real time went. This module
aggregates them into one ranked table so a benchmark (or a future PR
deciding what to optimize next) can see the cost centers of a run at a
glance without re-profiling.

Wall-clock data is inherently non-deterministic, so these helpers only
read ``deterministic=False`` instruments and never appear in the
deterministic scenario-report image.
"""

from __future__ import annotations

from typing import Any, Callable, List, Tuple

from .report import print_table

__all__ = ["wall_clock_hotspots", "print_hotspots"]

#: one table row: (name, calls, total wall ms, mean wall ms)
HotspotRow = Tuple[str, int, float, float]


def wall_clock_hotspots(obs: Any, top: int = 15) -> List[HotspotRow]:
    """Rank a run's wall-clock histograms by total time spent.

    Returns up to ``top`` rows sorted by descending total milliseconds.
    Works on any ``Observability`` handle (the null handle yields ``[]``).
    """
    registry = obs.registry
    rows: List[HotspotRow] = []
    for name in registry.names():
        instrument = registry.get(name)
        if getattr(instrument, "kind", None) != "histogram":
            continue
        if instrument.deterministic or not instrument.count:
            continue
        rows.append(
            (name, instrument.count, instrument.total, instrument.mean)
        )
    rows.sort(key=lambda row: (-row[2], row[0]))
    return rows[:top]


def print_hotspots(
    obs: Any, out: Callable[[str], None] = print, top: int = 15
) -> List[HotspotRow]:
    """Print the hot-spot table; returns the rows it printed."""
    rows = wall_clock_hotspots(obs, top=top)
    if not rows:
        out("(no wall-clock histograms recorded — observability off?)")
        return rows
    print_table(
        "wall-clock hot spots",
        ["path", "calls", "total_ms", "mean_ms"],
        [[name, calls, round(total, 3), round(mean, 6)]
         for name, calls, total, mean in rows],
        out=out,
    )
    return rows
