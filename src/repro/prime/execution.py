"""Execution stage: coverage cutoffs over ordered summary matrices.

The third stage of the Prime pipeline: an ordered matrix does not carry
updates itself — it *fixes*, per origin stream, a coverage cutoff (the
quorum-th largest acknowledged po_seq). Every certified update at or
below the cutoff that has not yet executed runs in deterministic order
(origin streams sorted lexicographically, then by po_seq), so all correct
replicas execute the identical update sequence. A slot whose certified
pre-order data has not fully arrived triggers reconciliation instead of
executing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Tuple

from .messages import (
    ClientUpdate,
    SignedMessage,
    verify_client_update,
    verify_client_updates_batch,
)
from .state import OrderingSlot

if TYPE_CHECKING:  # pragma: no cover
    from .node import PrimeNode

__all__ = ["ExecutionCutoff", "coverage_cutoffs"]


def coverage_cutoffs(
    matrix: Tuple[SignedMessage, ...], n: int, quorum: int
) -> Dict[str, int]:
    """Per-origin cutoffs: the quorum-th largest acknowledged po_seq."""
    values: Dict[str, List[int]] = {}
    rows = 0
    for entry in matrix:
        rows += 1
        for origin, upto in entry.payload.vector:
            values.setdefault(origin, []).append(upto)
    cutoffs: Dict[str, int] = {}
    for origin, reported in values.items():
        padded = reported + [0] * (n - len(reported))
        padded.sort(reverse=True)
        cutoffs[origin] = padded[quorum - 1] if len(padded) >= quorum else 0
    return cutoffs


class ExecutionCutoff:
    """Deterministic execution of ordered slots for one replica."""

    def __init__(self, node: "PrimeNode") -> None:
        self.node = node

    def try_execute(self) -> None:
        node = self.node
        while True:
            slot = node.slots.get(node.last_executed_seq + 1)
            if slot is None or not slot.is_ordered:
                break
            if not self.execute_slot(slot):
                break
            node.last_executed_seq += 1
            if node.last_executed_seq % node.config.checkpoint_interval_seqs == 0:
                node.recovery.make_checkpoint(node.last_executed_seq)

    def missing_for_slot(self, slot: OrderingSlot) -> List[Tuple[str, int]]:
        node = self.node
        _, _, pre_prepare, _ = slot.ordered
        cutoffs = coverage_cutoffs(
            pre_prepare.payload.matrix, node.config.n, node.config.quorum
        )
        missing = []
        for origin, cutoff in cutoffs.items():
            state = node._origin_state(origin)
            for po_seq in range(state.executed_upto + 1, cutoff + 1):
                if not (state.has_cert(po_seq) and po_seq in state.requests):
                    missing.append((origin, po_seq))
        return missing

    def execute_slot(self, slot: OrderingSlot) -> bool:
        node = self.node
        missing = self.missing_for_slot(slot)
        if missing:
            node.recovery.request_recon(missing, slot)
            return False
        _, _, pre_prepare, _ = slot.ordered
        cutoffs = coverage_cutoffs(
            pre_prepare.payload.matrix, node.config.n, node.config.quorum
        )
        batch_listeners = node.batch_execution_listeners
        for origin in sorted(cutoffs):
            state = node._origin_state(origin)
            cutoff = cutoffs[origin]
            while state.executed_upto < cutoff:
                po_seq = state.executed_upto + 1
                request = state.requests[po_seq].payload
                if batch_listeners:
                    # The batch unit is the executed-update set of one
                    # certified PoRequest: its contents are fixed by the
                    # PO certificate and the executed subset by the agreed
                    # dedup/verify rules, so every correct replica forms
                    # the identical batch and threshold shares combine.
                    verdicts = verify_client_updates_batch(
                        node.crypto, request.updates
                    )
                    executed = [
                        item
                        for update, ok in zip(request.updates, verdicts)
                        if (item := self.execute_update(update, verified=ok))
                        is not None
                    ]
                    if executed:
                        for listener in batch_listeners:
                            listener(origin, po_seq, executed)
                else:
                    for update in request.updates:
                        self.execute_update(update)
                state.executed_upto = po_seq
        return True

    def execute_update(self, update: ClientUpdate, verified=None):
        node = self.node
        if node.client_dedup.is_duplicate(update.client, update.client_seq):
            return None  # at-most-once per (client, client_seq)
        if verified is None:
            verified = verify_client_update(node.crypto, update)
        if not verified:
            return None  # deterministic: all replicas reject the same forgeries
        node.client_dedup.mark(update.client, update.client_seq)
        node.executed_counter += 1
        result = node.app.execute(update, node.executed_counter)
        for listener in node.execution_listeners:
            listener(update, node.executed_counter, result)
        return (update, node.executed_counter, result)
