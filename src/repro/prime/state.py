"""Per-replica protocol state containers for Prime."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from ..replication.ordering import ThreePhaseSlot
from .messages import SignedMessage

__all__ = ["OriginState", "OrderingSlot"]


@dataclass
class OriginState:
    """Pre-ordering state this replica keeps for one origin stream.

    An *origin stream* is one replica incarnation's sequence of PoRequests,
    keyed ``replica#epoch`` — a recovering replica starts a fresh stream so
    it can never equivocate against its own pre-recovery messages.
    """

    origin: str
    #: po_seq -> signed PoRequest (first valid one received wins)
    requests: Dict[int, SignedMessage] = field(default_factory=dict)
    #: po_seq -> content digest of the stored request
    digests: Dict[int, str] = field(default_factory=dict)
    #: po_seq -> digest -> sender -> signed PoAck
    acks: Dict[int, Dict[str, Dict[str, SignedMessage]]] = field(default_factory=dict)
    #: certificates: po_seq -> (winning digest, ack tuple) once quorum reached
    certs: Dict[int, Tuple[str, Tuple[SignedMessage, ...]]] = field(default_factory=dict)
    #: highest po_seq such that certs exist for every seq <= it
    certified_upto: int = 0
    #: highest po_seq executed through the global order (agreed, monotone)
    executed_upto: int = 0

    def has_cert(self, po_seq: int) -> bool:
        return po_seq <= self.certified_upto or po_seq in self.certs

    def advance_certified(self) -> bool:
        """Advance the contiguous certified frontier; True if it moved."""
        moved = False
        while (self.certified_upto + 1) in self.certs:
            self.certified_upto += 1
            moved = True
        return moved

    def garbage_collect(self, below: int) -> None:
        """Drop request/ack/cert data at or below ``below`` (checkpointed)."""
        for table in (self.requests, self.digests, self.acks, self.certs):
            for seq in [s for s in table if s <= below]:
                del table[seq]


@dataclass
class OrderingSlot(ThreePhaseSlot):
    """Global-ordering state for one (seq) slot.

    Prime's specialisation of the shared three-phase slot: ``ordered`` is
    ``(view, digest, signed PrePrepare, commit proof)``.
    """
