"""Prime wire messages.

All protocol messages are frozen dataclasses, canonically encodable by
:mod:`repro.crypto.encoding`, and travel wrapped in :class:`SignedMessage`.
Receivers drop any message whose signature does not verify against the
claimed sender, which is what confines Byzantine replicas to lying in
*their own* messages (the paper's authenticated-link assumption).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

from ..crypto.encoding import digest
from ..crypto.provider import CryptoProvider, Signature
from ..replication.messages import SignedMessage

__all__ = [
    "ClientUpdate",
    "PoRequest",
    "PoAck",
    "PoSummary",
    "PrePrepare",
    "Prepare",
    "Commit",
    "Suspect",
    "ViewChange",
    "NewView",
    "PreparedEntry",
    "CheckpointMsg",
    "Ping",
    "Pong",
    "ReconRequest",
    "ReconReply",
    "OrderedRequest",
    "OrderedReply",
    "StateRequest",
    "StateReply",
    "SignedMessage",
    "client_update_body",
    "sign_client_update",
    "verify_client_update",
    "verify_client_updates_batch",
]


@dataclass(frozen=True)
class ClientUpdate:
    """An update submitted by a SCADA client (proxy or HMI).

    ``client_seq`` provides at-most-once execution per client.
    """

    client: str
    client_seq: int
    payload: Any
    signature: Optional[Signature] = None


@dataclass(frozen=True)
class PoRequest:
    """Pre-order request: ``origin`` binds a batch of client updates to its
    local pre-order sequence number ``po_seq``."""

    origin: str
    po_seq: int
    updates: Tuple[ClientUpdate, ...]


@dataclass(frozen=True)
class PoAck:
    """Acknowledgement that ``sender`` holds PoRequest (origin, po_seq)
    with content digest ``digest``."""

    sender: str
    origin: str
    po_seq: int
    digest: str


@dataclass(frozen=True)
class PoSummary:
    """Cumulative pre-order vector of ``sender``.

    ``vector`` maps (as a sorted tuple of pairs) each origin to the highest
    po_seq such that the sender holds pre-order certificates for *all*
    seqs up to it. ``summary_seq`` orders a sender's summaries and is what
    turnaround-time measurement is keyed on. ``stable_seq`` piggybacks the
    sender's stable checkpoint so lagging replicas can notice they have
    fallen behind the garbage-collection horizon.
    """

    sender: str
    summary_seq: int
    vector: Tuple[Tuple[str, int], ...]
    stable_seq: int = 0
    #: increments on every recovery; freshness is (epoch, summary_seq) so a
    #: rejuvenated replica's restarted counter is not mistaken for stale
    epoch: int = 0


@dataclass(frozen=True)
class PrePrepare:
    """Leader proposal binding global sequence ``seq`` (in ``view``) to a
    proof matrix of signed PO-summaries (one per replica, possibly absent)."""

    leader: str
    view: int
    seq: int
    matrix: Tuple[SignedMessage, ...]  # SignedMessage[PoSummary], distinct senders


@dataclass(frozen=True)
class Prepare:
    sender: str
    view: int
    seq: int
    digest: str


@dataclass(frozen=True)
class Commit:
    sender: str
    view: int
    seq: int
    digest: str


@dataclass(frozen=True)
class Suspect:
    """Accusation that the leader of ``view`` violates its TAT bound."""

    sender: str
    view: int
    reason: str


@dataclass(frozen=True)
class PreparedEntry:
    """A prepared-but-possibly-unordered proposal carried in a ViewChange.

    ``proof`` holds the prepare certificate: signed Prepare/Commit messages
    from a quorum of replicas (the pre-prepare counts as the leader's
    prepare). Without it, a Byzantine replica colluding with a Byzantine
    future leader could fabricate a high-view entry and override a
    committed proposal.
    """

    seq: int
    view: int
    digest: str
    pre_prepare: SignedMessage                 # SignedMessage[PrePrepare]
    proof: Tuple[SignedMessage, ...] = ()      # SignedMessage[Prepare|Commit]


@dataclass(frozen=True)
class ViewChange:
    sender: str
    new_view: int
    checkpoint_seq: int
    #: q signed CheckpointMsg proving checkpoint_seq is stable (empty for 0)
    checkpoint_proof: Tuple[SignedMessage, ...]
    prepared: Tuple[PreparedEntry, ...]


@dataclass(frozen=True)
class NewView:
    """New leader's certificate: q ViewChanges plus re-proposals."""

    leader: str
    view: int
    view_changes: Tuple[SignedMessage, ...]   # SignedMessage[ViewChange]
    pre_prepares: Tuple[SignedMessage, ...]   # SignedMessage[PrePrepare] in seq order


@dataclass(frozen=True)
class CheckpointMsg:
    sender: str
    seq: int
    state_digest: str


@dataclass(frozen=True)
class Ping:
    sender: str
    nonce: int
    sent_at: float


@dataclass(frozen=True)
class Pong:
    sender: str
    nonce: int
    sent_at: float


@dataclass(frozen=True)
class ReconRequest:
    """Ask a peer for pre-order data it claims and we lack."""

    sender: str
    origin: str
    from_seq: int
    to_seq: int


@dataclass(frozen=True)
class ReconReply:
    """Certified pre-order data: the request plus its q acknowledgements."""

    sender: str
    request: SignedMessage                  # SignedMessage[PoRequest]
    acks: Tuple[SignedMessage, ...]          # SignedMessage[PoAck] x quorum


@dataclass(frozen=True)
class OrderedRequest:
    """Ask a peer for the ordered proposal at global ``seq``."""

    sender: str
    seq: int


@dataclass(frozen=True)
class OrderedReply:
    """An ordered proposal plus its commit certificate."""

    sender: str
    seq: int
    pre_prepare: SignedMessage               # SignedMessage[PrePrepare]
    commits: Tuple[SignedMessage, ...]       # SignedMessage[Commit] x quorum


@dataclass(frozen=True)
class StateRequest:
    """A recovering replica asks for a verifiable checkpoint."""

    sender: str


@dataclass(frozen=True)
class StateReply:
    """Stable checkpoint: snapshot + q signed checkpoint messages."""

    sender: str
    checkpoint_seq: int
    snapshot: Any
    proof: Tuple[SignedMessage, ...]         # SignedMessage[CheckpointMsg] x quorum
    view: int


# ----------------------------------------------------------------------
# Client-update signing helpers (used by proxies/HMIs and both protocols)
# ----------------------------------------------------------------------

def client_update_body(client: str, client_seq: int, payload: Any) -> Tuple:
    """The signed portion of a client update."""
    return ("client-update", client, client_seq, digest(payload))


def sign_client_update(
    crypto: CryptoProvider, client: str, client_seq: int, payload: Any
) -> ClientUpdate:
    """Create a signed client update (used by proxies/HMIs)."""
    signature = crypto.sign(client, client_update_body(client, client_seq, payload))
    return ClientUpdate(client, client_seq, payload, signature)


def verify_client_update(crypto: CryptoProvider, update: ClientUpdate) -> bool:
    if update.signature is None:
        return False
    if update.signature.signer != update.client:
        return False
    body = client_update_body(update.client, update.client_seq, update.payload)
    return crypto.verify(update.signature, body)


def verify_client_updates_batch(
    crypto: CryptoProvider, updates: Tuple[ClientUpdate, ...]
) -> Tuple[bool, ...]:
    """Batch-verify client-update signatures via ``crypto.verify_batch``.

    Updates with a missing or mis-attributed signature are rejected
    up-front without entering the batch; the rest verify in one provider
    call. Semantics match :func:`verify_client_update` element-wise.
    """
    verdicts = [False] * len(updates)
    positions = []
    signatures = []
    bodies = []
    for i, update in enumerate(updates):
        if update.signature is None or update.signature.signer != update.client:
            continue
        positions.append(i)
        signatures.append(update.signature)
        bodies.append(
            client_update_body(update.client, update.client_seq, update.payload)
        )
    if positions:
        for i, ok in zip(positions, crypto.verify_batch(signatures, bodies)):
            verdicts[i] = ok
    return tuple(verdicts)
