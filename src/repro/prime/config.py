"""Prime protocol parameters.

Prime (Amir, Coan, Kirsch, Lane: "Prime: Byzantine Replication Under
Attack") is the replication engine under Spire. It provides *bounded
delay*: even a correct-looking but malicious leader cannot delay ordering
beyond a bound derived from actual network round-trip times, because
replicas monitor the leader's turnaround time (TAT) and replace it.

The constants here are expressed in virtual milliseconds. Two presets are
provided matching the paper's two environments (LAN testbed, wide-area
deployment).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Tuple

__all__ = ["PrimeConfig", "lan_prime_config", "wan_prime_config"]


@dataclass(frozen=True)
class PrimeConfig:
    """Static configuration shared by all replicas of one Prime instance."""

    replicas: Tuple[str, ...]
    num_faults: int = 1          # f: maximum simultaneous intrusions
    num_recovering: int = 1      # k: replicas that may be down for rejuvenation

    # --- timers (virtual ms) -------------------------------------------
    batch_interval_ms: float = 2.0        # client updates -> PO-Request batching
    summary_interval_ms: float = 10.0     # PO-summary broadcast period
    pre_prepare_interval_ms: float = 20.0 # leader proposal period
    ping_interval_ms: float = 200.0       # RTT measurement period
    tat_check_interval_ms: float = 25.0   # suspect-leader evaluation period
    recon_interval_ms: float = 40.0       # reconciliation/retransmission period
    view_change_timeout_ms: float = 800.0 # expect NewView within this after VC
    # --- suspect-leader parameters --------------------------------------
    tat_latency_factor: float = 3.0       # K_lat: multiplier on achievable TAT
    tat_slack_ms: float = 15.0            # additive slack against jitter
    tat_floor_ms: float = 40.0            # never suspect below this TAT
    rtt_ewma_alpha: float = 0.2           # smoothing for RTT estimates
    # --- batching / flow control ----------------------------------------
    batch_max_updates: int = 64           # max client updates per PO-Request
    recon_window: int = 32                # max updates resent per peer per round
    # --- batched delivery ------------------------------------------------
    # When True, ordered updates are delivered in per-PO-Request batches
    # carrying one threshold signature over a Merkle root (see
    # repro.core.batching); slot digests switch to the v2 encoding so the
    # two formats can never collide. Default off: the per-update path.
    delivery_batching: bool = False
    # --- checkpointing ---------------------------------------------------
    checkpoint_interval_seqs: int = 50    # global seqs between checkpoints
    # --- view-change hardening (default off: bit-identical traces) ------
    # Retransmit our pending ViewChange/NewView every this many ms while a
    # view change is in progress (0 disables). A lossy network can eat the
    # one-shot broadcasts and leave the cluster wedged until the cascade
    # timer fires; retransmission converges within the same view instead.
    vc_retransmit_ms: float = 0.0
    # When True, a state transfer only adopts a higher view once f+1
    # replicas claim it (single-reply adoption trusts one possibly-lying
    # peer), and replicas seeing f+1 higher-view messages proactively
    # request state instead of stalling in a dead view.
    strict_view_adoption: bool = False

    def __post_init__(self) -> None:
        needed = 3 * self.num_faults + 2 * self.num_recovering + 1
        if len(self.replicas) < needed:
            raise ValueError(
                f"{len(self.replicas)} replicas cannot tolerate "
                f"f={self.num_faults}, k={self.num_recovering}; "
                f"need n >= 3f+2k+1 = {needed}"
            )
        if len(set(self.replicas)) != len(self.replicas):
            raise ValueError("replica names must be unique")

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Total number of replicas."""
        return len(self.replicas)

    @property
    def quorum(self) -> int:
        """Ordering/pre-ordering quorum: 2f + k + 1."""
        return 2 * self.num_faults + self.num_recovering + 1

    @property
    def signing_threshold(self) -> int:
        """Threshold-signature shares needed at proxies: f + 1.

        Any f+1 shares include at least one correct replica, and correct
        replicas only sign updates they executed through the agreed order.
        """
        return self.num_faults + 1

    def leader_of_view(self, view: int) -> str:
        """Rotating leader assignment."""
        return self.replicas[view % self.n]

    def index_of(self, replica: str) -> int:
        return self.replicas.index(replica)

    def with_replicas(self, replicas: Tuple[str, ...]) -> "PrimeConfig":
        return replace(self, replicas=tuple(replicas))


def lan_prime_config(replicas: Tuple[str, ...], f: int = 1, k: int = 1) -> PrimeConfig:
    """Aggressive timers for a sub-millisecond LAN."""
    return PrimeConfig(
        replicas=tuple(replicas),
        num_faults=f,
        num_recovering=k,
        batch_interval_ms=1.0,
        summary_interval_ms=5.0,
        pre_prepare_interval_ms=10.0,
        tat_check_interval_ms=15.0,
        tat_floor_ms=25.0,
        recon_interval_ms=25.0,
    )


def wan_prime_config(replicas: Tuple[str, ...], f: int = 1, k: int = 1) -> PrimeConfig:
    """Timers for a wide-area deployment with ~5-25 ms one-way links."""
    return PrimeConfig(
        replicas=tuple(replicas),
        num_faults=f,
        num_recovering=k,
    )
