"""Recovery stage: checkpoints, reconciliation, and state transfer.

Everything that lets a replica that missed data — through loss, lag, or a
proactive recovery — converge back onto the agreed state:

* *checkpoint glue*: cut a full snapshot every checkpoint interval,
  broadcast its digest, and garbage-collect below stable checkpoints;
* *reconciliation*: pull certified pre-order data that an ordered slot
  needs (and push it to peers whose summaries show them behind), plus
  ordered-certificate catch-up for whole missing slots;
* *state transfer*: request / serve / install stable checkpoints with
  quorum proofs, with bounded-backoff retries under the shared
  :class:`~repro.replication.retry.RetryPolicy`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Tuple

from ..crypto.encoding import digest
from ..obs import EV_CHECKPOINT_STABLE, EV_NEW_VIEW, EV_RECOVERY_DONE
from ..replication.quorum import collect_valid_voters
from .messages import (
    CheckpointMsg,
    Commit,
    OrderedReply,
    OrderedRequest,
    PoAck,
    PoRequest,
    Prepare,
    PrePrepare,
    ReconReply,
    ReconRequest,
    SignedMessage,
    StateReply,
    StateRequest,
)
from .ordering import slot_digest
from .state import OrderingSlot

if TYPE_CHECKING:  # pragma: no cover
    from .node import PrimeNode

__all__ = ["RecoveryStage"]


class RecoveryStage:
    """Checkpoint/reconciliation/state-transfer behaviour for one replica."""

    def __init__(self, node: "PrimeNode") -> None:
        self.node = node

    # ------------------------------------------------------------------
    # Checkpoints
    # ------------------------------------------------------------------
    def full_snapshot(self) -> Dict[str, Any]:
        node = self.node
        return {
            "app": node.app.snapshot(),
            "origins": {o: st.executed_upto for o, st in node.origins.items()
                        if st.executed_upto > 0},
            "clients": node.client_dedup.snapshot(),
            "executed_counter": node.executed_counter,
            "last_seq": node.last_executed_seq,
        }

    def make_checkpoint(self, seq: int) -> None:
        node = self.node
        snapshot = self.full_snapshot()
        state_digest = node.checkpoints.record_own(seq, snapshot)
        node._broadcast(CheckpointMsg(node.name, seq, state_digest))

    def on_checkpoint(self, signed: SignedMessage, msg: CheckpointMsg) -> None:
        node = self.node
        stable = node.checkpoints.add_vote(signed, msg)
        if stable is not None:
            node.obs.event(node.name, EV_CHECKPOINT_STABLE, seq=stable)
            self.garbage_collect(stable)

    def garbage_collect(self, stable_seq: int) -> None:
        # Keep one checkpoint window of ordered slots below the stable
        # checkpoint so modestly-lagging replicas can catch up by ordered
        # certificates instead of a full state transfer.
        node = self.node
        horizon = stable_seq - node.config.checkpoint_interval_seqs
        for seq in [s for s in node.slots if s <= horizon]:
            del node.slots[seq]
        for state in node.origins.values():
            state.garbage_collect(state.executed_upto)
        node.view_manager.garbage_collect(node.view)

    # ------------------------------------------------------------------
    # Reconciliation
    # ------------------------------------------------------------------
    def request_recon(
        self, missing: List[Tuple[str, int]], slot: OrderingSlot
    ) -> None:
        """Pull certified pre-order data we lack from replicas that claim it."""
        node = self.node
        _, _, pre_prepare, _ = slot.ordered
        claimants: Dict[str, List[str]] = {}
        for entry in pre_prepare.payload.matrix:
            vector = dict(entry.payload.vector)
            for origin, po_seq in missing:
                if vector.get(origin, 0) >= po_seq:
                    claimants.setdefault(origin, []).append(entry.payload.sender)
        by_origin: Dict[str, List[int]] = {}
        for origin, po_seq in missing:
            by_origin.setdefault(origin, []).append(po_seq)
        for origin, seqs in by_origin.items():
            peers = [p for p in claimants.get(origin, []) if p != node.name]
            if not peers:
                peers = [p for p in node.config.replicas if p != node.name]
            peer = peers[node._recon_rotor % len(peers)]
            node._recon_rotor += 1
            node._send_to(
                peer, ReconRequest(node.name, origin, min(seqs), max(seqs))
            )

    def on_recon_request(self, signed: SignedMessage, msg: ReconRequest) -> None:
        node = self.node
        state = node.origins.get(msg.origin)
        if state is None:
            return
        upper = min(msg.to_seq, msg.from_seq + node.config.recon_window - 1)
        for po_seq in range(msg.from_seq, upper + 1):
            cert = state.certs.get(po_seq)
            request = state.requests.get(po_seq)
            if cert is not None and request is not None:
                _, proof = cert
                node._send_to(msg.sender, ReconReply(node.name, request, proof))

    def on_recon_reply(self, signed: SignedMessage, msg: ReconReply) -> None:
        node = self.node
        request_signed = msg.request
        request = request_signed.payload
        if not isinstance(request, PoRequest):
            return
        owner = request.origin.split("#", 1)[0]
        if request_signed.signature.signer != owner or owner not in node.config.replicas:
            return
        if not node.verify_signed(request_signed):
            return
        content_digest = digest(request)
        senders = collect_valid_voters(
            msg.acks,
            membership=node.config.replicas,
            verify_signed=node.verify_signed,
            expected_kind=PoAck,
            check=lambda ack: (
                ack.origin == request.origin
                and ack.po_seq == request.po_seq
                and ack.digest == content_digest
            ),
            strict=True,
        )
        if senders is None or len(senders) < node.config.quorum:
            return
        state = node._origin_state(request.origin)
        if request.po_seq <= state.executed_upto or request.po_seq in state.certs:
            return
        state.requests[request.po_seq] = request_signed
        state.digests[request.po_seq] = content_digest
        state.certs[request.po_seq] = (content_digest, tuple(msg.acks))
        if state.advance_certified():
            node._summary_dirty = True
        node._try_execute()

    def recon_tick(self) -> None:
        node = self.node
        if node.awaiting_state:
            return
        # Behind the garbage-collection horizon and unable to make ordering
        # progress: the slots we need may no longer exist anywhere, so fall
        # back to state transfer. (Being merely one checkpoint behind is
        # normal transient lag — those slots are still retained.)
        head = node.slots.get(node.last_executed_seq + 1)
        horizon = node.checkpoints.stable_seq - node.config.checkpoint_interval_seqs
        if horizon > node.last_executed_seq and (
            head is None or not head.is_ordered
        ):
            node.awaiting_state = True
            self.request_state()
            return
        # Laggard rejoin (strict adoption only): f+1 distinct peers sending
        # higher-view messages (ordering traffic or suspects) prove the
        # cluster moved past us — at least one of them is honest. We missed
        # the NewView, our old-view messages are being ignored, and no
        # amount of reconciliation will fix that: pull state (and the
        # adopted view, claimed by f+1 StateReplies) instead of stalling.
        # Applies equally to a replica wedged in_view_change for a view the
        # cluster has already left behind.
        if node.config.strict_view_adoption:
            ahead = sum(
                1 for v in node._higher_view_seen.values() if v > node.view
            )
            if ahead >= node.config.num_faults + 1:
                node._higher_view_seen.clear()
                node.awaiting_state = True
                self.request_state()
                return
        self.retransmit_own_requests()
        self.push_recon()
        self.ordering_catchup()

    def retransmit_own_requests(self) -> None:
        node = self.node
        state = node.origins.get(node.origin_id)
        if state is None or state.certified_upto >= node._own_po_seq:
            return
        upper = min(
            state.certified_upto + node.config.recon_window, node._own_po_seq
        )
        peers = [p for p in node.config.replicas if p != node.name]
        for po_seq in range(state.certified_upto + 1, upper + 1):
            stored = state.requests.get(po_seq)
            if stored is not None:
                node.runtime.resend(
                    stored, peers=peers, size_bytes=node._size_of(stored.payload)
                )

    def push_recon(self, push_window: int = 8) -> None:
        """Push certified data to peers whose summaries show them behind."""
        node = self.node
        for peer, summary in node._latest_summaries.items():
            if peer == node.name:
                continue
            their = dict(summary.payload.vector)
            for origin, state in node.origins.items():
                theirs = their.get(origin, 0)
                if state.certified_upto <= theirs:
                    continue
                upper = min(theirs + push_window, state.certified_upto)
                for po_seq in range(theirs + 1, upper + 1):
                    cert = state.certs.get(po_seq)
                    request = state.requests.get(po_seq)
                    if cert is not None and request is not None:
                        node._send_to(peer, ReconReply(node.name, request, cert[1]))

    def ordering_catchup(self) -> None:
        node = self.node
        next_seq = node.last_executed_seq + 1
        have_later = any(
            s.seq > next_seq and s.is_ordered for s in node.slots.values()
        )
        slot = node.slots.get(next_seq)
        if slot is not None and slot.is_ordered:
            node._try_execute()
            return
        if have_later:
            # fetch a whole window of missing slots, spread across peers,
            # so a replica many slots behind catches up quickly
            peers = [p for p in node.config.replicas if p != node.name]
            highest_ordered = max(
                (s.seq for s in node.slots.values() if s.is_ordered),
                default=next_seq,
            )
            upper = min(next_seq + 16, highest_ordered)
            for seq in range(next_seq, upper + 1):
                # NB: rebinds ``slot`` — the vote rebroadcast below then
                # refers to the tail of the fetch window, not the head.
                slot = node.slots.get(seq)
                if slot is not None and slot.is_ordered:
                    continue
                peer = peers[node._recon_rotor % len(peers)]
                node._recon_rotor += 1
                node._send_to(peer, OrderedRequest(node.name, seq))
        # re-broadcast our votes for the head slot to overcome loss
        if slot is not None and not slot.is_ordered:
            own_pp = slot.pre_prepares.get(node.view)
            if (
                own_pp is not None
                and own_pp.payload.leader == node.name
            ):
                node.runtime.resend(
                    own_pp, size_bytes=node._size_of(own_pp.payload)
                )
            if slot.committed_vote is not None:
                view, vote_digest = slot.committed_vote
                node._broadcast(
                    Commit(node.name, view, slot.seq, vote_digest),
                    include_self=False,
                )
            elif slot.prepared_vote is not None:
                view, vote_digest = slot.prepared_vote
                node._broadcast(
                    Prepare(node.name, view, slot.seq, vote_digest),
                    include_self=False,
                )

    def on_ordered_request(self, signed: SignedMessage, msg: OrderedRequest) -> None:
        node = self.node
        slot = node.slots.get(msg.seq)
        if slot is None or not slot.is_ordered:
            return
        view, _, pre_prepare, proof = slot.ordered
        node._send_to(msg.sender, OrderedReply(node.name, msg.seq, pre_prepare, proof))

    def on_ordered_reply(self, signed: SignedMessage, msg: OrderedReply) -> None:
        node = self.node
        if msg.seq <= node.checkpoints.stable_seq or msg.seq <= node.last_executed_seq:
            return
        slot = node._slot(msg.seq)
        if slot.is_ordered:
            return
        pp_signed = msg.pre_prepare
        pp = pp_signed.payload
        if not isinstance(pp, PrePrepare) or pp.seq != msg.seq:
            return
        if pp.leader != node.config.leader_of_view(pp.view):
            return
        if pp_signed.signature.signer != pp.leader or not node.verify_signed(pp_signed):
            return
        if not node.ordering.validate_matrix(pp.matrix):
            return
        proposal_digest = slot_digest(msg.seq, pp.matrix, node.digest_version)
        senders = collect_valid_voters(
            msg.commits,
            membership=node.config.replicas,
            verify_signed=node.verify_signed,
            expected_kind=Commit,
            check=lambda commit: (
                commit.view == pp.view
                and commit.seq == msg.seq
                and commit.digest == proposal_digest
            ),
            strict=True,
        )
        if senders is None or len(senders) < node.config.quorum:
            return
        slot.pre_prepares[pp.view] = pp_signed
        slot.ordered = (pp.view, proposal_digest, pp_signed, tuple(msg.commits))
        if slot.prepared_cert is None or slot.prepared_cert[0] < pp.view:
            slot.prepared_cert = (pp.view, proposal_digest)
            slot.prepared_proof = tuple(msg.commits)
        node._try_execute()

    # ------------------------------------------------------------------
    # State transfer
    # ------------------------------------------------------------------
    def request_state(self) -> None:
        node = self.node
        node._broadcast(StateRequest(node.name), include_self=False)
        self.arm_state_retry()

    def arm_state_retry(self) -> None:
        """Schedule the next state-transfer retry under the backoff policy."""
        node = self.node
        if node._state_retry_timer is not None:
            node._state_retry_timer.cancel()
        delay = node._state_retry_policy.delay_ms(
            node._state_retry_attempts,
            node.simulator.rng(f"state-retry/{node.name}"),
        )
        node._state_retry_attempts += 1
        node._state_retry_timer = node.set_timer(delay, node._state_retry_tick)

    def reset_state_retry(self) -> None:
        node = self.node
        node._state_retry_attempts = 0
        if node._state_retry_timer is not None:
            node._state_retry_timer.cancel()
            node._state_retry_timer = None

    def state_retry_tick(self) -> None:
        node = self.node
        node._state_retry_timer = None
        if node.awaiting_state:
            self.request_state()
        else:
            self.reset_state_retry()

    def on_state_request(self, signed: SignedMessage, msg: StateRequest) -> None:
        node = self.node
        if node.awaiting_state:
            return
        serveable = node.checkpoints.best_serveable()
        if serveable is not None:
            seq, snapshot, proof = serveable
            reply = StateReply(node.name, seq, snapshot, proof, node.view)
        else:
            reply = StateReply(node.name, 0, None, (), node.view)
        node._send_to(msg.sender, reply)

    def _maybe_adopt_claimed_view(self) -> None:
        """Adopt the highest view that f+1 distinct StateReplies claim.

        Strict-adoption replacement for trusting a single reply's ``view``
        field: any set of f+1 claimants contains an honest replica, so the
        (f+1)-th largest claim is a view some honest replica truly holds.
        """
        node = self.node
        claims = sorted(node._state_view_claims.values(), reverse=True)
        if len(claims) < node.config.num_faults + 1:
            return
        candidate = claims[node.config.num_faults]
        if candidate <= node.view:
            return
        node.view = candidate
        node.in_view_change = False
        node.monitor.reset_for_new_view()
        node._last_proposed_key = None
        node.view_manager.highest_vc_started = max(
            node.view_manager.highest_vc_started, candidate
        )
        if node.obs.enabled:
            node.obs.gauge(f"replication.view.{node.name}").set(float(candidate))
        node.obs.event(
            node.name, EV_NEW_VIEW, view=candidate, max_seq=node.last_executed_seq,
            via="state-transfer",
        )

    def on_state_reply(self, signed: SignedMessage, msg: StateReply) -> None:
        node = self.node
        if not node.awaiting_state:
            return
        if node.config.strict_view_adoption:
            node._state_view_claims[msg.sender] = msg.view
            self._maybe_adopt_claimed_view()
            # "Nothing newer than what we have" from quorum-1 peers ends a
            # transfer a laggard started for the *view*, not the data —
            # without this a replica that is ahead of every surviving
            # checkpoint would wait out the retry budget doing nothing.
            if 0 < msg.checkpoint_seq <= node.last_executed_seq:
                node._genesis_replies.add(msg.sender)
                if len(node._genesis_replies) >= node.config.quorum - 1:
                    node.awaiting_state = False
                    node._genesis_replies.clear()
                    node._state_view_claims.clear()
                    self.reset_state_retry()
                    node.obs.event(
                        node.name, EV_RECOVERY_DONE, seq=node.last_executed_seq,
                    )
                return
        if msg.checkpoint_seq == 0:
            # "No checkpoint anywhere" is only believable from a quorum —
            # a single early genesis reply must not end recovery while
            # other replicas hold a real checkpoint.
            if node.last_executed_seq == 0:
                node._genesis_replies.add(msg.sender)
                if len(node._genesis_replies) >= node.config.quorum - 1:
                    node.awaiting_state = False
                    node._genesis_replies.clear()
                    self.reset_state_retry()
                    node.obs.event(node.name, EV_RECOVERY_DONE, seq=0)
            return
        if msg.checkpoint_seq <= node.last_executed_seq:
            return
        state_digest = digest(msg.snapshot)
        if not node.checkpoints.verify_proof(
            msg.checkpoint_seq, state_digest, msg.proof, node.verify_signed
        ):
            return
        self.install_snapshot(msg, state_digest)

    def install_snapshot(self, msg: StateReply, state_digest: str) -> None:
        node = self.node
        snapshot = msg.snapshot
        node.app.restore(snapshot["app"])
        node.client_dedup.restore(snapshot["clients"])
        node.executed_counter = int(snapshot["executed_counter"])
        node.last_executed_seq = int(msg.checkpoint_seq)
        for origin, upto in dict(snapshot["origins"]).items():
            state = node._origin_state(origin)
            if state.executed_upto < upto:
                state.executed_upto = upto
                state.certified_upto = max(state.certified_upto, upto)
                state.garbage_collect(upto)
            # certificates collected while the transfer was in flight may
            # extend contiguously past the installed frontier
            state.advance_certified()
        node.checkpoints.adopt_stable(msg.checkpoint_seq, state_digest, msg.proof)
        node.checkpoints.record_own(msg.checkpoint_seq, snapshot)
        for seq in [s for s in node.slots if s <= msg.checkpoint_seq]:
            del node.slots[seq]
        if msg.view > node.view:
            if node.config.strict_view_adoption:
                # Views are adopted only from f+1 matching claims (see
                # _maybe_adopt_claimed_view) — one lying replica serving a
                # genuine old checkpoint must not drag us to a fake view.
                self._maybe_adopt_claimed_view()
            else:
                node.view = msg.view
                node.in_view_change = False
        node.awaiting_state = False
        node._state_view_claims.clear()
        self.reset_state_retry()
        node._summary_dirty = True
        node.obs.event(node.name, EV_RECOVERY_DONE, seq=msg.checkpoint_seq)
        node._try_execute()
