"""Transport abstraction: how replicas reach each other and their clients.

In the paper, all Spire traffic — replica-to-replica Prime messages and
replica-to-proxy update delivery — flows over the Spines overlay. Tests
and LAN scenarios can instead use the raw simulated network. Both are
hidden behind the two-method :class:`Transport` interface.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from ..simnet import Process
from ..spines.overlay import OverlayStack

__all__ = ["Transport", "DirectTransport", "OverlayTransport"]


class Transport:
    """Minimal send/unwrap interface used by protocol nodes."""

    def send(self, dst: str, payload: Any, size_bytes: int = 256) -> bool:
        raise NotImplementedError

    def unwrap(self, message: Any) -> Optional[Tuple[str, Any]]:
        """Extract (source, payload) from an incoming raw message, or None
        if the message does not belong to this transport."""
        raise NotImplementedError


class DirectTransport(Transport):
    """Point-to-point delivery over the raw simulated network."""

    def __init__(self, process: Process) -> None:
        self._process = process

    def send(self, dst: str, payload: Any, size_bytes: int = 256) -> bool:
        return self._process.send(dst, payload, size_bytes)

    def unwrap(self, message: Any) -> Optional[Tuple[str, Any]]:
        return None  # raw network messages arrive with src already split out


class OverlayTransport(Transport):
    """Delivery via a Spines overlay stack."""

    def __init__(self, stack: OverlayStack) -> None:
        self._stack = stack

    def send(self, dst: str, payload: Any, size_bytes: int = 256) -> bool:
        return self._stack.send(dst, payload, size_bytes=size_bytes)

    def unwrap(self, message: Any) -> Optional[Tuple[str, Any]]:
        return OverlayStack.unwrap(message)
