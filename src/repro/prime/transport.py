"""Transport and retry primitives (compatibility re-exports).

The transport stack and retry policy now live in
:mod:`repro.replication` — they are protocol-agnostic and shared with the
PBFT baseline and the client/proxy resubmission paths. This module
remains so existing imports (``repro.prime.transport``) keep working; new
code should import from :mod:`repro.replication` directly.
"""

from __future__ import annotations

from ..replication.retry import RetryPolicy, RetrySchedule
from ..replication.transport import DirectTransport, OverlayTransport, Transport

__all__ = [
    "Transport",
    "DirectTransport",
    "OverlayTransport",
    "RetryPolicy",
    "RetrySchedule",
]
