"""Transport abstraction: how replicas reach each other and their clients.

In the paper, all Spire traffic — replica-to-replica Prime messages and
replica-to-proxy update delivery — flows over the Spines overlay. Tests
and LAN scenarios can instead use the raw simulated network. Both are
hidden behind the two-method :class:`Transport` interface.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Optional, Tuple

from ..simnet import Process
from ..spines.overlay import OverlayStack

__all__ = ["Transport", "DirectTransport", "OverlayTransport", "RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with jitter for resend paths.

    Replaces fixed-interval retries: the delay for attempt ``i`` grows as
    ``base_ms * factor**i`` up to ``max_ms``, with a multiplicative jitter
    in ``[1, 1 + jitter_frac)`` drawn from the caller's RNG stream (so
    simulated retries stay deterministic per seed). After ``max_attempts``
    the delay stays pinned at the cap — retries never stop entirely,
    because a replica that gives up on state transfer is lost forever, but
    their rate is bounded so a partitioned replica cannot flood the
    network on rejoin.
    """

    base_ms: float = 100.0
    factor: float = 2.0
    max_ms: float = 4000.0
    max_attempts: int = 8
    jitter_frac: float = 0.25

    def __post_init__(self) -> None:
        if self.base_ms <= 0 or self.factor < 1.0 or self.max_ms < self.base_ms:
            raise ValueError("invalid retry policy parameters")

    def delay_ms(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        """Backoff delay before retry number ``attempt`` (0-based)."""
        exponent = min(attempt, self.max_attempts)
        delay = min(self.max_ms, self.base_ms * self.factor ** exponent)
        if rng is not None and self.jitter_frac > 0.0:
            delay *= 1.0 + self.jitter_frac * rng.random()
        return delay

    def capped(self, attempt: int) -> bool:
        """True once the backoff has reached its bounded ceiling."""
        return attempt >= self.max_attempts


class Transport:
    """Minimal send/unwrap interface used by protocol nodes."""

    def send(self, dst: str, payload: Any, size_bytes: int = 256) -> bool:
        raise NotImplementedError

    def unwrap(self, message: Any) -> Optional[Tuple[str, Any]]:
        """Extract (source, payload) from an incoming raw message, or None
        if the message does not belong to this transport."""
        raise NotImplementedError


class _SendCounters:
    """Shared observability wiring for transports.

    Counters are resolved once at construction; when observability is
    disabled (or no ``obs`` is given) sends pay only a None test.
    """

    _sent = None
    _sent_bytes = None

    def _bind_obs(self, obs, prefix: str) -> None:
        if obs is not None and getattr(obs, "enabled", False):
            self._sent = obs.counter(f"{prefix}.sent")
            self._sent_bytes = obs.counter(f"{prefix}.sent_bytes")

    def _count_send(self, size_bytes: int) -> None:
        if self._sent is not None:
            self._sent.inc()
            self._sent_bytes.inc(size_bytes)


class DirectTransport(_SendCounters, Transport):
    """Point-to-point delivery over the raw simulated network."""

    def __init__(self, process: Process, obs=None) -> None:
        self._process = process
        self._bind_obs(obs, "prime.transport.direct")

    def send(self, dst: str, payload: Any, size_bytes: int = 256) -> bool:
        self._count_send(size_bytes)
        return self._process.send(dst, payload, size_bytes)

    def unwrap(self, message: Any) -> Optional[Tuple[str, Any]]:
        return None  # raw network messages arrive with src already split out


class OverlayTransport(_SendCounters, Transport):
    """Delivery via a Spines overlay stack."""

    def __init__(self, stack: OverlayStack, obs=None) -> None:
        self._stack = stack
        self._bind_obs(obs, "prime.transport.overlay")

    def send(self, dst: str, payload: Any, size_bytes: int = 256) -> bool:
        self._count_send(size_bytes)
        return self._stack.send(dst, payload, size_bytes=size_bytes)

    def unwrap(self, message: Any) -> Optional[Tuple[str, Any]]:
        return OverlayStack.unwrap(message)
