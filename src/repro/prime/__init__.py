"""Prime: Byzantine fault-tolerant replication with bounded delay under
attack — the replication engine of Spire (reimplementation).

Public API: :class:`PrimeConfig` (+ LAN/WAN presets), :class:`PrimeNode`,
the application interface (:class:`ReplicatedApplication` and sample apps),
client-update helpers, transports, and all wire messages.
"""

from .app import KeyValueApp, LoggingApp, NullApp, ReplicatedApplication
from .checkpoint import CheckpointManager
from .config import PrimeConfig, lan_prime_config, wan_prime_config
from .messages import (
    CheckpointMsg,
    ClientUpdate,
    Commit,
    NewView,
    OrderedReply,
    OrderedRequest,
    Ping,
    PoAck,
    Pong,
    PoRequest,
    PoSummary,
    Prepare,
    PreparedEntry,
    PrePrepare,
    ReconReply,
    ReconRequest,
    SignedMessage,
    StateReply,
    StateRequest,
    Suspect,
    ViewChange,
)
from .node import PrimeNode, client_update_body, sign_client_update, verify_client_update
from .state import OrderingSlot, OriginState
from .suspect import SuspectMonitor
from .transport import DirectTransport, OverlayTransport, Transport
from .viewchange import ViewChangeManager

__all__ = [
    "KeyValueApp",
    "LoggingApp",
    "NullApp",
    "ReplicatedApplication",
    "CheckpointManager",
    "PrimeConfig",
    "lan_prime_config",
    "wan_prime_config",
    "CheckpointMsg",
    "ClientUpdate",
    "Commit",
    "NewView",
    "OrderedReply",
    "OrderedRequest",
    "Ping",
    "PoAck",
    "Pong",
    "PoRequest",
    "PoSummary",
    "Prepare",
    "PreparedEntry",
    "PrePrepare",
    "ReconReply",
    "ReconRequest",
    "SignedMessage",
    "StateReply",
    "StateRequest",
    "Suspect",
    "ViewChange",
    "PrimeNode",
    "client_update_body",
    "sign_client_update",
    "verify_client_update",
    "OrderingSlot",
    "OriginState",
    "SuspectMonitor",
    "DirectTransport",
    "OverlayTransport",
    "Transport",
    "ViewChangeManager",
]
