"""Checkpointing, garbage collection, and state transfer.

Replicas checkpoint every ``checkpoint_interval_seqs`` ordered slots. A
checkpoint becomes *stable* when ``2f + k + 1`` replicas have signed the
same state digest for the same sequence number; everything at or below a
stable checkpoint is garbage-collected. Stable checkpoints (with their
quorum proof) are also what proactively-recovered replicas install during
state transfer — a recovering replica accepts a snapshot only with a valid
quorum proof whose digest matches the snapshot, so ≤ f compromised replicas
cannot feed it a corrupt state.

Vote collection and proof verification ride on the shared
:mod:`repro.replication.quorum` primitives; the checkpoint-specific
policy (snapshot retention, serveability, stability transitions) lives
here.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from ..crypto.encoding import digest
from ..replication.quorum import QuorumTracker, collect_valid_voters
from .config import PrimeConfig
from .messages import CheckpointMsg, SignedMessage

__all__ = ["CheckpointManager"]


class CheckpointManager:
    """Checkpoint state for one replica."""

    def __init__(self, config: PrimeConfig) -> None:
        self.config = config
        #: votes: seq -> state_digest -> sender -> signed CheckpointMsg
        self._votes = QuorumTracker()
        #: our own snapshots by seq (bounded: last two checkpoints)
        self._snapshots: Dict[int, Any] = {}
        self._own_digests: Dict[int, str] = {}
        self.stable_seq: int = 0
        self.stable_digest: Optional[str] = None
        self.stable_proof: Tuple[SignedMessage, ...] = ()
        #: recent proven checkpoints: seq -> (digest, proof); lets a replica
        #: that lags the newest stable checkpoint still serve an older one
        self._proven: Dict[int, Tuple[str, Tuple[SignedMessage, ...]]] = {}

    # ------------------------------------------------------------------
    def record_own(self, seq: int, snapshot: Any) -> str:
        """Store our snapshot at ``seq``; returns its state digest."""
        state_digest = digest(snapshot)
        self._snapshots[seq] = snapshot
        self._own_digests[seq] = state_digest
        for old in sorted(self._snapshots):
            if len(self._snapshots) <= 2:
                break
            del self._snapshots[old]
            self._own_digests.pop(old, None)
        return state_digest

    def add_vote(self, signed: SignedMessage, msg: CheckpointMsg) -> Optional[int]:
        """Record a checkpoint vote; returns the seq if it became stable."""
        if msg.seq <= self.stable_seq:
            return None
        self._votes.add(msg.seq, msg.state_digest, msg.sender, signed)
        proof = self._votes.certificate(msg.seq, msg.state_digest, self.config.quorum)
        if proof is not None:
            self.stable_seq = msg.seq
            self.stable_digest = msg.state_digest
            self.stable_proof = proof
            self._remember_proven(msg.seq, msg.state_digest, self.stable_proof)
            self._votes.drop_upto(msg.seq)
            return msg.seq
        return None

    def _remember_proven(
        self, seq: int, state_digest: str, proof: Tuple[SignedMessage, ...]
    ) -> None:
        self._proven[seq] = (state_digest, proof)
        for old in sorted(self._proven)[:-4]:
            del self._proven[old]

    def snapshot_at(self, seq: int) -> Optional[Any]:
        return self._snapshots.get(seq)

    def stable_snapshot(self) -> Optional[Any]:
        """Our snapshot matching the stable checkpoint, if we have one."""
        if self.stable_digest is None:
            return None
        snapshot = self._snapshots.get(self.stable_seq)
        if snapshot is None:
            return None
        if self._own_digests.get(self.stable_seq) != self.stable_digest:
            return None  # we diverged; never serve a non-matching snapshot
        return snapshot

    def best_serveable(self) -> Optional[Tuple[int, Any, Tuple[SignedMessage, ...]]]:
        """The newest proven checkpoint we hold a matching snapshot for —
        what we answer StateRequests with. A replica that is itself
        catching up can still serve the older checkpoint it installed."""
        for seq in sorted(self._proven, reverse=True):
            state_digest, proof = self._proven[seq]
            snapshot = self._snapshots.get(seq)
            if snapshot is not None and self._own_digests.get(seq) == state_digest:
                return seq, snapshot, proof
        return None

    # ------------------------------------------------------------------
    def verify_proof(
        self,
        seq: int,
        state_digest: str,
        proof: Tuple[SignedMessage, ...],
        verify_signed,
    ) -> bool:
        """Check a quorum proof that (seq, digest) is a stable checkpoint.

        ``verify_signed`` is the node's envelope verifier (signature +
        sender-is-replica check). One invalid vote rejects the proof — its
        sender vouched for the whole set.
        """
        if seq == 0:
            return True
        voters = collect_valid_voters(
            proof,
            membership=self.config.replicas,
            verify_signed=verify_signed,
            expected_kind=CheckpointMsg,
            check=lambda p: p.seq == seq and p.state_digest == state_digest,
            strict=True,
        )
        return voters is not None and len(voters) >= self.config.quorum

    def adopt_stable(
        self, seq: int, state_digest: str, proof: Tuple[SignedMessage, ...]
    ) -> None:
        """Adopt an externally proven stable checkpoint (state transfer)."""
        self._remember_proven(seq, state_digest, proof)
        if seq <= self.stable_seq:
            return
        self.stable_seq = seq
        self.stable_digest = state_digest
        self.stable_proof = proof
        self._votes.drop_upto(seq)

    def reset(self) -> None:
        """Wipe all volatile checkpoint state (replica recovery)."""
        self._votes.clear()
        self._snapshots.clear()
        self._own_digests.clear()
        self._proven.clear()
        self.stable_seq = 0
        self.stable_digest = None
        self.stable_proof = ()
