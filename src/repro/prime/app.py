"""Replicated-application interface executed on top of Prime.

The Spire SCADA master (``repro.core.master``) implements this interface;
the simple apps here are used by protocol tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..crypto.encoding import digest
from .messages import ClientUpdate

__all__ = ["ReplicatedApplication", "NullApp", "KeyValueApp", "LoggingApp"]


class ReplicatedApplication:
    """State machine interface; all methods must be deterministic."""

    def execute(self, update: ClientUpdate, order_index: int) -> Any:
        """Apply one agreed update; ``order_index`` is its global position."""
        raise NotImplementedError

    def snapshot(self) -> Any:
        """Return a canonical-encodable snapshot of the full state."""
        raise NotImplementedError

    def restore(self, snapshot: Any) -> None:
        """Replace state with a snapshot produced by :meth:`snapshot`."""
        raise NotImplementedError

    def state_digest(self) -> str:
        """Digest of current state (used in checkpoints)."""
        return digest(self.snapshot())


class NullApp(ReplicatedApplication):
    """Discards updates; tracks only how many were executed."""

    def __init__(self) -> None:
        self.executed = 0

    def execute(self, update: ClientUpdate, order_index: int) -> Any:
        self.executed += 1
        return None

    def snapshot(self) -> Any:
        return self.executed

    def restore(self, snapshot: Any) -> None:
        self.executed = int(snapshot)


class KeyValueApp(ReplicatedApplication):
    """A tiny key-value store: payloads are ("set", key, value) / ("get", key)."""

    def __init__(self) -> None:
        self.data: Dict[str, Any] = {}

    def execute(self, update: ClientUpdate, order_index: int) -> Any:
        payload = update.payload
        if not isinstance(payload, tuple) or not payload:
            return ("error", "malformed")
        op = payload[0]
        if op == "set" and len(payload) == 3:
            self.data[payload[1]] = payload[2]
            return ("ok", payload[1])
        if op == "get" and len(payload) == 2:
            return ("value", self.data.get(payload[1]))
        return ("error", "unknown-op")

    def snapshot(self) -> Any:
        return dict(self.data)

    def restore(self, snapshot: Any) -> None:
        self.data = dict(snapshot)


class LoggingApp(ReplicatedApplication):
    """Records the exact execution order — used to assert safety
    (identical sequences across correct replicas) in tests."""

    def __init__(self) -> None:
        self.log: List[Tuple[int, str, int, Any]] = []

    def execute(self, update: ClientUpdate, order_index: int) -> Any:
        entry = (order_index, update.client, update.client_seq, update.payload)
        self.log.append(entry)
        return entry

    def snapshot(self) -> Any:
        return tuple(self.log)

    def restore(self, snapshot: Any) -> None:
        self.log = [tuple(entry) for entry in snapshot]
