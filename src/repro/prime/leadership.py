"""Leadership stage: RTT pings, TAT suspicion, and view changes.

Prime's defining defence against a *performance-degrading* leader: every
replica measures round-trip times to its peers, derives the turnaround
time a correct leader should achieve, and broadcasts ``Suspect`` when the
measured TAT exceeds the acceptable bound. ``f + 1`` suspects make every
correct replica join the accusation (amplification); a quorum starts a
view change. The view-change bookkeeping itself lives in
:class:`~repro.prime.viewchange.ViewChangeManager` (built on the shared
:mod:`repro.replication.epoch` scaffold); this stage wires it to the
node's timers, transport and observability.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Tuple

from ..obs import EV_NEW_VIEW, EV_SUSPECT, EV_VIEW_CHANGE_START
from .messages import (
    CheckpointMsg,
    NewView,
    Ping,
    Pong,
    PreparedEntry,
    SignedMessage,
    Suspect,
    ViewChange,
)

if TYPE_CHECKING:  # pragma: no cover
    from .node import PrimeNode

__all__ = ["LeadershipStage"]


class LeadershipStage:
    """Suspect-monitoring and view-change behaviour for one replica."""

    def __init__(self, node: "PrimeNode") -> None:
        self.node = node

    # ------------------------------------------------------------------
    # Pings / TAT / suspicion
    # ------------------------------------------------------------------
    def ping_tick(self) -> None:
        node = self.node
        node._ping_nonce += 1
        ping = Ping(node.name, node._ping_nonce, node.simulator.now)
        node._broadcast(ping, include_self=False)
        node.monitor.record_rtt(node.name, 0.0)

    def on_ping(self, signed: SignedMessage, msg: Ping) -> None:
        node = self.node
        node._send_to(msg.sender, Pong(node.name, msg.nonce, msg.sent_at))

    def on_pong(self, signed: SignedMessage, msg: Pong) -> None:
        node = self.node
        rtt = node.simulator.now - msg.sent_at
        if rtt >= 0:
            node.monitor.record_rtt(msg.sender, rtt)

    def tat_tick(self) -> None:
        node = self.node
        if node.in_view_change or node.awaiting_state:
            return
        if node.view in node.view_manager.sent_suspect_for:
            return
        reason = node.monitor.should_suspect(node.simulator.now)
        if reason is not None:
            self.send_suspect(reason)

    def send_suspect(self, reason: str) -> None:
        node = self.node
        node.view_manager.note_own_suspect(node.view)
        node.obs.event(node.name, EV_SUSPECT, view=node.view, reason=reason)
        node._broadcast(Suspect(node.name, node.view, reason))

    def on_suspect(self, signed: SignedMessage, msg: Suspect) -> None:
        node = self.node
        if msg.view > node.view:
            # A peer suspecting a view ahead of ours has *installed* that
            # view — evidence for laggard rejoin that keeps flowing even
            # while ordering is stalled on a dead leader.
            node.note_higher_view(msg.sender, msg.view)
        amplify, view_change = node.view_manager.add_suspect(signed, msg, node.view)
        if amplify:
            self.send_suspect("amplified")
        if view_change and msg.view >= node.view:
            self.initiate_view_change(msg.view + 1)

    # ------------------------------------------------------------------
    # View changes
    # ------------------------------------------------------------------
    def initiate_view_change(self, new_view: int) -> None:
        node = self.node
        if new_view <= node.view_manager.highest_vc_started or new_view <= 0:
            return
        if new_view <= node.view and not node.in_view_change:
            return
        node.view_manager.highest_vc_started = new_view
        node.view = new_view
        node.in_view_change = True
        node.monitor.reset_for_new_view()
        node._last_proposed_key = None
        node.obs.event(node.name, EV_VIEW_CHANGE_START, view=new_view)
        prepared = []
        for seq in sorted(node.slots):
            slot = node.slots[seq]
            if seq <= node.checkpoints.stable_seq:
                continue
            cert = slot.prepared_cert
            if cert is None:
                continue
            view, cert_digest = cert
            pp_signed = slot.pre_prepares.get(view)
            proof = getattr(slot, "prepared_proof", None)
            if pp_signed is None or proof is None:
                continue
            prepared.append(
                PreparedEntry(seq, view, cert_digest, pp_signed, tuple(proof))
            )
        vc = ViewChange(
            node.name,
            new_view,
            node.checkpoints.stable_seq,
            node.checkpoints.stable_proof,
            tuple(prepared),
        )
        node._last_vc_sent = vc
        node._broadcast(vc)
        if node.obs.enabled:
            node.obs.counter(
                f"replication.view_changes_total.{node.name}").inc()
            node.obs.gauge(f"replication.view.{node.name}").set(float(new_view))
        if node._vc_timer is not None:
            node._vc_timer.cancel()
        node._vc_timer = node.set_timer(
            node.config.view_change_timeout_ms, node._view_change_timeout, new_view
        )
        self._arm_vc_retransmit()

    def _arm_vc_retransmit(self) -> None:
        """Schedule periodic rebroadcast of our pending VC/NewView.

        Off by default (``vc_retransmit_ms == 0``): the one-shot broadcast
        is the bit-identical legacy behaviour. With hardening on, a lossy
        network can no longer wedge the view change by eating the single
        ViewChange or NewView message — the next retransmission converges
        within the same view instead of waiting out the cascade timer.
        """
        node = self.node
        if node.config.vc_retransmit_ms <= 0:
            return
        if node._vc_retrans_timer is not None:
            node._vc_retrans_timer.cancel()
        node._vc_retrans_timer = node.set_timer(
            node.config.vc_retransmit_ms, node._vc_retransmit_tick
        )

    def vc_retransmit_tick(self) -> None:
        node = self.node
        node._vc_retrans_timer = None
        if not node.in_view_change or node.awaiting_state:
            return
        vc = node._last_vc_sent
        if vc is not None and vc.new_view == node.view:
            node._broadcast(vc)
        nv = node._last_nv_sent
        if nv is not None and nv.view == node.view:
            node._broadcast(nv)
        self._arm_vc_retransmit()

    def view_change_timeout(self, expected_view: int) -> None:
        node = self.node
        if node.in_view_change and node.view == expected_view:
            if node.view not in node.view_manager.sent_suspect_for:
                self.send_suspect("new-view-timeout")

    def verify_checkpoint_proof(
        self, seq: int, proof: Tuple[SignedMessage, ...]
    ) -> bool:
        node = self.node
        digests = {
            p.payload.state_digest
            for p in proof
            if isinstance(p.payload, CheckpointMsg)
        }
        if len(digests) != 1:
            return False
        return node.checkpoints.verify_proof(
            seq, next(iter(digests)), proof, node.verify_signed
        )

    def on_view_change(self, signed: SignedMessage, msg: ViewChange) -> None:
        node = self.node
        if msg.new_view < node.view:
            return
        if not node.view_manager.validate_view_change(
            signed, msg, node.verify_signed, self.verify_checkpoint_proof
        ):
            return
        count = node.view_manager.add_view_change(signed, msg)
        # Join a view change others already started.
        if (
            msg.new_view > node.view
            and count >= node.config.num_faults + 1
        ):
            self.initiate_view_change(msg.new_view)
        if (
            node.config.leader_of_view(msg.new_view) == node.name
            and count >= node.config.quorum
            and msg.new_view not in node.view_manager.sent_new_view_for
            and msg.new_view >= node.view
        ):
            built = node.view_manager.build_new_view(msg.new_view, node.sign_message)
            if built is not None:
                nv, _ = built
                node._last_nv_sent = nv
                node._broadcast(nv)

    def on_new_view(self, signed: SignedMessage, msg: NewView) -> None:
        node = self.node
        if msg.view < node.view or (msg.view == node.view and not node.in_view_change):
            return
        verified = node.view_manager.verify_new_view(
            signed, msg, node.verify_signed, self.verify_checkpoint_proof
        )
        if verified is None:
            return
        pre_prepares, start_seq, max_seq = verified
        self.install_new_view(msg.view, pre_prepares, max_seq)

    def install_new_view(
        self, view: int, pre_prepares: List[SignedMessage], max_seq: int
    ) -> None:
        node = self.node
        node.view = view
        node.in_view_change = False
        node.monitor.reset_for_new_view()
        node._min_fresh_seq = max_seq + 1
        node._next_seq = max(node._next_seq, max_seq + 1)
        node._last_proposed_key = None
        if node._vc_timer is not None:
            node._vc_timer.cancel()
            node._vc_timer = None
        if node._vc_retrans_timer is not None:
            node._vc_retrans_timer.cancel()
            node._vc_retrans_timer = None
        node._last_vc_sent = None
        node._last_nv_sent = None
        node._higher_view_seen.clear()
        if node.obs.enabled:
            node.obs.gauge(f"replication.view.{node.name}").set(float(view))
        node.obs.event(node.name, EV_NEW_VIEW, view=view, max_seq=max_seq)
        for pp_signed in pre_prepares:
            node.ordering.on_pre_prepare(pp_signed, pp_signed.payload, from_new_view=True)
        node.view_manager.garbage_collect(view)
