"""View changes: replacing a suspected leader while preserving safety.

The flow is PBFT-style, adapted to Prime's matrix proposals:

1. Replicas that detect a TAT violation broadcast ``Suspect(view)``.
   ``f + 1`` suspects make everyone join (amplification); ``2f + k + 1``
   suspects start a view change to ``view + 1``.
2. Each replica broadcasts a signed ``ViewChange`` carrying its stable
   checkpoint (with quorum proof) and every prepared proposal above it
   (with its prepare certificate).
3. The new leader assembles ``2f + k + 1`` valid ViewChanges and derives —
   deterministically — the re-proposals: for every sequence number above
   the highest proven checkpoint, the prepared entry with the highest view
   wins; gaps become empty (no-op) proposals. It broadcasts a ``NewView``
   containing the ViewChanges and the re-issued pre-prepares.
4. Every replica re-runs the same derivation on the embedded ViewChanges
   and accepts the NewView only if the leader's re-proposals match, so a
   Byzantine new leader cannot rewrite history.

If the new leader stalls, the view-change timeout fires and replicas
suspect it in turn, cascading to the next view.

The per-epoch vote tables are shared
:class:`~repro.replication.epoch.EpochVoteTable` instances and the
re-proposal derivation delegates to
:func:`~repro.replication.epoch.derive_reproposals`; Prime keeps only
its validation rules and NewView construction here.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..replication.epoch import EpochVoteTable, derive_reproposals
from ..replication.quorum import collect_valid_voters
from .config import PrimeConfig
from .ordering import slot_digest
from .messages import (
    Commit,
    NewView,
    Prepare,
    PreparedEntry,
    PrePrepare,
    SignedMessage,
    Suspect,
    ViewChange,
)

__all__ = ["ViewChangeManager"]


class ViewChangeManager:
    """Suspect/ViewChange/NewView bookkeeping for one replica.

    The manager is deliberately node-agnostic: the owning ``PrimeNode``
    passes in verification helpers and reacts to the returned decisions,
    which keeps this logic unit-testable without a network.
    """

    def __init__(self, config: PrimeConfig, name: str) -> None:
        self.config = config
        self.name = name
        #: view -> sender -> signed Suspect
        self.suspects = EpochVoteTable()
        #: new_view -> sender -> signed ViewChange
        self.view_changes = EpochVoteTable()
        self.sent_suspect_for: set = set()
        self.sent_new_view_for: set = set()
        self.highest_vc_started: int = 0

    # ------------------------------------------------------------------
    # Suspects
    # ------------------------------------------------------------------
    def add_suspect(self, signed: SignedMessage, msg: Suspect, current_view: int
                    ) -> Tuple[bool, bool]:
        """Record a suspect. Returns (should_amplify, should_view_change).

        should_amplify: f+1 distinct suspects for our current view and we
        have not accused it ourselves yet.
        should_view_change: a quorum suspects view >= current_view.
        """
        if msg.view < current_view:
            return (False, False)
        count = self.suspects.record(msg.view, msg.sender, signed)
        amplify = (
            msg.view == current_view
            and count >= self.config.num_faults + 1
            and current_view not in self.sent_suspect_for
        )
        view_change = count >= self.config.quorum
        return (amplify, view_change)

    def note_own_suspect(self, view: int) -> None:
        self.sent_suspect_for.add(view)

    # ------------------------------------------------------------------
    # ViewChange validation
    # ------------------------------------------------------------------
    def validate_view_change(
        self, signed: SignedMessage, vc: ViewChange, verify_signed, verify_checkpoint
    ) -> bool:
        """Full validation of a ViewChange message.

        ``verify_signed(signed) -> bool`` checks an envelope signature and
        that the signer is a replica; ``verify_checkpoint(seq, proof) ->
        bool`` checks a checkpoint quorum proof.
        """
        if vc.sender != signed.signature.signer:
            return False
        if vc.sender not in self.config.replicas:
            return False
        if vc.checkpoint_seq > 0 and not verify_checkpoint(
            vc.checkpoint_seq, vc.checkpoint_proof
        ):
            return False
        seen_seqs = set()
        for entry in vc.prepared:
            if entry.seq in seen_seqs:
                return False
            seen_seqs.add(entry.seq)
            if not self._validate_prepared_entry(entry, verify_signed):
                return False
        return True

    def _validate_prepared_entry(self, entry: PreparedEntry, verify_signed) -> bool:
        pp_signed = entry.pre_prepare
        pp = pp_signed.payload
        if not isinstance(pp, PrePrepare):
            return False
        if pp.seq != entry.seq or pp.view != entry.view:
            return False
        if pp.leader != self.config.leader_of_view(pp.view):
            return False
        if pp_signed.signature.signer != pp.leader:
            return False
        if not verify_signed(pp_signed):
            return False
        # Bind the claimed digest to the pre-prepare content: without this
        # a Byzantine replica could pair an honestly-prepared digest (and
        # its genuine certificate) with a *different* matrix, and the
        # re-proposal derivation — which reads the matrix, not the digest —
        # would rewrite history.
        version = 2 if self.config.delivery_batching else 1
        if slot_digest(entry.seq, pp.matrix, version) != entry.digest:
            return False
        # Prepare certificate: quorum of distinct replicas vouching
        # (view, seq, digest); the leader's pre-prepare counts as one.
        # Lenient scan: appended garbage must not invalidate honest votes.
        voters = collect_valid_voters(
            entry.proof,
            membership=self.config.replicas,
            verify_signed=verify_signed,
            expected_kind=(Prepare, Commit),
            check=lambda p: (
                p.view == entry.view
                and p.seq == entry.seq
                and p.digest == entry.digest
            ),
            strict=False,
            initial=(pp.leader,),
        )
        return voters is not None and len(voters) >= self.config.quorum

    def add_view_change(self, signed: SignedMessage, vc: ViewChange) -> int:
        """Store a validated ViewChange; returns the count for its view."""
        return self.view_changes.record(vc.new_view, vc.sender, signed)

    # ------------------------------------------------------------------
    # NewView construction / verification
    # ------------------------------------------------------------------
    @staticmethod
    def derive_re_proposals(
        view_changes: List[ViewChange],
    ) -> Tuple[int, List[Tuple[int, Tuple[SignedMessage, ...]]]]:
        """Deterministically derive re-proposals from a ViewChange set.

        Returns (start_seq, [(seq, matrix), ...]) where matrices for gap
        sequences are empty tuples (no-ops).
        """
        return derive_reproposals(
            view_changes,
            anchor_of=lambda vc: vc.checkpoint_seq,
            entries_of=lambda vc: vc.prepared,
            content_of=lambda entry: entry.pre_prepare.payload.matrix,
            empty=(),
        )

    def build_new_view(
        self, view: int, sign_pre_prepare
    ) -> Optional[Tuple[NewView, int]]:
        """Assemble a NewView from stored ViewChanges (new leader only).

        ``sign_pre_prepare(PrePrepare) -> SignedMessage``. Returns
        (new_view_message, max_seq) or None if below quorum.
        """
        if self.view_changes.count(view) < self.config.quorum:
            return None
        chosen = self.view_changes.chosen(view, self.config.quorum)
        vcs = [signed.payload for signed in chosen]
        start_seq, proposals = self.derive_re_proposals(vcs)
        pre_prepares = tuple(
            sign_pre_prepare(PrePrepare(self.name, view, seq, matrix))
            for seq, matrix in proposals
        )
        max_seq = proposals[-1][0] if proposals else start_seq
        nv = NewView(self.name, view, tuple(chosen), pre_prepares)
        self.sent_new_view_for.add(view)
        return nv, max_seq

    def verify_new_view(
        self, signed: SignedMessage, nv: NewView, verify_signed, verify_checkpoint
    ) -> Optional[Tuple[List[SignedMessage], int, int]]:
        """Verify a NewView end-to-end.

        Returns (signed re-proposals, start_seq, max_seq) when valid,
        else None.
        """
        if nv.leader != self.config.leader_of_view(nv.view):
            return None
        if signed.signature.signer != nv.leader:
            return None
        senders = set()
        payloads = []
        for vc_signed in nv.view_changes:
            vc = vc_signed.payload
            if not isinstance(vc, ViewChange) or vc.new_view != nv.view:
                return None
            if not verify_signed(vc_signed):
                return None
            if not self.validate_view_change(
                vc_signed, vc, verify_signed, verify_checkpoint
            ):
                return None
            senders.add(vc.sender)
            payloads.append(vc)
        if len(senders) < self.config.quorum:
            return None
        start_seq, expected = self.derive_re_proposals(payloads)
        if len(expected) != len(nv.pre_prepares):
            return None
        for (seq, matrix), pp_signed in zip(expected, nv.pre_prepares):
            pp = pp_signed.payload
            if not isinstance(pp, PrePrepare):
                return None
            if pp.leader != nv.leader or pp.view != nv.view or pp.seq != seq:
                return None
            if pp.matrix != matrix:
                return None
            if pp_signed.signature.signer != nv.leader:
                return None
            if not verify_signed(pp_signed):
                return None
        max_seq = expected[-1][0] if expected else start_seq
        return list(nv.pre_prepares), start_seq, max_seq

    # ------------------------------------------------------------------
    def garbage_collect(self, below_view: int) -> None:
        self.suspects.drop_below(below_view)
        self.view_changes.drop_below(below_view)
