"""Pre-ordering stage: batching, PO-Request/Ack certificates, summaries.

The first stage of the Prime pipeline (DESIGN.md §1.2 and §8): an origin
replica batches client updates into ``PoRequest``s on its own pre-order
sequence, every replica acknowledges what it holds, and a quorum of
matching acks forms a *pre-order certificate*. Certified frontiers are
gossiped as cumulative ``PoSummary`` vectors, which both feed the
leader's proposal matrix and drive the turnaround-time measurement that
keeps a malicious leader honest.

The stage is mounted on a :class:`~repro.prime.node.PrimeNode`; protocol
state lives on the node (it is shared with the other stages and is part
of the node's test/instrumentation surface), the behaviour lives here.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

from ..crypto.encoding import digest
from ..obs import EV_EQUIVOCATION
from ..replication.quorum import assemble_certificate
from .messages import ClientUpdate, PoAck, PoRequest, PoSummary, SignedMessage, verify_client_update

if TYPE_CHECKING:  # pragma: no cover
    from .node import PrimeNode

__all__ = ["PreOrderStage"]


class PreOrderStage:
    """Client-update batching and pre-order certification for one replica."""

    def __init__(self, node: "PrimeNode") -> None:
        self.node = node

    # ------------------------------------------------------------------
    # Client updates and batching
    # ------------------------------------------------------------------
    def submit(self, update: ClientUpdate) -> bool:
        """Inject a client update at this replica (its origin)."""
        node = self.node
        if not node.is_up or node.awaiting_state:
            return False
        if not verify_client_update(node.crypto, update):
            return False
        if node.client_dedup.is_duplicate(update.client, update.client_seq):
            return False  # already executed
        node._pending_updates.append(update)
        if not node._batch_timer_set:
            node._batch_timer_set = True
            node.set_timer(node.config.batch_interval_ms, node._flush_batch)
        return True

    def flush_batch(self) -> None:
        node = self.node
        node._batch_timer_set = False
        if not node._pending_updates or node.in_view_change:
            if node._pending_updates:
                # retry after the view change settles
                node._batch_timer_set = True
                node.set_timer(node.config.batch_interval_ms, node._flush_batch)
            return
        # Sort so that per-client sequence order survives network reordering
        # between the client and this origin.
        node._pending_updates.sort(key=lambda u: (u.client, u.client_seq))
        batch = tuple(node._pending_updates[: node.config.batch_max_updates])
        del node._pending_updates[: len(batch)]
        node._own_po_seq += 1
        request = PoRequest(node.origin_id, node._own_po_seq, batch)
        node._broadcast(request)
        if node._pending_updates:
            node._batch_timer_set = True
            node.set_timer(node.config.batch_interval_ms, node._flush_batch)

    # ------------------------------------------------------------------
    # Pre-ordering
    # ------------------------------------------------------------------
    def on_po_request(self, signed: SignedMessage, msg: PoRequest) -> None:
        node = self.node
        state = node._origin_state(msg.origin)
        if msg.po_seq <= state.executed_upto:
            return
        content_digest = digest(msg)
        existing = state.digests.get(msg.po_seq)
        if existing is not None:
            if existing != content_digest:
                node.obs.event(node.name, EV_EQUIVOCATION, origin=msg.origin,
                               po_seq=msg.po_seq)
            return
        state.requests[msg.po_seq] = signed
        state.digests[msg.po_seq] = content_digest
        ack = PoAck(node.name, msg.origin, msg.po_seq, content_digest)
        node._broadcast(ack)
        self.check_po_cert(state, msg.po_seq)

    def on_po_ack(self, signed: SignedMessage, msg: PoAck) -> None:
        state = self.node._origin_state(msg.origin)
        if msg.po_seq <= state.executed_upto or msg.po_seq in state.certs:
            return
        by_digest = state.acks.setdefault(msg.po_seq, {})
        by_digest.setdefault(msg.digest, {})[msg.sender] = signed
        self.check_po_cert(state, msg.po_seq)

    def check_po_cert(self, state, po_seq: int) -> None:
        """Complete a pre-order certificate when quorum acks match our copy."""
        node = self.node
        if po_seq in state.certs:
            return
        our_digest = state.digests.get(po_seq)
        if our_digest is None:
            return
        senders = state.acks.get(po_seq, {}).get(our_digest, {})
        if len(senders) >= node.config.quorum:
            proof = assemble_certificate(senders, node.config.quorum)
            state.certs[po_seq] = (our_digest, proof)
            if state.advance_certified():
                node._summary_dirty = True
            node._try_execute()

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def current_vector(self) -> Tuple[Tuple[str, int], ...]:
        return tuple(sorted(
            (origin, st.certified_upto)
            for origin, st in self.node.origins.items()
            if st.certified_upto > 0
        ))

    def summary_tick(self) -> None:
        node = self.node
        keepalive = 10 * node.config.summary_interval_ms
        if not node._summary_dirty and (
            node.simulator.now - node._last_summary_sent < keepalive
        ):
            return
        dirty = node._summary_dirty
        node._summary_dirty = False
        node._last_summary_sent = node.simulator.now
        node._own_summary_seq += 1
        summary = PoSummary(
            node.name, node._own_summary_seq, self.current_vector(),
            node.checkpoints.stable_seq, node._recoveries,
        )
        node._broadcast(summary)
        if dirty:
            node.monitor.note_summary_sent(node._own_summary_seq, node.simulator.now)

    def on_po_summary(self, signed: SignedMessage, msg: PoSummary) -> None:
        node = self.node
        latest = node._latest_summaries.get(msg.sender)
        if latest is None or (
            (latest.payload.epoch, latest.payload.summary_seq)
            < (msg.epoch, msg.summary_seq)
        ):
            node._latest_summaries[msg.sender] = signed
        # Fell behind the garbage-collection horizon: the ordered slots we
        # still need may no longer exist anywhere, so state-transfer. Trust
        # the signal only when f+1 distinct replicas claim it (a lone
        # Byzantine replica must not be able to stall us in fake recovery).
        if not node.awaiting_state:
            horizon = node.config.checkpoint_interval_seqs + node.last_executed_seq
            claimants = sum(
                1 for entry in node._latest_summaries.values()
                if entry.payload.stable_seq > horizon
            )
            if claimants >= node.config.num_faults + 1:
                node.awaiting_state = True
                node._request_state()
