"""The Prime replica.

One :class:`PrimeNode` implements the full protocol stack described in
DESIGN.md §1.2: pre-ordering (PO-Request / PO-Ack / PO-Summary), ordering
(Pre-Prepare / Prepare / Commit over summary matrices), suspect-leader
monitoring (:mod:`repro.prime.suspect`), view changes
(:mod:`repro.prime.viewchange`), checkpointing and state transfer
(:mod:`repro.prime.checkpoint`), and reconciliation (push/pull of certified
pre-order data so message loss and recoveries cannot stall execution).

Execution model: a pre-prepare carries a *matrix* of signed PO-summaries.
Once ordered, the matrix defines, per origin stream, a coverage cutoff —
the quorum-th largest acknowledged po_seq — and every update at or below
the cutoff that has not yet executed is executed in deterministic order
(origin streams sorted lexicographically, then by po_seq). Because the
cutoff computation and the certified content are both fixed by quorums,
all correct replicas execute the same sequence of client updates.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..crypto.encoding import digest
from ..crypto.provider import CryptoProvider, Signature
from ..obs import (
    EV_CHECKPOINT_STABLE,
    EV_EQUIVOCATION,
    EV_NEW_VIEW,
    EV_RECOVERY_DONE,
    EV_RECOVERY_START,
    EV_SUSPECT,
    EV_VIEW_CHANGE_START,
    Observability,
    resolve_obs,
)
from ..simnet import Network, Process, Simulator, Trace
from .app import ReplicatedApplication
from .checkpoint import CheckpointManager
from .config import PrimeConfig
from .messages import (
    CheckpointMsg,
    ClientUpdate,
    Commit,
    NewView,
    OrderedReply,
    OrderedRequest,
    Ping,
    PoAck,
    Pong,
    PoRequest,
    PoSummary,
    Prepare,
    PreparedEntry,
    PrePrepare,
    ReconReply,
    ReconRequest,
    SignedMessage,
    StateReply,
    StateRequest,
    Suspect,
    ViewChange,
)
from .dedup import ClientDedup
from .state import OrderingSlot, OriginState
from .suspect import SuspectMonitor
from .transport import DirectTransport, RetryPolicy, Transport
from .viewchange import ViewChangeManager

__all__ = ["PrimeNode", "sign_client_update", "verify_client_update", "client_update_body"]


def client_update_body(client: str, client_seq: int, payload: Any) -> Tuple:
    """The signed portion of a client update."""
    return ("client-update", client, client_seq, digest(payload))


def sign_client_update(
    crypto: CryptoProvider, client: str, client_seq: int, payload: Any
) -> ClientUpdate:
    """Create a signed client update (used by proxies/HMIs)."""
    signature = crypto.sign(client, client_update_body(client, client_seq, payload))
    return ClientUpdate(client, client_seq, payload, signature)


def verify_client_update(crypto: CryptoProvider, update: ClientUpdate) -> bool:
    if update.signature is None:
        return False
    if update.signature.signer != update.client:
        return False
    body = client_update_body(update.client, update.client_seq, update.payload)
    return crypto.verify(update.signature, body)


#: rough wire sizes (bytes) per message type, for bandwidth modelling
_BASE_SIZES = {
    "PoRequest": 300,
    "PoAck": 120,
    "PoSummary": 200,
    "PrePrepare": 400,
    "Prepare": 120,
    "Commit": 120,
    "Suspect": 120,
    "ViewChange": 800,
    "NewView": 2000,
    "CheckpointMsg": 150,
    "Ping": 80,
    "Pong": 80,
    "ReconRequest": 100,
    "ReconReply": 700,
    "OrderedRequest": 100,
    "OrderedReply": 900,
    "StateRequest": 80,
    "StateReply": 2000,
}


class PrimeNode(Process):
    """One Prime replica process."""

    def __init__(
        self,
        name: str,
        simulator: Simulator,
        network: Network,
        config: PrimeConfig,
        crypto: CryptoProvider,
        app: ReplicatedApplication,
        trace: Optional[Trace] = None,
        transport: Optional[Transport] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        super().__init__(name, simulator, network)
        if name not in config.replicas:
            raise ValueError(f"{name} is not in the replica set")
        self.config = config
        self.crypto = crypto
        self.app = app
        self.trace = trace
        self.obs = resolve_obs(obs, trace)
        # Per-message-kind profiling instruments, resolved lazily so the
        # registry is consulted once per kind, not once per message.
        self._handler_timing: Dict[type, Any] = {}
        self._handler_counts: Dict[type, Any] = {}
        self.transport: Transport = transport or DirectTransport(self, obs=self.obs)
        # State-transfer requests back off exponentially (with jitter) so a
        # recovering replica behind a lossy or partitioned link does not
        # flood the network with fixed-rate rebroadcasts.
        self._state_retry_policy = RetryPolicy(
            base_ms=config.recon_interval_ms * 2,
            factor=2.0,
            max_ms=max(config.view_change_timeout_ms, config.recon_interval_ms * 2),
            max_attempts=6,
        )
        self._genesis = app.snapshot()
        self._recoveries = 0
        self.execution_listeners: List[Callable[[ClientUpdate, int, Any], None]] = []
        self._init_protocol_state()
        self._started = False

    # ------------------------------------------------------------------
    # State (re)initialisation
    # ------------------------------------------------------------------
    def _init_protocol_state(self) -> None:
        self.view = 0
        self.in_view_change = False
        self.awaiting_state = False
        self.origin_id = f"{self.name}#{self._recoveries}"
        self.origins: Dict[str, OriginState] = {}
        self.slots: Dict[int, OrderingSlot] = {}
        self.last_executed_seq = 0
        self.executed_counter = 0
        self.client_dedup = ClientDedup()
        self.monitor = SuspectMonitor(self.config, self.name)
        self.view_manager = ViewChangeManager(self.config, self.name)
        self.checkpoints = CheckpointManager(self.config)
        self._pending_updates: List[ClientUpdate] = []
        self._batch_timer_set = False
        self._own_po_seq = 0
        self._latest_summaries: Dict[str, SignedMessage] = {}
        self._own_summary_seq = 0
        self._summary_dirty = False
        self._last_summary_sent = 0.0
        self._last_proposed_key: Any = None
        self._next_seq = 1
        self._min_fresh_seq = 1
        self._ping_nonce = 0
        self._recon_rotor = 0
        self._vc_timer = None
        self._genesis_replies: Set[str] = set()
        self._state_retry_attempts = 0
        self._state_retry_timer = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm the protocol timers; call once wiring is complete."""
        self._started = True
        self._start_timers()

    def _start_timers(self) -> None:
        cfg = self.config
        self.every(cfg.summary_interval_ms, self._summary_tick, jitter=1.0)
        self.every(cfg.pre_prepare_interval_ms, self._propose_tick, jitter=0.5)
        self.every(cfg.ping_interval_ms, self._ping_tick, jitter=5.0)
        self.every(cfg.tat_check_interval_ms, self._tat_tick, jitter=1.0)
        self.every(cfg.recon_interval_ms, self._recon_tick, jitter=2.0)
        self.set_timer(1.0, self._ping_tick)  # fast RTT warm-up

    def on_recover(self) -> None:
        """Proactive recovery: volatile state is gone; rebuild from peers."""
        self._recoveries += 1
        self.app.restore(self._genesis)
        self._init_protocol_state()
        self.awaiting_state = True
        self.obs.event(self.name, EV_RECOVERY_START, epoch=self._recoveries)
        if self._started:
            self._start_timers()
            self._request_state()

    # ------------------------------------------------------------------
    # Helpers: signing, dispatch, sizes
    # ------------------------------------------------------------------
    def sign_message(self, payload: Any) -> SignedMessage:
        return SignedMessage(payload, self.crypto.sign(self.name, payload))

    def verify_signed(self, signed: SignedMessage) -> bool:
        return self.crypto.verify(signed.signature, signed.payload)

    @staticmethod
    def _size_of(payload: Any) -> int:
        return _BASE_SIZES.get(type(payload).__name__, 150)

    def _broadcast(self, payload: Any, include_self: bool = True) -> SignedMessage:
        signed = self.sign_message(payload)
        size = self._size_of(payload)
        for peer in self.config.replicas:
            if peer == self.name:
                continue
            self.transport.send(peer, signed, size_bytes=size)
        if include_self:
            self._dispatch(signed)
        return signed

    def _send_to(self, peer: str, payload: Any) -> None:
        if peer == self.name:
            return
        signed = self.sign_message(payload)
        self.transport.send(peer, signed, size_bytes=self._size_of(payload))

    # ------------------------------------------------------------------
    # Message entry point
    # ------------------------------------------------------------------
    def on_message(self, src: str, payload: Any) -> None:
        unwrapped = self.transport.unwrap(payload)
        if unwrapped is not None:
            _, payload = unwrapped
        if isinstance(payload, SignedMessage):
            if not self.verify_signed(payload):
                return
            self._dispatch(payload)

    _EXPECTED_SENDER_FIELD = {
        PoAck: "sender", PoSummary: "sender", Prepare: "sender",
        Commit: "sender", Suspect: "sender", ViewChange: "sender",
        CheckpointMsg: "sender", Ping: "sender", Pong: "sender",
        ReconRequest: "sender", ReconReply: "sender",
        OrderedRequest: "sender", OrderedReply: "sender",
        StateRequest: "sender", StateReply: "sender",
        PrePrepare: "leader", NewView: "leader",
    }

    def _dispatch(self, signed: SignedMessage) -> None:
        payload = signed.payload
        field = self._EXPECTED_SENDER_FIELD.get(type(payload))
        if field is not None:
            claimed = getattr(payload, field)
            if claimed != signed.signature.signer or claimed not in self.config.replicas:
                return
        elif isinstance(payload, PoRequest):
            owner = payload.origin.split("#", 1)[0]
            if owner != signed.signature.signer or owner not in self.config.replicas:
                return
        kind = type(payload)
        handler = self._HANDLERS.get(kind)
        if handler is None:
            return
        if not self.obs.enabled:
            handler(self, signed, payload)
            return
        counter = self._handler_counts.get(kind)
        if counter is None:
            counter = self.obs.counter(f"prime.msgs.{kind.__name__}")
            self._handler_counts[kind] = counter
            self._handler_timing[kind] = self.obs.histogram(
                f"prime.handler.{kind.__name__}.wall_ms", deterministic=False
            )
        counter.inc()
        started = perf_counter()
        handler(self, signed, payload)
        self._handler_timing[kind].observe((perf_counter() - started) * 1000.0)

    # ------------------------------------------------------------------
    # Client updates and batching
    # ------------------------------------------------------------------
    def submit(self, update: ClientUpdate) -> bool:
        """Inject a client update at this replica (its origin)."""
        if not self.is_up or self.awaiting_state:
            return False
        if not verify_client_update(self.crypto, update):
            return False
        if self.client_dedup.is_duplicate(update.client, update.client_seq):
            return False  # already executed
        self._pending_updates.append(update)
        if not self._batch_timer_set:
            self._batch_timer_set = True
            self.set_timer(self.config.batch_interval_ms, self._flush_batch)
        return True

    def _flush_batch(self) -> None:
        self._batch_timer_set = False
        if not self._pending_updates or self.in_view_change:
            if self._pending_updates:
                # retry after the view change settles
                self._batch_timer_set = True
                self.set_timer(self.config.batch_interval_ms, self._flush_batch)
            return
        # Sort so that per-client sequence order survives network reordering
        # between the client and this origin.
        self._pending_updates.sort(key=lambda u: (u.client, u.client_seq))
        batch = tuple(self._pending_updates[: self.config.batch_max_updates])
        del self._pending_updates[: len(batch)]
        self._own_po_seq += 1
        request = PoRequest(self.origin_id, self._own_po_seq, batch)
        self._broadcast(request)
        if self._pending_updates:
            self._batch_timer_set = True
            self.set_timer(self.config.batch_interval_ms, self._flush_batch)

    # ------------------------------------------------------------------
    # Pre-ordering
    # ------------------------------------------------------------------
    def _origin_state(self, origin: str) -> OriginState:
        state = self.origins.get(origin)
        if state is None:
            state = OriginState(origin)
            self.origins[origin] = state
        return state

    def _on_po_request(self, signed: SignedMessage, msg: PoRequest) -> None:
        state = self._origin_state(msg.origin)
        if msg.po_seq <= state.executed_upto:
            return
        content_digest = digest(msg)
        existing = state.digests.get(msg.po_seq)
        if existing is not None:
            if existing != content_digest:
                self.obs.event(self.name, EV_EQUIVOCATION, origin=msg.origin,
                               po_seq=msg.po_seq)
            return
        state.requests[msg.po_seq] = signed
        state.digests[msg.po_seq] = content_digest
        ack = PoAck(self.name, msg.origin, msg.po_seq, content_digest)
        self._broadcast(ack)
        self._check_po_cert(state, msg.po_seq)

    def _on_po_ack(self, signed: SignedMessage, msg: PoAck) -> None:
        state = self._origin_state(msg.origin)
        if msg.po_seq <= state.executed_upto or msg.po_seq in state.certs:
            return
        by_digest = state.acks.setdefault(msg.po_seq, {})
        by_digest.setdefault(msg.digest, {})[msg.sender] = signed
        self._check_po_cert(state, msg.po_seq)

    def _check_po_cert(self, state: OriginState, po_seq: int) -> None:
        """Complete a pre-order certificate when quorum acks match our copy."""
        if po_seq in state.certs:
            return
        our_digest = state.digests.get(po_seq)
        if our_digest is None:
            return
        senders = state.acks.get(po_seq, {}).get(our_digest, {})
        if len(senders) >= self.config.quorum:
            proof = tuple(senders[s] for s in sorted(senders))[: self.config.quorum]
            state.certs[po_seq] = (our_digest, proof)
            if state.advance_certified():
                self._summary_dirty = True
            self._try_execute()

    def _current_vector(self) -> Tuple[Tuple[str, int], ...]:
        return tuple(sorted(
            (origin, st.certified_upto)
            for origin, st in self.origins.items()
            if st.certified_upto > 0
        ))

    def _summary_tick(self) -> None:
        keepalive = 10 * self.config.summary_interval_ms
        if not self._summary_dirty and (
            self.simulator.now - self._last_summary_sent < keepalive
        ):
            return
        dirty = self._summary_dirty
        self._summary_dirty = False
        self._last_summary_sent = self.simulator.now
        self._own_summary_seq += 1
        summary = PoSummary(
            self.name, self._own_summary_seq, self._current_vector(),
            self.checkpoints.stable_seq, self._recoveries,
        )
        self._broadcast(summary)
        if dirty:
            self.monitor.note_summary_sent(self._own_summary_seq, self.simulator.now)

    def _on_po_summary(self, signed: SignedMessage, msg: PoSummary) -> None:
        latest = self._latest_summaries.get(msg.sender)
        if latest is None or (
            (latest.payload.epoch, latest.payload.summary_seq)
            < (msg.epoch, msg.summary_seq)
        ):
            self._latest_summaries[msg.sender] = signed
        # Fell behind the garbage-collection horizon: the ordered slots we
        # still need may no longer exist anywhere, so state-transfer. Trust
        # the signal only when f+1 distinct replicas claim it (a lone
        # Byzantine replica must not be able to stall us in fake recovery).
        if not self.awaiting_state:
            horizon = self.config.checkpoint_interval_seqs + self.last_executed_seq
            claimants = sum(
                1 for entry in self._latest_summaries.values()
                if entry.payload.stable_seq > horizon
            )
            if claimants >= self.config.num_faults + 1:
                self.awaiting_state = True
                self._request_state()

    # ------------------------------------------------------------------
    # Ordering: leader proposals
    # ------------------------------------------------------------------
    @property
    def is_leader(self) -> bool:
        return self.config.leader_of_view(self.view) == self.name

    def _propose_tick(self) -> None:
        if not self.is_leader or self.in_view_change or self.awaiting_state:
            return
        matrix = tuple(
            self._latest_summaries[sender]
            for sender in sorted(self._latest_summaries)
        )
        key = tuple(
            (entry.payload.sender, entry.payload.vector) for entry in matrix
        )
        if key == self._last_proposed_key:
            return
        self._last_proposed_key = key
        pre_prepare = PrePrepare(self.name, self.view, self._next_seq, matrix)
        self._next_seq += 1
        self._broadcast(pre_prepare)

    # ------------------------------------------------------------------
    # Ordering: replica side
    # ------------------------------------------------------------------
    def slot_digest(self, seq: int, matrix: Tuple[SignedMessage, ...]) -> str:
        content = tuple(
            (entry.payload.sender, entry.payload.summary_seq, entry.payload.vector)
            for entry in matrix
        )
        return digest((seq, content))

    def _validate_matrix(self, matrix: Tuple[SignedMessage, ...]) -> bool:
        seen = set()
        for entry in matrix:
            payload = entry.payload
            if not isinstance(payload, PoSummary):
                return False
            if payload.sender in seen or payload.sender not in self.config.replicas:
                return False
            if payload.sender != entry.signature.signer:
                return False
            if not self.verify_signed(entry):
                return False
            seen.add(payload.sender)
        return True

    def _slot(self, seq: int) -> OrderingSlot:
        slot = self.slots.get(seq)
        if slot is None:
            slot = OrderingSlot(seq)
            self.slots[seq] = slot
        return slot

    def _on_pre_prepare(
        self, signed: SignedMessage, msg: PrePrepare, from_new_view: bool = False
    ) -> None:
        if msg.view != self.view or (self.in_view_change and not from_new_view):
            return
        if msg.leader != self.config.leader_of_view(msg.view):
            return
        if msg.seq <= self.checkpoints.stable_seq:
            return
        if not from_new_view and msg.seq < self._min_fresh_seq:
            return
        if not self._validate_matrix(msg.matrix):
            return
        slot = self._slot(msg.seq)
        if msg.view in slot.pre_prepares:
            return  # first proposal per (view, seq) wins
        slot.pre_prepares[msg.view] = signed
        slot_digest = self.slot_digest(msg.seq, msg.matrix)
        # The leader's pre-prepare counts as its prepare vote.
        slot.prepares.setdefault((msg.view, slot_digest), {})[msg.leader] = signed
        # Turnaround-time sample: did this proposal include our summary
        # (from our *current* incarnation)?
        if msg.leader == self.config.leader_of_view(self.view):
            own_seq = 0
            for entry in msg.matrix:
                if (
                    entry.payload.sender == self.name
                    and entry.payload.epoch == self._recoveries
                ):
                    own_seq = max(own_seq, entry.payload.summary_seq)
            if own_seq:
                self.monitor.note_pre_prepare(own_seq, self.simulator.now)
        if slot.prepared_vote is None or slot.prepared_vote[0] < msg.view:
            slot.prepared_vote = (msg.view, slot_digest)
            self._broadcast(Prepare(self.name, msg.view, msg.seq, slot_digest))
        self._check_prepared(slot, msg.view, slot_digest)
        self._check_ordered(slot, msg.view, slot_digest)

    def _on_prepare(self, signed: SignedMessage, msg: Prepare) -> None:
        if msg.seq <= self.checkpoints.stable_seq:
            return
        slot = self._slot(msg.seq)
        slot.prepares.setdefault((msg.view, msg.digest), {})[msg.sender] = signed
        self._check_prepared(slot, msg.view, msg.digest)

    def _check_prepared(self, slot: OrderingSlot, view: int, slot_digest: str) -> None:
        voters = slot.prepares.get((view, slot_digest), {})
        if len(voters) < self.config.quorum:
            return
        if slot.prepared_cert is None or slot.prepared_cert[0] <= view:
            proof = tuple(voters[s] for s in sorted(voters))[: self.config.quorum]
            slot.prepared_cert = (view, slot_digest)
            slot.prepared_proof = proof
        if (
            (slot.committed_vote is None or slot.committed_vote[0] < view)
            and slot.prepared_vote == (view, slot_digest)
        ):
            slot.committed_vote = (view, slot_digest)
            self._broadcast(Commit(self.name, view, slot.seq, slot_digest))

    def _on_commit(self, signed: SignedMessage, msg: Commit) -> None:
        if msg.seq <= self.checkpoints.stable_seq:
            return
        slot = self._slot(msg.seq)
        slot.commits.setdefault((msg.view, msg.digest), {})[msg.sender] = signed
        self._check_ordered(slot, msg.view, msg.digest)

    def _check_ordered(self, slot: OrderingSlot, view: int, slot_digest: str) -> None:
        if slot.is_ordered:
            return
        commits = slot.commits.get((view, slot_digest), {})
        if len(commits) < self.config.quorum:
            return
        pre_prepare = slot.pre_prepares.get(view)
        if pre_prepare is None:
            return
        if self.slot_digest(slot.seq, pre_prepare.payload.matrix) != slot_digest:
            return
        proof = tuple(commits[s] for s in sorted(commits))[: self.config.quorum]
        slot.ordered = (view, slot_digest, pre_prepare, proof)
        if slot.prepared_cert is None or slot.prepared_cert[0] < view:
            slot.prepared_cert = (view, slot_digest)
            slot.prepared_proof = proof
        self._try_execute()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    @staticmethod
    def coverage_cutoffs(
        matrix: Tuple[SignedMessage, ...], n: int, quorum: int
    ) -> Dict[str, int]:
        """Per-origin cutoffs: the quorum-th largest acknowledged po_seq."""
        values: Dict[str, List[int]] = {}
        rows = 0
        for entry in matrix:
            rows += 1
            for origin, upto in entry.payload.vector:
                values.setdefault(origin, []).append(upto)
        cutoffs: Dict[str, int] = {}
        for origin, reported in values.items():
            padded = reported + [0] * (n - len(reported))
            padded.sort(reverse=True)
            cutoffs[origin] = padded[quorum - 1] if len(padded) >= quorum else 0
        return cutoffs

    def _try_execute(self) -> None:
        while True:
            slot = self.slots.get(self.last_executed_seq + 1)
            if slot is None or not slot.is_ordered:
                break
            if not self._execute_slot(slot):
                break
            self.last_executed_seq += 1
            if self.last_executed_seq % self.config.checkpoint_interval_seqs == 0:
                self._make_checkpoint(self.last_executed_seq)

    def _missing_for_slot(self, slot: OrderingSlot) -> List[Tuple[str, int]]:
        _, _, pre_prepare, _ = slot.ordered
        cutoffs = self.coverage_cutoffs(
            pre_prepare.payload.matrix, self.config.n, self.config.quorum
        )
        missing = []
        for origin, cutoff in cutoffs.items():
            state = self._origin_state(origin)
            for po_seq in range(state.executed_upto + 1, cutoff + 1):
                if not (state.has_cert(po_seq) and po_seq in state.requests):
                    missing.append((origin, po_seq))
        return missing

    def _execute_slot(self, slot: OrderingSlot) -> bool:
        missing = self._missing_for_slot(slot)
        if missing:
            self._request_recon(missing, slot)
            return False
        _, _, pre_prepare, _ = slot.ordered
        cutoffs = self.coverage_cutoffs(
            pre_prepare.payload.matrix, self.config.n, self.config.quorum
        )
        for origin in sorted(cutoffs):
            state = self._origin_state(origin)
            cutoff = cutoffs[origin]
            while state.executed_upto < cutoff:
                po_seq = state.executed_upto + 1
                request = state.requests[po_seq].payload
                for update in request.updates:
                    self._execute_update(update)
                state.executed_upto = po_seq
        return True

    def _execute_update(self, update: ClientUpdate) -> None:
        if self.client_dedup.is_duplicate(update.client, update.client_seq):
            return  # at-most-once per (client, client_seq)
        if not verify_client_update(self.crypto, update):
            return  # deterministic: all replicas reject the same forgeries
        self.client_dedup.mark(update.client, update.client_seq)
        self.executed_counter += 1
        result = self.app.execute(update, self.executed_counter)
        for listener in self.execution_listeners:
            listener(update, self.executed_counter, result)

    # ------------------------------------------------------------------
    # Checkpoints
    # ------------------------------------------------------------------
    def _full_snapshot(self) -> Dict[str, Any]:
        return {
            "app": self.app.snapshot(),
            "origins": {o: st.executed_upto for o, st in self.origins.items()
                        if st.executed_upto > 0},
            "clients": self.client_dedup.snapshot(),
            "executed_counter": self.executed_counter,
            "last_seq": self.last_executed_seq,
        }

    def _make_checkpoint(self, seq: int) -> None:
        snapshot = self._full_snapshot()
        state_digest = self.checkpoints.record_own(seq, snapshot)
        self._broadcast(CheckpointMsg(self.name, seq, state_digest))

    def _on_checkpoint(self, signed: SignedMessage, msg: CheckpointMsg) -> None:
        stable = self.checkpoints.add_vote(signed, msg)
        if stable is not None:
            self.obs.event(self.name, EV_CHECKPOINT_STABLE, seq=stable)
            self._garbage_collect(stable)

    def _garbage_collect(self, stable_seq: int) -> None:
        # Keep one checkpoint window of ordered slots below the stable
        # checkpoint so modestly-lagging replicas can catch up by ordered
        # certificates instead of a full state transfer.
        horizon = stable_seq - self.config.checkpoint_interval_seqs
        for seq in [s for s in self.slots if s <= horizon]:
            del self.slots[seq]
        for state in self.origins.values():
            state.garbage_collect(state.executed_upto)
        self.view_manager.garbage_collect(self.view)

    # ------------------------------------------------------------------
    # Reconciliation
    # ------------------------------------------------------------------
    def _request_recon(
        self, missing: List[Tuple[str, int]], slot: OrderingSlot
    ) -> None:
        """Pull certified pre-order data we lack from replicas that claim it."""
        _, _, pre_prepare, _ = slot.ordered
        claimants: Dict[str, List[str]] = {}
        for entry in pre_prepare.payload.matrix:
            vector = dict(entry.payload.vector)
            for origin, po_seq in missing:
                if vector.get(origin, 0) >= po_seq:
                    claimants.setdefault(origin, []).append(entry.payload.sender)
        by_origin: Dict[str, List[int]] = {}
        for origin, po_seq in missing:
            by_origin.setdefault(origin, []).append(po_seq)
        for origin, seqs in by_origin.items():
            peers = [p for p in claimants.get(origin, []) if p != self.name]
            if not peers:
                peers = [p for p in self.config.replicas if p != self.name]
            peer = peers[self._recon_rotor % len(peers)]
            self._recon_rotor += 1
            self._send_to(
                peer, ReconRequest(self.name, origin, min(seqs), max(seqs))
            )

    def _on_recon_request(self, signed: SignedMessage, msg: ReconRequest) -> None:
        state = self.origins.get(msg.origin)
        if state is None:
            return
        upper = min(msg.to_seq, msg.from_seq + self.config.recon_window - 1)
        for po_seq in range(msg.from_seq, upper + 1):
            cert = state.certs.get(po_seq)
            request = state.requests.get(po_seq)
            if cert is not None and request is not None:
                _, proof = cert
                self._send_to(msg.sender, ReconReply(self.name, request, proof))

    def _on_recon_reply(self, signed: SignedMessage, msg: ReconReply) -> None:
        request_signed = msg.request
        request = request_signed.payload
        if not isinstance(request, PoRequest):
            return
        owner = request.origin.split("#", 1)[0]
        if request_signed.signature.signer != owner or owner not in self.config.replicas:
            return
        if not self.verify_signed(request_signed):
            return
        content_digest = digest(request)
        senders = set()
        for ack_signed in msg.acks:
            ack = ack_signed.payload
            if not isinstance(ack, PoAck):
                return
            if (
                ack.origin != request.origin
                or ack.po_seq != request.po_seq
                or ack.digest != content_digest
                or ack.sender != ack_signed.signature.signer
                or ack.sender not in self.config.replicas
            ):
                return
            if not self.verify_signed(ack_signed):
                return
            senders.add(ack.sender)
        if len(senders) < self.config.quorum:
            return
        state = self._origin_state(request.origin)
        if request.po_seq <= state.executed_upto or request.po_seq in state.certs:
            return
        state.requests[request.po_seq] = request_signed
        state.digests[request.po_seq] = content_digest
        state.certs[request.po_seq] = (content_digest, tuple(msg.acks))
        if state.advance_certified():
            self._summary_dirty = True
        self._try_execute()

    def _recon_tick(self) -> None:
        if self.awaiting_state:
            return
        # Behind the garbage-collection horizon and unable to make ordering
        # progress: the slots we need may no longer exist anywhere, so fall
        # back to state transfer. (Being merely one checkpoint behind is
        # normal transient lag — those slots are still retained.)
        head = self.slots.get(self.last_executed_seq + 1)
        horizon = self.checkpoints.stable_seq - self.config.checkpoint_interval_seqs
        if horizon > self.last_executed_seq and (
            head is None or not head.is_ordered
        ):
            self.awaiting_state = True
            self._request_state()
            return
        self._retransmit_own_requests()
        self._push_recon()
        self._ordering_catchup()

    def _retransmit_own_requests(self) -> None:
        state = self.origins.get(self.origin_id)
        if state is None or state.certified_upto >= self._own_po_seq:
            return
        upper = min(
            state.certified_upto + self.config.recon_window, self._own_po_seq
        )
        for po_seq in range(state.certified_upto + 1, upper + 1):
            stored = state.requests.get(po_seq)
            if stored is not None:
                size = self._size_of(stored.payload)
                for peer in self.config.replicas:
                    if peer != self.name:
                        self.transport.send(peer, stored, size_bytes=size)

    def _push_recon(self, push_window: int = 8) -> None:
        """Push certified data to peers whose summaries show them behind."""
        for peer, summary in self._latest_summaries.items():
            if peer == self.name:
                continue
            their = dict(summary.payload.vector)
            for origin, state in self.origins.items():
                theirs = their.get(origin, 0)
                if state.certified_upto <= theirs:
                    continue
                upper = min(theirs + push_window, state.certified_upto)
                for po_seq in range(theirs + 1, upper + 1):
                    cert = state.certs.get(po_seq)
                    request = state.requests.get(po_seq)
                    if cert is not None and request is not None:
                        self._send_to(peer, ReconReply(self.name, request, cert[1]))

    def _ordering_catchup(self) -> None:
        next_seq = self.last_executed_seq + 1
        have_later = any(
            s.seq > next_seq and s.is_ordered for s in self.slots.values()
        )
        slot = self.slots.get(next_seq)
        if slot is not None and slot.is_ordered:
            self._try_execute()
            return
        if have_later:
            # fetch a whole window of missing slots, spread across peers,
            # so a replica many slots behind catches up quickly
            peers = [p for p in self.config.replicas if p != self.name]
            highest_ordered = max(
                (s.seq for s in self.slots.values() if s.is_ordered),
                default=next_seq,
            )
            upper = min(next_seq + 16, highest_ordered)
            for seq in range(next_seq, upper + 1):
                slot = self.slots.get(seq)
                if slot is not None and slot.is_ordered:
                    continue
                peer = peers[self._recon_rotor % len(peers)]
                self._recon_rotor += 1
                self._send_to(peer, OrderedRequest(self.name, seq))
        # re-broadcast our votes for the head slot to overcome loss
        if slot is not None and not slot.is_ordered:
            own_pp = slot.pre_prepares.get(self.view)
            if (
                own_pp is not None
                and own_pp.payload.leader == self.name
            ):
                size = self._size_of(own_pp.payload)
                for peer in self.config.replicas:
                    if peer != self.name:
                        self.transport.send(peer, own_pp, size_bytes=size)
            if slot.committed_vote is not None:
                view, slot_digest = slot.committed_vote
                self._broadcast(
                    Commit(self.name, view, slot.seq, slot_digest), include_self=False
                )
            elif slot.prepared_vote is not None:
                view, slot_digest = slot.prepared_vote
                self._broadcast(
                    Prepare(self.name, view, slot.seq, slot_digest), include_self=False
                )

    def _on_ordered_request(self, signed: SignedMessage, msg: OrderedRequest) -> None:
        slot = self.slots.get(msg.seq)
        if slot is None or not slot.is_ordered:
            return
        view, slot_digest, pre_prepare, proof = slot.ordered
        self._send_to(msg.sender, OrderedReply(self.name, msg.seq, pre_prepare, proof))

    def _on_ordered_reply(self, signed: SignedMessage, msg: OrderedReply) -> None:
        if msg.seq <= self.checkpoints.stable_seq or msg.seq <= self.last_executed_seq:
            return
        slot = self._slot(msg.seq)
        if slot.is_ordered:
            return
        pp_signed = msg.pre_prepare
        pp = pp_signed.payload
        if not isinstance(pp, PrePrepare) or pp.seq != msg.seq:
            return
        if pp.leader != self.config.leader_of_view(pp.view):
            return
        if pp_signed.signature.signer != pp.leader or not self.verify_signed(pp_signed):
            return
        if not self._validate_matrix(pp.matrix):
            return
        slot_digest = self.slot_digest(msg.seq, pp.matrix)
        senders = set()
        for commit_signed in msg.commits:
            commit = commit_signed.payload
            if not isinstance(commit, Commit):
                return
            if (
                commit.view != pp.view
                or commit.seq != msg.seq
                or commit.digest != slot_digest
                or commit.sender != commit_signed.signature.signer
                or commit.sender not in self.config.replicas
            ):
                return
            if not self.verify_signed(commit_signed):
                return
            senders.add(commit.sender)
        if len(senders) < self.config.quorum:
            return
        slot.pre_prepares[pp.view] = pp_signed
        slot.ordered = (pp.view, slot_digest, pp_signed, tuple(msg.commits))
        if slot.prepared_cert is None or slot.prepared_cert[0] < pp.view:
            slot.prepared_cert = (pp.view, slot_digest)
            slot.prepared_proof = tuple(msg.commits)
        self._try_execute()

    # ------------------------------------------------------------------
    # Pings / TAT / suspicion
    # ------------------------------------------------------------------
    def _ping_tick(self) -> None:
        self._ping_nonce += 1
        ping = Ping(self.name, self._ping_nonce, self.simulator.now)
        self._broadcast(ping, include_self=False)
        self.monitor.record_rtt(self.name, 0.0)

    def _on_ping(self, signed: SignedMessage, msg: Ping) -> None:
        self._send_to(msg.sender, Pong(self.name, msg.nonce, msg.sent_at))

    def _on_pong(self, signed: SignedMessage, msg: Pong) -> None:
        rtt = self.simulator.now - msg.sent_at
        if rtt >= 0:
            self.monitor.record_rtt(msg.sender, rtt)

    def _tat_tick(self) -> None:
        if self.in_view_change or self.awaiting_state:
            return
        if self.view in self.view_manager.sent_suspect_for:
            return
        reason = self.monitor.should_suspect(self.simulator.now)
        if reason is not None:
            self._send_suspect(reason)

    def _send_suspect(self, reason: str) -> None:
        self.view_manager.note_own_suspect(self.view)
        self.obs.event(self.name, EV_SUSPECT, view=self.view, reason=reason)
        self._broadcast(Suspect(self.name, self.view, reason))

    def _on_suspect(self, signed: SignedMessage, msg: Suspect) -> None:
        amplify, view_change = self.view_manager.add_suspect(signed, msg, self.view)
        if amplify:
            self._send_suspect("amplified")
        if view_change and msg.view >= self.view:
            self._initiate_view_change(msg.view + 1)

    # ------------------------------------------------------------------
    # View changes
    # ------------------------------------------------------------------
    def _initiate_view_change(self, new_view: int) -> None:
        if new_view <= self.view_manager.highest_vc_started or new_view <= 0:
            return
        if new_view <= self.view and not self.in_view_change:
            return
        self.view_manager.highest_vc_started = new_view
        self.view = new_view
        self.in_view_change = True
        self.monitor.reset_for_new_view()
        self._last_proposed_key = None
        self.obs.event(self.name, EV_VIEW_CHANGE_START, view=new_view)
        prepared = []
        for seq in sorted(self.slots):
            slot = self.slots[seq]
            if seq <= self.checkpoints.stable_seq:
                continue
            cert = slot.prepared_cert
            if cert is None:
                continue
            view, slot_digest = cert
            pp_signed = slot.pre_prepares.get(view)
            proof = getattr(slot, "prepared_proof", None)
            if pp_signed is None or proof is None:
                continue
            prepared.append(
                PreparedEntry(seq, view, slot_digest, pp_signed, tuple(proof))
            )
        vc = ViewChange(
            self.name,
            new_view,
            self.checkpoints.stable_seq,
            self.checkpoints.stable_proof,
            tuple(prepared),
        )
        self._broadcast(vc)
        if self._vc_timer is not None:
            self._vc_timer.cancel()
        self._vc_timer = self.set_timer(
            self.config.view_change_timeout_ms, self._view_change_timeout, new_view
        )

    def _view_change_timeout(self, expected_view: int) -> None:
        if self.in_view_change and self.view == expected_view:
            if self.view not in self.view_manager.sent_suspect_for:
                self._send_suspect("new-view-timeout")

    def _verify_checkpoint_proof(self, seq: int, proof: Tuple[SignedMessage, ...]) -> bool:
        digests = {
            p.payload.state_digest
            for p in proof
            if isinstance(p.payload, CheckpointMsg)
        }
        if len(digests) != 1:
            return False
        return self.checkpoints.verify_proof(
            seq, next(iter(digests)), proof, self.verify_signed
        )

    def _on_view_change(self, signed: SignedMessage, msg: ViewChange) -> None:
        if msg.new_view < self.view:
            return
        if not self.view_manager.validate_view_change(
            signed, msg, self.verify_signed, self._verify_checkpoint_proof
        ):
            return
        count = self.view_manager.add_view_change(signed, msg)
        # Join a view change others already started.
        if (
            msg.new_view > self.view
            and count >= self.config.num_faults + 1
        ):
            self._initiate_view_change(msg.new_view)
        if (
            self.config.leader_of_view(msg.new_view) == self.name
            and count >= self.config.quorum
            and msg.new_view not in self.view_manager.sent_new_view_for
            and msg.new_view >= self.view
        ):
            built = self.view_manager.build_new_view(msg.new_view, self.sign_message)
            if built is not None:
                nv, _ = built
                self._broadcast(nv)

    def _on_new_view(self, signed: SignedMessage, msg: NewView) -> None:
        if msg.view < self.view or (msg.view == self.view and not self.in_view_change):
            return
        verified = self.view_manager.verify_new_view(
            signed, msg, self.verify_signed, self._verify_checkpoint_proof
        )
        if verified is None:
            return
        pre_prepares, start_seq, max_seq = verified
        self._install_new_view(msg.view, pre_prepares, max_seq)

    def _install_new_view(
        self, view: int, pre_prepares: List[SignedMessage], max_seq: int
    ) -> None:
        self.view = view
        self.in_view_change = False
        self.monitor.reset_for_new_view()
        self._min_fresh_seq = max_seq + 1
        self._next_seq = max(self._next_seq, max_seq + 1)
        self._last_proposed_key = None
        if self._vc_timer is not None:
            self._vc_timer.cancel()
            self._vc_timer = None
        self.obs.event(self.name, EV_NEW_VIEW, view=view, max_seq=max_seq)
        for pp_signed in pre_prepares:
            self._on_pre_prepare(pp_signed, pp_signed.payload, from_new_view=True)
        self.view_manager.garbage_collect(view)

    # ------------------------------------------------------------------
    # State transfer
    # ------------------------------------------------------------------
    def _request_state(self) -> None:
        self._broadcast(StateRequest(self.name), include_self=False)
        self._arm_state_retry()

    def _arm_state_retry(self) -> None:
        """Schedule the next state-transfer retry under the backoff policy."""
        if self._state_retry_timer is not None:
            self._state_retry_timer.cancel()
        delay = self._state_retry_policy.delay_ms(
            self._state_retry_attempts,
            self.simulator.rng(f"state-retry/{self.name}"),
        )
        self._state_retry_attempts += 1
        self._state_retry_timer = self.set_timer(delay, self._state_retry_tick)

    def _reset_state_retry(self) -> None:
        self._state_retry_attempts = 0
        if self._state_retry_timer is not None:
            self._state_retry_timer.cancel()
            self._state_retry_timer = None

    def _state_retry_tick(self) -> None:
        self._state_retry_timer = None
        if self.awaiting_state:
            self._request_state()
        else:
            self._reset_state_retry()

    def _on_state_request(self, signed: SignedMessage, msg: StateRequest) -> None:
        if self.awaiting_state:
            return
        serveable = self.checkpoints.best_serveable()
        if serveable is not None:
            seq, snapshot, proof = serveable
            reply = StateReply(self.name, seq, snapshot, proof, self.view)
        else:
            reply = StateReply(self.name, 0, None, (), self.view)
        self._send_to(msg.sender, reply)

    def _on_state_reply(self, signed: SignedMessage, msg: StateReply) -> None:
        if not self.awaiting_state:
            return
        if msg.checkpoint_seq == 0:
            # "No checkpoint anywhere" is only believable from a quorum —
            # a single early genesis reply must not end recovery while
            # other replicas hold a real checkpoint.
            if self.last_executed_seq == 0:
                self._genesis_replies.add(msg.sender)
                if len(self._genesis_replies) >= self.config.quorum - 1:
                    self.awaiting_state = False
                    self._genesis_replies.clear()
                    self._reset_state_retry()
                    self.obs.event(self.name, EV_RECOVERY_DONE, seq=0)
            return
        if msg.checkpoint_seq <= self.last_executed_seq:
            return
        state_digest = digest(msg.snapshot)
        if not self.checkpoints.verify_proof(
            msg.checkpoint_seq, state_digest, msg.proof, self.verify_signed
        ):
            return
        self._install_snapshot(msg, state_digest)

    def _install_snapshot(self, msg: StateReply, state_digest: str) -> None:
        snapshot = msg.snapshot
        self.app.restore(snapshot["app"])
        self.client_dedup.restore(snapshot["clients"])
        self.executed_counter = int(snapshot["executed_counter"])
        self.last_executed_seq = int(msg.checkpoint_seq)
        for origin, upto in dict(snapshot["origins"]).items():
            state = self._origin_state(origin)
            if state.executed_upto < upto:
                state.executed_upto = upto
                state.certified_upto = max(state.certified_upto, upto)
                state.garbage_collect(upto)
            # certificates collected while the transfer was in flight may
            # extend contiguously past the installed frontier
            state.advance_certified()
        self.checkpoints.adopt_stable(msg.checkpoint_seq, state_digest, msg.proof)
        self.checkpoints.record_own(msg.checkpoint_seq, snapshot)
        for seq in [s for s in self.slots if s <= msg.checkpoint_seq]:
            del self.slots[seq]
        if msg.view > self.view:
            self.view = msg.view
            self.in_view_change = False
        self.awaiting_state = False
        self._reset_state_retry()
        self._summary_dirty = True
        self.obs.event(self.name, EV_RECOVERY_DONE, seq=msg.checkpoint_seq)
        self._try_execute()

    # ------------------------------------------------------------------
    _HANDLERS: Dict[type, Callable] = {}


PrimeNode._HANDLERS = {
    PoRequest: PrimeNode._on_po_request,
    PoAck: PrimeNode._on_po_ack,
    PoSummary: PrimeNode._on_po_summary,
    PrePrepare: PrimeNode._on_pre_prepare,
    Prepare: PrimeNode._on_prepare,
    Commit: PrimeNode._on_commit,
    Suspect: PrimeNode._on_suspect,
    ViewChange: PrimeNode._on_view_change,
    NewView: PrimeNode._on_new_view,
    CheckpointMsg: PrimeNode._on_checkpoint,
    Ping: PrimeNode._on_ping,
    Pong: PrimeNode._on_pong,
    ReconRequest: PrimeNode._on_recon_request,
    ReconReply: PrimeNode._on_recon_reply,
    OrderedRequest: PrimeNode._on_ordered_request,
    OrderedReply: PrimeNode._on_ordered_reply,
    StateRequest: PrimeNode._on_state_request,
    StateReply: PrimeNode._on_state_reply,
}
