"""The Prime replica: a composition of protocol stages on the shared
replication runtime.

One :class:`PrimeNode` mounts the full protocol stack described in
DESIGN.md §1.2 and §8 as four stage objects on a
:class:`~repro.replication.runtime.ReplicationRuntime`:

* :class:`~repro.prime.preorder.PreOrderStage` — client-update batching,
  PO-Request/Ack certification, PO-Summary gossip;
* :class:`~repro.prime.ordering.OrderingStage` — leader proposals and
  three-phase agreement over summary matrices;
* :class:`~repro.prime.execution.ExecutionCutoff` — coverage-cutoff
  execution of ordered matrices;
* :class:`~repro.prime.recovery.RecoveryStage` — checkpoints,
  reconciliation, and state transfer;
* :class:`~repro.prime.leadership.LeadershipStage` — RTT/TAT suspect
  monitoring and view changes.

Protocol *state* lives on the node (it is shared between stages and is
the surface tests, benchmarks and attack installers instrument);
*behaviour* lives in the stages. Message routing goes through a
:class:`~repro.replication.dispatch.Dispatcher` that authenticates each
payload's claimed sender before any handler runs, and all sending goes
through the runtime (sign once, fan out, loop back through
``_dispatch`` so instrumentation wrappers intercept local delivery too).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..crypto.provider import CryptoProvider
from ..obs import EV_RECOVERY_START, EventLog, Observability, resolve_obs
from ..replication import (
    DirectTransport,
    Dispatcher,
    ReplicationRuntime,
    RetryPolicy,
    Transport,
    sender_field_check,
)
from ..simnet import Network, Process, Simulator
from .app import ReplicatedApplication
from .checkpoint import CheckpointManager
from .config import PrimeConfig
from .dedup import ClientDedup
from .execution import ExecutionCutoff, coverage_cutoffs
from .leadership import LeadershipStage
from .messages import (
    CheckpointMsg,
    ClientUpdate,
    Commit,
    NewView,
    OrderedReply,
    OrderedRequest,
    Ping,
    PoAck,
    Pong,
    PoRequest,
    PoSummary,
    Prepare,
    PrePrepare,
    ReconReply,
    ReconRequest,
    SignedMessage,
    StateReply,
    StateRequest,
    Suspect,
    ViewChange,
    client_update_body,
    sign_client_update,
    verify_client_update,
)
from .ordering import OrderingStage, slot_digest
from .preorder import PreOrderStage
from .recovery import RecoveryStage
from .state import OrderingSlot, OriginState
from .suspect import SuspectMonitor
from .viewchange import ViewChangeManager

__all__ = ["PrimeNode", "sign_client_update", "verify_client_update", "client_update_body"]


#: rough wire sizes (bytes) per message type, for bandwidth modelling
_BASE_SIZES = {
    "PoRequest": 300,
    "PoAck": 120,
    "PoSummary": 200,
    "PrePrepare": 400,
    "Prepare": 120,
    "Commit": 120,
    "Suspect": 120,
    "ViewChange": 800,
    "NewView": 2000,
    "CheckpointMsg": 150,
    "Ping": 80,
    "Pong": 80,
    "ReconRequest": 100,
    "ReconReply": 700,
    "OrderedRequest": 100,
    "OrderedReply": 900,
    "StateRequest": 80,
    "StateReply": 2000,
}


class PrimeNode(Process):
    """One Prime replica process."""

    def __init__(
        self,
        name: str,
        simulator: Simulator,
        network: Network,
        config: PrimeConfig,
        crypto: CryptoProvider,
        app: ReplicatedApplication,
        trace: Optional[EventLog] = None,
        transport: Optional[Transport] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        super().__init__(name, simulator, network)
        if name not in config.replicas:
            raise ValueError(f"{name} is not in the replica set")
        self.config = config
        self.crypto = crypto
        self.app = app
        self.trace = trace
        self.obs = resolve_obs(obs, trace)
        self.transport: Transport = transport or DirectTransport(self, obs=self.obs)
        self.dispatcher = Dispatcher(obs=self.obs, metric_prefix="prime")
        self.runtime = ReplicationRuntime(
            process=self,
            crypto=crypto,
            replicas_fn=self._replicas,
            dispatcher=self.dispatcher,
            size_of=self._size_of,
            obs=self.obs,
            metric_prefix="prime",
            loopback_dispatch=False,
        )
        # State-transfer requests back off exponentially (with jitter) so a
        # recovering replica behind a lossy or partitioned link does not
        # flood the network with fixed-rate rebroadcasts.
        self._state_retry_policy = RetryPolicy(
            base_ms=config.recon_interval_ms * 2,
            factor=2.0,
            max_ms=max(config.view_change_timeout_ms, config.recon_interval_ms * 2),
            max_attempts=6,
        )
        self._genesis = app.snapshot()
        self._recoveries = 0
        self.execution_listeners: List[Callable[[ClientUpdate, int, Any], None]] = []
        # Batch listeners receive the executed updates of one certified
        # PoRequest at once: (origin, po_seq, [(update, order_index,
        # result), ...]). When any are registered the per-update
        # execution_listeners still fire — delivery chooses one surface.
        self.batch_execution_listeners: List[
            Callable[[str, int, List[Tuple[ClientUpdate, int, Any]]], None]
        ] = []
        self._init_protocol_state()
        self._started = False

    # ------------------------------------------------------------------
    # State (re)initialisation
    # ------------------------------------------------------------------
    def _init_protocol_state(self) -> None:
        self.view = 0
        self.in_view_change = False
        self.awaiting_state = False
        self.origin_id = f"{self.name}#{self._recoveries}"
        self.origins: Dict[str, OriginState] = {}
        self.slots: Dict[int, OrderingSlot] = {}
        self.last_executed_seq = 0
        self.executed_counter = 0
        self.client_dedup = ClientDedup()
        self.monitor = SuspectMonitor(self.config, self.name)
        self.view_manager = ViewChangeManager(self.config, self.name)
        self.checkpoints = CheckpointManager(self.config)
        self._pending_updates: List[ClientUpdate] = []
        self._batch_timer_set = False
        self._own_po_seq = 0
        self._latest_summaries: Dict[str, SignedMessage] = {}
        self._own_summary_seq = 0
        self._summary_dirty = False
        self._last_summary_sent = 0.0
        self._last_proposed_key: Any = None
        self._next_seq = 1
        self._min_fresh_seq = 1
        self._ping_nonce = 0
        self._recon_rotor = 0
        self._vc_timer = None
        self._vc_retrans_timer = None
        self._last_vc_sent: Optional[ViewChange] = None
        self._last_nv_sent: Optional[NewView] = None
        #: sender -> highest view seen in their ordering-stage messages;
        #: f+1 distinct senders above our view triggers state transfer
        #: (strict_view_adoption only)
        self._higher_view_seen: Dict[str, int] = {}
        #: sender -> view claimed in their StateReply (strict adoption
        #: requires f+1 matching claims before a view is adopted)
        self._state_view_claims: Dict[str, int] = {}
        self._genesis_replies: Set[str] = set()
        self._state_retry_attempts = 0
        self._state_retry_timer = None
        # Fresh stages per incarnation: recovery must not leak stage-level
        # references to pre-recovery state.
        self.preorder = PreOrderStage(self)
        self.ordering = OrderingStage(self)
        self.execution = ExecutionCutoff(self)
        self.recovery = RecoveryStage(self)
        self.leadership = LeadershipStage(self)
        self._register_handlers()

    def _register_handlers(self) -> None:
        """Bind each wire message to its stage handler, with the sender
        check the dispatcher enforces before any protocol code runs."""
        sender = sender_field_check("sender", self._replicas)
        leader = sender_field_check("leader", self._replicas)
        register = self.dispatcher.register
        register(PoRequest, self.preorder.on_po_request, self._po_request_check)
        register(PoAck, self.preorder.on_po_ack, sender)
        register(PoSummary, self.preorder.on_po_summary, sender)
        register(PrePrepare, self.ordering.on_pre_prepare, leader)
        register(Prepare, self.ordering.on_prepare, sender)
        register(Commit, self.ordering.on_commit, sender)
        register(Suspect, self.leadership.on_suspect, sender)
        register(ViewChange, self.leadership.on_view_change, sender)
        register(NewView, self.leadership.on_new_view, leader)
        register(CheckpointMsg, self.recovery.on_checkpoint, sender)
        register(Ping, self.leadership.on_ping, sender)
        register(Pong, self.leadership.on_pong, sender)
        register(ReconRequest, self.recovery.on_recon_request, sender)
        register(ReconReply, self.recovery.on_recon_reply, sender)
        register(OrderedRequest, self.recovery.on_ordered_request, sender)
        register(OrderedReply, self.recovery.on_ordered_reply, sender)
        register(StateRequest, self.recovery.on_state_request, sender)
        register(StateReply, self.recovery.on_state_reply, sender)

    def _replicas(self) -> Tuple[str, ...]:
        return self.config.replicas

    def _po_request_check(self, payload: PoRequest, signer: str) -> bool:
        # A PoRequest is signed by the replica owning the origin stream
        # (``replica#epoch``), not by a ``sender`` field.
        owner = payload.origin.split("#", 1)[0]
        return owner == signer and owner in self.config.replicas

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm the protocol timers; call once wiring is complete."""
        self._started = True
        self._start_timers()

    def _start_timers(self) -> None:
        cfg = self.config
        self.every(cfg.summary_interval_ms, self._summary_tick, jitter=1.0)
        self.every(cfg.pre_prepare_interval_ms, self._propose_tick, jitter=0.5)
        self.every(cfg.ping_interval_ms, self._ping_tick, jitter=5.0)
        self.every(cfg.tat_check_interval_ms, self._tat_tick, jitter=1.0)
        self.every(cfg.recon_interval_ms, self._recon_tick, jitter=2.0)
        self.set_timer(1.0, self._ping_tick)  # fast RTT warm-up

    def on_recover(self) -> None:
        """Proactive recovery: volatile state is gone; rebuild from peers."""
        self._recoveries += 1
        self.app.restore(self._genesis)
        self._init_protocol_state()
        self.awaiting_state = True
        self.obs.event(self.name, EV_RECOVERY_START, epoch=self._recoveries)
        if self._started:
            self._start_timers()
            self._request_state()

    # ------------------------------------------------------------------
    # Runtime facade: signing, sending, dispatch
    #
    # These stay methods on the node — attack installers wrap them and
    # tests call them, and the stages route every send through them so
    # such wrappers always intercept.
    # ------------------------------------------------------------------
    def sign_message(self, payload: Any) -> SignedMessage:
        return self.runtime.sign(payload)

    def verify_signed(self, signed: SignedMessage) -> bool:
        return self.runtime.verify(signed)

    @staticmethod
    def _size_of(payload: Any) -> int:
        return _BASE_SIZES.get(type(payload).__name__, 150)

    def _broadcast(self, payload: Any, include_self: bool = True) -> SignedMessage:
        return self.runtime.broadcast(payload, include_self=include_self)

    def _send_to(self, peer: str, payload: Any) -> None:
        self.runtime.send_to(peer, payload)

    def on_message(self, src: str, payload: Any) -> None:
        self.runtime.receive(payload)

    def _dispatch(self, signed: SignedMessage) -> None:
        self.dispatcher.dispatch(signed)

    # ------------------------------------------------------------------
    # Shared state helpers
    # ------------------------------------------------------------------
    def note_higher_view(self, sender: str, view: int) -> None:
        """Bookkeep evidence that a peer moved to a higher view.

        Pure bookkeeping (no sends, no trace events): the recovery stage
        reads this under ``strict_view_adoption`` to pull a laggard that
        missed a NewView back into the adopted view via state transfer.
        """
        if view > self._higher_view_seen.get(sender, -1):
            self._higher_view_seen[sender] = view

    def _origin_state(self, origin: str) -> OriginState:
        state = self.origins.get(origin)
        if state is None:
            state = OriginState(origin)
            self.origins[origin] = state
        return state

    def _slot(self, seq: int) -> OrderingSlot:
        slot = self.slots.get(seq)
        if slot is None:
            slot = OrderingSlot(seq)
            self.slots[seq] = slot
        return slot

    @property
    def is_leader(self) -> bool:
        return self.config.leader_of_view(self.view) == self.name

    @property
    def digest_version(self) -> int:
        """Slot-digest encoding version: 2 on the batched-delivery path,
        1 (legacy) otherwise — the formats can never collide."""
        return 2 if self.config.delivery_batching else 1

    # Stable public/compat surface kept from the monolithic node.
    coverage_cutoffs = staticmethod(coverage_cutoffs)

    def slot_digest(self, seq: int, matrix: Tuple[SignedMessage, ...]) -> str:
        return slot_digest(seq, matrix, self.digest_version)

    # ------------------------------------------------------------------
    # Stage entry points
    #
    # Timer callbacks and cross-stage calls go through these thin
    # delegators so they resolve the *current* stage objects (recovery
    # replaces the stages) and remain monkeypatchable per node.
    # ------------------------------------------------------------------
    def submit(self, update: ClientUpdate) -> bool:
        """Inject a client update at this replica (its origin)."""
        return self.preorder.submit(update)

    def _flush_batch(self) -> None:
        self.preorder.flush_batch()

    def _summary_tick(self) -> None:
        self.preorder.summary_tick()

    def _propose_tick(self) -> None:
        self.ordering.propose_tick()

    def _try_execute(self) -> None:
        self.execution.try_execute()

    def _ping_tick(self) -> None:
        self.leadership.ping_tick()

    def _tat_tick(self) -> None:
        self.leadership.tat_tick()

    def _recon_tick(self) -> None:
        self.recovery.recon_tick()

    def _request_state(self) -> None:
        self.recovery.request_state()

    def _state_retry_tick(self) -> None:
        self.recovery.state_retry_tick()

    def _initiate_view_change(self, new_view: int) -> None:
        self.leadership.initiate_view_change(new_view)

    def _view_change_timeout(self, expected_view: int) -> None:
        self.leadership.view_change_timeout(expected_view)

    def _vc_retransmit_tick(self) -> None:
        self.leadership.vc_retransmit_tick()
