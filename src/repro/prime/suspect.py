"""Suspect-leader monitoring: Prime's bounded-delay mechanism.

Each replica measures the leader's *turnaround time* (TAT): how long it
takes from sending a PO-summary containing new information until the leader
issues a pre-prepare that includes (a summary at least as recent as) it.
Replicas independently compute an *acceptable* TAT from their measured
round-trip times to all peers: if at least ``f + k + 1`` replicas could —
based on real RTTs — serve as a timely leader, then a leader slower than

    K_lat * rtt_(f+k+1-th smallest) + pre_prepare_interval + slack

is either faulty or under attack and should be replaced. This makes the
bound *relative to actual network conditions* rather than a fixed timeout,
which is why Prime (unlike PBFT-style protocols) cannot be degraded
indefinitely by a leader that stays just under a static timeout.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Tuple

from .config import PrimeConfig

__all__ = ["SuspectMonitor"]


class SuspectMonitor:
    """Per-replica TAT bookkeeping. The owning node wires the timers and
    message flow; this object is pure state + arithmetic (easy to test)."""

    def __init__(self, config: PrimeConfig, name: str) -> None:
        self.config = config
        self.name = name
        #: EWMA round-trip time estimates per peer (ms)
        self.rtt: Dict[str, float] = {}
        #: summaries with new info awaiting inclusion: (summary_seq, sent_at)
        self._pending: Deque[Tuple[int, float]] = deque()
        #: recent TAT samples: (measured_at, tat_ms)
        self._samples: Deque[Tuple[float, float]] = deque(maxlen=32)

    # ------------------------------------------------------------------
    # RTT measurement
    # ------------------------------------------------------------------
    def record_rtt(self, peer: str, rtt_ms: float) -> None:
        alpha = self.config.rtt_ewma_alpha
        previous = self.rtt.get(peer)
        if previous is None:
            self.rtt[peer] = rtt_ms
        else:
            self.rtt[peer] = (1 - alpha) * previous + alpha * rtt_ms

    # ------------------------------------------------------------------
    # TAT sampling
    # ------------------------------------------------------------------
    def note_summary_sent(self, summary_seq: int, now: float) -> None:
        """Record that a summary carrying new information was sent."""
        self._pending.append((summary_seq, now))

    def note_pre_prepare(self, included_summary_seq: int, now: float) -> None:
        """The current leader issued a pre-prepare whose matrix contains our
        summary with ``included_summary_seq``; settle pending entries."""
        oldest_sent: Optional[float] = None
        while self._pending and self._pending[0][0] <= included_summary_seq:
            _, sent_at = self._pending.popleft()
            if oldest_sent is None:
                oldest_sent = sent_at
        if oldest_sent is not None:
            self._samples.append((now, now - oldest_sent))

    def reset_for_new_view(self) -> None:
        """Give a fresh leader a clean slate (RTTs are kept)."""
        self._pending.clear()
        self._samples.clear()

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def acceptable_tat(self) -> Optional[float]:
        """The TAT bound, or None while too few RTTs are known to judge."""
        others = sorted(
            rtt for peer, rtt in self.rtt.items() if peer != self.name
        )
        needed = self.config.num_faults + self.config.num_recovering + 1
        if len(others) < needed:
            return None
        achievable = others[needed - 1]
        bound = (
            self.config.tat_latency_factor * achievable
            + self.config.pre_prepare_interval_ms
            + self.config.tat_slack_ms
        )
        return max(self.config.tat_floor_ms, bound)

    def current_tat(self, now: float) -> float:
        """The worst observed/ongoing TAT: the max of recent samples and the
        age of the oldest still-unanswered summary."""
        window = 4 * self.config.tat_check_interval_ms
        recent = [tat for at, tat in self._samples if now - at <= window]
        ongoing = (now - self._pending[0][1]) if self._pending else 0.0
        return max(recent + [ongoing])

    def should_suspect(self, now: float) -> Optional[str]:
        """Return a reason string if the leader violates its TAT bound."""
        bound = self.acceptable_tat()
        if bound is None:
            return None
        tat = self.current_tat(now)
        if tat > bound:
            return f"tat={tat:.1f}ms>bound={bound:.1f}ms"
        return None
