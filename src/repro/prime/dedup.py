"""At-most-once execution filter for client updates.

Replicas must execute each ``(client, client_seq)`` exactly once even
though clients retry (after failover) and the network — including the
Spines overlay — can reorder submissions. A plain "monotone sequence"
filter would drop reordered-but-new updates, so this is a windowed exact
filter:

* ``low``: every seq <= low has been executed (contiguous floor);
* ``recent``: executed seqs above ``low``.

The structure is deterministic given the execution sequence, so all
correct replicas hold identical filters and it participates in
checkpointed state. ``recent`` stays tiny in practice because client
retries guarantee that gaps eventually fill; a hard window bounds it
against pathological clients (anything below the forced floor is treated
as already executed — documented at-most-once semantics).
"""

from __future__ import annotations

from typing import Any, Dict, Set, Tuple

__all__ = ["ClientDedup"]


class ClientDedup:
    """Per-client executed-update filter."""

    def __init__(self, window: int = 4096) -> None:
        self.window = window
        self._low: Dict[str, int] = {}
        self._recent: Dict[str, Set[int]] = {}

    # ------------------------------------------------------------------
    def is_duplicate(self, client: str, seq: int) -> bool:
        """True if (client, seq) was already executed (or force-expired)."""
        low = self._low.get(client, 0)
        if seq <= low:
            return True
        return seq in self._recent.get(client, ())

    def mark(self, client: str, seq: int) -> None:
        """Record an execution. Caller must have checked is_duplicate."""
        recent = self._recent.setdefault(client, set())
        recent.add(seq)
        low = self._low.get(client, 0)
        while (low + 1) in recent:
            low += 1
            recent.discard(low)
        # hard bound: force the floor up if the gap set grows too large
        while len(recent) > self.window:
            low = min(recent)
            recent.discard(low)
            while (low + 1) in recent:
                low += 1
                recent.discard(low)
        self._low[client] = low

    # ------------------------------------------------------------------
    def highest(self, client: str) -> int:
        """Highest executed seq (for diagnostics)."""
        recent = self._recent.get(client)
        if recent:
            return max(recent)
        return self._low.get(client, 0)

    def clients(self) -> Tuple[str, ...]:
        return tuple(sorted(self._low))

    # ------------------------------------------------------------------
    def snapshot(self) -> Any:
        return {
            client: (self._low.get(client, 0),
                     tuple(sorted(self._recent.get(client, ()))))
            for client in set(self._low) | set(self._recent)
        }

    def restore(self, snapshot: Any) -> None:
        self._low = {}
        self._recent = {}
        for client, (low, recent) in dict(snapshot).items():
            self._low[client] = int(low)
            self._recent[client] = set(recent)
