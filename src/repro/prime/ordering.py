"""Ordering stage: leader proposals and three-phase agreement on matrices.

The second stage of the Prime pipeline: the leader of the current view
periodically proposes a *matrix* of the latest signed PO-summaries (one
per replica), and the replicas run pre-prepare/prepare/commit over the
matrix digest. The per-slot vote state is the shared
:class:`~repro.replication.ordering.ThreePhaseSlot` (specialised as
:class:`~repro.prime.state.OrderingSlot`); this stage owns the Prime
specifics — matrix validation, the leader's pre-prepare doubling as its
prepare vote, and the turnaround-time samples fed to the suspect monitor.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

from ..crypto.encoding import digest
from .messages import Commit, PoSummary, Prepare, PrePrepare, SignedMessage
from .state import OrderingSlot

if TYPE_CHECKING:  # pragma: no cover
    from .node import PrimeNode

__all__ = ["OrderingStage", "slot_digest"]


def slot_digest(
    seq: int, matrix: Tuple[SignedMessage, ...], version: int = 1
) -> str:
    """Digest of a proposal: the sequence number plus the summary content
    (not the signatures, which may legitimately differ per receiver).

    ``version=1`` is the legacy single-update-delivery encoding;
    ``version=2`` (batched delivery) prefixes the digest with ``v2:`` and
    folds the version into the hashed tuple, so a batched slot digest can
    never collide with a legacy one even for identical matrices.
    """
    content = tuple(
        (entry.payload.sender, entry.payload.summary_seq, entry.payload.vector)
        for entry in matrix
    )
    if version == 1:
        return digest((seq, content))
    if version == 2:
        return "v2:" + digest((2, seq, content))
    raise ValueError(f"unknown slot_digest version {version}")


class OrderingStage:
    """Global ordering (three-phase agreement) for one replica."""

    def __init__(self, node: "PrimeNode") -> None:
        self.node = node

    # ------------------------------------------------------------------
    # Leader proposals
    # ------------------------------------------------------------------
    def propose_tick(self) -> None:
        node = self.node
        if not node.is_leader or node.in_view_change or node.awaiting_state:
            return
        matrix = tuple(
            node._latest_summaries[sender]
            for sender in sorted(node._latest_summaries)
        )
        key = tuple(
            (entry.payload.sender, entry.payload.vector) for entry in matrix
        )
        if key == node._last_proposed_key:
            return
        node._last_proposed_key = key
        pre_prepare = PrePrepare(node.name, node.view, node._next_seq, matrix)
        node._next_seq += 1
        node._broadcast(pre_prepare)

    # ------------------------------------------------------------------
    # Replica side
    # ------------------------------------------------------------------
    def validate_matrix(self, matrix: Tuple[SignedMessage, ...]) -> bool:
        node = self.node
        seen = set()
        for entry in matrix:
            payload = entry.payload
            if not isinstance(payload, PoSummary):
                return False
            if payload.sender in seen or payload.sender not in node.config.replicas:
                return False
            if payload.sender != entry.signature.signer:
                return False
            if not node.verify_signed(entry):
                return False
            seen.add(payload.sender)
        return True

    def on_pre_prepare(
        self, signed: SignedMessage, msg: PrePrepare, from_new_view: bool = False
    ) -> None:
        node = self.node
        if msg.view > node.view:
            node.note_higher_view(msg.leader, msg.view)
        if msg.view != node.view or (node.in_view_change and not from_new_view):
            return
        if msg.leader != node.config.leader_of_view(msg.view):
            return
        if msg.seq <= node.checkpoints.stable_seq:
            return
        if not from_new_view and msg.seq < node._min_fresh_seq:
            return
        if not self.validate_matrix(msg.matrix):
            return
        slot = node._slot(msg.seq)
        if msg.view in slot.pre_prepares:
            return  # first proposal per (view, seq) wins
        slot.pre_prepares[msg.view] = signed
        proposal_digest = slot_digest(msg.seq, msg.matrix, node.digest_version)
        # The leader's pre-prepare counts as its prepare vote.
        slot.record_prepare(msg.view, proposal_digest, msg.leader, signed)
        # Turnaround-time sample: did this proposal include our summary
        # (from our *current* incarnation)?
        if msg.leader == node.config.leader_of_view(node.view):
            own_seq = 0
            for entry in msg.matrix:
                if (
                    entry.payload.sender == node.name
                    and entry.payload.epoch == node._recoveries
                ):
                    own_seq = max(own_seq, entry.payload.summary_seq)
            if own_seq:
                node.monitor.note_pre_prepare(own_seq, node.simulator.now)
        if slot.should_vote_prepare(msg.view):
            slot.prepared_vote = (msg.view, proposal_digest)
            node._broadcast(Prepare(node.name, msg.view, msg.seq, proposal_digest))
        self.check_prepared(slot, msg.view, proposal_digest)
        self.check_ordered(slot, msg.view, proposal_digest)

    def on_prepare(self, signed: SignedMessage, msg: Prepare) -> None:
        node = self.node
        if msg.view > node.view:
            node.note_higher_view(msg.sender, msg.view)
        if msg.seq <= node.checkpoints.stable_seq:
            return
        slot = node._slot(msg.seq)
        slot.record_prepare(msg.view, msg.digest, msg.sender, signed)
        self.check_prepared(slot, msg.view, msg.digest)

    def check_prepared(
        self, slot: OrderingSlot, view: int, proposal_digest: str
    ) -> None:
        node = self.node
        if not slot.note_prepared(view, proposal_digest, node.config.quorum):
            return
        if slot.should_vote_commit(view, proposal_digest):
            slot.committed_vote = (view, proposal_digest)
            node._broadcast(Commit(node.name, view, slot.seq, proposal_digest))

    def on_commit(self, signed: SignedMessage, msg: Commit) -> None:
        node = self.node
        if msg.view > node.view:
            node.note_higher_view(msg.sender, msg.view)
        if msg.seq <= node.checkpoints.stable_seq:
            return
        slot = node._slot(msg.seq)
        slot.record_commit(msg.view, msg.digest, msg.sender, signed)
        self.check_ordered(slot, msg.view, msg.digest)

    def check_ordered(
        self, slot: OrderingSlot, view: int, proposal_digest: str
    ) -> None:
        node = self.node
        if slot.is_ordered:
            return
        proof = slot.commit_certificate(view, proposal_digest, node.config.quorum)
        if proof is None:
            return
        pre_prepare = slot.pre_prepares.get(view)
        if pre_prepare is None:
            return
        if (
            slot_digest(slot.seq, pre_prepare.payload.matrix, node.digest_version)
            != proposal_digest
        ):
            return
        slot.ordered = (view, proposal_digest, pre_prepare, proof)
        if slot.prepared_cert is None or slot.prepared_cert[0] < view:
            slot.prepared_cert = (view, proposal_digest)
            slot.prepared_proof = proof
        node._try_execute()
