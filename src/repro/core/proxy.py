"""RTU proxy: the bridge between the replicated masters and field devices.

The proxy sits at a substation site. Toward the field it speaks Modbus to
its RTUs/PLCs; toward the control centers it is a Spire client: it signs
polled status readings and submits them for ordering, and it executes
breaker commands **only** when they arrive bearing a verifiable threshold
signature from the master replicas — the property that makes a compromised
master replica (or a network attacker) unable to operate field equipment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..crypto.provider import CryptoProvider
from ..scada.modbus import (
    ReadCoilsRequest,
    ReadCoilsResponse,
    ReadRequest,
    ReadResponse,
    WriteCoilRequest,
    WriteCoilResponse,
    encode_frame,
    unscale_measurement,
)
from ..scada.rtu import MEASUREMENT_ORDER, RtuDevice
from ..obs import EV_COMMAND_TO_FIELD, EventLog, LatencyTracker, resolve_obs
from ..simnet import Network, Process, Simulator
from ..spines.overlay import OverlayStack
from .collector import DeliveryCollector
from .client import SubmissionManager
from .replica import THRESHOLD_GROUP
from .update import BatchDeliveryShare, BreakerCommand, DeliveryShare, StatusReading

__all__ = ["RtuProxy", "DeviceBinding"]


@dataclass
class DeviceBinding:
    """Static description of one field device behind the proxy."""

    substation: str
    device_name: str
    unit_id: int
    coil_ids: Tuple[str, ...]  # breaker ids in coil-address order


@dataclass
class _PollState:
    poll_seq: int = 0
    phase: str = "idle"          # idle | await_regs | await_coils
    started_at: float = 0.0
    registers: Tuple[int, ...] = ()


class RtuProxy(Process):
    """One proxy endpoint fronting a set of field devices."""

    def __init__(
        self,
        name: str,
        simulator: Simulator,
        network: Network,
        crypto: CryptoProvider,
        replicas: List[str],
        devices: List[DeviceBinding],
        stack: Optional[OverlayStack] = None,
        recorder: Optional[LatencyTracker] = None,
        trace: Optional[EventLog] = None,
        poll_interval_ms: float = 100.0,
        device_timeout_ms: float = 50.0,
        resubmit_timeout_ms: float = 500.0,
        threshold_group: str = THRESHOLD_GROUP,
        obs=None,
    ) -> None:
        super().__init__(name, simulator, network)
        self.crypto = crypto
        self.devices = {binding.substation: binding for binding in devices}
        self._by_unit = {binding.unit_id: binding for binding in devices}
        self.stack = stack
        self.trace = trace
        self.obs = resolve_obs(obs, trace)
        self.poll_interval_ms = poll_interval_ms
        self.device_timeout_ms = device_timeout_ms
        self.collector = DeliveryCollector(crypto, threshold_group)
        self.submissions = SubmissionManager(
            client_name=name,
            crypto=crypto,
            replicas=replicas,
            send_fn=self._send_to_replica,
            now_fn=lambda: simulator.now,
            recorder=recorder,
            resubmit_timeout_ms=resubmit_timeout_ms,
            start_index=sum(name.encode()) % max(1, len(replicas)),
            rng=simulator.rng(f"submit/{name}"),
        )
        self._polls: Dict[str, _PollState] = {
            substation: _PollState() for substation in self.devices
        }
        self.commands_executed = 0
        self.readings_submitted = 0
        self.polls_timed_out = 0
        self._started = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        self._started = True
        self.every(self.poll_interval_ms, self._poll_tick, jitter=2.0)
        self.every(self.submissions.resubmit_timeout_ms / 2, self._retry_tick)

    def on_recover(self) -> None:
        """Crash recovery: poll state is volatile; timers must be re-armed
        (periodic timers from the previous incarnation never fire again)."""
        for state in self._polls.values():
            state.phase = "idle"
        if self._started:
            self.every(self.poll_interval_ms, self._poll_tick, jitter=2.0)
            self.every(self.submissions.resubmit_timeout_ms / 2, self._retry_tick)

    def _send_to_replica(self, replica: str, payload: Any, size_bytes: int) -> bool:
        if self.stack is not None:
            return self.stack.send(replica, payload, size_bytes=size_bytes)
        return self.send(replica, payload, size_bytes=size_bytes)

    def _retry_tick(self) -> None:
        self.submissions.retry_tick()

    # ------------------------------------------------------------------
    # Polling state machine (serial Modbus semantics per device)
    # ------------------------------------------------------------------
    def _poll_tick(self) -> None:
        now = self.simulator.now
        for substation, state in self._polls.items():
            binding = self.devices[substation]
            if state.phase != "idle":
                if now - state.started_at > self.device_timeout_ms:
                    self.polls_timed_out += 1
                    state.phase = "idle"
                else:
                    continue
            state.phase = "await_regs"
            state.started_at = now
            frame = encode_frame(ReadRequest(binding.unit_id, 0, len(MEASUREMENT_ORDER)))
            self.send(binding.device_name, RtuDevice.wrap(frame), size_bytes=16)

    def on_message(self, src: str, payload: Any) -> None:
        frame = RtuDevice.unwrap(payload)
        if frame is not None:
            self._on_modbus(frame)
            return
        if self.stack is not None:
            unwrapped = OverlayStack.unwrap(payload)
            if unwrapped is not None:
                payload = unwrapped[1]
        if isinstance(payload, (DeliveryShare, BatchDeliveryShare)):
            self._on_delivery_share(payload)

    def _on_modbus(self, frame: bytes) -> None:
        from ..scada.modbus import ModbusError, decode_frame

        try:
            message = decode_frame(frame)
        except ModbusError:
            return
        binding = self._by_unit.get(getattr(message, "unit", None))
        if binding is None:
            return
        state = self._polls[binding.substation]
        if isinstance(message, ReadResponse) and state.phase == "await_regs":
            state.registers = message.values
            state.phase = "await_coils"
            state.started_at = self.simulator.now
            frame_out = encode_frame(
                ReadCoilsRequest(binding.unit_id, 0, len(binding.coil_ids))
            )
            self.send(binding.device_name, RtuDevice.wrap(frame_out), size_bytes=16)
        elif isinstance(message, ReadCoilsResponse) and state.phase == "await_coils":
            state.phase = "idle"
            state.poll_seq += 1
            self._submit_reading(binding, state, message.values)
        elif isinstance(message, WriteCoilResponse):
            self.commands_executed += 1

    def _submit_reading(
        self, binding: DeviceBinding, state: _PollState, coils: Tuple[bool, ...]
    ) -> None:
        measurements = tuple(
            (key, unscale_measurement(register))
            for key, register in zip(MEASUREMENT_ORDER, state.registers)
        )
        breakers = tuple(sorted(zip(binding.coil_ids, coils)))
        reading = StatusReading(
            substation=binding.substation,
            poll_seq=state.poll_seq,
            polled_at=self.simulator.now,
            measurements=measurements,
            breakers=breakers,
        )
        self.submissions.submit(reading)
        self.readings_submitted += 1

    # ------------------------------------------------------------------
    # Verified deliveries
    # ------------------------------------------------------------------
    def _on_delivery_share(self, share) -> None:
        if isinstance(share, BatchDeliveryShare):
            for record, _signature in self.collector.add_batch(share):
                self._on_verified_record(record)
            return
        combined = self.collector.add(share)
        if combined is None:
            return
        self._on_verified_record(combined[0])

    def _on_verified_record(self, record) -> None:
        if record.client == self.name:
            self.submissions.acknowledged(record.client, record.client_seq)
        if record.kind == "command" and isinstance(record.payload, BreakerCommand):
            self._execute_command(record.payload)

    def _execute_command(self, command: BreakerCommand) -> None:
        binding = self.devices.get(command.substation)
        if binding is None:
            return
        try:
            address = binding.coil_ids.index(command.breaker_id)
        except ValueError:
            return
        frame = encode_frame(WriteCoilRequest(binding.unit_id, address, command.close))
        self.send(binding.device_name, RtuDevice.wrap(frame), size_bytes=16)
        self.obs.event(
            self.name, EV_COMMAND_TO_FIELD,
            substation=command.substation, breaker=command.breaker_id,
            close=command.close,
        )
