"""Deployment facade: assembles a complete Spire system in one call.

This is the reproduction of the paper's deployed architecture:

* a Spines overlay across control centers, data centers and field sites;
* ``n = 3f + 2k + 1`` SCADA-master replicas placed across the sites per a
  :class:`~repro.core.config.ResilienceConfig`-style placement;
* a power grid with one RTU per substation, fronted by an RTU proxy at the
  field site;
* one or more HMIs at the primary control center;
* threshold-signature keys dealt to the replicas;
* optional proactive recovery (with diversity re-randomization).

Everything rides on one :class:`~repro.simnet.Simulator`, so a scenario is
fully described by (options, seed) and is exactly reproducible.

Construction is layered (see :mod:`repro.core.builder`): a
:class:`~repro.core.builder.TopologyBuilder` plans placement and
configuration, a :class:`~repro.core.builder.DeploymentWiring` assembles
the components.  Small-n figure runs and fleet-scale scenarios
(``options.fleet`` — see :mod:`repro.fleet`) both construct through the
same two stages; only the field layer differs.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..crypto.provider import CryptoProvider, FastCrypto, RealCrypto, TimedCrypto
from ..obs import (
    NULL_OBS,
    EventLog,
    IntervalCounter,
    LatencyTracker,
    Observability,
)
from ..simnet import LinkSpec, Network, Simulator
from ..spines.overlay import SpinesOverlay
from ..spines.topology import OverlayTopology, wide_area_topology
from .batching import BatchingOptions
from .builder import DeploymentWiring, TopologyBuilder
from .diversity import DiversityManager
from .master import ScadaMasterApp
from .proxy import RtuProxy
from .recovery import ProactiveRecoveryScheduler, RecoveryStrategy

if TYPE_CHECKING:  # lazy imports: both packages import this module
    from ..control import ControlOptions
    from ..fleet.spec import FleetSpec

__all__ = ["SpireOptions", "SpireDeployment"]


@dataclass
class SpireOptions:
    """Knobs for one deployment scenario.

    Prefer the :meth:`wan` / :meth:`lan` preset constructors over raw
    construction — they pin the knobs that must move together (Prime
    timeouts vs. overlay routing) and still accept per-field overrides::

        opts = SpireOptions.wan(seed=7, num_substations=10)

    :meth:`validate` is called by :class:`SpireDeployment`; call it
    directly to fail fast when assembling options programmatically.
    """

    f: int = 1
    k: int = 1
    #: site name -> replica count; None = the paper's 2+2+1+1 over 4 sites
    placement: Optional[Dict[str, int]] = None
    num_substations: int = 5
    num_hmis: int = 1
    poll_interval_ms: float = 100.0
    resubmit_timeout_ms: float = 500.0
    overlay_mode: str = "flooding"           # or "shortest" / "disjoint"
    #: enable the Spines self-healing control plane (hello-based link
    #: monitoring + adaptive rerouting); off preserves static routing
    overlay_self_healing: bool = False
    #: per-source forward queue bound on each daemon (0 = unbounded)
    overlay_queue_limit: int = 0
    #: per-source token-bucket rate on each daemon (0 = unlimited)
    overlay_rate_limit_per_ms: float = 0.0
    prime_preset: str = "wan"                # or "lan"
    crypto_kind: str = "fast"                # or "real"
    seed: int = 1
    #: (period_ms, duration_ms) to enable proactive recovery
    proactive_recovery: Optional[Tuple[float, float]] = None
    #: adaptive recovery: a :class:`~repro.control.ControlOptions` switches
    #: proactive recovery from the fixed periodic rotation to the
    #: feedback controller (``repro.control``); None (the default) keeps
    #: the bit-identical periodic schedule
    control: Optional[ControlOptions] = None
    #: batched ordering + Merkle-amortized delivery crypto
    #: (:class:`~repro.core.batching.BatchingOptions`); None (the default)
    #: and ``max_batch_size=1`` both keep the bit-identical per-update path
    batching: Optional[BatchingOptions] = None
    #: fleet-scale field layer (:class:`~repro.fleet.FleetSpec`): a
    #: hierarchical region → substation → device topology with
    #: heterogeneous poll classes and open-loop operator traffic replaces
    #: the small-n single-proxy field layer; None (the default) keeps the
    #: classic ``num_substations`` layout bit-identically
    fleet: Optional[FleetSpec] = None
    #: harden the view-change path for leader-failure chaos: view-change /
    #: new-view retransmission while a view change is pending, and strict
    #: quorum-based view adoption during state transfer. Off (the default)
    #: keeps every non-view-change trace bit-identical.
    view_change_hardening: bool = False
    checkpoint_interval_seqs: int = 50
    #: False disables the entire observability layer (metrics, spans,
    #: structured events): the deployment's ``obs`` is the shared no-op
    #: recorder and ``trace`` stays empty. Use for maximum-speed sweeps
    #: where nothing inspects events or metrics afterwards.
    observability: bool = True

    @classmethod
    def wan(cls, **overrides) -> "SpireOptions":
        """The paper's wide-area configuration: conservative Prime
        timeouts sized for cross-site latency, resilient flooding on the
        overlay."""
        base = dict(prime_preset="wan", overlay_mode="flooding")
        base.update(overrides)
        return cls(**base)

    @classmethod
    def lan(cls, **overrides) -> "SpireOptions":
        """Single-site configuration: aggressive Prime timeouts, cheap
        shortest-path overlay routing."""
        base = dict(prime_preset="lan", overlay_mode="shortest")
        base.update(overrides)
        return cls(**base)

    @property
    def n(self) -> int:
        """Replica count required by the resilience parameters."""
        return 3 * self.f + 2 * self.k + 1

    def validate(self) -> "SpireOptions":
        """Reject inconsistent knob combinations with actionable errors.

        Returns ``self`` so it chains: ``SpireOptions(...).validate()``.
        """
        if self.f < 0 or self.k < 0:
            raise ValueError(
                f"f and k must be non-negative (got f={self.f}, k={self.k})"
            )
        if self.n < 1:
            raise ValueError(
                f"3f+2k+1 = {self.n} replicas: increase f or k"
            )
        if self.placement is not None:
            total = sum(self.placement.values())
            if total != self.n:
                raise ValueError(
                    f"placement assigns {total} replicas across "
                    f"{len(self.placement)} sites, but f={self.f}, "
                    f"k={self.k} requires exactly 3f+2k+1 = {self.n}; "
                    f"adjust the placement counts or the resilience "
                    f"parameters"
                )
            if any(count < 0 for count in self.placement.values()):
                raise ValueError("placement counts must be non-negative")
        if self.num_substations < 1:
            raise ValueError(
                f"num_substations must be >= 1 (got {self.num_substations})"
            )
        if self.num_hmis < 0:
            raise ValueError(f"num_hmis must be >= 0 (got {self.num_hmis})")
        if self.poll_interval_ms <= 0 or self.resubmit_timeout_ms <= 0:
            raise ValueError(
                "poll_interval_ms and resubmit_timeout_ms must be positive "
                f"(got {self.poll_interval_ms}, {self.resubmit_timeout_ms})"
            )
        if self.overlay_mode not in ("flooding", "shortest", "disjoint"):
            raise ValueError(
                f"overlay_mode must be 'flooding', 'shortest' or 'disjoint' "
                f"(got {self.overlay_mode!r})"
            )
        if self.overlay_queue_limit < 0:
            raise ValueError(
                f"overlay_queue_limit must be >= 0 "
                f"(got {self.overlay_queue_limit})"
            )
        if self.overlay_rate_limit_per_ms < 0:
            raise ValueError(
                f"overlay_rate_limit_per_ms must be >= 0 "
                f"(got {self.overlay_rate_limit_per_ms})"
            )
        if self.prime_preset not in ("wan", "lan"):
            raise ValueError(
                f"prime_preset must be 'wan' or 'lan' (got {self.prime_preset!r})"
            )
        if self.crypto_kind not in ("fast", "real"):
            raise ValueError(
                f"crypto_kind must be 'fast' or 'real' (got {self.crypto_kind!r})"
            )
        if self.checkpoint_interval_seqs < 1:
            raise ValueError(
                f"checkpoint_interval_seqs must be >= 1 "
                f"(got {self.checkpoint_interval_seqs})"
            )
        if self.proactive_recovery is not None:
            period_ms, duration_ms = self.proactive_recovery
            if period_ms <= 0 or duration_ms <= 0:
                raise ValueError(
                    "proactive_recovery (period_ms, duration_ms) must both "
                    f"be positive (got {self.proactive_recovery})"
                )
            if duration_ms >= period_ms:
                raise ValueError(
                    f"proactive recovery duration ({duration_ms}ms) must be "
                    f"shorter than the period ({period_ms}ms), or replicas "
                    f"re-crash before finishing recovery"
                )
        if self.control is not None:
            if self.proactive_recovery is None:
                raise ValueError(
                    "control (the feedback recovery controller) requires "
                    "proactive_recovery=(period_ms, duration_ms): the "
                    "controller needs the recovery duration and a fallback "
                    "period"
                )
            self.control.validate()
        if self.batching is not None:
            self.batching.validate()
        if self.fleet is not None:
            self.fleet.validate()
        return self


class SpireDeployment:
    """A fully wired Spire system inside one simulator.

    All measurement flows through one :attr:`obs` handle
    (:class:`repro.obs.Observability`): structured events, typed metrics
    and spans for every layer. The legacy attributes — :attr:`trace`,
    :attr:`status_recorder`, :attr:`command_recorder`,
    :attr:`delivery_series` — are kept for one PR as views of the same
    instruments (``trace`` *is* ``obs.log``; the recorders live in
    ``obs.registry``).
    """

    def __init__(
        self,
        options: Optional[SpireOptions] = None,
        topology: Optional[OverlayTopology] = None,
    ) -> None:
        self.options = (options or SpireOptions()).validate()
        opts = self.options
        self.wall_runtime_s = 0.0
        self.simulator = Simulator(seed=opts.seed)
        self.network = Network(self.simulator, LinkSpec(latency_ms=0.2, jitter_ms=0.05))
        self.trace = EventLog(now_fn=lambda: self.simulator.now)
        if opts.observability:
            self.obs = Observability(log=self.trace)
            self.trace._obs = self.obs  # legacy trace= callers share it
            self.simulator.bind_obs(self.obs)
        else:
            self.obs = NULL_OBS
        self.crypto: CryptoProvider = (
            RealCrypto(seed=f"spire/{opts.seed}")
            if opts.crypto_kind == "real"
            else FastCrypto(seed=f"spire/{opts.seed}")
        )
        if opts.observability:
            # Profile every crypto op; the inner provider (and therefore
            # every signature/MAC byte) is unchanged.
            self.crypto = TimedCrypto(self.crypto, self.obs)
        self.topology = topology or wide_area_topology()
        self.overlay = SpinesOverlay(
            self.simulator,
            self.network,
            self.topology,
            mode=opts.overlay_mode,
            crypto=self.crypto,
            trace=self.trace,
            self_healing=opts.overlay_self_healing,
            max_queue_per_source=opts.overlay_queue_limit,
            source_rate_per_ms=opts.overlay_rate_limit_per_ms,
            obs=self.obs,
        )
        self.diversity = DiversityManager(seed=opts.seed)
        if opts.observability:
            self.status_recorder = self.obs.latency("proxy.status_latency")
            self.command_recorder = self.obs.latency("hmi.command_latency")
            self.delivery_series = self.obs.intervals(
                "hmi.delivered_updates", interval_ms=1000.0
            )
        else:
            self.status_recorder = LatencyTracker()
            self.command_recorder = LatencyTracker()
            self.delivery_series = IntervalCounter(interval_ms=1000.0)

        # fleet attributes (populated by the fleet field stage)
        self.fleet_topology = None
        self.region_proxies: List[RtuProxy] = []
        self.traffic_driver = None

        builder = TopologyBuilder(opts, self.topology)
        wiring = DeploymentWiring(self, builder)
        wiring.build_replicas()
        if opts.fleet is not None:
            from ..fleet.deploy import build_fleet_field, wire_fleet

            build_fleet_field(self, builder)
            wiring.build_hmis()
            wire_fleet(self, wiring)
        else:
            wiring.build_field()
            wiring.build_hmis()
            wiring.wire()
        self.recovery_scheduler: Optional[RecoveryStrategy] = None
        if opts.proactive_recovery is not None:
            period_ms, duration_ms = opts.proactive_recovery
            common = dict(
                recovery_duration_ms=duration_ms,
                max_concurrent=opts.k if opts.k > 0 else 1,
                trace=self.trace,
                obs=self.obs,
                on_rejuvenate=lambda r: self.diversity.rejuvenate(r.name),
                min_live=self.prime_config.quorum,
            )
            if opts.control is not None:
                from ..control import FeedbackStrategy, SignalHub

                # the controller senses through obs; with observability
                # disabled there is no hub and the strategy degrades to
                # its periodic fallback rotation
                hub = None
                if opts.observability:
                    hub = SignalHub(
                        self.trace,
                        self.replicas,
                        self.replica_sites,
                        self.prime_config.leader_of_view,
                        registry=self.obs.registry,
                        lag_threshold_seqs=opts.control.lag_threshold_seqs,
                    )
                self.recovery_scheduler = FeedbackStrategy(
                    self.simulator,
                    list(self.replicas),
                    period_ms=period_ms,
                    control=opts.control,
                    hub=hub,
                    **common,
                )
            else:
                self.recovery_scheduler = ProactiveRecoveryScheduler(
                    self.simulator,
                    list(self.replicas),
                    period_ms=period_ms,
                    **common,
                )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start every component (call once, then run the simulator)."""
        for replica in self.replicas:
            replica.start()
        if self.options.fleet is not None:
            for proxy in self.region_proxies:
                proxy.start()
        else:
            self.proxy.start()
        for hmi in self.hmis:
            hmi.start()
        if self.traffic_driver is not None:
            self.traffic_driver.start()
        if self.recovery_scheduler is not None:
            self.recovery_scheduler.start()

    def run_for(self, duration_ms: float) -> None:
        started = perf_counter()
        self.simulator.run_for(duration_ms)
        # cumulative host wall-clock spent simulating — scenario reports
        # surface it (with events/sec) outside the deterministic sections
        self.wall_runtime_s += perf_counter() - started

    # ------------------------------------------------------------------
    # Introspection helpers used by benchmarks
    # ------------------------------------------------------------------
    @property
    def device_count(self) -> int:
        """Field devices in the scenario (fleet total, or one RTU per
        substation in the classic small-n layout)."""
        if self.fleet_topology is not None:
            return self.fleet_topology.device_count
        return len(self.rtus)

    def current_view(self) -> int:
        """The majority view among live replicas (0 when none are up)."""
        views = [r.view for r in self.replicas if r.is_up]
        return max(set(views), key=views.count) if views else 0

    def current_leader(self) -> str:
        return self.prime_config.leader_of_view(self.current_view())

    def replica_names(self) -> List[str]:
        return [r.name for r in self.replicas]

    def dos_peers_of(self, endpoint_name: str) -> List[str]:
        """The network neighbours whose links a DoS against ``endpoint_name``
        degrades: in an overlay deployment that is the access link to the
        endpoint's site daemon."""
        from ..spines.daemon import SpinesDaemon

        site = self.overlay.endpoint_site(endpoint_name)
        if site is None:
            return []
        return [SpinesDaemon.daemon_name(site)]

    def master_state(self) -> ScadaMasterApp:
        """The master app of the first healthy replica."""
        for replica in self.replicas:
            if replica.is_up:
                return replica.app
        raise RuntimeError("no healthy replica")
