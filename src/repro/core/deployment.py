"""Deployment builder: assembles a complete Spire system in one call.

This is the reproduction of the paper's deployed architecture:

* a Spines overlay across control centers, data centers and field sites;
* ``n = 3f + 2k + 1`` SCADA-master replicas placed across the sites per a
  :class:`~repro.core.config.ResilienceConfig`-style placement;
* a power grid with one RTU per substation, fronted by an RTU proxy at the
  field site;
* one or more HMIs at the primary control center;
* threshold-signature keys dealt to the replicas;
* optional proactive recovery (with diversity re-randomization).

Everything rides on one :class:`~repro.simnet.Simulator`, so a scenario is
fully described by (options, seed) and is exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..crypto.provider import CryptoProvider, FastCrypto, RealCrypto
from ..prime.config import PrimeConfig, lan_prime_config, wan_prime_config
from ..prime.transport import OverlayTransport
from ..scada.grid import PowerGrid, build_radial_grid
from ..scada.rtu import RtuDevice
from ..simnet import LinkSpec, Network, Simulator, Trace
from ..spines.overlay import SpinesOverlay
from ..spines.topology import OverlayTopology, wide_area_topology
from .diversity import DiversityManager
from .hmi import HmiClient
from .master import ScadaMasterApp
from .metrics import IntervalSeries, LatencyRecorder
from .proxy import DeviceBinding, RtuProxy
from .recovery import ProactiveRecoveryScheduler
from .replica import THRESHOLD_GROUP, SpireReplica

__all__ = ["SpireOptions", "SpireDeployment"]


@dataclass
class SpireOptions:
    """Knobs for one deployment scenario."""

    f: int = 1
    k: int = 1
    #: site name -> replica count; None = the paper's 2+2+1+1 over 4 sites
    placement: Optional[Dict[str, int]] = None
    num_substations: int = 5
    num_hmis: int = 1
    poll_interval_ms: float = 100.0
    resubmit_timeout_ms: float = 500.0
    overlay_mode: str = "flooding"           # or "shortest"
    prime_preset: str = "wan"                # or "lan"
    crypto_kind: str = "fast"                # or "real"
    seed: int = 1
    #: (period_ms, duration_ms) to enable proactive recovery
    proactive_recovery: Optional[Tuple[float, float]] = None
    checkpoint_interval_seqs: int = 50


class SpireDeployment:
    """A fully wired Spire system inside one simulator."""

    def __init__(
        self,
        options: Optional[SpireOptions] = None,
        topology: Optional[OverlayTopology] = None,
    ) -> None:
        self.options = options or SpireOptions()
        opts = self.options
        self.simulator = Simulator(seed=opts.seed)
        self.network = Network(self.simulator, LinkSpec(latency_ms=0.2, jitter_ms=0.05))
        self.trace = Trace(self.simulator)
        self.crypto: CryptoProvider = (
            RealCrypto(seed=f"spire/{opts.seed}")
            if opts.crypto_kind == "real"
            else FastCrypto(seed=f"spire/{opts.seed}")
        )
        self.topology = topology or wide_area_topology()
        self.overlay = SpinesOverlay(
            self.simulator,
            self.network,
            self.topology,
            mode=opts.overlay_mode,
            crypto=self.crypto,
            trace=self.trace,
        )
        self.diversity = DiversityManager(seed=opts.seed)
        self.status_recorder = LatencyRecorder()
        self.command_recorder = LatencyRecorder()
        self.delivery_series = IntervalSeries(interval_ms=1000.0)
        self._build_replicas()
        self._build_field()
        self._build_hmis()
        self._wire()
        self.recovery_scheduler: Optional[ProactiveRecoveryScheduler] = None
        if opts.proactive_recovery is not None:
            period_ms, duration_ms = opts.proactive_recovery
            self.recovery_scheduler = ProactiveRecoveryScheduler(
                self.simulator,
                list(self.replicas),
                period_ms=period_ms,
                recovery_duration_ms=duration_ms,
                max_concurrent=opts.k if opts.k > 0 else 1,
                trace=self.trace,
                on_rejuvenate=lambda r: self.diversity.rejuvenate(r.name),
                min_live=self.prime_config.quorum,
            )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _default_placement(self) -> Dict[str, int]:
        needed = 3 * self.options.f + 2 * self.options.k + 1
        site_names = [site.name for site in self.topology.sites
                      if site.kind in ("control", "data")]
        control_first = sorted(
            site_names,
            key=lambda name: (self.topology.site(name).kind != "control", name),
        )
        placement = {name: 0 for name in control_first}
        index = 0
        for _ in range(needed):
            placement[control_first[index % len(control_first)]] += 1
            index += 1
        return {name: count for name, count in placement.items() if count > 0}

    def _build_replicas(self) -> None:
        opts = self.options
        placement = opts.placement or self._default_placement()
        self.placement = placement
        names: List[str] = []
        sites: List[str] = []
        for site_name in sorted(placement):
            for _ in range(placement[site_name]):
                names.append(f"replica:{len(names)}")
                sites.append(site_name)
        import dataclasses

        preset = lan_prime_config if opts.prime_preset == "lan" else wan_prime_config
        config = preset(tuple(names), f=opts.f, k=opts.k)
        config = dataclasses.replace(
            config, checkpoint_interval_seqs=opts.checkpoint_interval_seqs
        )
        self.prime_config = config
        self.crypto.create_threshold_group(
            THRESHOLD_GROUP, config.n, config.signing_threshold
        )
        self.replicas: List[SpireReplica] = []
        self.replica_sites: Dict[str, str] = {}
        for name, site_name in zip(names, sites):
            replica = SpireReplica(
                name, self.simulator, self.network, config, self.crypto,
                app=ScadaMasterApp(), trace=self.trace,
            )
            stack = self.overlay.attach(replica, site_name)
            replica.transport = OverlayTransport(stack)
            self.diversity.assign(name)
            self.replicas.append(replica)
            self.replica_sites[name] = site_name

    def _build_field(self) -> None:
        opts = self.options
        self.grid = build_radial_grid(
            num_substations=opts.num_substations, seed=opts.seed
        )
        field_sites = [s.name for s in self.topology.sites_of_kind("field")]
        self.field_site = field_sites[0] if field_sites else self.topology.sites[0].name
        self.rtus: Dict[str, RtuDevice] = {}
        bindings: List[DeviceBinding] = []
        for unit_id, substation in enumerate(sorted(self.grid.substations), start=1):
            rtu = RtuDevice(
                f"rtu:{substation}", self.simulator, self.network,
                self.grid, substation, unit_id,
            )
            self.rtus[substation] = rtu
            bindings.append(
                DeviceBinding(
                    substation=substation,
                    device_name=rtu.name,
                    unit_id=unit_id,
                    coil_ids=tuple(rtu.coil_ids()),
                )
            )
        self.proxy = RtuProxy(
            "proxy:field", self.simulator, self.network, self.crypto,
            replicas=[r.name for r in self.replicas],
            devices=bindings,
            recorder=self.status_recorder,
            trace=self.trace,
            poll_interval_ms=opts.poll_interval_ms,
            resubmit_timeout_ms=opts.resubmit_timeout_ms,
        )
        self.proxy.stack = self.overlay.attach(self.proxy, self.field_site)
        for binding in bindings:
            self.network.set_link(
                self.proxy.name, binding.device_name,
                LinkSpec(latency_ms=0.3, jitter_ms=0.05),
            )

    def _build_hmis(self) -> None:
        control_sites = [s.name for s in self.topology.sites_of_kind("control")]
        home = control_sites[0] if control_sites else self.topology.sites[0].name
        self.hmis: List[HmiClient] = []
        for index in range(self.options.num_hmis):
            hmi = HmiClient(
                f"hmi:{index}", self.simulator, self.network, self.crypto,
                replicas=[r.name for r in self.replicas],
                recorder=self.command_recorder,
                trace=self.trace,
                resubmit_timeout_ms=self.options.resubmit_timeout_ms,
            )
            hmi.stack = self.overlay.attach(hmi, home)
            self.hmis.append(hmi)

    def _wire(self) -> None:
        for replica in self.replicas:
            for hmi in self.hmis:
                replica.add_subscriber(hmi.name)
            for substation in self.grid.substations:
                replica.register_proxy(substation, self.proxy.name)
        # availability accounting: every verified status delivery at HMI 0
        if self.hmis:
            original = self.hmis[0]._on_delivery_share

            def counted(share, _original=original):
                before = self.hmis[0].collector.verified
                _original(share)
                if self.hmis[0].collector.verified > before:
                    self.delivery_series.record(self.simulator.now)

            self.hmis[0]._on_delivery_share = counted

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start every component (call once, then run the simulator)."""
        for replica in self.replicas:
            replica.start()
        self.proxy.start()
        for hmi in self.hmis:
            hmi.start()
        if self.recovery_scheduler is not None:
            self.recovery_scheduler.start()

    def run_for(self, duration_ms: float) -> None:
        self.simulator.run_for(duration_ms)

    # ------------------------------------------------------------------
    # Introspection helpers used by benchmarks
    # ------------------------------------------------------------------
    def current_leader(self) -> str:
        views = [r.view for r in self.replicas if r.is_up]
        view = max(set(views), key=views.count) if views else 0
        return self.prime_config.leader_of_view(view)

    def replica_names(self) -> List[str]:
        return [r.name for r in self.replicas]

    def dos_peers_of(self, endpoint_name: str) -> List[str]:
        """The network neighbours whose links a DoS against ``endpoint_name``
        degrades: in an overlay deployment that is the access link to the
        endpoint's site daemon."""
        from ..spines.daemon import SpinesDaemon

        site = self.overlay.endpoint_site(endpoint_name)
        if site is None:
            return []
        return [SpinesDaemon.daemon_name(site)]

    def master_state(self) -> ScadaMasterApp:
        """The master app of the first healthy replica."""
        for replica in self.replicas:
            if replica.is_up:
                return replica.app
        raise RuntimeError("no healthy replica")
