"""Proactive recovery scheduling.

Spire periodically *rejuvenates* replicas — restarting them from a clean,
freshly-diversified image — so that an undetected intrusion is bounded in
time. The scheduler here rotates through the replicas, taking at most
``k`` down at once (which is exactly what the ``2k`` term in
``3f + 2k + 1`` budgets for), and coordinates with the diversity manager
to re-randomize the rejuvenated replica's variant.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..obs import (
    COMP_RECOVERY_SCHEDULER,
    EV_REJUVENATE_DEFERRED,
    EV_REJUVENATE_DONE,
    EV_REJUVENATE_START,
    EventLog,
    Observability,
    resolve_obs,
)
from ..simnet import Process, Simulator

__all__ = ["ProactiveRecoveryScheduler"]


class ProactiveRecoveryScheduler:
    """Round-robin rejuvenation of a replica set."""

    def __init__(
        self,
        simulator: Simulator,
        replicas: List[Process],
        period_ms: float,
        recovery_duration_ms: float,
        max_concurrent: int = 1,
        trace: Optional[EventLog] = None,
        on_rejuvenate: Optional[Callable[[Process], None]] = None,
        min_live: Optional[int] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        if max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        self.simulator = simulator
        self.replicas = list(replicas)
        self.period_ms = period_ms
        self.recovery_duration_ms = recovery_duration_ms
        self.max_concurrent = max_concurrent
        self.trace = trace
        self.obs = resolve_obs(obs, trace)
        self.on_rejuvenate = on_rejuvenate
        #: never start a rejuvenation that would leave fewer than this many
        #: replicas live (deployments pass the ordering quorum 2f+k+1);
        #: None preserves the unguarded behaviour for unit scenarios.
        self.min_live = min_live
        self._next_index = 0
        self._in_recovery = 0
        self._stop: Optional[Callable[[], None]] = None
        self.recoveries_started = 0
        self.recoveries_completed = 0
        self.skipped = 0
        #: rounds deferred because rejuvenating would have dropped the live
        #: replica count below ``min_live`` (graceful degradation metric)
        self.deferred_rounds = 0

    # ------------------------------------------------------------------
    def start(self, first_delay_ms: Optional[float] = None) -> None:
        """Begin the rejuvenation rotation."""
        self._stop = self.simulator.call_every(
            self.period_ms,
            self._rejuvenate_next,
            first_delay=first_delay_ms,
            rng_name="recovery-scheduler",
        )

    def stop(self) -> None:
        if self._stop is not None:
            self._stop()
            self._stop = None

    # ------------------------------------------------------------------
    @property
    def live_count(self) -> int:
        return sum(1 for replica in self.replicas if replica.is_up)

    def _rejuvenate_next(self) -> None:
        if self._in_recovery >= self.max_concurrent:
            self.skipped += 1
            return
        if self.min_live is not None and self.live_count - 1 < self.min_live:
            # Taking another replica down now (e.g. while others are crashed
            # or under attack) would sacrifice the ordering quorum for the
            # whole rejuvenation window. Defer this round; the rotation
            # resumes once enough replicas are back.
            self.deferred_rounds += 1
            self.obs.event(COMP_RECOVERY_SCHEDULER, EV_REJUVENATE_DEFERRED,
                           live=self.live_count, min_live=self.min_live)
            return
        candidates = len(self.replicas)
        for _ in range(candidates):
            replica = self.replicas[self._next_index % candidates]
            self._next_index += 1
            if replica.is_up:
                self._begin(replica)
                return
        self.skipped += 1

    def _begin(self, replica: Process) -> None:
        self._in_recovery += 1
        self.recoveries_started += 1
        self.obs.event(COMP_RECOVERY_SCHEDULER, EV_REJUVENATE_START,
                       replica=replica.name)
        replica.crash()
        self.simulator.schedule(self.recovery_duration_ms, self._finish, replica)

    def _finish(self, replica: Process) -> None:
        self._in_recovery -= 1
        self.recoveries_completed += 1
        if self.on_rejuvenate is not None:
            self.on_rejuvenate(replica)
        replica.recover()
        self.obs.event(COMP_RECOVERY_SCHEDULER, EV_REJUVENATE_DONE,
                       replica=replica.name)
