"""Proactive recovery: pluggable rejuvenation strategies.

Spire periodically *rejuvenates* replicas — restarting them from a clean,
freshly-diversified image — so that an undetected intrusion is bounded in
time. The machinery shared by every strategy lives in
:class:`RecoveryStrategy`: crash/recover lifecycle, the ``max_concurrent``
cap (the ``2k`` term in ``3f + 2k + 1`` budgets for ``k`` simultaneous
recoveries), the hard ``2f+k+1`` live-quorum floor (rejuvenations that
would break the ordering quorum are *deferred*, never started), and the
obs events/gauges every strategy reports through.

Two strategies implement *when* to rejuvenate *which* replica:

* :class:`PeriodicStrategy` (alias :class:`ProactiveRecoveryScheduler`,
  the historical name) — the paper's fixed schedule: round-robin through
  the replica set every ``period_ms``.
* :class:`~repro.control.FeedbackStrategy` — the adaptive controller in
  ``repro.control``: watches ``repro.obs`` health signals and targets the
  most-suspect replica, falling back to the periodic rotation when the
  signals are quiet.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..obs import (
    COMP_RECOVERY_SCHEDULER,
    EV_REJUVENATE_DEFERRED,
    EV_REJUVENATE_DONE,
    EV_REJUVENATE_START,
    EventLog,
    Observability,
    resolve_obs,
)
from ..simnet import Process, Simulator

__all__ = [
    "RecoveryStrategy",
    "PeriodicStrategy",
    "ProactiveRecoveryScheduler",
]


class RecoveryStrategy:
    """Shared rejuvenation machinery; subclasses decide when and whom.

    A strategy owns the crash→recover lifecycle of each rejuvenation and
    the safety bookkeeping around it; subclasses implement :meth:`start`
    (arming their timers) and call :meth:`_try_rejuvenate` /
    :meth:`_begin` to act. All counters double as ``repro.obs`` gauges
    (``recovery.recoveries_started`` / ``recovery.recoveries_completed`` /
    ``recovery.deferred_rounds``) so they land in scenario reports.
    """

    def __init__(
        self,
        simulator: Simulator,
        replicas: List[Process],
        recovery_duration_ms: float,
        max_concurrent: int = 1,
        trace: Optional[EventLog] = None,
        on_rejuvenate: Optional[Callable[[Process], None]] = None,
        min_live: Optional[int] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        if max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        self.simulator = simulator
        self.replicas = list(replicas)
        self.recovery_duration_ms = recovery_duration_ms
        self.max_concurrent = max_concurrent
        self.trace = trace
        self.obs = resolve_obs(obs, trace)
        self.on_rejuvenate = on_rejuvenate
        #: never start a rejuvenation that would leave fewer than this many
        #: replicas live (deployments pass the ordering quorum 2f+k+1);
        #: None preserves the unguarded behaviour for unit scenarios.
        self.min_live = min_live
        self._in_recovery = 0
        #: names of replicas currently inside a strategy-initiated
        #: rejuvenation window (their downtime is expected — the feedback
        #: controller must not read it as crash evidence)
        self._recovering: set = set()
        self._stop: Optional[Callable[[], None]] = None
        self.recoveries_started = 0
        self.recoveries_completed = 0
        self.skipped = 0
        #: rounds deferred because rejuvenating would have dropped the live
        #: replica count below ``min_live`` (graceful degradation metric)
        self.deferred_rounds = 0
        if self.obs.enabled:
            self._g_started = self.obs.gauge("recovery.recoveries_started")
            self._g_completed = self.obs.gauge("recovery.recoveries_completed")
            self._g_deferred = self.obs.gauge("recovery.deferred_rounds")
        else:
            self._g_started = self._g_completed = self._g_deferred = None

    # ------------------------------------------------------------------
    def start(self, first_delay_ms: Optional[float] = None) -> None:
        """Arm the strategy's timers (idempotent: re-arming stops any
        previous rotation first, so no timer leaks)."""
        raise NotImplementedError

    def stop(self) -> None:
        if self._stop is not None:
            self._stop()
            self._stop = None

    # ------------------------------------------------------------------
    @property
    def live_count(self) -> int:
        return sum(1 for replica in self.replicas if replica.is_up)

    def _defer_if_below_floor(self) -> bool:
        """True (and one deferred round recorded) when starting another
        rejuvenation now would drop the live count below ``min_live``.

        Taking another replica down while others are crashed or under
        attack would sacrifice the ordering quorum for the whole
        rejuvenation window, so strategies defer the round instead; the
        rotation resumes once enough replicas are back.
        """
        if self.min_live is None or self.live_count - 1 >= self.min_live:
            return False
        self.deferred_rounds += 1
        if self._g_deferred is not None:
            self._g_deferred.set(self.deferred_rounds)
        self.obs.event(COMP_RECOVERY_SCHEDULER, EV_REJUVENATE_DEFERRED,
                       live=self.live_count, min_live=self.min_live)
        return True

    def _try_rejuvenate(self, replica: Process) -> bool:
        """Start rejuvenating ``replica`` unless the live-quorum floor
        blocks it (deferred) — returns whether it started."""
        if self._defer_if_below_floor():
            return False
        self._begin(replica)
        return True

    def _begin(self, replica: Process) -> None:
        self._in_recovery += 1
        self._recovering.add(replica.name)
        self.recoveries_started += 1
        if self._g_started is not None:
            self._g_started.set(self.recoveries_started)
        self.obs.event(COMP_RECOVERY_SCHEDULER, EV_REJUVENATE_START,
                       replica=replica.name)
        replica.crash()
        self.simulator.schedule(self.recovery_duration_ms, self._finish, replica)

    def _finish(self, replica: Process) -> None:
        self._in_recovery -= 1
        self._recovering.discard(replica.name)
        self.recoveries_completed += 1
        if self._g_completed is not None:
            self._g_completed.set(self.recoveries_completed)
        if self.on_rejuvenate is not None:
            self.on_rejuvenate(replica)
        replica.recover()
        self.obs.event(COMP_RECOVERY_SCHEDULER, EV_REJUVENATE_DONE,
                       replica=replica.name)


class PeriodicStrategy(RecoveryStrategy):
    """Round-robin rejuvenation of a replica set on a fixed schedule."""

    def __init__(
        self,
        simulator: Simulator,
        replicas: List[Process],
        period_ms: float,
        recovery_duration_ms: float,
        max_concurrent: int = 1,
        trace: Optional[EventLog] = None,
        on_rejuvenate: Optional[Callable[[Process], None]] = None,
        min_live: Optional[int] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        super().__init__(
            simulator, replicas, recovery_duration_ms,
            max_concurrent=max_concurrent, trace=trace,
            on_rejuvenate=on_rejuvenate, min_live=min_live, obs=obs,
        )
        self.period_ms = period_ms
        self._next_index = 0

    # ------------------------------------------------------------------
    def start(self, first_delay_ms: Optional[float] = None) -> None:
        """Begin the rejuvenation rotation (stopping any previous one, so
        a repeated ``start()`` never leaks the old periodic timer)."""
        self.stop()
        self._stop = self.simulator.call_every(
            self.period_ms,
            self._rejuvenate_next,
            first_delay=first_delay_ms,
            rng_name="recovery-scheduler",
        )

    # ------------------------------------------------------------------
    def _rejuvenate_next(self) -> None:
        if self._in_recovery >= self.max_concurrent:
            self.skipped += 1
            return
        if self._defer_if_below_floor():
            return
        candidates = len(self.replicas)
        for _ in range(candidates):
            replica = self.replicas[self._next_index % candidates]
            self._next_index += 1
            if replica.is_up:
                self._begin(replica)
                return
        self.skipped += 1


#: Historical name for the fixed-schedule strategy; kept as the public
#: API (tests, examples and the campaign layer construct it directly).
ProactiveRecoveryScheduler = PeriodicStrategy
