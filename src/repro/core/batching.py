"""Knobs of batched ordering and Merkle-amortized delivery crypto.

One frozen :class:`BatchingOptions` parameterizes the batch path end to
end: how many client updates a pre-order batch may hold, how long the
origin waits before flushing a partial batch, and whether the amortized
delivery path (one threshold signature over the Merkle root of a batch,
per-update inclusion proofs) is engaged at all. Attach it to a deployment
via ``SpireOptions(batching=BatchingOptions(enabled=True))``.

Determinism contract: batch boundaries are a function of the *agreed*
order (the certified pre-order request each update arrived in), never of
local clocks, so every correct replica signs the identical batch record
and shares combine. With ``enabled=False`` — or ``max_batch_size=1``,
where a batch is a single update — the deployment takes the exact legacy
per-update delivery path and is bit-identical to an unbatched run.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Optional

__all__ = ["BatchingOptions"]


@dataclass(frozen=True)
class BatchingOptions:
    """Configuration of batched ordering + amortized delivery crypto."""

    #: master switch; off keeps the per-update delivery path untouched
    enabled: bool = False
    #: max client updates per pre-order batch (flush when full); 1 means
    #: every batch is a singleton and the legacy path is used verbatim
    max_batch_size: int = 64
    #: max time a partial batch may wait before flushing; ``None``
    #: inherits the deployment's pre-order aggregation interval
    max_batch_delay_ms: Optional[float] = None

    @property
    def active(self) -> bool:
        """True when the amortized batch path actually engages."""
        return self.enabled and self.max_batch_size > 1

    def validate(self) -> "BatchingOptions":
        """Reject inconsistent knobs with actionable errors; chains."""
        if self.max_batch_size < 1:
            raise ValueError(
                f"max_batch_size must be >= 1 (got {self.max_batch_size})"
            )
        if self.max_batch_delay_ms is not None:
            if not self.enabled:
                raise ValueError(
                    "max_batch_delay_ms is set but batching is disabled; "
                    "set enabled=True or drop the delay"
                )
            if self.max_batch_delay_ms <= 0:
                raise ValueError(
                    f"max_batch_delay_ms must be positive or None "
                    f"(got {self.max_batch_delay_ms})"
                )
        if not self.enabled and self.max_batch_size != 64:
            # a tuned size with the switch off is almost certainly a
            # forgotten enabled=True — fail loudly instead of silently
            # running unbatched
            raise ValueError(
                f"max_batch_size={self.max_batch_size} is set but batching "
                "is disabled; set enabled=True or drop the size"
            )
        return self

    # --- (de)serialization for scenario files -------------------------
    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "BatchingOptions":
        names = {f.name for f in dataclasses.fields(BatchingOptions)}
        return BatchingOptions(
            **{key: value for key, value in data.items() if key in names}
        )
