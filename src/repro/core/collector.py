"""Threshold-share collection at endpoints (proxies and HMIs).

An endpoint receives :class:`DeliveryShare` messages from individual
replicas. It may act on a delivery record only once it can produce — and
verify — a combined threshold signature from ``threshold`` distinct shares.
Corrupted shares from compromised replicas are tolerated by robust
combining; duplicate records (delivered again after retries or view
changes) are deduplicated by record key.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..crypto.provider import CryptoProvider, ThresholdSignature
from .update import DeliveryRecord, DeliveryShare

__all__ = ["DeliveryCollector"]


class DeliveryCollector:
    """Collects shares and yields verified, deduplicated records."""

    def __init__(
        self,
        crypto: CryptoProvider,
        group: str,
        max_pending: int = 10_000,
    ) -> None:
        self.crypto = crypto
        self.group = group
        self.max_pending = max_pending
        #: record key -> record digest variants -> shares by sender
        self._pending: Dict[Tuple, Dict[DeliveryRecord, Dict[str, DeliveryShare]]] = {}
        self._done: Set[Tuple] = set()
        self.verified = 0
        self.rejected_shares = 0

    def add(self, share: DeliveryShare) -> Optional[Tuple[DeliveryRecord, ThresholdSignature]]:
        """Add one share; returns (record, signature) on first verification."""
        record = share.record
        key = record.key()
        if key in self._done:
            return None
        variants = self._pending.setdefault(key, {})
        by_sender = variants.setdefault(record, {})
        by_sender[share.sender] = share
        _, threshold = self.crypto.threshold_parameters(self.group)
        if len(by_sender) < threshold:
            return None
        signature = self.crypto.threshold_combine(
            self.group, record, [s.share for s in by_sender.values()]
        )
        if signature is None:
            # some shares were corrupt; wait for more honest ones
            self.rejected_shares += 1
            return None
        if not self.crypto.threshold_verify(signature, record):
            self.rejected_shares += 1
            return None
        self._done.add(key)
        del self._pending[key]
        if len(self._done) > self.max_pending:
            # bounded memory: forget oldest half (keys are unordered; this
            # only affects very-long-lived endpoints re-seeing old records)
            for old in list(self._done)[: self.max_pending // 2]:
                self._done.discard(old)
        self.verified += 1
        return record, signature

    @property
    def pending_records(self) -> int:
        return len(self._pending)
