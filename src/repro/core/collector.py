"""Threshold-share collection at endpoints (proxies and HMIs).

An endpoint receives :class:`DeliveryShare` messages from individual
replicas. It may act on a delivery record only once it can produce — and
verify — a combined threshold signature from ``threshold`` distinct shares.
Corrupted shares from compromised replicas are tolerated by robust
combining; duplicate records (delivered again after retries or view
changes) are deduplicated by record key.

On the batched path the unit of threshold signing is a
:class:`BatchDeliveryRecord` — one signature covers a whole ordered batch
via its Merkle root — and :meth:`DeliveryCollector.add_batch` releases the
individual records it carries after checking each entry's inclusion proof
against the signed root. A combined batch signature is cached, so entries
arriving later (e.g. a command-target proxy receiving only its slice)
verify against the cache without re-combining.

Share bookkeeping rides on the replication runtime's
:class:`~repro.replication.quorum.ThresholdShareTracker`: one share per
sender per content variant, so neither duplicates nor a Byzantine
replica's alternate-root shares can fake reaching the threshold.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Set, Tuple

from ..crypto.encoding import digest
from ..crypto.merkle import verify_merkle_proof
from ..crypto.provider import CryptoProvider, ThresholdSignature
from ..replication import ThresholdShareTracker
from .update import BatchDeliveryShare, DeliveryRecord, DeliveryShare

__all__ = ["DeliveryCollector"]


class DeliveryCollector:
    """Collects shares and yields verified, deduplicated records."""

    def __init__(
        self,
        crypto: CryptoProvider,
        group: str,
        max_pending: int = 10_000,
    ) -> None:
        self.crypto = crypto
        self.group = group
        self.max_pending = max_pending
        #: record/batch key -> content variant -> sender -> incoming share
        self._tracker = ThresholdShareTracker()
        self._done: Set[Tuple] = set()
        #: batch key -> (batch record, combined signature), for entries
        #: that arrive after the batch signature was first combined
        self._batch_signatures: "OrderedDict[Tuple, Tuple]" = OrderedDict()
        self._batch_signature_cap = 2000
        self.verified = 0
        self.rejected_shares = 0
        self.rejected_entries = 0

    def add(self, share: DeliveryShare) -> Optional[Tuple[DeliveryRecord, ThresholdSignature]]:
        """Add one share; returns (record, signature) on first verification."""
        record = share.record
        key = record.key()
        if key in self._done:
            return None
        self._tracker.add(key, record, share.sender, share)
        _, threshold = self.crypto.threshold_parameters(self.group)
        if not self._tracker.ready(key, record, threshold):
            return None
        signature = self._combine(record, self._tracker.shares(key, record))
        if signature is None:
            return None
        self._mark_done(key)
        self._tracker.drop(key)
        self.verified += 1
        return record, signature

    def add_batch(
        self, share: BatchDeliveryShare
    ) -> List[Tuple[DeliveryRecord, ThresholdSignature]]:
        """Add one batch share; returns every record newly released by it.

        A record is released once (a) a combined threshold signature over
        its batch exists — freshly combined here or cached from an earlier
        share — and (b) its Merkle inclusion proof checks out against the
        signed root. Entries failing (b) are dropped individually
        (``rejected_entries``); they cannot poison their batch-mates.
        """
        batch = share.batch
        key = batch.key()
        signature = None
        cached = self._batch_signatures.get(key)
        if cached is not None and cached[0] == batch:
            signature = cached[1]
        if signature is None:
            self._tracker.add(key, batch, share.sender, share)
            _, threshold = self.crypto.threshold_parameters(self.group)
            if not self._tracker.ready(key, batch, threshold):
                return []
            tracked_shares = self._tracker.shares(key, batch)
            signature = self._combine(batch, tracked_shares)
            if signature is None:
                return []
            self._tracker.drop(key)
            self._batch_signatures[key] = (batch, signature)
            while len(self._batch_signatures) > self._batch_signature_cap:
                self._batch_signatures.popitem(last=False)
            # release every entry seen so far for this batch, from any
            # sender whose share we tracked (proofs pin them to the root)
            entries = {}
            for tracked in tracked_shares:
                for entry in tracked.entries:
                    entries.setdefault(entry.index, entry)
            candidates = [entries[i] for i in sorted(entries)]
        else:
            candidates = list(share.entries)
        released = []
        for entry in candidates:
            record_key = entry.record.key()
            if record_key in self._done:
                continue
            if not verify_merkle_proof(
                digest(entry.record),
                entry.index,
                batch.count,
                entry.proof,
                batch.merkle_root,
            ):
                self.rejected_entries += 1
                continue
            self._mark_done(record_key)
            self.verified += 1
            released.append((entry.record, signature))
        return released

    # ------------------------------------------------------------------
    def _combine(self, message, shares) -> Optional[ThresholdSignature]:
        """Robust-combine tracked shares over ``message``; None keeps the
        shares pending so more honest ones can still succeed later."""
        signature = self.crypto.threshold_combine(
            self.group, message, [s.share for s in shares]
        )
        if signature is None:
            # some shares were corrupt; wait for more honest ones
            self.rejected_shares += 1
            return None
        if not self.crypto.threshold_verify(signature, message):
            self.rejected_shares += 1
            return None
        return signature

    def _mark_done(self, key: Tuple) -> None:
        self._done.add(key)
        if len(self._done) > self.max_pending:
            # bounded memory: forget oldest half (keys are unordered; this
            # only affects very-long-lived endpoints re-seeing old records)
            for old in list(self._done)[: self.max_pending // 2]:
                self._done.discard(old)

    @property
    def pending_records(self) -> int:
        return len(self._tracker)
