"""Payload and wire types of the Spire application layer.

Data flow (paper architecture):

* RTU proxies poll field devices over Modbus and package readings as
  :class:`StatusReading` payloads inside signed ``ClientUpdate``s, which
  they submit to a SCADA-master replica (:class:`UpdateSubmission`).
* HMIs submit :class:`BreakerCommand` payloads the same way.
* Every replica that executes an update through the agreed order produces
  a :class:`DeliveryRecord` and sends its threshold-signature share
  (:class:`DeliveryShare`) to the interested endpoints; an endpoint that
  collects ``f + 1`` matching shares combines them into one compact
  threshold signature and acts on the record — so a proxy never operates a
  breaker, and an HMI never updates its display, on the say-so of fewer
  than one correct replica.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

from ..crypto.encoding import digest
from ..crypto.merkle import merkle_proof, merkle_root
from ..crypto.provider import ThresholdShare, ThresholdSignature
from ..prime.messages import ClientUpdate

__all__ = [
    "StatusReading",
    "BreakerCommand",
    "DeliveryRecord",
    "DeliveryShare",
    "BatchDeliveryRecord",
    "BatchEntry",
    "BatchDeliveryShare",
    "UpdateSubmission",
    "record_for",
    "batch_record_for",
]


@dataclass(frozen=True)
class StatusReading:
    """One polled snapshot of a substation's telemetry and breakers."""

    substation: str
    poll_seq: int
    polled_at: float
    measurements: Tuple[Tuple[str, float], ...]  # sorted (name, value)
    breakers: Tuple[Tuple[str, bool], ...]       # sorted (breaker_id, closed)

    def measurement(self, name: str) -> Optional[float]:
        for key, value in self.measurements:
            if key == name:
                return value
        return None


@dataclass(frozen=True)
class BreakerCommand:
    """An operator (or automation) request to operate a breaker."""

    substation: str
    breaker_id: str
    close: bool
    issued_by: str
    reason: str = ""


@dataclass(frozen=True)
class DeliveryRecord:
    """The agreed fact that an update executed at a global position.

    This is what gets threshold-signed: it binds the update identity and
    content to its execution order, so endpoints can safely deduplicate
    and order deliveries.
    """

    kind: str                 # "status" | "command"
    client: str
    client_seq: int
    order_index: int
    payload: Any              # the executed StatusReading / BreakerCommand

    def key(self) -> Tuple[str, str, int]:
        return (self.kind, self.client, self.client_seq)


@dataclass(frozen=True)
class DeliveryShare:
    """One replica's threshold share over a delivery record."""

    sender: str
    record: DeliveryRecord
    share: ThresholdShare


@dataclass(frozen=True)
class BatchDeliveryRecord:
    """The agreed fact that one ordered *batch* of updates executed.

    The batch unit is the executed-update set of one certified pre-order
    request ``(origin, po_seq)`` — identical at every correct replica by
    agreement — summarised by the Merkle root over the per-update
    :class:`DeliveryRecord` digests. This is what gets threshold-signed:
    one signature covers the whole batch, and each update is pinned to
    the root by its inclusion proof.
    """

    origin: str               # pre-order stream ("replica#epoch")
    po_seq: int               # pre-order sequence within the stream
    merkle_root: str          # root over the entries' record digests
    count: int                # leaves in the tree (executed updates)
    first_order_index: int    # global order index of the first entry

    def key(self) -> Tuple[str, str, int]:
        return ("batch", self.origin, self.po_seq)


@dataclass(frozen=True)
class BatchEntry:
    """One update of a batch: its record plus the Merkle inclusion proof
    tying the record to the batch's signed root."""

    index: int                        # leaf position in the batch
    record: DeliveryRecord
    proof: Tuple[str, ...]            # sibling digests, bottom-up


@dataclass(frozen=True)
class BatchDeliveryShare:
    """One replica's threshold share over a batch record, carrying only
    the entries the target endpoint cares about (never the whole batch
    unless the endpoint subscribes to everything)."""

    sender: str
    batch: BatchDeliveryRecord
    share: ThresholdShare
    entries: Tuple[BatchEntry, ...]


@dataclass(frozen=True)
class UpdateSubmission:
    """Endpoint -> replica: please order this client update."""

    update: ClientUpdate


def record_for(update: ClientUpdate, order_index: int) -> DeliveryRecord:
    """Build the canonical delivery record for an executed update."""
    kind = "command" if isinstance(update.payload, BreakerCommand) else "status"
    return DeliveryRecord(
        kind=kind,
        client=update.client,
        client_seq=update.client_seq,
        order_index=order_index,
        payload=update.payload,
    )


def batch_record_for(
    origin: str,
    po_seq: int,
    executed: Any,  # sequence of (ClientUpdate, order_index, result)
) -> Tuple[BatchDeliveryRecord, Tuple[BatchEntry, ...]]:
    """Build the batch record + proof-carrying entries for one executed
    pre-order request. Deterministic in the executed sequence, so every
    correct replica derives the identical root and signs the same thing."""
    records = [record_for(update, idx) for update, idx, _ in executed]
    leaves = [digest(record) for record in records]
    root = merkle_root(leaves)
    batch = BatchDeliveryRecord(
        origin=origin,
        po_seq=po_seq,
        merkle_root=root,
        count=len(records),
        first_order_index=records[0].order_index,
    )
    entries = tuple(
        BatchEntry(index=i, record=record, proof=merkle_proof(leaves, i))
        for i, record in enumerate(records)
    )
    return batch, entries
