"""Payload and wire types of the Spire application layer.

Data flow (paper architecture):

* RTU proxies poll field devices over Modbus and package readings as
  :class:`StatusReading` payloads inside signed ``ClientUpdate``s, which
  they submit to a SCADA-master replica (:class:`UpdateSubmission`).
* HMIs submit :class:`BreakerCommand` payloads the same way.
* Every replica that executes an update through the agreed order produces
  a :class:`DeliveryRecord` and sends its threshold-signature share
  (:class:`DeliveryShare`) to the interested endpoints; an endpoint that
  collects ``f + 1`` matching shares combines them into one compact
  threshold signature and acts on the record — so a proxy never operates a
  breaker, and an HMI never updates its display, on the say-so of fewer
  than one correct replica.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

from ..crypto.provider import ThresholdShare, ThresholdSignature
from ..prime.messages import ClientUpdate

__all__ = [
    "StatusReading",
    "BreakerCommand",
    "DeliveryRecord",
    "DeliveryShare",
    "UpdateSubmission",
    "record_for",
]


@dataclass(frozen=True)
class StatusReading:
    """One polled snapshot of a substation's telemetry and breakers."""

    substation: str
    poll_seq: int
    polled_at: float
    measurements: Tuple[Tuple[str, float], ...]  # sorted (name, value)
    breakers: Tuple[Tuple[str, bool], ...]       # sorted (breaker_id, closed)

    def measurement(self, name: str) -> Optional[float]:
        for key, value in self.measurements:
            if key == name:
                return value
        return None


@dataclass(frozen=True)
class BreakerCommand:
    """An operator (or automation) request to operate a breaker."""

    substation: str
    breaker_id: str
    close: bool
    issued_by: str
    reason: str = ""


@dataclass(frozen=True)
class DeliveryRecord:
    """The agreed fact that an update executed at a global position.

    This is what gets threshold-signed: it binds the update identity and
    content to its execution order, so endpoints can safely deduplicate
    and order deliveries.
    """

    kind: str                 # "status" | "command"
    client: str
    client_seq: int
    order_index: int
    payload: Any              # the executed StatusReading / BreakerCommand

    def key(self) -> Tuple[str, str, int]:
        return (self.kind, self.client, self.client_seq)


@dataclass(frozen=True)
class DeliveryShare:
    """One replica's threshold share over a delivery record."""

    sender: str
    record: DeliveryRecord
    share: ThresholdShare


@dataclass(frozen=True)
class UpdateSubmission:
    """Endpoint -> replica: please order this client update."""

    update: ClientUpdate


def record_for(update: ClientUpdate, order_index: int) -> DeliveryRecord:
    """Build the canonical delivery record for an executed update."""
    kind = "command" if isinstance(update.payload, BreakerCommand) else "status"
    return DeliveryRecord(
        kind=kind,
        client=update.client,
        client_seq=update.client_seq,
        order_index=order_index,
        payload=update.payload,
    )
