"""The replicated SCADA master application.

This is the state machine executed on top of Prime: it maintains the
authoritative view of the grid (latest telemetry per substation, breaker
intent, alarms, command history). Everything in :meth:`execute` is
deterministic, so all correct replicas hold identical master state — the
property the intrusion-tolerance argument rests on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..prime.app import ReplicatedApplication
from ..prime.messages import ClientUpdate
from .update import BreakerCommand, StatusReading

__all__ = ["ScadaMasterApp", "Alarm"]

#: alarm thresholds (kV / Hz) — chosen for the 138 kV model grid
UNDERVOLTAGE_KV = 124.0
OVERVOLTAGE_KV = 152.0
FREQ_LOW_HZ = 59.5
FREQ_HIGH_HZ = 60.5


@dataclass(frozen=True)
class Alarm:
    substation: str
    kind: str
    value: float
    order_index: int


class ScadaMasterApp(ReplicatedApplication):
    """Deterministic SCADA master state."""

    # Observability counters aggregated across all replicas' apps. Class
    # defaults (not set in __init__) so a ``restore`` that re-inits the
    # state machine cannot unbind them; they count *apply operations*, not
    # restorable state, so they are never part of snapshots.
    _obs_status = None
    _obs_commands = None
    _obs_stale = None

    def bind_obs(self, obs) -> None:
        """Mirror apply counters into an ``repro.obs`` recorder."""
        if obs is not None and getattr(obs, "enabled", False):
            self._obs_status = obs.counter("master.status_applied")
            self._obs_commands = obs.counter("master.commands_applied")
            self._obs_stale = obs.counter("master.stale_dropped")

    def __init__(self, max_command_log: int = 1000) -> None:
        self.max_command_log = max_command_log
        #: substation -> latest accepted StatusReading (as payload object)
        self.latest_status: Dict[str, StatusReading] = {}
        #: (substation, breaker_id) -> commanded position
        self.breaker_intent: Dict[Tuple[str, str], bool] = {}
        #: active alarms keyed (substation, kind)
        self.alarms: Dict[Tuple[str, str], Alarm] = {}
        self.command_log: List[Tuple[int, str, str, str, bool]] = []
        self.status_updates_applied = 0
        self.commands_applied = 0
        self.stale_updates_dropped = 0

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, update: ClientUpdate, order_index: int) -> Any:
        payload = update.payload
        if isinstance(payload, StatusReading):
            return self._apply_status(payload, order_index)
        if isinstance(payload, BreakerCommand):
            return self._apply_command(payload, order_index)
        return ("rejected", "unknown-payload")

    def _apply_status(self, reading: StatusReading, order_index: int) -> Any:
        current = self.latest_status.get(reading.substation)
        if current is not None and current.poll_seq >= reading.poll_seq:
            self.stale_updates_dropped += 1
            if self._obs_stale is not None:
                self._obs_stale.inc()
            return ("stale", reading.substation)
        self.latest_status[reading.substation] = reading
        self.status_updates_applied += 1
        if self._obs_status is not None:
            self._obs_status.inc()
        self._update_alarms(reading, order_index)
        return ("status-accepted", reading.substation)

    def _update_alarms(self, reading: StatusReading, order_index: int) -> None:
        voltage = reading.measurement("voltage_kv") or 0.0
        frequency = reading.measurement("frequency_hz") or 0.0
        energized = (reading.measurement("energized") or 0.0) > 0.5
        checks = []
        if energized:
            if voltage < UNDERVOLTAGE_KV:
                checks.append(("undervoltage", voltage))
            if voltage > OVERVOLTAGE_KV:
                checks.append(("overvoltage", voltage))
            if frequency < FREQ_LOW_HZ:
                checks.append(("underfrequency", frequency))
            if frequency > FREQ_HIGH_HZ:
                checks.append(("overfrequency", frequency))
        else:
            checks.append(("de-energized", 0.0))
        active_kinds = {kind for kind, _ in checks}
        for kind, value in checks:
            self.alarms[(reading.substation, kind)] = Alarm(
                reading.substation, kind, value, order_index
            )
        for key in [
            k for k in self.alarms
            if k[0] == reading.substation and k[1] not in active_kinds
        ]:
            del self.alarms[key]

    def _apply_command(self, command: BreakerCommand, order_index: int) -> Any:
        self.breaker_intent[(command.substation, command.breaker_id)] = command.close
        self.commands_applied += 1
        if self._obs_commands is not None:
            self._obs_commands.inc()
        self.command_log.append(
            (order_index, command.issued_by, command.substation,
             command.breaker_id, command.close)
        )
        if len(self.command_log) > self.max_command_log:
            del self.command_log[: len(self.command_log) - self.max_command_log]
        return ("command-accepted", command.substation, command.breaker_id)

    # ------------------------------------------------------------------
    # Queries (read-only; used by HMIs via delivered state and by tests)
    # ------------------------------------------------------------------
    def substation_view(self, substation: str) -> Optional[StatusReading]:
        return self.latest_status.get(substation)

    def active_alarms(self) -> List[Alarm]:
        return sorted(self.alarms.values(), key=lambda a: (a.substation, a.kind))

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------
    def snapshot(self) -> Any:
        return {
            "status": {k: v for k, v in sorted(self.latest_status.items())},
            "intent": {f"{s}|{b}": v for (s, b), v in sorted(self.breaker_intent.items())},
            "alarms": {f"{s}|{k}": (a.value, a.order_index)
                       for (s, k), a in sorted(self.alarms.items())},
            "command_log": tuple(self.command_log),
            "counters": (
                self.status_updates_applied,
                self.commands_applied,
                self.stale_updates_dropped,
            ),
        }

    def restore(self, snapshot: Any) -> None:
        if not snapshot:
            self.__init__(self.max_command_log)
            return
        self.latest_status = dict(snapshot["status"])
        self.breaker_intent = {
            tuple(key.split("|", 1)): value
            for key, value in snapshot["intent"].items()
        }
        self.alarms = {}
        for key, (value, order_index) in snapshot["alarms"].items():
            substation, kind = key.split("|", 1)
            self.alarms[(substation, kind)] = Alarm(substation, kind, value, order_index)
        self.command_log = [tuple(entry) for entry in snapshot["command_log"]]
        counters = snapshot["counters"]
        self.status_updates_applied = counters[0]
        self.commands_applied = counters[1]
        self.stale_updates_dropped = counters[2]
