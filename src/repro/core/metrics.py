"""Measurement utilities used by tests, examples and benchmarks.

The paper reports end-to-end *update latency* (poll at the proxy → verified
delivery at the HMI/proxy) as distributions (mean / percentiles / CDF) and
as timelines during attacks, plus availability over intervals. These
classes collect exactly those series from the simulation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["LatencyStats", "LatencyRecorder", "IntervalSeries"]


@dataclass(frozen=True)
class LatencyStats:
    """Summary statistics over a latency sample (all in ms)."""

    count: int
    mean: float
    median: float
    p90: float
    p99: float
    p999: float
    maximum: float
    minimum: float

    @staticmethod
    def from_samples(samples: Sequence[float]) -> "LatencyStats":
        if not samples:
            return LatencyStats(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        ordered = sorted(samples)

        def percentile(p: float) -> float:
            index = min(len(ordered) - 1, max(0, math.ceil(p * len(ordered)) - 1))
            return ordered[index]

        # fsum avoids catastrophic rounding on pathological inputs
        # (e.g. subnormal samples); the clamp pins the remaining one-ulp
        # division error inside [minimum, maximum].
        mean = math.fsum(ordered) / len(ordered)
        return LatencyStats(
            count=len(ordered),
            mean=min(max(mean, ordered[0]), ordered[-1]),
            median=percentile(0.50),
            p90=percentile(0.90),
            p99=percentile(0.99),
            p999=percentile(0.999),
            maximum=ordered[-1],
            minimum=ordered[0],
        )

    def row(self) -> str:
        return (
            f"n={self.count:7d}  mean={self.mean:8.2f}  median={self.median:8.2f}  "
            f"p90={self.p90:8.2f}  p99={self.p99:8.2f}  p99.9={self.p999:8.2f}  "
            f"max={self.maximum:8.2f}"
        )


class LatencyRecorder:
    """Tracks per-item submit → acknowledge latency, keyed arbitrarily."""

    def __init__(self) -> None:
        self._submitted: Dict[Tuple, float] = {}
        #: (ack_time, latency) pairs in acknowledgement order
        self.samples: List[Tuple[float, float]] = []
        self.duplicates = 0

    def submitted(self, key: Tuple, at: float) -> None:
        self._submitted.setdefault(key, at)

    def acknowledged(self, key: Tuple, at: float) -> Optional[float]:
        """Record completion; returns the latency (None for unknown/dup)."""
        start = self._submitted.pop(key, None)
        if start is None:
            self.duplicates += 1
            return None
        latency = at - start
        self.samples.append((at, latency))
        return latency

    @property
    def outstanding(self) -> int:
        return len(self._submitted)

    def latencies(self, since: float = 0.0, until: Optional[float] = None) -> List[float]:
        return [
            latency for at, latency in self.samples
            if at >= since and (until is None or at <= until)
        ]

    def stats(self, since: float = 0.0, until: Optional[float] = None) -> LatencyStats:
        return LatencyStats.from_samples(self.latencies(since, until))

    def cdf(self, points: int = 100) -> List[Tuple[float, float]]:
        """(latency, cumulative fraction) pairs for CDF plots/tables."""
        values = sorted(latency for _, latency in self.samples)
        if not values:
            return []
        step = max(1, len(values) // points)
        out = []
        for index in range(0, len(values), step):
            out.append((values[index], (index + 1) / len(values)))
        out.append((values[-1], 1.0))
        return out

    def timeline(self, bucket_ms: float) -> List[Tuple[float, float, int]]:
        """(bucket_start, mean_latency, count) series for attack plots."""
        buckets: Dict[int, List[float]] = {}
        for at, latency in self.samples:
            buckets.setdefault(int(at // bucket_ms), []).append(latency)
        return [
            (index * bucket_ms, sum(values) / len(values), len(values))
            for index, values in sorted(buckets.items())
        ]


class IntervalSeries:
    """Counts events per fixed interval (e.g. delivered updates/second) —
    the basis of the availability metric in the recovery and red-team
    experiments."""

    def __init__(self, interval_ms: float) -> None:
        self.interval_ms = interval_ms
        self._counts: Dict[int, int] = {}

    def record(self, at: float, count: int = 1) -> None:
        self._counts[int(at // self.interval_ms)] = (
            self._counts.get(int(at // self.interval_ms), 0) + count
        )

    def series(self, start_ms: float, end_ms: float) -> List[Tuple[float, int]]:
        first = int(start_ms // self.interval_ms)
        last = int(end_ms // self.interval_ms)
        return [
            (index * self.interval_ms, self._counts.get(index, 0))
            for index in range(first, last + 1)
        ]

    def availability(self, start_ms: float, end_ms: float, minimum: int = 1) -> float:
        """Fraction of intervals with at least ``minimum`` events."""
        series = self.series(start_ms, end_ms)
        if not series:
            return 0.0
        good = sum(1 for _, count in series if count >= minimum)
        return good / len(series)
