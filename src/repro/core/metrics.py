"""Measurement utilities used by tests, examples and benchmarks.

.. deprecated::
    These classes are now thin compatibility shims over the unified
    observability layer, kept working for one PR:

    * :class:`LatencyStats` is re-exported from
      :class:`repro.obs.LatencyStats` unchanged;
    * :class:`LatencyRecorder` subclasses
      :class:`repro.obs.LatencyTracker`;
    * :class:`IntervalSeries` subclasses
      :class:`repro.obs.IntervalCounter`.

    New code should obtain these instruments from a deployment's ``obs``
    handle (``deployment.obs.latency("hmi.command")``) so they appear in
    the registry snapshot and scenario reports automatically.

The paper reports end-to-end *update latency* (poll at the proxy → verified
delivery at the HMI/proxy) as distributions (mean / percentiles / CDF) and
as timelines during attacks, plus availability over intervals. These
classes collect exactly those series from the simulation.
"""

from __future__ import annotations

import warnings

from repro.obs.instruments import IntervalCounter, LatencyStats, LatencyTracker

__all__ = ["LatencyStats", "LatencyRecorder", "IntervalSeries"]


class LatencyRecorder(LatencyTracker):
    """Deprecated alias of :class:`repro.obs.LatencyTracker`.

    Only the constructor differs: the legacy recorder was anonymous, so
    ``name``/``deterministic`` stay at their defaults.
    """

    def __init__(self) -> None:
        warnings.warn(
            "repro.core.metrics.LatencyRecorder is deprecated; use "
            "repro.obs.LatencyTracker or a deployment's "
            "obs.latency(name) instrument instead",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__()


class IntervalSeries(IntervalCounter):
    """Deprecated alias of :class:`repro.obs.IntervalCounter`."""

    def __init__(self, interval_ms: float) -> None:
        warnings.warn(
            "repro.core.metrics.IntervalSeries is deprecated; use "
            "repro.obs.IntervalCounter or a deployment's "
            "obs.intervals(name) instrument instead",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(interval_ms)
