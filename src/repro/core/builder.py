"""Topology planning and wiring for Spire deployments.

``core/deployment.py`` used to be a 512-line monolith that planned the
replica placement, instantiated every component, and wired them together
inline.  Fleet-scale scenarios (``repro.fleet``) need to construct
deployments through the same machinery without inheriting the small-n
field layer, so the construction is split in two:

:class:`TopologyBuilder`
    Pure planning — placement of ``3f+2k+1`` replicas over the overlay
    sites, replica name/site layout, the Prime configuration, and the
    home sites for field devices and HMIs.  No simulator side effects,
    so plans are cheap to build and test at any ``n``.

:class:`DeploymentWiring`
    Imperative assembly — instantiates replicas, the field layer, and
    HMIs onto one deployment context and wires the subscriptions.  The
    small-n figures and the fleet scenarios both construct through this
    class; the fleet path swaps only the field stage
    (:func:`repro.fleet.deploy.build_fleet_field`).

Every operation happens in exactly the order the monolithic constructor
performed it, so existing runs stay bit-identical (pinned chaos/fig3/fig6
fingerprints enforce this).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from ..prime.config import PrimeConfig, lan_prime_config, wan_prime_config
from ..replication import OverlayTransport
from ..scada.grid import build_radial_grid
from ..scada.rtu import RtuDevice
from ..simnet import LinkSpec
from ..spines.topology import OverlayTopology
from .hmi import HmiClient
from .master import ScadaMasterApp
from .proxy import DeviceBinding, RtuProxy
from .replica import THRESHOLD_GROUP, SpireReplica

__all__ = ["TopologyBuilder", "DeploymentWiring"]


class TopologyBuilder:
    """Plans where everything goes before anything is instantiated."""

    def __init__(self, options, topology: OverlayTopology) -> None:
        self.options = options
        self.topology = topology

    # ------------------------------------------------------------------
    # Replica placement
    # ------------------------------------------------------------------
    def default_placement(self) -> Dict[str, int]:
        """Round-robin the required replicas across control/data sites,
        control centers first — the paper's 2+2+1+1 shape at n=6, and the
        same discipline at any n (n=31 gives 8+8+8+7)."""
        needed = 3 * self.options.f + 2 * self.options.k + 1
        site_names = [site.name for site in self.topology.sites
                      if site.kind in ("control", "data")]
        control_first = sorted(
            site_names,
            key=lambda name: (self.topology.site(name).kind != "control", name),
        )
        placement = {name: 0 for name in control_first}
        index = 0
        for _ in range(needed):
            placement[control_first[index % len(control_first)]] += 1
            index += 1
        return {name: count for name, count in placement.items() if count > 0}

    def replica_layout(
        self, placement: Dict[str, int]
    ) -> Tuple[List[str], List[str]]:
        """Replica names plus their site assignment, in deterministic
        (sorted-site, then index) order."""
        names: List[str] = []
        sites: List[str] = []
        for site_name in sorted(placement):
            for _ in range(placement[site_name]):
                names.append(f"replica:{len(names)}")
                sites.append(site_name)
        return names, sites

    def prime_config(self, names: List[str]) -> PrimeConfig:
        """The Prime configuration for the planned replica set, with the
        deployment's checkpoint/batching knobs applied."""
        opts = self.options
        preset = lan_prime_config if opts.prime_preset == "lan" else wan_prime_config
        config = preset(tuple(names), f=opts.f, k=opts.k)
        config = dataclasses.replace(
            config, checkpoint_interval_seqs=opts.checkpoint_interval_seqs
        )
        if opts.batching is not None and opts.batching.active:
            # Batch knobs map onto Prime's pre-order aggregation: the
            # origin's size+delay flush IS the batch cutter, so batch
            # boundaries are fixed by the agreed order, not local clocks.
            overrides = dict(
                delivery_batching=True,
                batch_max_updates=opts.batching.max_batch_size,
            )
            if opts.batching.max_batch_delay_ms is not None:
                overrides["batch_interval_ms"] = opts.batching.max_batch_delay_ms
            config = dataclasses.replace(config, **overrides)
        if opts.view_change_hardening:
            # Retransmit pending view-change/new-view messages at half the
            # view-change timeout — fast enough to beat the cascade timer,
            # slow enough not to flood — and require an f+1 view quorum
            # before a state-transfer adopts a higher view.
            config = dataclasses.replace(
                config,
                vc_retransmit_ms=config.view_change_timeout_ms / 2,
                strict_view_adoption=True,
            )
        return config

    # ------------------------------------------------------------------
    # Endpoint homes
    # ------------------------------------------------------------------
    def field_site(self) -> str:
        field_sites = [s.name for s in self.topology.sites_of_kind("field")]
        return field_sites[0] if field_sites else self.topology.sites[0].name

    def field_sites(self) -> List[str]:
        """All field sites (fleet regions are distributed across them)."""
        sites = [s.name for s in self.topology.sites_of_kind("field")]
        return sites or [self.topology.sites[0].name]

    def hmi_site(self) -> str:
        control_sites = [s.name for s in self.topology.sites_of_kind("control")]
        return control_sites[0] if control_sites else self.topology.sites[0].name


class DeploymentWiring:
    """Assembles components onto a deployment context.

    The context (a :class:`~repro.core.deployment.SpireDeployment`) owns
    the simulator, network, overlay, crypto, observability handle, and
    recorders; the wiring instantiates the component layers onto it in
    the canonical order: replicas → field → HMIs → subscriptions.
    """

    def __init__(self, deployment, builder: TopologyBuilder) -> None:
        self.deployment = deployment
        self.builder = builder

    # ------------------------------------------------------------------
    def build_replicas(self) -> None:
        d = self.deployment
        opts = d.options
        placement = opts.placement or self.builder.default_placement()
        d.placement = placement
        names, sites = self.builder.replica_layout(placement)
        config = self.builder.prime_config(names)
        d.prime_config = config
        d.crypto.create_threshold_group(
            THRESHOLD_GROUP, config.n, config.signing_threshold
        )
        d.replicas = []
        d.replica_sites = {}
        for name, site_name in zip(names, sites):
            app = ScadaMasterApp()
            app.bind_obs(d.obs)
            replica = SpireReplica(
                name, d.simulator, d.network, config, d.crypto,
                app=app, trace=d.trace, obs=d.obs,
            )
            stack = d.overlay.attach(replica, site_name)
            replica.transport = OverlayTransport(stack, obs=d.obs)
            d.diversity.assign(name)
            d.replicas.append(replica)
            d.replica_sites[name] = site_name

    # ------------------------------------------------------------------
    def build_field(self) -> None:
        """The small-n field layer: one radial grid, one RTU per
        substation, one proxy at the (single) field site."""
        d = self.deployment
        opts = d.options
        d.grid = build_radial_grid(
            num_substations=opts.num_substations, seed=opts.seed
        )
        d.field_site = self.builder.field_site()
        d.rtus = {}
        bindings: List[DeviceBinding] = []
        for unit_id, substation in enumerate(sorted(d.grid.substations), start=1):
            rtu = RtuDevice(
                f"rtu:{substation}", d.simulator, d.network,
                d.grid, substation, unit_id,
            )
            d.rtus[substation] = rtu
            bindings.append(
                DeviceBinding(
                    substation=substation,
                    device_name=rtu.name,
                    unit_id=unit_id,
                    coil_ids=tuple(rtu.coil_ids()),
                )
            )
        d.proxy = RtuProxy(
            "proxy:field", d.simulator, d.network, d.crypto,
            replicas=[r.name for r in d.replicas],
            devices=bindings,
            recorder=d.status_recorder,
            trace=d.trace,
            poll_interval_ms=opts.poll_interval_ms,
            resubmit_timeout_ms=opts.resubmit_timeout_ms,
            obs=d.obs,
        )
        d.proxy.stack = d.overlay.attach(d.proxy, d.field_site)
        for binding in bindings:
            d.network.set_link(
                d.proxy.name, binding.device_name,
                LinkSpec(latency_ms=0.3, jitter_ms=0.05),
            )

    # ------------------------------------------------------------------
    def build_hmis(self) -> None:
        d = self.deployment
        home = self.builder.hmi_site()
        d.hmis = []
        for index in range(d.options.num_hmis):
            hmi = HmiClient(
                f"hmi:{index}", d.simulator, d.network, d.crypto,
                replicas=[r.name for r in d.replicas],
                recorder=d.command_recorder,
                trace=d.trace,
                resubmit_timeout_ms=d.options.resubmit_timeout_ms,
                obs=d.obs,
            )
            hmi.stack = d.overlay.attach(hmi, home)
            d.hmis.append(hmi)

    # ------------------------------------------------------------------
    def wire(self) -> None:
        """Subscriptions and availability accounting (small-n path:
        every substation routes to the single field proxy)."""
        d = self.deployment
        for replica in d.replicas:
            for hmi in d.hmis:
                replica.add_subscriber(hmi.name)
            for substation in d.grid.substations:
                replica.register_proxy(substation, d.proxy.name)
        self.wire_delivery_accounting()

    def wire_delivery_accounting(self) -> None:
        """Availability accounting: every verified status delivery at
        HMI 0 ticks the delivery series."""
        d = self.deployment
        if d.hmis:
            original = d.hmis[0]._on_delivery_share

            def counted(share, _original=original):
                before = d.hmis[0].collector.verified
                _original(share)
                if d.hmis[0].collector.verified > before:
                    d.delivery_series.record(d.simulator.now)

            d.hmis[0]._on_delivery_share = counted
