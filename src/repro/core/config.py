"""Resilience-configuration framework (the paper's Table I).

Prime with ``n = 3f + 2k + 1`` replicas tolerates ``f`` simultaneous
intrusions while ``k`` replicas are down for proactive recovery. Spire
extends this to *site* resilience: replicas are spread over control
centers (which can command field devices) and data centers (which only
participate in ordering), such that after the failure or disconnection of
any single site the surviving replicas still satisfy the base requirement
— and at least one control center survives.

This module derives minimal balanced placements and generates the
configuration table the benchmarks print.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["ResilienceConfig", "minimal_replicas", "minimal_placement",
           "placement_survives", "configuration_table"]


def base_requirement(f: int, k: int) -> int:
    """Replicas required with no site-failure tolerance: 3f + 2k + 1."""
    return 3 * f + 2 * k + 1


def quorum(f: int, k: int) -> int:
    """Prime ordering quorum: 2f + k + 1."""
    return 2 * f + k + 1


@dataclass(frozen=True)
class ResilienceConfig:
    """A deployment shape: replica counts per site."""

    f: int
    k: int
    control_centers: Tuple[int, ...]   # replicas per control center
    data_centers: Tuple[int, ...]      # replicas per data center
    tolerates_site_failure: bool

    @property
    def n(self) -> int:
        return sum(self.control_centers) + sum(self.data_centers)

    @property
    def sites(self) -> Tuple[int, ...]:
        return self.control_centers + self.data_centers

    @property
    def num_sites(self) -> int:
        return len(self.sites)

    def placement(self) -> Dict[str, int]:
        """Site-name -> replica-count map (cc1..ccN, dc1..dcM)."""
        out: Dict[str, int] = {}
        for index, count in enumerate(self.control_centers, start=1):
            out[f"cc{index}"] = count
        for index, count in enumerate(self.data_centers, start=1):
            out[f"dc{index}"] = count
        return out

    def describe(self) -> str:
        cc = "+".join(str(c) for c in self.control_centers) or "-"
        dc = "+".join(str(c) for c in self.data_centers) or "-"
        return (
            f"f={self.f} k={self.k}  CC[{cc}] DC[{dc}]  n={self.n}  "
            f"site-failure={'yes' if self.tolerates_site_failure else 'no'}"
        )


def minimal_replicas(f: int, k: int, num_sites: int,
                     tolerate_site_failure: bool) -> int:
    """Minimum total replicas over ``num_sites`` balanced sites."""
    base = base_requirement(f, k)
    if not tolerate_site_failure or num_sites <= 1:
        return base
    n = base
    while True:
        largest_site = -(-n // num_sites)  # ceil division
        if n - largest_site >= base:
            return n
        n += 1


def _balanced_split(total: int, parts: int) -> List[int]:
    if parts <= 0:
        return []
    small = total // parts
    remainder = total % parts
    return [small + (1 if index < remainder else 0) for index in range(parts)]


def minimal_placement(
    f: int,
    k: int,
    num_control_centers: int,
    num_data_centers: int,
    tolerate_site_failure: bool = True,
) -> ResilienceConfig:
    """Minimal balanced placement over the given site layout.

    Raises ValueError for layouts that cannot meet the requirement (e.g.
    demanding site-failure tolerance with a single control center and no
    data centers leaves no surviving control center).
    """
    if num_control_centers < 1:
        raise ValueError("need at least one control center")
    num_sites = num_control_centers + num_data_centers
    if tolerate_site_failure and num_sites < 2:
        raise ValueError("site-failure tolerance needs at least two sites")
    if tolerate_site_failure and num_control_centers < 2:
        raise ValueError(
            "tolerating the failure of a control center requires a second "
            "control center (data centers cannot command field devices)"
        )
    n = minimal_replicas(f, k, num_sites, tolerate_site_failure)
    counts = _balanced_split(n, num_sites)
    # put the larger shares in control centers (they are the trusted sites)
    control = tuple(counts[:num_control_centers])
    data = tuple(counts[num_control_centers:])
    return ResilienceConfig(f, k, control, data, tolerate_site_failure)


def placement_survives(
    config: ResilienceConfig, failed_site: Optional[int] = None
) -> bool:
    """Exhaustive check: with ``failed_site`` down (index into
    ``config.sites``; None = no site failure), can the system still order
    updates with f compromised and k recovering replicas, and command
    field devices?"""
    sites = list(config.sites)
    if failed_site is not None:
        surviving_cc = [
            count for index, count in enumerate(config.control_centers)
            if index != failed_site
        ]
        if failed_site < len(config.control_centers) and not any(
            c > 0 for c in surviving_cc
        ):
            return False  # no control center left to drive field devices
        sites = [count for index, count in enumerate(sites) if index != failed_site]
    remaining = sum(sites)
    available = remaining - config.f - config.k
    return available >= quorum(config.f, config.k)


def configuration_table(
    f_values: Tuple[int, ...] = (1, 2),
    k_values: Tuple[int, ...] = (0, 1),
) -> List[ResilienceConfig]:
    """The configuration table the paper presents: minimal placements for
    representative (f, k, layout) combinations."""
    layouts = [
        # (num_cc, num_dc, tolerate_site_failure)
        (1, 0, False),
        (2, 0, True),
        (2, 1, True),
        (2, 2, True),
        (3, 0, True),
        (3, 3, True),
    ]
    table: List[ResilienceConfig] = []
    for f in f_values:
        for k in k_values:
            for num_cc, num_dc, tolerate in layouts:
                try:
                    table.append(
                        minimal_placement(f, k, num_cc, num_dc, tolerate)
                    )
                except ValueError:
                    continue
    return table
