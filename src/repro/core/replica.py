"""The Spire replica: Prime node + SCADA master + threshold signing.

A :class:`SpireReplica` extends :class:`~repro.prime.node.PrimeNode` with
the application-layer duties of a Spire SCADA master replica:

* accept :class:`UpdateSubmission` messages from proxies/HMIs over the
  overlay and inject them into Prime;
* after each update executes through the agreed order, produce a
  threshold-signature share over the :class:`DeliveryRecord` and send it to
  every interested endpoint (the originating client, all HMIs, and — for
  breaker commands — the proxy that fronts the target substation).

A compromised replica can refuse to do any of this, or send garbage
shares; with threshold ``f + 1`` and robust combining at the endpoints,
``f`` such replicas can neither forge a delivery nor block one.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Iterable, List, Optional, Set

from ..crypto.provider import CryptoProvider
from ..prime.app import ReplicatedApplication
from ..prime.config import PrimeConfig
from ..prime.messages import ClientUpdate
from ..prime.node import PrimeNode
from ..replication import Transport
from ..obs import EventLog
from ..simnet import Network, Simulator
from .master import ScadaMasterApp
from .update import BreakerCommand, DeliveryShare, UpdateSubmission, record_for

__all__ = ["SpireReplica", "THRESHOLD_GROUP"]

#: name of the threshold-signature group shared by the master replicas
THRESHOLD_GROUP = "spire-masters"


class SpireReplica(PrimeNode):
    """One SCADA-master replica."""

    def __init__(
        self,
        name: str,
        simulator: Simulator,
        network: Network,
        config: PrimeConfig,
        crypto: CryptoProvider,
        app: Optional[ReplicatedApplication] = None,
        trace: Optional[EventLog] = None,
        transport: Optional[Transport] = None,
        threshold_group: str = THRESHOLD_GROUP,
        obs=None,
    ) -> None:
        super().__init__(
            name, simulator, network, config,
            crypto, app or ScadaMasterApp(), trace=trace, transport=transport,
            obs=obs,
        )
        self.threshold_group = threshold_group
        self._deliveries_counter = (
            self.obs.counter("replica.deliveries_sent") if self.obs.enabled else None
        )
        self.share_index = config.index_of(name) + 1
        #: endpoints that receive every delivery (HMIs, historians)
        self.subscribers: List[str] = []
        #: substation -> proxy endpoint fronting it (for command delivery)
        self.proxy_of_substation: Dict[str, str] = {}
        self.deliveries_sent = 0
        #: attack hook: transform our threshold share before sending
        #: (models a compromised replica emitting garbage shares)
        self.share_corruptor = None
        #: bounded cache of recent shares, to re-answer client retries of
        #: updates that already executed (their first delivery may be lost)
        self._recent_shares: "OrderedDict[tuple, DeliveryShare]" = OrderedDict()
        self._recent_share_cap = 5000
        self.execution_listeners.append(self._deliver_executed)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def add_subscriber(self, endpoint: str) -> None:
        if endpoint not in self.subscribers:
            self.subscribers.append(endpoint)

    def register_proxy(self, substation: str, proxy_endpoint: str) -> None:
        self.proxy_of_substation[substation] = proxy_endpoint

    # ------------------------------------------------------------------
    # Incoming submissions
    # ------------------------------------------------------------------
    def on_message(self, src: str, payload: Any) -> None:
        unwrapped = self.transport.unwrap(payload)
        inner = unwrapped[1] if unwrapped is not None else payload
        if isinstance(inner, UpdateSubmission):
            accepted = self.submit(inner.update)
            if not accepted:
                # A retry of an already-executed update: re-send our share
                # so a client whose first delivery was lost can still act.
                update = inner.update
                key = (update.client, update.client_seq)
                cached = self._recent_shares.get(key)
                if cached is not None:
                    self.transport.send(update.client, cached, size_bytes=350)
            return
        # already unwrapped above — hand the inner payload straight to the
        # runtime instead of re-unwrapping via super().on_message
        self.runtime.receive_unwrapped(inner)

    # ------------------------------------------------------------------
    # Outgoing deliveries
    # ------------------------------------------------------------------
    def _deliver_executed(self, update: ClientUpdate, order_index: int, result: Any) -> None:
        record = record_for(update, order_index)
        share = self.crypto.threshold_sign_share(
            self.threshold_group, self.share_index, record
        )
        if self.share_corruptor is not None:
            share = self.share_corruptor(share)
        delivery = DeliveryShare(self.name, record, share)
        self._recent_shares[(update.client, update.client_seq)] = delivery
        while len(self._recent_shares) > self._recent_share_cap:
            self._recent_shares.popitem(last=False)
        targets: Set[str] = set(self.subscribers)
        targets.add(update.client)
        if isinstance(update.payload, BreakerCommand):
            proxy = self.proxy_of_substation.get(update.payload.substation)
            if proxy is not None:
                targets.add(proxy)
        for target in targets:
            if target != self.name:
                self.deliveries_sent += 1
                if self._deliveries_counter is not None:
                    self._deliveries_counter.inc()
                self.transport.send(target, delivery, size_bytes=350)
