"""The Spire replica: Prime node + SCADA master + threshold signing.

A :class:`SpireReplica` extends :class:`~repro.prime.node.PrimeNode` with
the application-layer duties of a Spire SCADA master replica:

* accept :class:`UpdateSubmission` messages from proxies/HMIs over the
  overlay and inject them into Prime;
* after each update executes through the agreed order, produce a
  threshold-signature share over the :class:`DeliveryRecord` and send it to
  every interested endpoint (the originating client, all HMIs, and — for
  breaker commands — the proxy that fronts the target substation).

A compromised replica can refuse to do any of this, or send garbage
shares; with threshold ``f + 1`` and robust combining at the endpoints,
``f`` such replicas can neither forge a delivery nor block one.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Iterable, List, Optional, Set

from ..crypto.provider import CryptoProvider
from ..prime.app import ReplicatedApplication
from ..prime.config import PrimeConfig
from ..prime.messages import ClientUpdate
from ..prime.node import PrimeNode
from ..replication import Transport
from ..obs import EventLog
from ..simnet import Network, Simulator
from .master import ScadaMasterApp
from .update import (
    BatchDeliveryShare,
    BreakerCommand,
    DeliveryShare,
    UpdateSubmission,
    batch_record_for,
    record_for,
)

__all__ = ["SpireReplica", "THRESHOLD_GROUP"]

#: name of the threshold-signature group shared by the master replicas
THRESHOLD_GROUP = "spire-masters"


class SpireReplica(PrimeNode):
    """One SCADA-master replica."""

    def __init__(
        self,
        name: str,
        simulator: Simulator,
        network: Network,
        config: PrimeConfig,
        crypto: CryptoProvider,
        app: Optional[ReplicatedApplication] = None,
        trace: Optional[EventLog] = None,
        transport: Optional[Transport] = None,
        threshold_group: str = THRESHOLD_GROUP,
        obs=None,
    ) -> None:
        super().__init__(
            name, simulator, network, config,
            crypto, app or ScadaMasterApp(), trace=trace, transport=transport,
            obs=obs,
        )
        self.threshold_group = threshold_group
        self._deliveries_counter = (
            self.obs.counter("replica.deliveries_sent") if self.obs.enabled else None
        )
        self.share_index = config.index_of(name) + 1
        #: endpoints that receive every delivery (HMIs, historians)
        self.subscribers: List[str] = []
        #: substation -> proxy endpoint fronting it (for command delivery)
        self.proxy_of_substation: Dict[str, str] = {}
        #: fallback resolver consulted when the dict misses — fleet
        #: deployments register one function (substation name -> region
        #: proxy) instead of 10k per-substation entries on every replica
        self.proxy_resolver = None
        self.deliveries_sent = 0
        #: attack hook: transform our threshold share before sending
        #: (models a compromised replica emitting garbage shares)
        self.share_corruptor = None
        #: bounded cache of recent shares, to re-answer client retries of
        #: updates that already executed (their first delivery may be lost)
        self._recent_shares: "OrderedDict[tuple, Any]" = OrderedDict()
        self._recent_share_cap = 5000
        self.batches_sent = 0
        if config.delivery_batching:
            # Batched delivery: one threshold share per executed
            # pre-order request, covering the Merkle root of its records.
            self.batch_execution_listeners.append(self._deliver_batch)
        else:
            self.execution_listeners.append(self._deliver_executed)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def add_subscriber(self, endpoint: str) -> None:
        if endpoint not in self.subscribers:
            self.subscribers.append(endpoint)

    def register_proxy(self, substation: str, proxy_endpoint: str) -> None:
        self.proxy_of_substation[substation] = proxy_endpoint

    def register_proxy_resolver(self, resolver) -> None:
        """Register a substation -> proxy-endpoint fallback function."""
        self.proxy_resolver = resolver

    def _proxy_for(self, substation: str):
        proxy = self.proxy_of_substation.get(substation)
        if proxy is None and self.proxy_resolver is not None:
            proxy = self.proxy_resolver(substation)
        return proxy

    # ------------------------------------------------------------------
    # Incoming submissions
    # ------------------------------------------------------------------
    def on_message(self, src: str, payload: Any) -> None:
        unwrapped = self.transport.unwrap(payload)
        inner = unwrapped[1] if unwrapped is not None else payload
        if isinstance(inner, UpdateSubmission):
            accepted = self.submit(inner.update)
            if not accepted:
                # A retry of an already-executed update: re-send our share
                # so a client whose first delivery was lost can still act.
                update = inner.update
                key = (update.client, update.client_seq)
                cached = self._recent_shares.get(key)
                if cached is not None:
                    self.transport.send(update.client, cached, size_bytes=350)
            return
        # already unwrapped above — hand the inner payload straight to the
        # runtime instead of re-unwrapping via super().on_message
        self.runtime.receive_unwrapped(inner)

    # ------------------------------------------------------------------
    # Outgoing deliveries
    # ------------------------------------------------------------------
    def _deliver_executed(self, update: ClientUpdate, order_index: int, result: Any) -> None:
        record = record_for(update, order_index)
        share = self.crypto.threshold_sign_share(
            self.threshold_group, self.share_index, record
        )
        if self.share_corruptor is not None:
            share = self.share_corruptor(share)
        delivery = DeliveryShare(self.name, record, share)
        self._recent_shares[(update.client, update.client_seq)] = delivery
        while len(self._recent_shares) > self._recent_share_cap:
            self._recent_shares.popitem(last=False)
        targets: Set[str] = set(self.subscribers)
        targets.add(update.client)
        if isinstance(update.payload, BreakerCommand):
            proxy = self._proxy_for(update.payload.substation)
            if proxy is not None:
                targets.add(proxy)
        for target in targets:
            if target != self.name:
                self.deliveries_sent += 1
                if self._deliveries_counter is not None:
                    self._deliveries_counter.inc()
                self.transport.send(target, delivery, size_bytes=350)

    def _deliver_batch(self, origin: str, po_seq: int, executed: List) -> None:
        """Deliver one executed pre-order batch: a single threshold share
        over the batch's Merkle root, with each target receiving only the
        proof-carrying entries it subscribes to."""
        if len(executed) == 1:
            # Singleton batches take the exact legacy per-update path, so
            # batch mode degrades gracefully to unbatched behaviour.
            update, order_index, result = executed[0]
            self._deliver_executed(update, order_index, result)
            return
        batch, entries = batch_record_for(origin, po_seq, executed)
        share = self.crypto.threshold_sign_share(
            self.threshold_group, self.share_index, batch
        )
        if self.share_corruptor is not None:
            share = self.share_corruptor(share)
        # per-endpoint entry selection: subscribers see everything, each
        # client its own updates, and the proxy fronting a substation any
        # breaker command addressed to it
        wanted: Dict[str, Set[int]] = {}
        everything = set(range(len(entries)))
        for subscriber in self.subscribers:
            wanted.setdefault(subscriber, set()).update(everything)
        for i, (update, _order_index, _result) in enumerate(executed):
            wanted.setdefault(update.client, set()).add(i)
            if isinstance(update.payload, BreakerCommand):
                proxy = self._proxy_for(update.payload.substation)
                if proxy is not None:
                    wanted.setdefault(proxy, set()).add(i)
            # retry cache: re-answer a client resubmission with just its
            # own slice of the batch
            self._recent_shares[(update.client, update.client_seq)] = (
                BatchDeliveryShare(self.name, batch, share, (entries[i],))
            )
        while len(self._recent_shares) > self._recent_share_cap:
            self._recent_shares.popitem(last=False)
        self.batches_sent += 1
        for target, indices in wanted.items():
            if target == self.name or not indices:
                continue
            selected = tuple(entries[i] for i in sorted(indices))
            delivery = BatchDeliveryShare(self.name, batch, share, selected)
            self.deliveries_sent += 1
            if self._deliveries_counter is not None:
                self._deliveries_counter.inc()
            # one share + root regardless of batch size, plus the proofs:
            # ~200 B fixed + ~150 B per entry (record + log-size proof)
            self.transport.send(
                target, delivery, size_bytes=200 + 150 * len(selected)
            )
