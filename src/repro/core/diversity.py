"""Software diversity model (the paper's MultiCompiler substitution).

The real Spire compiles each replica (and each rejuvenation image) with a
diversifying compiler so a single memory-corruption exploit does not work
against all replicas. We model the *consequence*: every replica runs a
``variant`` drawn from a large space, an exploit targets one variant, and
an intrusion attempt succeeds only when the target's current variant
matches the exploit. Rejuvenation re-randomizes the variant, invalidating
any exploit the attacker had tailored.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

__all__ = ["Exploit", "DiversityManager"]


@dataclass(frozen=True)
class Exploit:
    """An attack capability effective against exactly one variant."""

    name: str
    target_variant: int


class DiversityManager:
    """Variant assignment and exploit-applicability decisions."""

    def __init__(self, variant_space: int = 2 ** 16, seed: int = 0) -> None:
        if variant_space < 2:
            raise ValueError("variant space must have at least 2 variants")
        self.variant_space = variant_space
        self._rng = random.Random(f"diversity/{seed}")
        self._variants: Dict[str, int] = {}
        self.rejuvenations = 0

    # ------------------------------------------------------------------
    def assign(self, replica: str) -> int:
        """Assign (or return) the replica's current variant."""
        if replica not in self._variants:
            self._variants[replica] = self._rng.randrange(self.variant_space)
        return self._variants[replica]

    def variant_of(self, replica: str) -> Optional[int]:
        return self._variants.get(replica)

    def rejuvenate(self, replica: str) -> int:
        """Re-randomize on proactive recovery; returns the new variant."""
        self.rejuvenations += 1
        new_variant = self._rng.randrange(self.variant_space)
        self._variants[replica] = new_variant
        return new_variant

    # ------------------------------------------------------------------
    def exploit_for(self, replica: str, name: Optional[str] = None) -> Exploit:
        """Craft an exploit tailored to the replica's *current* variant
        (models an attacker with full knowledge of one binary)."""
        variant = self.assign(replica)
        return Exploit(name or f"exploit-{replica}", variant)

    def is_vulnerable(self, replica: str, exploit: Exploit) -> bool:
        return self._variants.get(replica) == exploit.target_variant

    def vulnerable_replicas(self, exploit: Exploit) -> List[str]:
        return sorted(
            replica for replica, variant in self._variants.items()
            if variant == exploit.target_variant
        )

    def monoculture_exposure(self, replicas: List[str]) -> float:
        """Fraction of the fleet sharing the most common variant — 1.0 for
        an undiversified deployment (one exploit takes everything)."""
        if not replicas:
            return 0.0
        counts: Dict[int, int] = {}
        for replica in replicas:
            variant = self.assign(replica)
            counts[variant] = counts.get(variant, 0) + 1
        return max(counts.values()) / len(replicas)
