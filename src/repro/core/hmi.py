"""HMI (human-machine interface) client.

The operator console: it maintains a live view of the grid from
threshold-verified status deliveries and issues breaker commands as signed
client updates. Like the proxy, it trusts nothing that does not carry a
valid combined threshold signature, so ``f`` compromised replicas cannot
spoof its display or fake command confirmations.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..crypto.provider import CryptoProvider
from ..obs import EventLog, LatencyTracker, resolve_obs
from ..simnet import Network, Process, Simulator
from ..spines.overlay import OverlayStack
from .collector import DeliveryCollector
from .client import SubmissionManager
from .replica import THRESHOLD_GROUP
from .update import BatchDeliveryShare, BreakerCommand, DeliveryShare, StatusReading

__all__ = ["HmiClient"]


class HmiClient(Process):
    """One operator console endpoint."""

    def __init__(
        self,
        name: str,
        simulator: Simulator,
        network: Network,
        crypto: CryptoProvider,
        replicas: List[str],
        stack: Optional[OverlayStack] = None,
        recorder: Optional[LatencyTracker] = None,
        trace: Optional[EventLog] = None,
        resubmit_timeout_ms: float = 500.0,
        threshold_group: str = THRESHOLD_GROUP,
        obs=None,
    ) -> None:
        super().__init__(name, simulator, network)
        self.crypto = crypto
        self.stack = stack
        self.trace = trace
        self.obs = resolve_obs(obs, trace)
        self._status_counter = (
            self.obs.counter("hmi.status_updates") if self.obs.enabled else None
        )
        self.collector = DeliveryCollector(crypto, threshold_group)
        self.submissions = SubmissionManager(
            client_name=name,
            crypto=crypto,
            replicas=replicas,
            send_fn=self._send_to_replica,
            now_fn=lambda: simulator.now,
            recorder=recorder,
            resubmit_timeout_ms=resubmit_timeout_ms,
            rng=simulator.rng(f"submit/{name}"),
        )
        #: substation -> (order_index, StatusReading)
        self.view: Dict[str, Tuple[int, StatusReading]] = {}
        #: confirmed command log: (order_index, BreakerCommand)
        self.confirmed_commands: List[Tuple[int, BreakerCommand]] = []
        self.status_updates_seen = 0
        self._started = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        self._started = True
        self.every(self.submissions.resubmit_timeout_ms / 2, self._retry_tick)

    def on_recover(self) -> None:
        """Re-arm the retry timer after a crash (timers do not survive
        incarnation changes)."""
        if self._started:
            self.every(self.submissions.resubmit_timeout_ms / 2, self._retry_tick)

    def _retry_tick(self) -> None:
        self.submissions.retry_tick()

    def _send_to_replica(self, replica: str, payload: Any, size_bytes: int) -> bool:
        if self.stack is not None:
            return self.stack.send(replica, payload, size_bytes=size_bytes)
        return self.send(replica, payload, size_bytes=size_bytes)

    # ------------------------------------------------------------------
    # Operator actions
    # ------------------------------------------------------------------
    def operate_breaker(
        self, substation: str, breaker_id: str, close: bool, reason: str = "operator"
    ) -> Tuple[str, int]:
        """Issue a breaker command; returns the update key for tracking."""
        command = BreakerCommand(
            substation=substation,
            breaker_id=breaker_id,
            close=close,
            issued_by=self.name,
            reason=reason,
        )
        return self.submissions.submit(command)

    # ------------------------------------------------------------------
    # View maintenance
    # ------------------------------------------------------------------
    def on_message(self, src: str, payload: Any) -> None:
        if self.stack is not None:
            unwrapped = OverlayStack.unwrap(payload)
            if unwrapped is not None:
                payload = unwrapped[1]
        if isinstance(payload, (DeliveryShare, BatchDeliveryShare)):
            self._on_delivery_share(payload)

    def _on_delivery_share(self, share) -> None:
        if isinstance(share, BatchDeliveryShare):
            for record, _signature in self.collector.add_batch(share):
                self._on_verified_record(record)
            return
        combined = self.collector.add(share)
        if combined is None:
            return
        self._on_verified_record(combined[0])

    def _on_verified_record(self, record) -> None:
        self.submissions.acknowledged(record.client, record.client_seq)
        if record.kind == "status" and isinstance(record.payload, StatusReading):
            self.status_updates_seen += 1
            if self._status_counter is not None:
                self._status_counter.inc()
            current = self.view.get(record.payload.substation)
            if current is None or current[0] < record.order_index:
                self.view[record.payload.substation] = (
                    record.order_index, record.payload,
                )
        elif record.kind == "command" and isinstance(record.payload, BreakerCommand):
            self.confirmed_commands.append((record.order_index, record.payload))

    # ------------------------------------------------------------------
    # Display helpers
    # ------------------------------------------------------------------
    def substation_status(self, substation: str) -> Optional[StatusReading]:
        entry = self.view.get(substation)
        return entry[1] if entry is not None else None

    def breaker_position(self, substation: str, breaker_id: str) -> Optional[bool]:
        reading = self.substation_status(substation)
        if reading is None:
            return None
        for candidate, closed in reading.breakers:
            if candidate == breaker_id:
                return closed
        return None

    def energized_substations(self) -> List[str]:
        return sorted(
            substation
            for substation, (_, reading) in self.view.items()
            if (reading.measurement("energized") or 0.0) > 0.5
        )
