"""Spire core: the paper's primary contribution, assembled.

Public API: the deployment builder (:class:`SpireDeployment` /
:class:`SpireOptions`), the replica (:class:`SpireReplica`), endpoints
(:class:`RtuProxy`, :class:`HmiClient`), the replicated master app, the
resilience-configuration framework, proactive recovery, and diversity.
Measurement flows through :mod:`repro.obs`; :class:`LatencyStats` is
re-exported here for convenience.
"""

from .batching import BatchingOptions
from .builder import DeploymentWiring, TopologyBuilder
from .client import SubmissionManager
from .collector import DeliveryCollector
from .config import (
    ResilienceConfig,
    configuration_table,
    minimal_placement,
    minimal_replicas,
    placement_survives,
)
from .deployment import SpireDeployment, SpireOptions
from .diversity import DiversityManager, Exploit
from .hmi import HmiClient
from ..obs import LatencyStats
from .master import Alarm, ScadaMasterApp
from .proxy import DeviceBinding, RtuProxy
from .recovery import (
    PeriodicStrategy,
    ProactiveRecoveryScheduler,
    RecoveryStrategy,
)
from .replica import THRESHOLD_GROUP, SpireReplica
from .update import (
    BatchDeliveryRecord,
    BatchDeliveryShare,
    BatchEntry,
    BreakerCommand,
    DeliveryRecord,
    DeliveryShare,
    StatusReading,
    UpdateSubmission,
    batch_record_for,
    record_for,
)

__all__ = [
    "BatchingOptions",
    "DeploymentWiring",
    "TopologyBuilder",
    "SubmissionManager",
    "DeliveryCollector",
    "ResilienceConfig",
    "configuration_table",
    "minimal_placement",
    "minimal_replicas",
    "placement_survives",
    "SpireDeployment",
    "SpireOptions",
    "DiversityManager",
    "Exploit",
    "HmiClient",
    "Alarm",
    "ScadaMasterApp",
    "LatencyStats",
    "DeviceBinding",
    "RtuProxy",
    "PeriodicStrategy",
    "ProactiveRecoveryScheduler",
    "RecoveryStrategy",
    "THRESHOLD_GROUP",
    "SpireReplica",
    "BatchDeliveryRecord",
    "BatchDeliveryShare",
    "BatchEntry",
    "BreakerCommand",
    "DeliveryRecord",
    "DeliveryShare",
    "StatusReading",
    "UpdateSubmission",
    "batch_record_for",
    "record_for",
]
