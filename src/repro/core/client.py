"""Client-side submission management shared by proxies and HMIs.

A Spire client (RTU proxy or HMI) signs updates, submits them to one
SCADA-master replica, and fails over to the next replica when no verified
delivery acknowledges the update in time. Because updates are deduplicated
at execution by ``(client, client_seq)``, retries are safe.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..crypto.provider import CryptoProvider
from ..prime.messages import ClientUpdate
from ..prime.node import sign_client_update
from ..obs import LatencyTracker
from ..replication import RetryPolicy
from .update import UpdateSubmission

__all__ = ["SubmissionManager"]

#: send_fn(replica_endpoint, payload, size_bytes) -> bool
SendFn = Callable[[str, Any, int], bool]


@dataclass
class _Outstanding:
    update: ClientUpdate
    first_submit: float
    last_submit: float
    attempts: int
    target_index: int
    next_retry_at: float = 0.0


class SubmissionManager:
    """Signs, submits, retries, and accounts for one client's updates."""

    def __init__(
        self,
        client_name: str,
        crypto: CryptoProvider,
        replicas: List[str],
        send_fn: SendFn,
        now_fn: Callable[[], float],
        recorder: Optional[LatencyTracker] = None,
        resubmit_timeout_ms: float = 500.0,
        start_index: int = 0,
        retry_policy: Optional[RetryPolicy] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not replicas:
            raise ValueError("need at least one replica endpoint")
        self.client_name = client_name
        self.crypto = crypto
        self.replicas = list(replicas)
        self.send_fn = send_fn
        self.now_fn = now_fn
        self.recorder = recorder
        self.resubmit_timeout_ms = resubmit_timeout_ms
        # Resubmits back off exponentially instead of firing at a fixed
        # period: a client facing a long outage probes with bounded load
        # rather than hammering every resubmit_timeout.
        self.retry_policy = retry_policy or RetryPolicy(
            base_ms=resubmit_timeout_ms,
            factor=1.5,
            max_ms=resubmit_timeout_ms * 6,
            max_attempts=5,
            jitter_frac=0.2,
        )
        self.rng = rng
        self._next_seq = 0
        self._target = start_index % len(self.replicas)
        self._outstanding: Dict[Tuple[str, int], _Outstanding] = {}
        self.submitted_total = 0
        self.retries_total = 0
        self.acked_total = 0

    # ------------------------------------------------------------------
    def submit(self, payload: Any) -> Tuple[str, int]:
        """Sign and submit a new update; returns its (client, seq) key."""
        self._next_seq += 1
        update = sign_client_update(
            self.crypto, self.client_name, self._next_seq, payload
        )
        now = self.now_fn()
        key = (self.client_name, self._next_seq)
        self._outstanding[key] = _Outstanding(
            update, now, now, 1, self._target,
            next_retry_at=now + self.retry_policy.delay_ms(0, self.rng),
        )
        if self.recorder is not None:
            self.recorder.submitted(key, now)
        self._send(update, self._target)
        self.submitted_total += 1
        return key

    def _send(self, update: ClientUpdate, target_index: int) -> None:
        replica = self.replicas[target_index % len(self.replicas)]
        self.send_fn(replica, UpdateSubmission(update), 400)

    # ------------------------------------------------------------------
    def acknowledged(self, client: str, client_seq: int) -> Optional[float]:
        """Mark an update delivered; returns end-to-end latency if known."""
        if client != self.client_name:
            return None
        key = (client, client_seq)
        entry = self._outstanding.pop(key, None)
        if entry is None:
            return None
        self.acked_total += 1
        if self.recorder is not None:
            return self.recorder.acknowledged(key, self.now_fn())
        return self.now_fn() - entry.first_submit

    # ------------------------------------------------------------------
    def retry_tick(self) -> int:
        """Resubmit timed-out updates to the next replica; returns count."""
        now = self.now_fn()
        retried = 0
        for entry in self._outstanding.values():
            if now >= entry.next_retry_at:
                entry.target_index += 1
                entry.attempts += 1
                entry.last_submit = now
                entry.next_retry_at = now + self.retry_policy.delay_ms(
                    entry.attempts - 1, self.rng
                )
                self._send(entry.update, entry.target_index)
                retried += 1
                self.retries_total += 1
        if retried:
            # rotate the default target away from an unresponsive replica
            self._target = (self._target + 1) % len(self.replicas)
        return retried

    @property
    def outstanding(self) -> int:
        return len(self._outstanding)
