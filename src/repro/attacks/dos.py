"""Network denial-of-service attack drivers.

The paper's network attacker floods replicas' links — most effectively the
current Prime leader's — to slow ordering. :class:`LeaderChaser` models
the adaptive version: it observes which replica currently leads (an
attacker on the network path can infer this from traffic patterns) and
re-targets the DoS after each view change.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..simnet import DosAttack, FailureInjector, Network, Simulator

__all__ = ["dos_window", "LeaderChaser"]


def dos_window(
    injector: FailureInjector,
    target: str,
    start_ms: float,
    duration_ms: float,
    extra_delay_ms: float = 300.0,
    extra_loss: float = 0.1,
    peers: Optional[List[str]] = None,
) -> DosAttack:
    """Schedule a fixed-target DoS window; returns its description."""
    attack = DosAttack(
        target=target,
        start_ms=start_ms,
        duration_ms=duration_ms,
        extra_delay_ms=extra_delay_ms,
        extra_loss=extra_loss,
    )
    injector.dos_node(attack, peers=peers)
    return attack


class LeaderChaser:
    """Adaptive DoS: keeps the current leader's links degraded.

    ``leader_fn`` returns the current leader name (benchmarks pass the
    deployment's :meth:`current_leader`). Every ``retarget_interval_ms``
    the attack moves if the leadership moved. The chase is rate-limited by
    the interval, which models the attacker's detection lag — the window
    in which Prime delivers at normal latency after each view change.
    """

    def __init__(
        self,
        simulator: Simulator,
        network: Network,
        leader_fn: Callable[[], str],
        peers_fn: Callable[[str], List[str]],
        extra_delay_ms: float = 300.0,
        extra_loss: float = 0.1,
        retarget_interval_ms: float = 2000.0,
    ) -> None:
        self.simulator = simulator
        self.network = network
        self.leader_fn = leader_fn
        self.peers_fn = peers_fn
        self.extra_delay_ms = extra_delay_ms
        self.extra_loss = extra_loss
        self.retarget_interval_ms = retarget_interval_ms
        self._restores: List[Callable[[], None]] = []
        self._current_target: Optional[str] = None
        self._stop: Optional[Callable[[], None]] = None
        self.retargets = 0

    def start(self) -> None:
        self._retarget()
        self._stop = self.simulator.call_every(
            self.retarget_interval_ms, self._retarget, rng_name="leader-chaser"
        )

    def stop(self) -> None:
        if self._stop is not None:
            self._stop()
            self._stop = None
        self._release()
        self._current_target = None

    def _release(self) -> None:
        for restore in self._restores:
            restore()
        self._restores.clear()

    def _retarget(self) -> None:
        leader = self.leader_fn()
        if leader == self._current_target:
            return
        self._release()
        self._current_target = leader
        self.retargets += 1
        for peer in self.peers_fn(leader):
            self._restores.append(
                self.network.degrade_link(
                    leader, peer,
                    extra_delay_ms=self.extra_delay_ms,
                    extra_loss=self.extra_loss,
                )
            )
