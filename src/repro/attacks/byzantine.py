"""Byzantine replica behaviours.

These installers turn a healthy replica into a compromised one, modelling
the intrusions of the paper's threat model. They work by wrapping the
node's send/propose paths — the compromised code still cannot forge other
principals' signatures (the crypto provider only signs for the identity
the caller controls), which is exactly the paper's assumption.

All installers return an ``uninstall`` function (the red-team campaign
uses it when a compromised replica is proactively recovered).
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from ..crypto.provider import ThresholdShare
from ..pbft.messages import PbftPrePrepare
from ..prime.messages import PrePrepare, Suspect
from ..prime.node import PrimeNode

__all__ = [
    "make_silent",
    "make_slow_proposer",
    "make_equivocating_leader",
    "make_share_corruptor",
    "make_suspect_spammer",
    "make_delivery_forger",
]

Uninstall = Callable[[], None]


def make_silent(node: Any) -> Uninstall:
    """The replica stops sending anything (fail-stop-like intrusion)."""
    original_broadcast = node._broadcast
    original_send_to = getattr(node, "_send_to", None)
    original_on_message = node.on_message

    def muted_broadcast(payload, include_self=True):
        return node.sign_message(payload)

    def muted_send_to(peer, payload):
        return None

    def muted_on_message(src, payload):
        return None

    node._broadcast = muted_broadcast
    if original_send_to is not None:
        node._send_to = muted_send_to
    node.on_message = muted_on_message

    def uninstall() -> None:
        node._broadcast = original_broadcast
        if original_send_to is not None:
            node._send_to = original_send_to
        node.on_message = original_on_message

    return uninstall


def make_slow_proposer(node: Any, delay_ms: float) -> Uninstall:
    """The leader delays its proposals by ``delay_ms`` but behaves
    correctly otherwise — the canonical performance attack on leader-based
    BFT. Prime's TAT monitoring replaces such a leader; a static-timeout
    baseline tolerates it indefinitely as long as ``delay_ms`` stays below
    the timeout."""
    original_broadcast = node._broadcast
    original_transport_send = node.transport.send

    def delayed_broadcast(payload, include_self=True):
        if isinstance(payload, (PrePrepare, PbftPrePrepare)):
            signed = node.sign_message(payload)
            if include_self:
                node._dispatch(signed)

            def later() -> None:
                if not node.is_up:
                    return
                for peer in node.config.replicas:
                    if peer != node.name:
                        original_transport_send(peer, signed, size_bytes=400)

            node.simulator.schedule(delay_ms, later)
            return signed
        return original_broadcast(payload, include_self)

    def delayed_transport_send(dst, payload, size_bytes=256):
        # retransmission paths send signed pre-prepares directly through
        # the transport; a malicious slow leader delays those too
        inner = getattr(payload, "payload", None)
        if isinstance(inner, (PrePrepare, PbftPrePrepare)) and (
            getattr(inner, "leader", None) == node.name
        ):
            node.simulator.schedule(
                delay_ms,
                lambda: original_transport_send(dst, payload, size_bytes)
                if node.is_up else None,
            )
            return True
        return original_transport_send(dst, payload, size_bytes)

    node._broadcast = delayed_broadcast
    node.transport.send = delayed_transport_send

    def uninstall() -> None:
        node._broadcast = original_broadcast
        node.transport.send = original_transport_send

    return uninstall


def make_equivocating_leader(node: PrimeNode) -> Uninstall:
    """When leading, send different proposals to different halves of the
    replica set (a safety attack; quorum intersection defeats it)."""
    original_propose = node._propose_tick

    def equivocate() -> None:
        if not node.is_leader or node.in_view_change or node.awaiting_state:
            return
        summaries = [
            node._latest_summaries[s] for s in sorted(node._latest_summaries)
        ]
        if not summaries:
            return
        matrix_a = tuple(summaries)
        matrix_b = tuple(summaries[:-1])  # drop one row: different digest
        seq = node._next_seq
        node._next_seq += 1
        pp_a = node.sign_message(PrePrepare(node.name, node.view, seq, matrix_a))
        pp_b = node.sign_message(PrePrepare(node.name, node.view, seq, matrix_b))
        peers = [p for p in node.config.replicas if p != node.name]
        half = len(peers) // 2
        for peer in peers[:half]:
            node.transport.send(peer, pp_a, size_bytes=400)
        for peer in peers[half:]:
            node.transport.send(peer, pp_b, size_bytes=400)
        node._dispatch(pp_a)

    node._propose_tick = equivocate

    def uninstall() -> None:
        node._propose_tick = original_propose

    return uninstall


def make_share_corruptor(replica: Any) -> Uninstall:
    """The replica emits garbage threshold shares (trying to block or
    pollute endpoint-side combining)."""

    def corrupt(share: ThresholdShare) -> ThresholdShare:
        return ThresholdShare(share.group, share.index, "corrupted")

    replica.share_corruptor = corrupt

    def uninstall() -> None:
        replica.share_corruptor = None

    return uninstall


def make_suspect_spammer(node: PrimeNode) -> Uninstall:
    """Broadcast baseless leader accusations every tick. Fewer than a
    quorum of suspects never forces a view change."""
    stop = node.every(
        node.config.tat_check_interval_ms,
        lambda: node._broadcast(Suspect(node.name, node.view, "spam")),
    )
    return stop


def make_delivery_forger(
    replica: Any, fake_record_factory: Callable[[], Any], interval_ms: float = 200.0
) -> Uninstall:
    """Send threshold shares for records that were never ordered (trying to
    trick proxies into operating breakers). With threshold f+1 and only f
    compromised replicas, the forged record can never be combined."""
    from ..core.update import DeliveryShare

    def forge() -> None:
        record = fake_record_factory()
        share = replica.crypto.threshold_sign_share(
            replica.threshold_group, replica.share_index, record
        )
        delivery = DeliveryShare(replica.name, record, share)
        targets = list(replica.subscribers) + list(
            set(replica.proxy_of_substation.values())
        )
        for target in targets:
            replica.transport.send(target, delivery, size_bytes=350)

    stop = replica.every(interval_ms, forge)
    return stop
