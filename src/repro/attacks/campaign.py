"""Red-team intrusion campaign (the paper's resiliency exercise).

The paper reports a multi-day red-team experiment: attackers with full
knowledge first compromised a traditional SCADA configuration and took
control of the process, then spent the remainder of the exercise failing
to break Spire. We reproduce the *measured outcome* with a scripted
campaign:

* **Against traditional SCADA** — the attacker compromises the (single
  point of failure) master host at ``breach_time``; from then on it holds
  the shared field credential and opens breakers at will. Damage shows up
  as shed load in the grid model.
* **Against Spire** — the attacker works through the replica set: for
  each replica it crafts an exploit against that replica's current
  software variant (diversity model), needs ``dwell_ms`` to weaponize it,
  and on success installs Byzantine behaviour. Proactive recovery
  re-randomizes variants, invalidating exploits in flight and evicting
  the attacker from rejuvenated replicas. The campaign respects no
  ``f``-bound by itself — the *system* has to keep the attacker below it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core.deployment import SpireDeployment
from ..core.diversity import Exploit
from ..core.update import BreakerCommand, DeliveryRecord
from ..obs import COMP_CAMPAIGN, EV_COMPROMISED, EV_EVICTED
from ..baselines.traditional import TraditionalDeployment
from .byzantine import make_delivery_forger, make_share_corruptor, make_silent

__all__ = ["CampaignResult", "SpireCampaign", "TraditionalCampaign"]


@dataclass
class CampaignResult:
    """What the campaign achieved, sampled over time."""

    #: (time_ms, served_load_mw) samples
    served_load: List[Tuple[float, float]] = field(default_factory=list)
    #: (time_ms, number of currently compromised components)
    compromised: List[Tuple[float, int]] = field(default_factory=list)
    #: breaker operations the attacker got executed in the field
    unauthorized_operations: int = 0
    exploit_attempts: int = 0
    exploit_successes: int = 0
    exploits_invalidated: int = 0

    def min_served_fraction(self, total_mw: float) -> float:
        if not self.served_load or total_mw <= 0:
            return 0.0
        return min(load for _, load in self.served_load) / total_mw

    def final_compromised(self) -> int:
        return self.compromised[-1][1] if self.compromised else 0


class TraditionalCampaign:
    """Compromise the single master; operate the grid maliciously."""

    def __init__(
        self,
        deployment: TraditionalDeployment,
        breach_time_ms: float = 5000.0,
        sabotage_interval_ms: float = 1000.0,
        sample_interval_ms: float = 1000.0,
    ) -> None:
        self.deployment = deployment
        self.breach_time_ms = breach_time_ms
        self.sabotage_interval_ms = sabotage_interval_ms
        self.sample_interval_ms = sample_interval_ms
        self.result = CampaignResult()
        self._breakers: List[Tuple[str, str]] = [
            (substation, breaker_id)
            for substation in sorted(deployment.grid.substations)
            for breaker_id in sorted(deployment.grid.substations[substation].breakers)
        ]
        self._sabotage_index = 0

    def start(self) -> None:
        sim = self.deployment.simulator
        sim.call_every(self.sample_interval_ms, self._sample, rng_name="campaign-sample")
        sim.schedule_at(self.breach_time_ms, self._breach)

    def _sample(self) -> None:
        sim = self.deployment.simulator
        grid = self.deployment.grid
        self.result.served_load.append((sim.now, grid.served_load_mw()))
        self.result.compromised.append(
            (sim.now, 1 if self.deployment.primary.compromised else 0)
        )

    def _breach(self) -> None:
        self.result.exploit_attempts += 1
        self.result.exploit_successes += 1
        self.deployment.primary.compromise()
        self.deployment.simulator.call_every(
            self.sabotage_interval_ms, self._sabotage, rng_name="campaign-sabotage"
        )

    def _sabotage(self) -> None:
        """The attacker, holding the master's credential, opens breakers."""
        if not self._breakers:
            return
        substation, breaker_id = self._breakers[
            self._sabotage_index % len(self._breakers)
        ]
        self._sabotage_index += 1
        self.deployment.primary.issue_command(substation, breaker_id, close=False)
        self.result.unauthorized_operations += 1


class SpireCampaign:
    """Work through Spire's replicas under diversity + proactive recovery."""

    def __init__(
        self,
        deployment: SpireDeployment,
        first_attempt_ms: float = 5000.0,
        dwell_ms: float = 20_000.0,
        attempt_interval_ms: float = 10_000.0,
        sample_interval_ms: float = 1000.0,
        behavior: str = "corrupt-and-forge",
    ) -> None:
        self.deployment = deployment
        self.first_attempt_ms = first_attempt_ms
        self.dwell_ms = dwell_ms
        self.attempt_interval_ms = attempt_interval_ms
        self.sample_interval_ms = sample_interval_ms
        self.behavior = behavior
        self.result = CampaignResult()
        self.compromised: Dict[str, List[Callable[[], None]]] = {}
        self._next_target = 0
        # heal on rejuvenation: recovery evicts the attacker
        previous_hook = deployment.recovery_scheduler.on_rejuvenate \
            if deployment.recovery_scheduler is not None else None

        def rejuvenated(replica) -> None:
            if previous_hook is not None:
                previous_hook(replica)
            self._heal(replica.name)

        if deployment.recovery_scheduler is not None:
            deployment.recovery_scheduler.on_rejuvenate = rejuvenated

    # ------------------------------------------------------------------
    def start(self) -> None:
        sim = self.deployment.simulator
        sim.call_every(self.sample_interval_ms, self._sample, rng_name="spire-campaign-sample")
        sim.schedule_at(self.first_attempt_ms, self._attempt_next)

    def _sample(self) -> None:
        sim = self.deployment.simulator
        grid = self.deployment.grid
        self.result.served_load.append((sim.now, grid.served_load_mw()))
        self.result.compromised.append((sim.now, len(self.compromised)))

    # ------------------------------------------------------------------
    def _attempt_next(self) -> None:
        deployment = self.deployment
        replicas = deployment.replicas
        target = replicas[self._next_target % len(replicas)]
        self._next_target += 1
        diversity = deployment.diversity
        exploit = diversity.exploit_for(target.name)
        self.result.exploit_attempts += 1

        def weaponized() -> None:
            # the exploit lands only if the variant did not change during
            # the dwell (i.e. the replica was not proactively recovered)
            if diversity.is_vulnerable(target.name, exploit) and target.is_up:
                self._compromise(target)
            else:
                self.result.exploits_invalidated += 1

        deployment.simulator.schedule(self.dwell_ms, weaponized)
        deployment.simulator.schedule(self.attempt_interval_ms, self._attempt_next)

    def _compromise(self, replica) -> None:
        if replica.name in self.compromised:
            return
        self.result.exploit_successes += 1
        uninstalls: List[Callable[[], None]] = []
        if self.behavior == "silent":
            uninstalls.append(make_silent(replica))
        else:
            uninstalls.append(make_share_corruptor(replica))
            substations = sorted(self.deployment.grid.substations)

            def fake_record() -> DeliveryRecord:
                substation = substations[0]
                breakers = sorted(
                    self.deployment.grid.substations[substation].breakers
                )
                self.result.unauthorized_operations += 0  # counted at the field
                return DeliveryRecord(
                    kind="command",
                    client="hmi:0",
                    client_seq=10_000_000 + self.result.exploit_successes,
                    order_index=10_000_000,
                    payload=BreakerCommand(
                        substation=substation,
                        breaker_id=breakers[0],
                        close=False,
                        issued_by="attacker",
                    ),
                )

            uninstalls.append(make_delivery_forger(replica, fake_record))
        self.compromised[replica.name] = uninstalls
        self.deployment.obs.event(
            COMP_CAMPAIGN, EV_COMPROMISED, replica=replica.name
        )

    def _heal(self, replica_name: str) -> None:
        uninstalls = self.compromised.pop(replica_name, None)
        if uninstalls is not None:
            for uninstall in uninstalls:
                uninstall()
            self.deployment.obs.event(
                COMP_CAMPAIGN, EV_EVICTED, replica=replica_name
            )
