"""Attacks inside the overlay network.

Spines is itself a distributed system; the paper's threat model includes
compromised overlay daemons (dropping or delaying traffic they route) and
malicious clients flooding the overlay. These helpers install such
behaviours on daemons and provide a flooding attacker endpoint for the
fairness experiment.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Callable, Optional

from ..simnet import Network, Process, Simulator
from ..spines.daemon import SpinesDaemon
from ..spines.overlay import OverlayStack, SpinesOverlay

__all__ = [
    "compromise_daemon_drop_all",
    "compromise_daemon_drop_fraction",
    "compromise_daemon_delay",
    "FloodingAttacker",
    "RouteFlapAttacker",
]


def compromise_daemon_drop_all(daemon: SpinesDaemon) -> Callable[[], None]:
    """The daemon silently drops everything it should route."""

    def behavior(data, default_action):
        pass  # never forward, never deliver

    daemon.set_behavior(behavior)
    return lambda: daemon.set_behavior(None)


def compromise_daemon_drop_fraction(
    daemon: SpinesDaemon, fraction: float, seed: str = "drop"
) -> Callable[[], None]:
    """The daemon drops a fraction of traffic (a stealthier attack)."""
    rng = daemon.simulator.rng(f"overlay-attack/{daemon.name}/{seed}")

    def behavior(data, default_action):
        if rng.random() >= fraction:
            default_action()

    daemon.set_behavior(behavior)
    return lambda: daemon.set_behavior(None)


def compromise_daemon_delay(
    daemon: SpinesDaemon, delay_ms: float
) -> Callable[[], None]:
    """The daemon delays everything it routes (gray-hole latency attack)."""

    def behavior(data, default_action):
        daemon.set_timer(delay_ms, default_action)

    daemon.set_behavior(behavior)
    return lambda: daemon.set_behavior(None)


class FloodingAttacker(Process):
    """A compromised overlay client that floods traffic toward a victim,
    trying to exhaust daemon forwarding capacity. With per-source fairness
    enabled its traffic is confined to its own queue; with fairness off it
    head-of-line-blocks honest sources."""

    def __init__(
        self,
        name: str,
        simulator: Simulator,
        network: Network,
        overlay: SpinesOverlay,
        site: str,
        victim_endpoint: str,
        rate_per_ms: float = 2.0,
    ) -> None:
        super().__init__(name, simulator, network)
        self.stack: OverlayStack = overlay.attach(self, site)
        self.victim_endpoint = victim_endpoint
        self.rate_per_ms = rate_per_ms
        self.sent = 0
        self._stop: Optional[Callable[[], None]] = None

    def start(self) -> None:
        interval = 1.0 / self.rate_per_ms
        self._stop = self.every(interval, self._spam)

    def stop(self) -> None:
        if self._stop is not None:
            self._stop()
            self._stop = None

    def _spam(self) -> None:
        self.sent += 1
        self.stack.send(
            self.victim_endpoint, ("flood", self.sent), size_bytes=1024
        )


class RouteFlapAttacker:
    """A compromised daemon that attacks the *control plane* by lying in
    its hellos: alternately suppressing them (so its neighbours declare
    the links dead) and resuming them (so the links come back), forcing
    the overlay to recompute routes on every toggle. With
    ``lie_latency_ms`` set, resumed hellos also carry back-dated
    ``sent_at`` timestamps, forging inflated latency observations.

    The control plane's flap damping is the defence: after ``max_flaps``
    transitions inside the flap window the abused links are suppressed
    (held down) and the route churn stops. Hellos are link-authenticated,
    so only a daemon *compromise* mounts this attack — an external
    attacker cannot.
    """

    def __init__(
        self,
        daemon: SpinesDaemon,
        period_ms: float = 400.0,
        lie_latency_ms: float = 0.0,
    ) -> None:
        if daemon.monitor is None:
            raise ValueError(
                "RouteFlapAttacker needs a self-healing overlay "
                "(daemon has no link monitor)"
            )
        self.daemon = daemon
        self.period_ms = period_ms
        self.lie_latency_ms = lie_latency_ms
        self.flips = 0
        self._suppressing = False
        self._stop: Optional[Callable[[], None]] = None

    def start(self) -> None:
        self._stop = self.daemon.simulator.call_every(
            self.period_ms, self._flip,
            rng_name=f"route-flap/{self.daemon.name}",
        )

    def stop(self) -> None:
        if self._stop is not None:
            self._stop()
            self._stop = None
        self.daemon.monitor.set_hello_mutator(None)

    def _flip(self) -> None:
        self.flips += 1
        self._suppressing = not self._suppressing
        if self._suppressing:
            self.daemon.monitor.set_hello_mutator(lambda neighbor, hello: None)
        elif self.lie_latency_ms > 0:
            lie = self.lie_latency_ms
            self.daemon.monitor.set_hello_mutator(
                lambda neighbor, hello: dataclasses.replace(
                    hello, sent_at=hello.sent_at - lie
                )
            )
        else:
            self.daemon.monitor.set_hello_mutator(None)
