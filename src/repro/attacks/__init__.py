"""Attack models: Byzantine replicas, network DoS, overlay attacks, and
the scripted red-team campaign."""

from .byzantine import (
    make_delivery_forger,
    make_equivocating_leader,
    make_share_corruptor,
    make_silent,
    make_slow_proposer,
    make_suspect_spammer,
)
from .campaign import CampaignResult, SpireCampaign, TraditionalCampaign
from .dos import LeaderChaser, dos_window
from .overlay_attacks import (
    FloodingAttacker,
    RouteFlapAttacker,
    compromise_daemon_delay,
    compromise_daemon_drop_all,
    compromise_daemon_drop_fraction,
)

__all__ = [
    "make_delivery_forger",
    "make_equivocating_leader",
    "make_share_corruptor",
    "make_silent",
    "make_slow_proposer",
    "make_suspect_spammer",
    "CampaignResult",
    "SpireCampaign",
    "TraditionalCampaign",
    "LeaderChaser",
    "dos_window",
    "FloodingAttacker",
    "RouteFlapAttacker",
    "compromise_daemon_delay",
    "compromise_daemon_drop_all",
    "compromise_daemon_drop_fraction",
]
