"""From-scratch cryptography for the reproduction.

Public API: canonical encoding (:func:`encode`), RSA signatures, Shoup-style
threshold RSA, Merkle trees for batch-amortized delivery proofs, and the
pluggable :class:`CryptoProvider` (``RealCrypto`` / ``FastCrypto``) that
protocol code consumes — including first-class batch operations
(``sign_batch`` / ``verify_batch`` / ``check_mac_batch`` with fail-fast
bisection).
"""

from .encoding import EncodingError, digest, encode
from .merkle import merkle_proof, merkle_root, verify_merkle_proof
from .provider import (
    CryptoProvider,
    FastCrypto,
    RealCrypto,
    Signature,
    ThresholdShare,
    ThresholdSignature,
    TimedCrypto,
    bisect_mismatches,
)
from .rsa import RsaKeyPair, RsaPublicKey, generate_keypair
from .threshold import (
    PartialSignature,
    ThresholdGroup,
    ThresholdKeyShare,
    ThresholdPublicKey,
    generate_threshold_group,
)

__all__ = [
    "EncodingError",
    "digest",
    "encode",
    "merkle_root",
    "merkle_proof",
    "verify_merkle_proof",
    "CryptoProvider",
    "FastCrypto",
    "RealCrypto",
    "Signature",
    "ThresholdShare",
    "ThresholdSignature",
    "TimedCrypto",
    "bisect_mismatches",
    "RsaKeyPair",
    "RsaPublicKey",
    "generate_keypair",
    "PartialSignature",
    "ThresholdGroup",
    "ThresholdKeyShare",
    "ThresholdPublicKey",
    "generate_threshold_group",
]
