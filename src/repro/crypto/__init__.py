"""From-scratch cryptography for the reproduction.

Public API: canonical encoding (:func:`encode`), RSA signatures, Shoup-style
threshold RSA, and the pluggable :class:`CryptoProvider` (``RealCrypto`` /
``FastCrypto``) that protocol code consumes.
"""

from .encoding import EncodingError, digest, encode
from .provider import (
    CryptoProvider,
    FastCrypto,
    RealCrypto,
    Signature,
    ThresholdShare,
    ThresholdSignature,
)
from .rsa import RsaKeyPair, RsaPublicKey, generate_keypair
from .threshold import (
    PartialSignature,
    ThresholdGroup,
    ThresholdKeyShare,
    ThresholdPublicKey,
    generate_threshold_group,
)

__all__ = [
    "EncodingError",
    "digest",
    "encode",
    "CryptoProvider",
    "FastCrypto",
    "RealCrypto",
    "Signature",
    "ThresholdShare",
    "ThresholdSignature",
    "RsaKeyPair",
    "RsaPublicKey",
    "generate_keypair",
    "PartialSignature",
    "ThresholdGroup",
    "ThresholdKeyShare",
    "ThresholdPublicKey",
    "generate_threshold_group",
]
