"""Threshold RSA signatures (Shoup-style, simplified).

In Spire, the replicated SCADA masters *threshold-sign* every ordered state
update so that RTU proxies and HMIs can verify a single compact signature
instead of checking ``f + 1`` individual replica signatures. We implement
the scheme from Shoup's "Practical Threshold Signatures", with one
simplification: instead of per-share zero-knowledge correctness proofs, the
combiner verifies the combined signature and — when given more than
``threshold`` shares, some possibly corrupted by compromised replicas —
searches subsets for a combination that verifies (robust combining). With
the small replica groups the paper uses (6–12), this is cheap and yields
the same observable behaviour: corrupted shares cannot prevent signature
generation as long as ``threshold`` honest shares are available, and no
coalition smaller than ``threshold`` can produce a valid signature.

Mathematical construction
-------------------------
Dealer: RSA modulus ``n = p*q``, Carmichael ``lam = lcm(p-1, q-1)``, public
exponent ``e`` (prime, > group size), ``d = e^-1 mod lam``. ``d`` is
Shamir-shared with a degree ``t-1`` polynomial over ``Z_lam``.

Partial signature of message hash ``x``: ``x_i = x^(2*delta*s_i) mod n``
with ``delta = l!``.

Combination over a share subset ``S`` of size ``t``: integer Lagrange
coefficients ``c_i = delta * lagrange_i(0)``; then
``w = prod x_i^(2*c_i) = x^(4*delta^2*d)``. Since ``gcd(4*delta^2, e) = 1``
extended Euclid gives ``a, b`` with ``a*4*delta^2 + b*e = 1`` and the final
signature is ``w^a * x^b = x^d``.
"""

from __future__ import annotations

import math
import random
import warnings
from dataclasses import dataclass, field
from itertools import combinations
from typing import Dict, Iterable, Optional, Tuple

from .rsa import generate_prime, _fdh, _gcd

__all__ = [
    "ThresholdPublicKey",
    "ThresholdKeyShare",
    "ThresholdGroup",
    "PartialSignature",
    "generate_threshold_group",
]


@dataclass(frozen=True)
class ThresholdPublicKey:
    """Public data of a threshold-RSA group."""

    n: int
    e: int
    players: int
    threshold: int

    def verify(self, data: bytes, signature: int) -> bool:
        """Verify a combined threshold signature."""
        if not 0 < signature < self.n:
            return False
        return pow(signature, self.e, self.n) == _fdh(data, self.n)


@dataclass(frozen=True)
class PartialSignature:
    """A signature share produced by player ``index``."""

    index: int
    value: int


@dataclass(frozen=True)
class ThresholdKeyShare:
    """Secret share held by one player."""

    index: int
    secret: int
    public: ThresholdPublicKey

    def sign(self, data: bytes) -> PartialSignature:
        """Produce this player's partial signature over ``data``."""
        x = _fdh(data, self.public.n)
        delta = math.factorial(self.public.players)
        return PartialSignature(self.index, pow(x, 2 * delta * self.secret, self.public.n))


class ThresholdGroup:
    """Combiner-side view of a threshold group (public key + combining)."""

    def __init__(self, public: ThresholdPublicKey) -> None:
        self.public = public
        self._delta = math.factorial(public.players)

    def _lagrange_numerators(self, subset: Tuple[int, ...]) -> Dict[int, int]:
        """Integer coefficients ``delta * lagrange_i(0)`` for the subset."""
        coefficients: Dict[int, int] = {}
        for i in subset:
            num = 1
            den = 1
            for j in subset:
                if j == i:
                    continue
                num *= -j
                den *= i - j
            value = self._delta * num // den
            if value * den != self._delta * num:
                raise ArithmeticError("lagrange coefficient is not integral")
            coefficients[i] = value
        return coefficients

    def combine_shares(self, data: bytes, shares: Iterable[PartialSignature]) -> int:
        """Combine exactly ``threshold`` shares into a full signature.

        Raises ValueError if too few shares are given or the result does
        not verify (e.g. because a share was corrupted).
        """
        share_map = {s.index: s.value for s in shares}
        if len(share_map) < self.public.threshold:
            raise ValueError(
                f"need {self.public.threshold} shares, got {len(share_map)}"
            )
        subset = tuple(sorted(share_map))[: self.public.threshold]
        signature = self._combine_subset(data, subset, share_map)
        if signature is None:
            raise ValueError("combined signature failed to verify")
        return signature

    def combine_shares_robust(
        self, data: bytes, shares: Iterable[PartialSignature]
    ) -> Optional[int]:
        """Combine in the presence of corrupted shares.

        Tries subsets of size ``threshold`` until one verifies. Returns
        None when no verifying combination exists (fewer than
        ``threshold`` honest shares).
        """
        share_map = {s.index: s.value for s in shares}
        if len(share_map) < self.public.threshold:
            return None
        indices = tuple(sorted(share_map))
        for subset in combinations(indices, self.public.threshold):
            signature = self._combine_subset(data, subset, share_map)
            if signature is not None:
                return signature
        return None

    # -- deprecated aliases -------------------------------------------------
    # Callers used to reach into the group with per-update ``combine``/
    # ``combine_robust`` calls from the ordering path; the canonical API is
    # now ``combine_shares``/``combine_shares_robust`` (one combine per
    # *batch*, via ``CryptoProvider.threshold_combine``). Shims warn once
    # per call site, matching how the Trace/LatencyRecorder shims were
    # retired.

    def combine(self, data: bytes, shares: Iterable[PartialSignature]) -> int:
        """Deprecated alias for :meth:`combine_shares`."""
        warnings.warn(
            "ThresholdGroup.combine is deprecated; use combine_shares "
            "(or CryptoProvider.threshold_combine for provider-managed "
            "batching)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.combine_shares(data, shares)

    def combine_robust(
        self, data: bytes, shares: Iterable[PartialSignature]
    ) -> Optional[int]:
        """Deprecated alias for :meth:`combine_shares_robust`."""
        warnings.warn(
            "ThresholdGroup.combine_robust is deprecated; use "
            "combine_shares_robust (or CryptoProvider.threshold_combine "
            "for provider-managed batching)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.combine_shares_robust(data, shares)

    def _combine_subset(
        self, data: bytes, subset: Tuple[int, ...], share_map: Dict[int, int]
    ) -> Optional[int]:
        n = self.public.n
        x = _fdh(data, n)
        coefficients = self._lagrange_numerators(subset)
        w = 1
        for i in subset:
            try:
                w = (w * pow(share_map[i], 2 * coefficients[i], n)) % n
            except ValueError:
                return None  # share not invertible: corrupted beyond use
        e_prime = 4 * self._delta * self._delta
        a, b = _ext_gcd_bezout(e_prime, self.public.e)
        try:
            signature = (pow(w, a, n) * pow(x, b, n)) % n
        except ValueError:
            return None
        if self.public.verify(data, signature):
            return signature
        return None


def _ext_gcd_bezout(u: int, v: int) -> Tuple[int, int]:
    """Return ``(a, b)`` with ``a*u + b*v == gcd(u, v) == 1``."""
    old_r, r = u, v
    old_a, a = 1, 0
    old_b, b = 0, 1
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_a, a = a, old_a - q * a
        old_b, b = b, old_b - q * b
    if old_r != 1:
        raise ArithmeticError(f"exponents not coprime: gcd={old_r}")
    return old_a, old_b


def generate_threshold_group(
    players: int,
    threshold: int,
    bits: int = 512,
    seed: str = "threshold",
    e: int = 65537,
) -> Tuple[ThresholdPublicKey, Dict[int, ThresholdKeyShare]]:
    """Trusted-dealer key generation for a ``threshold``-of-``players`` group.

    Player indices are 1-based (Shamir evaluation points).
    """
    if not 1 <= threshold <= players:
        raise ValueError(f"invalid threshold {threshold} for {players} players")
    if e <= players:
        raise ValueError("public exponent must exceed the number of players")
    rng = random.Random(f"threshold-keygen/{seed}/{players}/{threshold}/{bits}")
    half = bits // 2
    while True:
        p = generate_prime(half, rng)
        q = generate_prime(bits - half, rng)
        if p == q:
            continue
        lam = (p - 1) * (q - 1) // _gcd(p - 1, q - 1)
        if _gcd(e, lam) != 1:
            continue
        break
    n = p * q
    d = pow(e, -1, lam)
    coefficients = [d] + [rng.randrange(lam) for _ in range(threshold - 1)]
    public = ThresholdPublicKey(n=n, e=e, players=players, threshold=threshold)
    shares = {}
    for i in range(1, players + 1):
        value = 0
        for power, coefficient in enumerate(coefficients):
            value = (value + coefficient * pow(i, power, lam)) % lam
        shares[i] = ThresholdKeyShare(index=i, secret=value, public=public)
    return public, shares
