"""Pluggable cryptography provider.

Protocol code never touches key material directly; it asks a
:class:`CryptoProvider` to sign/verify/MAC on behalf of named principals
and threshold groups. Two implementations are provided:

* :class:`RealCrypto` — the from-scratch RSA and threshold-RSA of
  :mod:`repro.crypto.rsa` / :mod:`repro.crypto.threshold`. Used by the
  crypto-focused tests and available everywhere.
* :class:`FastCrypto` — a *simulation-faithful* provider: tags are SHA-256
  digests keyed on secret per-principal strings. Within the simulation's
  adversary model (an attacker can only invoke signing for principals it
  controls), tags are unforgeable, and verification behaves identically to
  real signatures. This keeps the virtual-time benchmarks — which replay
  hundreds of thousands of updates — from being dominated by bignum math,
  exactly the substitution DESIGN.md §3 documents.

Both providers share the same threshold semantics: a combined signature
exists iff at least ``threshold`` distinct genuine shares over the same
data are presented, and corrupted shares never block combination when
enough genuine shares are present.

Batch operations
----------------
The *canonical* interface is batch-shaped: ``sign_batch`` /
``verify_batch`` / ``mac_batch`` / ``check_mac_batch`` /
``threshold_sign_share_batch`` each take a sequence of messages and are
what high-throughput callers (the batched delivery path, the ordered
pipeline benchmarks) use. The base class provides loop-based fallbacks
over the single-message methods, so third-party providers that only
implement the per-message interface keep working unchanged; the built-in
providers override the batch ops to amortize per-call setup (key/secret
lookup, instrument resolution). ``check_mac_batch`` defaults to an
aggregate comparison with fail-fast bisection: one constant-time compare
for an all-good batch, ``O(bad · log n)`` comparisons to isolate exactly
the corrupted items otherwise.
"""

from __future__ import annotations

import hashlib
import hmac as hmac_module
from time import perf_counter as _perf_counter
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from .encoding import IdentityMemo, encode, encode_cached
from .rsa import RsaKeyPair, generate_keypair
from .threshold import (
    PartialSignature,
    ThresholdGroup,
    ThresholdKeyShare,
    ThresholdPublicKey,
    generate_threshold_group,
)

__all__ = [
    "CryptoProvider",
    "RealCrypto",
    "FastCrypto",
    "TimedCrypto",
    "Signature",
    "ThresholdShare",
    "ThresholdSignature",
    "bisect_mismatches",
]


def _aggregate(tags: Sequence[bytes]) -> bytes:
    digest = hashlib.sha256()
    for tag in tags:
        digest.update(tag)
    return digest.digest()


def bisect_mismatches(
    expected: Sequence[bytes], received: Sequence[bytes]
) -> Tuple[List[int], int]:
    """Indices where ``received[i] != expected[i]``, by aggregate bisection.

    Compares aggregate digests of whole ranges first and recurses only
    into mismatching halves, so an all-good batch costs one comparison
    and ``k`` corrupted items are isolated in ``O(k log n)`` comparisons
    instead of ``n``. Returns ``(bad_indices, comparisons_performed)``;
    the leaf comparisons are constant-time (``hmac.compare_digest``).
    """
    if len(expected) != len(received):
        raise ValueError(
            f"batch length mismatch: {len(expected)} expected tags vs "
            f"{len(received)} received"
        )
    bad: List[int] = []
    comparisons = 0

    def walk(lo: int, hi: int) -> None:
        nonlocal comparisons
        if hi - lo == 1:
            comparisons += 1
            if not hmac_module.compare_digest(expected[lo], received[lo]):
                bad.append(lo)
            return
        comparisons += 1
        if _aggregate(expected[lo:hi]) == _aggregate(received[lo:hi]):
            return
        mid = (lo + hi) // 2
        walk(lo, mid)
        walk(mid, hi)

    if expected:
        walk(0, len(expected))
    return bad, comparisons


@dataclass(frozen=True)
class Signature:
    """An individual principal's signature over canonical-encoded data."""

    signer: str
    value: Any


@dataclass(frozen=True)
class ThresholdShare:
    """One replica's share of a threshold signature over some data."""

    group: str
    index: int
    value: Any


@dataclass(frozen=True)
class ThresholdSignature:
    """A combined threshold signature over some data."""

    group: str
    value: Any


class CryptoProvider:
    """Abstract interface; see module docstring."""

    # -- individual signatures -----------------------------------------
    def sign(self, signer: str, message: Any) -> Signature:
        raise NotImplementedError

    def verify(self, signature: Signature, message: Any) -> bool:
        raise NotImplementedError

    # -- pairwise MACs (link authentication) ----------------------------
    def mac(self, src: str, dst: str, message: Any) -> bytes:
        raise NotImplementedError

    def check_mac(self, src: str, dst: str, message: Any, tag: bytes) -> bool:
        raise NotImplementedError

    # -- threshold signatures -------------------------------------------
    def create_threshold_group(self, group: str, players: int, threshold: int) -> None:
        raise NotImplementedError

    def threshold_parameters(self, group: str) -> Tuple[int, int]:
        """Return ``(players, threshold)`` for a group."""
        raise NotImplementedError

    def threshold_sign_share(self, group: str, index: int, message: Any) -> ThresholdShare:
        raise NotImplementedError

    def threshold_combine(
        self, group: str, message: Any, shares: Iterable[ThresholdShare]
    ) -> Optional[ThresholdSignature]:
        raise NotImplementedError

    def threshold_verify(self, signature: ThresholdSignature, message: Any) -> bool:
        raise NotImplementedError

    # -- batch operations (canonical interface; loop-based fallbacks) ----
    #
    # Subclasses override these to amortize per-call setup; providers
    # that only implement the per-message methods inherit semantics
    # identical to calling the single-op methods in a loop.
    def sign_batch(self, signer: str, messages: Sequence[Any]) -> List[Signature]:
        return [self.sign(signer, message) for message in messages]

    def verify_batch(
        self, signatures: Sequence[Signature], messages: Sequence[Any]
    ) -> List[bool]:
        if len(signatures) != len(messages):
            raise ValueError(
                f"batch length mismatch: {len(signatures)} signatures vs "
                f"{len(messages)} messages"
            )
        return [
            self.verify(signature, message)
            for signature, message in zip(signatures, messages)
        ]

    def mac_batch(self, src: str, dst: str, messages: Sequence[Any]) -> List[bytes]:
        return [self.mac(src, dst, message) for message in messages]

    def check_mac_batch(
        self, src: str, dst: str, messages: Sequence[Any], tags: Sequence[bytes]
    ) -> List[bool]:
        """Verify a batch of MACs; fail-fast bisection isolates corruption.

        Recomputes the expected tags (one MAC each — unavoidable), then
        compares aggregates with :func:`bisect_mismatches` so the
        constant-time comparisons stay ``O(bad · log n)``.
        """
        expected = self.mac_batch(src, dst, messages)
        bad, _ = bisect_mismatches(expected, list(tags))
        flags = [True] * len(expected)
        for index in bad:
            flags[index] = False
        return flags

    def threshold_sign_share_batch(
        self, group: str, index: int, messages: Sequence[Any]
    ) -> List[ThresholdShare]:
        return [
            self.threshold_sign_share(group, index, message) for message in messages
        ]


class RealCrypto(CryptoProvider):
    """RSA-backed provider (keys generated lazily and deterministically)."""

    def __init__(self, seed: str = "real", bits: int = 512) -> None:
        self.seed = seed
        self.bits = bits
        self._keys: Dict[str, RsaKeyPair] = {}
        self._groups: Dict[str, Tuple[ThresholdPublicKey, Dict[int, ThresholdKeyShare]]] = {}
        self._pair_keys: Dict[Tuple[str, str], bytes] = {}

    def _keypair(self, principal: str) -> RsaKeyPair:
        if principal not in self._keys:
            self._keys[principal] = generate_keypair(
                bits=self.bits, seed=f"{self.seed}/{principal}"
            )
        return self._keys[principal]

    def sign(self, signer: str, message: Any) -> Signature:
        return Signature(signer, self._keypair(signer).sign(encode_cached(message)))

    def verify(self, signature: Signature, message: Any) -> bool:
        key = self._keypair(signature.signer).public
        if not isinstance(signature.value, int):
            return False
        return key.verify(encode_cached(message), signature.value)

    def sign_batch(self, signer: str, messages: Sequence[Any]) -> List[Signature]:
        keypair = self._keypair(signer)  # key lookup/generation once per batch
        return [
            Signature(signer, keypair.sign(encode_cached(message)))
            for message in messages
        ]

    def _pair_key(self, a: str, b: str) -> bytes:
        lo, hi = sorted((a, b))
        key = self._pair_keys.get((lo, hi))
        if key is None:
            key = hashlib.sha256(f"{self.seed}/mac/{lo}/{hi}".encode()).digest()
            self._pair_keys[(lo, hi)] = key
        return key

    def mac(self, src: str, dst: str, message: Any) -> bytes:
        return hmac_module.new(self._pair_key(src, dst), encode_cached(message), "sha256").digest()

    def check_mac(self, src: str, dst: str, message: Any, tag: bytes) -> bool:
        return hmac_module.compare_digest(self.mac(src, dst, message), tag)

    def create_threshold_group(self, group: str, players: int, threshold: int) -> None:
        if group in self._groups:
            public, _ = self._groups[group]
            if (public.players, public.threshold) != (players, threshold):
                raise ValueError(f"group {group!r} exists with different parameters")
            return
        self._groups[group] = generate_threshold_group(
            players, threshold, seed=f"{self.seed}/{group}"
        )

    def threshold_parameters(self, group: str) -> Tuple[int, int]:
        public, _ = self._groups[group]
        return public.players, public.threshold

    def threshold_sign_share(self, group: str, index: int, message: Any) -> ThresholdShare:
        _, shares = self._groups[group]
        partial = shares[index].sign(encode_cached(message))
        return ThresholdShare(group, index, partial.value)

    def threshold_sign_share_batch(
        self, group: str, index: int, messages: Sequence[Any]
    ) -> List[ThresholdShare]:
        _, shares = self._groups[group]
        key_share = shares[index]  # share lookup once per batch
        return [
            ThresholdShare(group, index, key_share.sign(encode_cached(message)).value)
            for message in messages
        ]

    def threshold_combine(
        self, group: str, message: Any, shares: Iterable[ThresholdShare]
    ) -> Optional[ThresholdSignature]:
        public, _ = self._groups[group]
        combiner = ThresholdGroup(public)
        partials = [
            PartialSignature(s.index, s.value)
            for s in shares
            if s.group == group and isinstance(s.value, int)
        ]
        combined = combiner.combine_shares_robust(encode_cached(message), partials)
        if combined is None:
            return None
        return ThresholdSignature(group, combined)

    def threshold_verify(self, signature: ThresholdSignature, message: Any) -> bool:
        if signature.group not in self._groups:
            return False
        public, _ = self._groups[signature.group]
        if not isinstance(signature.value, int):
            return False
        return public.verify(encode_cached(message), signature.value)


class FastCrypto(CryptoProvider):
    """Hash-based provider with identical observable semantics.

    A signature is ``sha256(secret(signer) || data)``; a threshold share is
    ``sha256(secret(group, index) || data)``; the combined signature is
    ``sha256(group-secret || data || sorted(valid share indices)[:threshold])``
    — but verification only re-derives from the group secret and data, so
    any valid combination verifies. Corrupt shares are detectable because
    they fail share-level re-derivation.
    """

    def __init__(self, seed: str = "fast") -> None:
        self.seed = seed
        self._groups: Dict[str, Tuple[int, int]] = {}
        #: derived secrets are pure functions of (seed, parts) — derive once
        self._secrets: Dict[Tuple[str, ...], bytes] = {}
        #: identity-keyed tag memo: sign → mac → verify on the same message
        #: object re-derives nothing. Entry layout [message, tag].
        self._tags = IdentityMemo()

    def _secret(self, *parts: str) -> bytes:
        secret = self._secrets.get(parts)
        if secret is None:
            secret = hashlib.sha256("/".join((self.seed,) + parts).encode()).digest()
            self._secrets[parts] = secret
        return secret

    def _tag(self, kind_key: tuple, message: Any, secret_parts: Tuple[str, ...],
             hexdigest: bool) -> Any:
        """Memoized ``sha256(secret || encoding)`` over a message object."""
        key = kind_key + (id(message),)
        entry = self._tags.get(key, message)
        if entry is None:
            raw = hashlib.sha256(
                self._secret(*secret_parts) + encode_cached(message)
            )
            tag = raw.hexdigest() if hexdigest else raw.digest()
            entry = self._tags.put(key, [message, tag])
        return entry[1]

    def sign(self, signer: str, message: Any) -> Signature:
        return Signature(
            signer, self._tag(("sig", signer), message, ("sig", signer), True)
        )

    def verify(self, signature: Signature, message: Any) -> bool:
        tag = self._tag(
            ("sig", signature.signer), message, ("sig", signature.signer), True
        )
        return tag == signature.value

    def mac(self, src: str, dst: str, message: Any) -> bytes:
        lo, hi = sorted((src, dst))
        return self._tag(("mac", lo, hi), message, ("mac", lo, hi), False)

    def check_mac(self, src: str, dst: str, message: Any, tag: bytes) -> bool:
        return hmac_module.compare_digest(self.mac(src, dst, message), tag)

    def sign_batch(self, signer: str, messages: Sequence[Any]) -> List[Signature]:
        kind_key = ("sig", signer)
        return [
            Signature(signer, self._tag(kind_key, message, kind_key, True))
            for message in messages
        ]

    def mac_batch(self, src: str, dst: str, messages: Sequence[Any]) -> List[bytes]:
        lo, hi = sorted((src, dst))
        kind_key = ("mac", lo, hi)
        return [
            self._tag(kind_key, message, kind_key, False) for message in messages
        ]

    def create_threshold_group(self, group: str, players: int, threshold: int) -> None:
        existing = self._groups.get(group)
        if existing is not None and existing != (players, threshold):
            raise ValueError(f"group {group!r} exists with different parameters")
        self._groups[group] = (players, threshold)

    def threshold_parameters(self, group: str) -> Tuple[int, int]:
        return self._groups[group]

    def _share_value(self, group: str, index: int, data: bytes) -> str:
        # keyed on the encoding's identity: ``data`` comes from
        # ``encode_cached``, so the same message yields the same bytes
        # object and combine/verify hit instead of re-hashing per share
        key = ("tshare", group, index, id(data))
        entry = self._tags.get(key, data)
        if entry is None:
            value = hashlib.sha256(
                self._secret("tshare", group, str(index)) + data
            ).hexdigest()
            entry = self._tags.put(key, [data, value])
        return entry[1]

    def _combined_value(self, group: str, data: bytes) -> str:
        key = ("tsig", group, id(data))
        entry = self._tags.get(key, data)
        if entry is None:
            value = hashlib.sha256(self._secret("tsig", group) + data).hexdigest()
            entry = self._tags.put(key, [data, value])
        return entry[1]

    def threshold_sign_share(self, group: str, index: int, message: Any) -> ThresholdShare:
        players, _ = self._groups[group]
        if not 1 <= index <= players:
            raise ValueError(f"share index {index} out of range for group {group!r}")
        return ThresholdShare(group, index, self._share_value(group, index, encode_cached(message)))

    def threshold_sign_share_batch(
        self, group: str, index: int, messages: Sequence[Any]
    ) -> List[ThresholdShare]:
        players, _ = self._groups[group]
        if not 1 <= index <= players:
            raise ValueError(f"share index {index} out of range for group {group!r}")
        secret = self._secret("tshare", group, str(index))
        shares: List[ThresholdShare] = []
        for message in messages:
            data = encode_cached(message)
            key = ("tshare", group, index, id(data))
            entry = self._tags.get(key, data)
            if entry is None:
                value = hashlib.sha256(secret + data).hexdigest()
                entry = self._tags.put(key, [data, value])
            shares.append(ThresholdShare(group, index, entry[1]))
        return shares

    def threshold_combine(
        self, group: str, message: Any, shares: Iterable[ThresholdShare]
    ) -> Optional[ThresholdSignature]:
        players, threshold = self._groups[group]
        data = encode_cached(message)
        valid = {
            s.index
            for s in shares
            if s.group == group
            and 1 <= s.index <= players
            and s.value == self._share_value(group, s.index, data)
        }
        if len(valid) < threshold:
            return None
        return ThresholdSignature(group, self._combined_value(group, data))

    def threshold_verify(self, signature: ThresholdSignature, message: Any) -> bool:
        if signature.group not in self._groups:
            return False
        tag = self._combined_value(signature.group, encode_cached(message))
        return signature.value == tag


class TimedCrypto(CryptoProvider):
    """Delegating wrapper that profiles every crypto operation.

    Wraps any :class:`CryptoProvider` and records per-operation wall-clock
    timing histograms (``crypto.<op>.wall_ms``, non-deterministic) plus
    call counters (``crypto.<op>.calls``, deterministic) into a
    ``repro.obs`` recorder. The underlying provider is untouched, so
    signatures/MACs are bit-identical with or without the wrapper; if the
    recorder is disabled the wrapper simply is not installed (deployments
    construct it only when observability is on).
    """

    def __init__(self, inner: CryptoProvider, obs) -> None:
        self.inner = inner
        self._obs = obs
        self._instruments: Dict[str, Tuple[Any, Any]] = {}
        # per-op (inc, observe) pairs for the four per-message ops,
        # attached lazily on first call (instruments must not exist
        # before the op is first used) and inlined into each method to
        # avoid the _timed frame and varargs packing per call
        self._sign_pair: Optional[Tuple[Any, Any]] = None
        self._verify_pair: Optional[Tuple[Any, Any]] = None
        self._mac_pair: Optional[Tuple[Any, Any]] = None
        self._check_mac_pair: Optional[Tuple[Any, Any]] = None

    def _pair(self, op: str) -> Tuple[Any, Any]:
        pair = self._instruments.get(op)
        if pair is None:
            pair = (
                self._obs.counter(f"crypto.{op}.calls").inc,
                self._obs.histogram(f"crypto.{op}.wall_ms", deterministic=False).observe,
            )
            self._instruments[op] = pair
        return pair

    def _timed(self, op: str, fn, *args):
        inc, observe = self._pair(op)
        inc()
        started = _perf_counter()
        result = fn(*args)
        observe((_perf_counter() - started) * 1000.0)
        return result

    # -- individual signatures -----------------------------------------
    def sign(self, signer: str, message: Any) -> Signature:
        pair = self._sign_pair
        if pair is None:
            pair = self._sign_pair = self._pair("sign")
        inc, observe = pair
        inc()
        started = _perf_counter()
        result = self.inner.sign(signer, message)
        observe((_perf_counter() - started) * 1000.0)
        return result

    def verify(self, signature: Signature, message: Any) -> bool:
        pair = self._verify_pair
        if pair is None:
            pair = self._verify_pair = self._pair("verify")
        inc, observe = pair
        inc()
        started = _perf_counter()
        result = self.inner.verify(signature, message)
        observe((_perf_counter() - started) * 1000.0)
        return result

    # -- link MACs ------------------------------------------------------
    def mac(self, src: str, dst: str, message: Any) -> bytes:
        pair = self._mac_pair
        if pair is None:
            pair = self._mac_pair = self._pair("mac")
        inc, observe = pair
        inc()
        started = _perf_counter()
        result = self.inner.mac(src, dst, message)
        observe((_perf_counter() - started) * 1000.0)
        return result

    def check_mac(self, src: str, dst: str, message: Any, tag: bytes) -> bool:
        pair = self._check_mac_pair
        if pair is None:
            pair = self._check_mac_pair = self._pair("check_mac")
        inc, observe = pair
        inc()
        started = _perf_counter()
        result = self.inner.check_mac(src, dst, message, tag)
        observe((_perf_counter() - started) * 1000.0)
        return result

    # -- threshold signatures ------------------------------------------
    def create_threshold_group(self, group: str, players: int, threshold: int) -> None:
        return self._timed(
            "create_threshold_group",
            self.inner.create_threshold_group, group, players, threshold,
        )

    def threshold_parameters(self, group: str) -> Tuple[int, int]:
        return self.inner.threshold_parameters(group)

    def threshold_sign_share(self, group: str, index: int, message: Any) -> ThresholdShare:
        return self._timed(
            "threshold_sign_share",
            self.inner.threshold_sign_share, group, index, message,
        )

    def threshold_combine(
        self, group: str, message: Any, shares: Iterable[ThresholdShare]
    ) -> Optional[ThresholdSignature]:
        return self._timed(
            "threshold_combine", self.inner.threshold_combine, group, message, shares
        )

    def threshold_verify(self, signature: ThresholdSignature, message: Any) -> bool:
        return self._timed(
            "threshold_verify", self.inner.threshold_verify, signature, message
        )

    # -- batch operations ----------------------------------------------
    # Batch ops count one *call* per batch plus an ``.items`` counter so
    # dashboards can see both the amortization factor and the per-item
    # volume. Timing covers the whole batch.

    def _timed_batch(self, op: str, items: int, fn, *args):
        inc, observe = self._pair(op)
        inc()
        self._obs.counter(f"crypto.{op}.items").inc(items)
        started = _perf_counter()
        result = fn(*args)
        observe((_perf_counter() - started) * 1000.0)
        return result

    def sign_batch(self, signer: str, messages: Sequence[Any]) -> List[Signature]:
        return self._timed_batch(
            "sign_batch", len(messages), self.inner.sign_batch, signer, messages
        )

    def verify_batch(
        self, signatures: Sequence[Signature], messages: Sequence[Any]
    ) -> List[bool]:
        return self._timed_batch(
            "verify_batch", len(messages),
            self.inner.verify_batch, signatures, messages,
        )

    def mac_batch(self, src: str, dst: str, messages: Sequence[Any]) -> List[bytes]:
        return self._timed_batch(
            "mac_batch", len(messages), self.inner.mac_batch, src, dst, messages
        )

    def check_mac_batch(
        self, src: str, dst: str, messages: Sequence[Any], tags: Sequence[bytes]
    ) -> List[bool]:
        return self._timed_batch(
            "check_mac_batch", len(messages),
            self.inner.check_mac_batch, src, dst, messages, tags,
        )

    def threshold_sign_share_batch(
        self, group: str, index: int, messages: Sequence[Any]
    ) -> List[ThresholdShare]:
        return self._timed_batch(
            "threshold_sign_share_batch", len(messages),
            self.inner.threshold_sign_share_batch, group, index, messages,
        )
