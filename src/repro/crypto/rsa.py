"""Minimal pure-Python RSA signatures.

The real Spire uses OpenSSL RSA for replica and client signatures. This is
a from-scratch implementation sufficient for the reproduction: determinstic
Miller-Rabin prime generation from a seeded RNG (so key material is
reproducible per run), full-domain-hash style signing over SHA-256, and
verification. Key sizes default to 512 bits — small by production
standards but this code models protocol behaviour, not cryptographic
strength margins.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass

__all__ = ["RsaKeyPair", "RsaPublicKey", "generate_keypair", "is_probable_prime", "generate_prime"]

_SMALL_PRIMES = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67]


def is_probable_prime(n: int, rng: random.Random, rounds: int = 30) -> bool:
    """Miller-Rabin primality test."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, rng: random.Random) -> int:
    """Generate a probable prime with the top two bits set."""
    while True:
        candidate = rng.getrandbits(bits) | (3 << (bits - 2)) | 1
        if is_probable_prime(candidate, rng):
            return candidate


@dataclass(frozen=True)
class RsaPublicKey:
    """RSA public key ``(n, e)``."""

    n: int
    e: int

    def verify(self, data: bytes, signature: int) -> bool:
        """Verify a full-domain-hash signature over ``data``."""
        if not 0 < signature < self.n:
            return False
        return pow(signature, self.e, self.n) == _fdh(data, self.n)


@dataclass(frozen=True)
class RsaKeyPair:
    """RSA key pair; ``d`` is the private exponent."""

    n: int
    e: int
    d: int
    p: int
    q: int

    @property
    def public(self) -> RsaPublicKey:
        return RsaPublicKey(self.n, self.e)

    def sign(self, data: bytes) -> int:
        """Produce a full-domain-hash signature over ``data``."""
        return pow(_fdh(data, self.n), self.d, self.n)


def _fdh(data: bytes, n: int) -> int:
    """Full-domain hash: expand SHA-256 over ``data`` to an element of Z_n."""
    digest = b""
    counter = 0
    target_len = (n.bit_length() + 7) // 8 + 8
    while len(digest) < target_len:
        digest += hashlib.sha256(counter.to_bytes(4, "big") + data).digest()
        counter += 1
    return int.from_bytes(digest, "big") % n


def generate_keypair(bits: int = 512, seed: str = "rsa", e: int = 65537) -> RsaKeyPair:
    """Deterministically generate an RSA key pair from a seed string."""
    rng = random.Random(f"rsa-keygen/{seed}/{bits}")
    half = bits // 2
    while True:
        p = generate_prime(half, rng)
        q = generate_prime(bits - half, rng)
        if p == q:
            continue
        lam = (p - 1) * (q - 1) // _gcd(p - 1, q - 1)
        if _gcd(e, lam) != 1:
            continue
        d = pow(e, -1, lam)
        return RsaKeyPair(n=p * q, e=e, d=d, p=p, q=q)


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return a
