"""Canonical byte encoding for signable protocol objects.

Digital signatures and MACs need a deterministic byte representation of
protocol messages. Rather than pulling in a serialization framework, this
module defines a small canonical encoding over the value types protocol
messages are built from: ints, floats, strings, bytes, bools, None,
tuples/lists, dicts (sorted by key), frozensets (sorted), and dataclasses
(encoded as ``(class name, field dict)``).

The encoding is injective on the supported domain, which is what
unforgeability arguments need: two distinct messages never encode to the
same bytes.
"""

from __future__ import annotations

import dataclasses
import struct
from hashlib import sha256 as _sha256
from typing import Any, Dict, Optional, Tuple

__all__ = [
    "encode",
    "encode_cached",
    "encode_cache_stats",
    "digest",
    "EncodingError",
    "IdentityMemo",
]

class EncodingError(TypeError):
    """Raised when a value outside the supported domain is encoded."""


_PACK_D = struct.Struct(">d").pack

#: exact-type -> encoder function; the per-value isinstance ladder the
#: encoder used to walk was the single hottest code path under profile.
#: Populated below for the builtin value types and lazily (via
#: :func:`_resolve_encoder`) for each dataclass the simulation encodes.
_DISPATCH: Dict[type, Any] = {}


def _enc_none(value: Any, out: bytearray) -> None:
    out += b"N"


def _enc_bool(value: Any, out: bytearray) -> None:
    out += b"T" if value else b"F"


def _enc_int(value: Any, out: bytearray) -> None:
    data = str(value).encode()
    out += b"i" + len(data).to_bytes(4, "big") + data


def _enc_float(value: Any, out: bytearray) -> None:
    out += b"f" + _PACK_D(value)


#: rendered encodings of short strings; process names, message kinds and
#: field constants recur in nearly every message (bounded, never evicted)
_STR_BYTES: Dict[str, bytes] = {}


def _enc_str(value: Any, out: bytearray) -> None:
    cached = _STR_BYTES.get(value)
    if cached is None:
        data = value.encode("utf-8")
        cached = b"s" + len(data).to_bytes(4, "big") + data
        if len(value) <= 64 and len(_STR_BYTES) < 4096:
            _STR_BYTES[value] = cached
    out += cached


def _enc_bytes(value: Any, out: bytearray) -> None:
    out += b"b" + len(value).to_bytes(4, "big") + value


def _enc_seq(value: Any, out: bytearray) -> None:
    out += b"l" + len(value).to_bytes(4, "big")
    dispatch = _DISPATCH
    for item in value:
        enc = dispatch.get(item.__class__)
        if enc is None:
            enc = _resolve_encoder(item)
        enc(item, out)


def _enc_frozenset(value: Any, out: bytearray) -> None:
    items = sorted(encode(item) for item in value)
    out += b"S" + len(items).to_bytes(4, "big")
    for item in items:
        out += len(item).to_bytes(4, "big") + item


def _enc_dict(value: Any, out: bytearray) -> None:
    items = sorted((encode(k), v) for k, v in value.items())
    out += b"d" + len(items).to_bytes(4, "big")
    dispatch = _DISPATCH
    for key_bytes, item in items:
        out += len(key_bytes).to_bytes(4, "big") + key_bytes
        enc = dispatch.get(item.__class__)
        if enc is None:
            enc = _resolve_encoder(item)
        enc(item, out)


def _enc_unsupported(value: Any, out: bytearray) -> None:
    raise EncodingError(f"cannot canonically encode {type(value).__name__}")


_DISPATCH.update(
    {
        type(None): _enc_none,
        bool: _enc_bool,
        int: _enc_int,
        float: _enc_float,
        str: _enc_str,
        bytes: _enc_bytes,
        tuple: _enc_seq,
        list: _enc_seq,
        frozenset: _enc_frozenset,
        dict: _enc_dict,
    }
)


def _compile_dataclass_encoder(cls: type) -> Any:
    """Build an encoder closure for one dataclass.

    The class header and the encoded field *names* are constants per
    class, so they are rendered to bytes once here; per instance only the
    field values are walked. The byte layout is identical to encoding
    ``(class name, field dict)`` value by value.
    """
    name = cls.__name__.encode()
    field_names = tuple(f.name for f in dataclasses.fields(cls))
    header = bytearray()
    header += b"D" + len(name).to_bytes(2, "big") + name
    header += len(field_names).to_bytes(4, "big")
    header = bytes(header)
    fields = []
    for field_name in field_names:
        prefix = bytearray()
        _enc_str(field_name, prefix)
        fields.append((bytes(prefix), field_name))
    fields = tuple(fields)

    def enc(value: Any, out: bytearray) -> None:
        # a nested dataclass that was already encode_cached (a signed
        # payload inside its envelope, say) appends its cached bytes
        # instead of re-walking its fields; consult-only, so the memo's
        # immutability contract is unchanged
        entry = _ENCODE_MEMO.get(id(value), value)
        if entry is not None:
            out += entry[1]
            return
        out += header
        dispatch = _DISPATCH
        for name_bytes, field_name in fields:
            out += name_bytes
            item = getattr(value, field_name)
            item_enc = dispatch.get(item.__class__)
            if item_enc is None:
                item_enc = _resolve_encoder(item)
            item_enc(item, out)

    return enc


def _resolve_encoder(value: Any) -> Any:
    """Pick (and cache) the encoder for a class missing from _DISPATCH.

    Mirrors the original isinstance ladder — subclasses of the builtin
    value types encode like their base type, dataclasses are checked
    last, everything else is an error. The choice depends only on the
    class, so it is cached for subsequent instances.
    """
    cls = value.__class__
    if isinstance(value, bool):
        enc = _enc_bool
    elif isinstance(value, int):
        enc = _enc_int
    elif isinstance(value, float):
        enc = _enc_float
    elif isinstance(value, str):
        enc = _enc_str
    elif isinstance(value, bytes):
        enc = _enc_bytes
    elif isinstance(value, (tuple, list)):
        enc = _enc_seq
    elif isinstance(value, frozenset):
        enc = _enc_frozenset
    elif isinstance(value, dict):
        enc = _enc_dict
    elif dataclasses.is_dataclass(value) and not isinstance(value, type):
        enc = _compile_dataclass_encoder(cls)
    else:
        enc = _enc_unsupported
    _DISPATCH[cls] = enc
    return enc


def _encode_into(value: Any, out: bytearray) -> None:
    enc = _DISPATCH.get(value.__class__)
    if enc is None:
        enc = _resolve_encoder(value)
    enc(value, out)


def encode(value: Any) -> bytes:
    """Return the canonical byte encoding of ``value``."""
    out = bytearray()
    _encode_into(value, out)
    return bytes(out)


class IdentityMemo:
    """Two-generation identity-keyed memo.

    Protocol messages are immutable (frozen dataclasses) and the same
    object is signed once and verified/forwarded many times, so caching
    derived values by object identity is both safe (each entry holds a
    strong reference to the keyed object, preventing ``id`` reuse while
    cached, and every lookup re-checks ``entry[0] is obj``) and very
    effective.

    Eviction is generational instead of a wholesale ``clear()``: when the
    hot generation reaches ``cap``, it *becomes* the cold generation (the
    previous cold one is dropped) and a fresh hot dict starts. A cold hit
    promotes its entry back into the hot generation, so anything touched
    within the last generation survives a flush — the seed
    implementation's epoch clear used to evict entries that were still
    live and hot, forcing immediate re-encodes of the working set.
    """

    __slots__ = ("cap", "hot", "cold", "flushes")

    def __init__(self, cap: int = 60_000) -> None:
        self.cap = cap
        self.hot: Dict[Any, list] = {}
        self.cold: Dict[Any, list] = {}
        self.flushes = 0

    def get(self, key: Any, obj: Any) -> Optional[list]:
        """The entry for ``key`` if it still belongs to ``obj``, else None.

        Entries are ``[obj, *derived]`` lists; callers own the layout of
        the derived slots."""
        entry = self.hot.get(key)
        if entry is not None and entry[0] is obj:
            return entry
        entry = self.cold.get(key)
        if entry is not None and entry[0] is obj:
            if len(self.hot) >= self.cap:
                self.flush()
            self.hot[key] = entry
            return entry
        return None

    def put(self, key: Any, entry: list) -> list:
        if len(self.hot) >= self.cap:
            self.flush()
        self.hot[key] = entry
        return entry

    def flush(self) -> None:
        """Age the hot generation to cold; drop the old cold generation."""
        self.cold = self.hot
        self.hot = {}
        self.flushes += 1

    def clear(self) -> None:
        self.hot = {}
        self.cold = {}

    def __len__(self) -> int:
        return len(self.hot) + len(self.cold)


#: entry layout: [value, encoded bytes, hex digest | None (lazy)]
_ENCODE_MEMO = IdentityMemo()


def _entry_for(value: Any) -> list:
    memo = _ENCODE_MEMO
    key = id(value)
    entry = memo.get(key, value)
    if entry is None:
        entry = memo.put(key, [value, encode(value), None])
    return entry


def encode_cached(value: Any) -> bytes:
    """Like :func:`encode`, memoized by object identity."""
    return _entry_for(value)[1]


def digest(value: Any) -> str:
    """Hex SHA-256 digest of the canonical encoding of ``value``.

    Memoized by object identity alongside the encoding, so the ~86
    digest/verify call sites across Prime, PBFT, Spines and the proxies
    hash any given message object exactly once.
    """
    entry = _entry_for(value)
    hexdigest = entry[2]
    if hexdigest is None:
        entry[2] = hexdigest = _sha256(entry[1]).hexdigest()
    return hexdigest


def encode_cache_stats() -> Tuple[int, int, int]:
    """(hot entries, cold entries, flushes) — for tests and diagnostics."""
    return len(_ENCODE_MEMO.hot), len(_ENCODE_MEMO.cold), _ENCODE_MEMO.flushes
