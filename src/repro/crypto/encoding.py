"""Canonical byte encoding for signable protocol objects.

Digital signatures and MACs need a deterministic byte representation of
protocol messages. Rather than pulling in a serialization framework, this
module defines a small canonical encoding over the value types protocol
messages are built from: ints, floats, strings, bytes, bools, None,
tuples/lists, dicts (sorted by key), frozensets (sorted), and dataclasses
(encoded as ``(class name, field dict)``).

The encoding is injective on the supported domain, which is what
unforgeability arguments need: two distinct messages never encode to the
same bytes.
"""

from __future__ import annotations

import dataclasses
import struct
from typing import Any

__all__ = ["encode", "encode_cached", "digest", "EncodingError"]

#: per-class dataclass field tuples (dataclasses.fields is surprisingly hot)
_FIELDS_CACHE: dict = {}


class EncodingError(TypeError):
    """Raised when a value outside the supported domain is encoded."""


def _encode_into(value: Any, out: bytearray) -> None:
    if value is None:
        out += b"N"
    elif value is True:
        out += b"T"
    elif value is False:
        out += b"F"
    elif isinstance(value, int):
        data = str(value).encode()
        out += b"i" + len(data).to_bytes(4, "big") + data
    elif isinstance(value, float):
        out += b"f" + struct.pack(">d", value)
    elif isinstance(value, str):
        data = value.encode("utf-8")
        out += b"s" + len(data).to_bytes(4, "big") + data
    elif isinstance(value, bytes):
        out += b"b" + len(value).to_bytes(4, "big") + value
    elif isinstance(value, (tuple, list)):
        out += b"l" + len(value).to_bytes(4, "big")
        for item in value:
            _encode_into(item, out)
    elif isinstance(value, frozenset):
        items = sorted(encode(item) for item in value)
        out += b"S" + len(items).to_bytes(4, "big")
        for item in items:
            out += len(item).to_bytes(4, "big") + item
    elif isinstance(value, dict):
        items = sorted((encode(k), v) for k, v in value.items())
        out += b"d" + len(items).to_bytes(4, "big")
        for key_bytes, item in items:
            out += len(key_bytes).to_bytes(4, "big") + key_bytes
            _encode_into(item, out)
    elif dataclasses.is_dataclass(value) and not isinstance(value, type):
        cls = type(value)
        cached = _FIELDS_CACHE.get(cls)
        if cached is None:
            cached = (
                cls.__name__.encode(),
                tuple(f.name for f in dataclasses.fields(value)),
            )
            _FIELDS_CACHE[cls] = cached
        name, field_names = cached
        out += b"D" + len(name).to_bytes(2, "big") + name
        out += len(field_names).to_bytes(4, "big")
        for field_name in field_names:
            _encode_into(field_name, out)
            _encode_into(getattr(value, field_name), out)
    else:
        raise EncodingError(f"cannot canonically encode {type(value).__name__}")


def encode(value: Any) -> bytes:
    """Return the canonical byte encoding of ``value``."""
    out = bytearray()
    _encode_into(value, out)
    return bytes(out)


#: identity-keyed encode memo. Protocol messages are immutable (frozen
#: dataclasses) and the same object is signed once and verified/forwarded
#: many times, so caching by identity is both safe (the cache holds a
#: strong reference, preventing id reuse) and very effective.
_ENCODE_CACHE: "dict[int, tuple[Any, bytes]]" = {}
_ENCODE_CACHE_CAP = 60_000


def encode_cached(value: Any) -> bytes:
    """Like :func:`encode`, memoized by object identity."""
    key = id(value)
    hit = _ENCODE_CACHE.get(key)
    if hit is not None and hit[0] is value:
        return hit[1]
    encoded = encode(value)
    if len(_ENCODE_CACHE) >= _ENCODE_CACHE_CAP:
        _ENCODE_CACHE.clear()  # simple epoch flush; correctness unaffected
    _ENCODE_CACHE[key] = (value, encoded)
    return encoded


def digest(value: Any) -> str:
    """Hex SHA-256 digest of the canonical encoding of ``value``."""
    import hashlib

    return hashlib.sha256(encode_cached(value)).hexdigest()
