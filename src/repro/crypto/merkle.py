"""Merkle trees over record digests for batch-amortized threshold crypto.

An ordered delivery batch carries **one** threshold signature over the
Merkle root of its records; endpoints verify each individual record with
a compact inclusion proof (``ceil(log2(count))`` hashes) instead of a
per-record threshold combine. The tree here is the standard unbalanced
binary construction (RFC 6962 style): leaves are hashed with a leaf
domain tag, internal nodes with a node domain tag — so a leaf digest can
never be confused with an internal node, and a proof for one tree shape
cannot be replayed against another.

Shapes need not be powers of two: an unpaired node at the end of a level
is *carried up* unchanged (no duplication), which keeps proofs minimal
and makes the root of a singleton batch just the tagged leaf hash.

All digests are lowercase hex SHA-256 strings, matching
:func:`repro.crypto.encoding.digest`.
"""

from __future__ import annotations

from hashlib import sha256 as _sha256
from typing import List, Sequence, Tuple

__all__ = ["merkle_root", "merkle_proof", "verify_merkle_proof"]

#: domain-separation tags (leaf vs internal node)
_LEAF = b"\x00"
_NODE = b"\x01"


def _leaf_hash(leaf: str) -> str:
    return _sha256(_LEAF + leaf.encode()).hexdigest()


def _node_hash(left: str, right: str) -> str:
    return _sha256(_NODE + left.encode() + right.encode()).hexdigest()


def _levels(leaves: Sequence[str]) -> List[List[str]]:
    """All tree levels bottom-up; ``levels[0]`` is the tagged leaf row."""
    if not leaves:
        raise ValueError("cannot build a Merkle tree over zero leaves")
    level = [_leaf_hash(leaf) for leaf in leaves]
    levels = [level]
    while len(level) > 1:
        nxt = [
            _node_hash(level[i], level[i + 1])
            for i in range(0, len(level) - 1, 2)
        ]
        if len(level) % 2:
            nxt.append(level[-1])  # odd node carried up unchanged
        level = nxt
        levels.append(level)
    return levels


def merkle_root(leaves: Sequence[str]) -> str:
    """Root digest of the tree over ``leaves`` (record digests)."""
    return _levels(leaves)[-1][0]


def merkle_proof(leaves: Sequence[str], index: int) -> Tuple[str, ...]:
    """Inclusion proof for ``leaves[index]``: sibling digests bottom-up.

    Levels where the node is carried up unpaired contribute no entry, so
    the proof length for a given ``(index, count)`` is fixed by the tree
    shape — :func:`verify_merkle_proof` re-derives and enforces it.
    """
    if not 0 <= index < len(leaves):
        raise IndexError(f"leaf index {index} out of range for {len(leaves)} leaves")
    siblings: List[str] = []
    position = index
    for level in _levels(leaves)[:-1]:
        sibling = position ^ 1
        if sibling < len(level):
            siblings.append(level[sibling])
        position //= 2
    return tuple(siblings)


def verify_merkle_proof(
    leaf: str, index: int, count: int, proof: Sequence[str], root: str
) -> bool:
    """True iff ``leaf`` sits at ``index`` in the ``count``-leaf tree with
    ``root``. Rejects out-of-range indices and wrong-shape proofs."""
    if count < 1 or not 0 <= index < count:
        return False
    node = _leaf_hash(leaf)
    position, width = index, count
    consumed = 0
    while width > 1:
        sibling = position ^ 1
        if sibling < width:
            if consumed >= len(proof):
                return False
            other = proof[consumed]
            consumed += 1
            if position % 2:
                node = _node_hash(other, node)
            else:
                node = _node_hash(node, other)
        position //= 2
        width = (width + 1) // 2
    return consumed == len(proof) and node == root
