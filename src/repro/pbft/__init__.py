"""PBFT-style baseline: classical leader-based BFT with static timeouts.

Used by the benchmarks as the comparison point for Prime's bounded-delay
property (see DESIGN.md experiment F5/F9).
"""

from .messages import (
    ForwardedUpdate,
    PbftCommit,
    PbftNewView,
    PbftPrepare,
    PbftPrepared,
    PbftPrePrepare,
    PbftViewChange,
)
from .node import PbftConfig, PbftNode

__all__ = [
    "ForwardedUpdate",
    "PbftCommit",
    "PbftNewView",
    "PbftPrepare",
    "PbftPrepared",
    "PbftPrePrepare",
    "PbftViewChange",
    "PbftConfig",
    "PbftNode",
]
