"""A PBFT-style baseline replica (Castro-Liskov shape).

This is the comparison system the paper's evaluation needs: a classical
leader-based BFT protocol whose *only* defence against a slow leader is a
static request timeout. Two consequences the benchmarks demonstrate:

* A network attacker that delays the leader's proposals to just below the
  timeout degrades latency by orders of magnitude **without ever
  triggering a view change** — the "slow leader" attack Prime was designed
  to close.
* Even when the timeout does fire, latency spikes to the full timeout
  value before recovery.

Scope: the baseline implements the three-phase ordering, batching,
forwarding to the leader, timeout-driven view changes with deterministic
re-proposal derivation and Byzantine-proof validation (prepared
certificates are re-checked, a new leader's re-proposals are re-derived,
and embedded pre-prepares must be the leader's own signatures — an
equivocating new leader cannot rewrite history), checkpoint-based log
truncation, and retransmission against loss. It does not implement state
transfer — a replica that falls behind a stable checkpoint catches up by
replaying retained slots; full snapshot transfer is exercised through
Prime, which is the system under test.

Like Prime, the node rides on the shared
:class:`~repro.replication.runtime.ReplicationRuntime` (envelope
discipline, membership fan-out, send accounting), a
:class:`~repro.replication.dispatch.Dispatcher` for typed routing with
per-kind observability, :class:`~repro.replication.ordering.ThreePhaseSlot`
for per-slot agreement state, and
:class:`~repro.replication.epoch.EpochVoteTable` /
:func:`~repro.replication.epoch.derive_reproposals` for its view-change
bookkeeping. Head-of-line retransmission backs off through the shared
:class:`~repro.replication.retry.RetrySchedule` instead of hammering at a
fixed interval.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from ..crypto.encoding import digest
from ..crypto.provider import CryptoProvider
from ..obs import (
    EV_PBFT_CHECKPOINT,
    EV_PBFT_NEW_VIEW,
    EV_PBFT_TIMEOUT,
    EV_PBFT_VIEW_CHANGE,
    EventLog,
    Observability,
    resolve_obs,
)
from ..prime.app import ReplicatedApplication
from ..prime.dedup import ClientDedup
from ..prime.messages import ClientUpdate, verify_client_update
from ..replication import (
    Dispatcher,
    DirectTransport,
    EpochVoteTable,
    ReplicationRuntime,
    RetryPolicy,
    RetrySchedule,
    SignedMessage,
    ThreePhaseSlot,
    Transport,
    derive_reproposals,
)
from ..replication.quorum import (
    QuorumTracker,
    collect_valid_voters,
    verify_certificate,
)
from ..simnet import Network, Process, Simulator
from .messages import (
    ForwardedUpdate,
    PbftCheckpoint,
    PbftCommit,
    PbftFetch,
    PbftNewView,
    PbftOrderProof,
    PbftPrepare,
    PbftPrepared,
    PbftPrePrepare,
    PbftViewChange,
)

__all__ = ["PbftConfig", "PbftNode"]


class PbftConfig:
    """Static configuration for one PBFT group."""

    def __init__(
        self,
        replicas: Tuple[str, ...],
        num_faults: int = 1,
        batch_interval_ms: float = 5.0,
        batch_max_updates: int = 64,
        request_timeout_ms: float = 2000.0,
        check_interval_ms: float = 100.0,
        retrans_interval_ms: float = 50.0,
        forward_interval_ms: float = 200.0,
        checkpoint_interval: int = 16,
    ) -> None:
        if len(replicas) < 3 * num_faults + 1:
            raise ValueError("PBFT needs n >= 3f + 1")
        self.replicas = tuple(replicas)
        self.num_faults = num_faults
        self.batch_interval_ms = batch_interval_ms
        self.batch_max_updates = batch_max_updates
        self.request_timeout_ms = request_timeout_ms
        self.check_interval_ms = check_interval_ms
        self.retrans_interval_ms = retrans_interval_ms
        self.forward_interval_ms = forward_interval_ms
        #: checkpoint every this many executed slots (0 disables)
        self.checkpoint_interval = checkpoint_interval

    @property
    def n(self) -> int:
        return len(self.replicas)

    @property
    def quorum(self) -> int:
        """ceil((n + f + 1) / 2): intersection of any two quorums contains
        a correct replica."""
        return (self.n + self.num_faults + 2) // 2

    def leader_of_view(self, view: int) -> str:
        return self.replicas[view % self.n]


def _sender_matches_signer(payload: Any, signer: str) -> bool:
    # The baseline deliberately skips the membership half of the standard
    # sender check (non-members cannot produce verifying envelopes under
    # the simulated PKI); Byzantine-proof validation is Prime's job.
    return payload.sender == signer


class PbftNode(Process):
    """One baseline replica."""

    def __init__(
        self,
        name: str,
        simulator: Simulator,
        network: Network,
        config: PbftConfig,
        crypto: CryptoProvider,
        app: ReplicatedApplication,
        trace: Optional[EventLog] = None,
        transport: Optional[Transport] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        super().__init__(name, simulator, network)
        self.config = config
        self.crypto = crypto
        self.app = app
        self.trace = trace
        self.obs = resolve_obs(obs, trace)
        self.transport: Transport = transport or DirectTransport(self, obs=self.obs)
        self.dispatcher = Dispatcher(obs=self.obs, metric_prefix="pbft")
        self.runtime = ReplicationRuntime(
            process=self,
            crypto=crypto,
            replicas_fn=lambda: self.config.replicas,
            dispatcher=self.dispatcher,
            size_of=lambda payload: 200,
            obs=self.obs,
            metric_prefix="pbft",
            # PBFT point-to-point self-sends loop back through dispatch
            # (a leader forwards pending updates to itself).
            loopback_dispatch=True,
        )
        self.view = 0
        self.in_view_change = False
        self.slots: Dict[int, ThreePhaseSlot] = {}
        self.last_executed = 0
        self.executed_counter = 0
        self.client_dedup = ClientDedup()
        self.execution_listeners: List[Callable[[ClientUpdate, int, Any], None]] = []
        #: updates awaiting execution: (client, client_seq) -> (update, since)
        self._pending: Dict[Tuple[str, int], Tuple[ClientUpdate, float]] = {}
        self._leader_buffer: List[ClientUpdate] = []
        self._leader_inflight: set = set()
        self._batch_timer_set = False
        self._next_seq = 1
        self._min_fresh_seq = 1
        #: new_view -> sender -> signed PbftViewChange
        self._view_changes = EpochVoteTable()
        self._sent_vc_for: set = set()
        self._sent_nv_for: set = set()
        #: the signed NewView we last adopted (re-served to laggards)
        self._last_new_view: Optional[SignedMessage] = None
        #: checkpoint votes: seq -> digest -> sender -> signed vote
        self._checkpoint_votes = QuorumTracker()
        #: highest seq with a quorum-certified checkpoint; slots at or
        #: below it are truncated
        self.stable_seq = 0
        #: highest peer execution frontier learned from order proofs
        self._known_frontier = 0
        #: head-of-line retransmission backoff (shared RetrySchedule)
        self._retrans_schedule = RetrySchedule(
            RetryPolicy(
                base_ms=config.retrans_interval_ms,
                factor=2.0,
                max_ms=config.retrans_interval_ms * 16,
                max_attempts=8,
            ),
            rng=simulator.rng(f"pbft-retrans/{name}"),
        )
        self._retrans_head: Optional[int] = None
        self._retrans_due = 0.0
        self._started = False
        self._register_handlers()

    def _register_handlers(self) -> None:
        reg = self.dispatcher.register
        reg(ForwardedUpdate, self._on_forwarded)
        # PbftPrePrepare / PbftNewView keep their leader/signer checks
        # in-handler: new-view replay re-enters _on_pre_prepare directly.
        reg(PbftPrePrepare, self._on_pre_prepare)
        reg(PbftPrepare, self._on_prepare, sender_check=_sender_matches_signer)
        reg(PbftCommit, self._on_commit, sender_check=_sender_matches_signer)
        reg(PbftCheckpoint, self._on_checkpoint,
            sender_check=_sender_matches_signer)
        reg(PbftFetch, self._on_fetch, sender_check=_sender_matches_signer)
        reg(PbftOrderProof, self._on_order_proof,
            sender_check=_sender_matches_signer)
        reg(PbftViewChange, self._on_view_change,
            sender_check=_sender_matches_signer)
        reg(PbftNewView, self._on_new_view)

    # ------------------------------------------------------------------
    def start(self) -> None:
        self._started = True
        self._start_timers()

    def _start_timers(self) -> None:
        self.every(self.config.check_interval_ms, self._timeout_tick, jitter=2.0)
        self.every(self.config.retrans_interval_ms, self._retrans_tick, jitter=2.0)
        self.every(self.config.forward_interval_ms, self._forward_tick, jitter=2.0)

    def on_recover(self) -> None:
        """Rejoin after a crash. PBFT assumes stable storage for the
        message log, so the ordering state survives; only the timers (and
        the in-flight batch/retransmission cursors they drive) are
        volatile and must be re-armed for the new incarnation."""
        self._batch_timer_set = False
        self._retrans_head = None
        self._retrans_schedule.reset()
        if self._started:
            self._start_timers()
            # Probe peers for what we missed while down: the order proofs
            # they answer with carry their execution frontier, which arms
            # the fetch-based catch-up loop in _retrans_tick.
            self._broadcast(PbftFetch(self.name, self.last_executed + 1),
                            include_self=False)

    @property
    def is_leader(self) -> bool:
        return self.config.leader_of_view(self.view) == self.name

    def sign_message(self, payload: Any) -> SignedMessage:
        return self.runtime.sign(payload)

    def verify_signed(self, signed: SignedMessage) -> bool:
        return self.runtime.verify(signed)

    def _broadcast(self, payload: Any, include_self: bool = True) -> SignedMessage:
        return self.runtime.broadcast(payload, include_self=include_self)

    def _send_to(self, peer: str, payload: Any) -> None:
        self.runtime.send_to(peer, payload)

    # ------------------------------------------------------------------
    # Client path
    # ------------------------------------------------------------------
    def submit(self, update: ClientUpdate) -> bool:
        if not self.is_up:
            return False
        if not verify_client_update(self.crypto, update):
            return False
        if self.client_dedup.is_duplicate(update.client, update.client_seq):
            return False
        self._pending[(update.client, update.client_seq)] = (
            update, self.simulator.now,
        )
        # PBFT clients broadcast to all replicas so every replica starts a
        # timeout for the request (that is what arms the view change).
        self._broadcast(ForwardedUpdate(self.name, update), include_self=True)
        return True

    def _forward_tick(self) -> None:
        """Re-forward pending updates (leader may have changed or lost them)."""
        if self.in_view_change:
            # No acknowledged leader: re-forwarding mid-view-change would
            # hand the old (possibly faulty) leader fresh ammunition and,
            # worse, let a request straddle the view boundary twice. The
            # post-new-view re-forward covers everything still pending.
            return
        leader = self.config.leader_of_view(self.view)
        for update, _ in list(self._pending.values()):
            self._send_to(leader, ForwardedUpdate(self.name, update))

    def _on_forwarded(self, signed: SignedMessage, msg: ForwardedUpdate) -> None:
        update = msg.update
        if not verify_client_update(self.crypto, update):
            return
        key = (update.client, update.client_seq)
        if self.client_dedup.is_duplicate(update.client, update.client_seq):
            return
        if key not in self._pending:
            self._pending[key] = (update, self.simulator.now)
        if not self.is_leader or self.in_view_change:
            return
        if key in self._leader_inflight:
            return
        self._leader_inflight.add(key)
        self._leader_buffer.append(update)
        if not self._batch_timer_set:
            self._batch_timer_set = True
            self.set_timer(self.config.batch_interval_ms, self._flush_batch)

    def _flush_batch(self) -> None:
        self._batch_timer_set = False
        if not self.is_leader or self.in_view_change or not self._leader_buffer:
            return
        batch = tuple(self._leader_buffer[: self.config.batch_max_updates])
        del self._leader_buffer[: len(batch)]
        self._broadcast(PbftPrePrepare(self.name, self.view, self._next_seq, batch))
        self._next_seq += 1
        if self._leader_buffer:
            self._batch_timer_set = True
            self.set_timer(self.config.batch_interval_ms, self._flush_batch)

    # ------------------------------------------------------------------
    # Ordering
    # ------------------------------------------------------------------
    def on_message(self, src: str, payload: Any) -> None:
        self.runtime.receive(payload)

    def _dispatch(self, signed: SignedMessage) -> None:
        self.dispatcher.dispatch(signed)

    def _slot(self, seq: int) -> ThreePhaseSlot:
        if seq not in self.slots:
            self.slots[seq] = ThreePhaseSlot(seq)
        return self.slots[seq]

    @staticmethod
    def _batch_digest(seq: int, batch: Tuple[ClientUpdate, ...]) -> str:
        return digest((seq, tuple((u.client, u.client_seq, digest(u.payload))
                                  for u in batch)))

    def _on_pre_prepare(
        self, signed: SignedMessage, msg: PbftPrePrepare, from_new_view: bool = False
    ) -> None:
        if msg.view != self.view or (self.in_view_change and not from_new_view):
            return
        if msg.leader != self.config.leader_of_view(msg.view):
            return
        if signed.signature.signer != msg.leader:
            return
        if msg.seq <= self.stable_seq:
            return
        if not from_new_view and msg.seq < self._min_fresh_seq:
            return
        slot = self._slot(msg.seq)
        if msg.view in slot.pre_prepares:
            return
        slot.pre_prepares[msg.view] = signed
        batch_digest = self._batch_digest(msg.seq, msg.batch)
        # the leader's pre-prepare doubles as its prepare vote
        slot.record_prepare(msg.view, batch_digest, msg.leader, signed)
        if slot.should_vote_prepare(msg.view):
            slot.prepared_vote = (msg.view, batch_digest)
            self._broadcast(PbftPrepare(self.name, msg.view, msg.seq, batch_digest))
        self._check_prepared(slot, msg.view, batch_digest)
        self._check_ordered(slot, msg.view, batch_digest)

    def _on_prepare(self, signed: SignedMessage, msg: PbftPrepare) -> None:
        if msg.seq <= self.stable_seq:
            return
        slot = self._slot(msg.seq)
        slot.record_prepare(msg.view, msg.digest, msg.sender, signed)
        self._check_prepared(slot, msg.view, msg.digest)

    def _check_prepared(
        self, slot: ThreePhaseSlot, view: int, batch_digest: str
    ) -> None:
        if not slot.note_prepared(view, batch_digest, self.config.quorum):
            return
        if slot.should_vote_commit(view, batch_digest):
            slot.committed_vote = (view, batch_digest)
            self._broadcast(PbftCommit(self.name, view, slot.seq, batch_digest))

    def _on_commit(self, signed: SignedMessage, msg: PbftCommit) -> None:
        if msg.seq <= self.stable_seq:
            return
        slot = self._slot(msg.seq)
        slot.record_commit(msg.view, msg.digest, msg.sender, signed)
        self._check_ordered(slot, msg.view, msg.digest)

    def _check_ordered(
        self, slot: ThreePhaseSlot, view: int, batch_digest: str
    ) -> None:
        if slot.ordered is not None:
            return
        if len(slot.commit_voters(view, batch_digest)) < self.config.quorum:
            return
        pre_prepare = slot.pre_prepares.get(view)
        if pre_prepare is None:
            return
        if self._batch_digest(slot.seq, pre_prepare.payload.batch) != batch_digest:
            return
        slot.ordered = (view, batch_digest, pre_prepare)
        self._try_execute()

    def _try_execute(self) -> None:
        interval = self.config.checkpoint_interval
        while True:
            slot = self.slots.get(self.last_executed + 1)
            if slot is None or slot.ordered is None:
                break
            _, _, pre_prepare = slot.ordered
            for update in pre_prepare.payload.batch:
                self._execute_update(update)
            self.last_executed += 1
            # Checkpoint exactly at the interval boundary, inside the
            # loop, so every replica digests the same post-seq state even
            # when several slots execute back to back.
            if interval > 0 and self.last_executed % interval == 0:
                self._send_checkpoint(self.last_executed)

    def _execute_update(self, update: ClientUpdate) -> None:
        key = (update.client, update.client_seq)
        self._pending.pop(key, None)
        self._leader_inflight.discard(key)
        if self.client_dedup.is_duplicate(update.client, update.client_seq):
            return
        if not verify_client_update(self.crypto, update):
            return
        self.client_dedup.mark(update.client, update.client_seq)
        self.executed_counter += 1
        result = self.app.execute(update, self.executed_counter)
        for listener in self.execution_listeners:
            listener(update, self.executed_counter, result)

    # ------------------------------------------------------------------
    # Checkpoints (quorum-certified log truncation)
    # ------------------------------------------------------------------
    def _send_checkpoint(self, seq: int) -> None:
        state = digest((seq, self.app.state_digest(), self.executed_counter))
        self._broadcast(PbftCheckpoint(self.name, seq, state))

    def _on_checkpoint(self, signed: SignedMessage, msg: PbftCheckpoint) -> None:
        if msg.seq <= self.stable_seq:
            return
        self._checkpoint_votes.add(msg.seq, msg.digest, msg.sender, signed)
        proof = self._checkpoint_votes.certificate(
            msg.seq, msg.digest, self.config.quorum
        )
        if proof is not None:
            self._make_stable(msg.seq)

    def _make_stable(self, seq: int) -> None:
        self.stable_seq = seq
        self._checkpoint_votes.drop_upto(seq)
        # Truncate with a retention window (a few checkpoint intervals):
        # the retained ordered slots are what :class:`PbftOrderProof`
        # responses serve to replicas that fell behind the checkpoint —
        # the baseline's stand-in for full state transfer. Never truncate
        # past our own execution frontier.
        retain = 4 * max(1, self.config.checkpoint_interval)
        bound = min(seq - retain, self.last_executed)
        for old in [s for s in self.slots if s <= bound]:
            del self.slots[old]
        self.obs.event(self.name, EV_PBFT_CHECKPOINT, seq=seq)
        if self.obs.enabled:
            self.obs.gauge(f"pbft.stable_seq.{self.name}").set(float(seq))

    # ------------------------------------------------------------------
    # Laggard catch-up: fetch commit-certified slots from peers
    # ------------------------------------------------------------------
    def _on_fetch(self, signed: SignedMessage, msg: PbftFetch) -> None:
        for seq in range(msg.from_seq, msg.from_seq + 8):
            slot = self.slots.get(seq)
            if slot is None or slot.ordered is None:
                continue
            view, batch_digest, pre_prepare = slot.ordered
            proof = slot.commit_certificate(view, batch_digest, self.config.quorum)
            if proof is None:
                continue
            self._send_to(msg.sender, PbftOrderProof(
                self.name, seq, view, batch_digest, pre_prepare, proof,
                frontier=self.last_executed,
            ))

    def _on_order_proof(self, signed: SignedMessage, msg: PbftOrderProof) -> None:
        if msg.seq <= self.last_executed:
            return
        slot = self._slot(msg.seq)
        if slot.ordered is not None:
            return
        pp_signed = msg.pre_prepare
        pp = pp_signed.payload
        if not isinstance(pp, PbftPrePrepare):
            return
        if pp.seq != msg.seq or pp.view != msg.view:
            return
        if pp.leader != self.config.leader_of_view(pp.view):
            return
        if pp_signed.signature.signer != pp.leader:
            return
        if not self.verify_signed(pp_signed):
            return
        if self._batch_digest(msg.seq, pp.batch) != msg.digest:
            return
        # A quorum of commits is transferable: any two quorums intersect
        # in a correct replica, so a certified decision cannot conflict
        # with anything we could still order locally — safe to install
        # whatever view we are in.
        ok = verify_certificate(
            msg.proof,
            quorum=self.config.quorum,
            membership=self.config.replicas,
            verify_signed=self.verify_signed,
            expected_kind=PbftCommit,
            check=lambda p: (
                p.view == msg.view
                and p.seq == msg.seq
                and p.digest == msg.digest
            ),
            strict=False,
        )
        if not ok:
            return
        self._known_frontier = max(self._known_frontier, msg.frontier)
        slot.pre_prepares.setdefault(msg.view, pp_signed)
        slot.ordered = (msg.view, msg.digest, pp_signed)
        self._try_execute()

    # ------------------------------------------------------------------
    # Retransmission (bounded backoff over the shared RetrySchedule)
    # ------------------------------------------------------------------
    def _retrans_tick(self) -> None:
        head = self.last_executed + 1
        slot = self.slots.get(head)
        # A quorum checkpointed past our head: the live vote traffic for
        # it is gone, so retransmitting votes cannot unblock us — fetch
        # commit-certified slots from peers instead. This path must run
        # even mid-view-change: it is how a crashed-and-recovered (or
        # view-wedged) replica re-joins execution.
        behind = max(self.stable_seq, self._known_frontier) >= head
        if not behind and (slot is None or slot.ordered is not None):
            if self._retrans_head is not None:
                self._retrans_head = None
                self._retrans_schedule.reset()
            return
        now = self.simulator.now
        if head != self._retrans_head:
            # new head-of-line stall: resend immediately, then back off
            self._retrans_head = head
            self._retrans_schedule.reset()
            self._retrans_due = now
        if now < self._retrans_due:
            return
        self._retrans_due = now + self._retrans_schedule.next_delay_ms()
        if behind:
            self._broadcast(PbftFetch(self.name, head), include_self=False)
            return
        if self.in_view_change:
            return
        pre_prepare = slot.pre_prepares.get(self.view)
        if pre_prepare is not None:
            self.runtime.resend(pre_prepare, size_bytes=300)
        if slot.committed_vote is not None:
            view, batch_digest = slot.committed_vote
            self._broadcast(
                PbftCommit(self.name, view, slot.seq, batch_digest), include_self=False
            )
        elif slot.prepared_vote is not None:
            view, batch_digest = slot.prepared_vote
            self._broadcast(
                PbftPrepare(self.name, view, slot.seq, batch_digest), include_self=False
            )

    # ------------------------------------------------------------------
    # Timeout-based view change (the baseline's only defence)
    # ------------------------------------------------------------------
    def _timeout_tick(self) -> None:
        if self.in_view_change:
            return
        if self.stable_seq > self.last_executed:
            # A quorum is ahead of us: our stale pending entries are OUR
            # lag, not the leader's fault — accusing it would drag the
            # cluster through spurious views. Catch up (fetch path) first.
            return
        now = self.simulator.now
        oldest = min((since for _, since in self._pending.values()), default=None)
        if oldest is not None and now - oldest > self.config.request_timeout_ms:
            self.obs.event(self.name, EV_PBFT_TIMEOUT, view=self.view,
                           age=now - oldest)
            self._start_view_change(self.view + 1)

    def _start_view_change(self, new_view: int) -> None:
        if new_view in self._sent_vc_for or new_view < self.view:
            return
        self._sent_vc_for.add(new_view)
        self.view = max(self.view, new_view)
        self.in_view_change = True
        # Un-proposed buffered work goes back to the pending pool (it is
        # still there — the buffer only mirrors it): the *new* leader must
        # propose it after the view change, or a faulty old leader could
        # make the batch straddle the boundary and execute twice.
        self._leader_buffer.clear()
        self._leader_inflight.clear()
        self.obs.event(self.name, EV_PBFT_VIEW_CHANGE, view=new_view)
        if self.obs.enabled:
            self.obs.counter(
                f"replication.view_changes_total.{self.name}").inc()
            self.obs.gauge(f"replication.view.{self.name}").set(float(new_view))
        prepared = []
        for seq in sorted(self.slots):
            slot = self.slots[seq]
            if seq <= self.last_executed:
                continue
            if slot.prepared_cert is None or slot.prepared_proof is None:
                continue
            view, batch_digest = slot.prepared_cert
            pre_prepare = slot.pre_prepares.get(view)
            if pre_prepare is None:
                continue
            prepared.append(
                PbftPrepared(seq, view, batch_digest, pre_prepare, slot.prepared_proof)
            )
        vc = PbftViewChange(self.name, new_view, self.last_executed, tuple(prepared))
        self._broadcast(vc)
        self.set_timer(
            self.config.request_timeout_ms, self._view_change_timeout, new_view
        )

    def _view_change_timeout(self, expected_view: int) -> None:
        if not self.in_view_change or self.view != expected_view:
            return
        if not self._pending or self.stable_seq > self.last_executed:
            # Nothing to order, or we are an execution laggard: cascading
            # solo would run our view arbitrarily ahead of the cluster
            # (and our ever-higher ViewChanges would eventually drag
            # everyone along). Sit in this view and re-check; the fetch
            # path or a peer-served NewView re-integrates us.
            self.set_timer(
                self.config.request_timeout_ms, self._view_change_timeout,
                expected_view,
            )
            return
        self._start_view_change(expected_view + 1)

    @staticmethod
    def _derive(view_changes: List[PbftViewChange]):
        return derive_reproposals(
            view_changes,
            anchor_of=lambda vc: vc.last_executed,
            entries_of=lambda vc: vc.prepared,
            content_of=lambda entry: entry.pre_prepare.payload.batch,
            empty=(),
        )

    # ------------------------------------------------------------------
    # View-change validation (Byzantine-proof, mirrors Prime's)
    # ------------------------------------------------------------------
    def _validate_prepared(self, entry: PbftPrepared) -> bool:
        """A prepared certificate binds (view, seq, digest) to the
        pre-prepare content it claims: the embedded pre-prepare must be
        the view leader's own signature over the batch whose digest the
        quorum vouched for."""
        pp_signed = entry.pre_prepare
        pp = pp_signed.payload
        if not isinstance(pp, PbftPrePrepare):
            return False
        if pp.seq != entry.seq or pp.view != entry.view:
            return False
        if pp.leader != self.config.leader_of_view(pp.view):
            return False
        if pp_signed.signature.signer != pp.leader:
            return False
        if not self.verify_signed(pp_signed):
            return False
        # Bind the claimed digest to the batch: without this a Byzantine
        # replica could pair an honest certificate with a different batch
        # and the re-proposal derivation (which reads the batch, not the
        # digest) would rewrite history.
        if self._batch_digest(entry.seq, pp.batch) != entry.digest:
            return False
        # Lenient voter scan: appended garbage must not invalidate honest
        # votes; the leader's pre-prepare counts as its prepare vote.
        voters = collect_valid_voters(
            entry.proof,
            membership=self.config.replicas,
            verify_signed=self.verify_signed,
            expected_kind=(PbftPrepare, PbftCommit),
            check=lambda p: (
                p.view == entry.view
                and p.seq == entry.seq
                and p.digest == entry.digest
            ),
            strict=False,
            initial=(pp.leader,),
        )
        return voters is not None and len(voters) >= self.config.quorum

    def _validate_view_change(
        self, signed: SignedMessage, vc: PbftViewChange
    ) -> bool:
        if vc.sender != signed.signature.signer:
            return False
        if vc.sender not in self.config.replicas:
            return False
        seen_seqs = set()
        for entry in vc.prepared:
            if entry.seq in seen_seqs or entry.seq <= vc.last_executed:
                return False
            seen_seqs.add(entry.seq)
            if not self._validate_prepared(entry):
                return False
        return True

    def _on_view_change(self, signed: SignedMessage, msg: PbftViewChange) -> None:
        if msg.new_view < self.view:
            # A replica still changing into a view we already passed (a
            # crashed leader rejoining, a laggard behind a cascade): hand
            # it the NewView that took us here so it converges instead of
            # cascading its timeout forever.
            if (
                self._last_new_view is not None
                and self._last_new_view.payload.view == self.view
                and msg.sender != self.name
            ):
                self.runtime.resend(
                    self._last_new_view, peers=(msg.sender,), size_bytes=600
                )
            return
        if not self._validate_view_change(signed, msg):
            return
        count = self._view_changes.record(msg.new_view, msg.sender, signed)
        if msg.new_view > self.view and count >= self.config.num_faults + 1:
            self._start_view_change(msg.new_view)
        if (
            self.config.leader_of_view(msg.new_view) == self.name
            and count >= self.config.quorum
            and msg.new_view not in self._sent_nv_for
        ):
            self._sent_nv_for.add(msg.new_view)
            chosen = self._view_changes.chosen(msg.new_view, self.config.quorum)
            _, proposals = self._derive([s.payload for s in chosen])
            pre_prepares = tuple(
                self.sign_message(PbftPrePrepare(self.name, msg.new_view, seq, batch))
                for seq, batch in proposals
            )
            self._broadcast(
                PbftNewView(self.name, msg.new_view, tuple(chosen), pre_prepares)
            )

    def _on_new_view(self, signed: SignedMessage, msg: PbftNewView) -> None:
        if msg.view < self.view or (msg.view == self.view and not self.in_view_change):
            return
        if msg.leader != self.config.leader_of_view(msg.view):
            return
        if signed.signature.signer != msg.leader:
            return
        senders = set()
        payloads = []
        for vc_signed in msg.view_changes:
            vc = vc_signed.payload
            if not isinstance(vc, PbftViewChange) or vc.new_view != msg.view:
                return
            if not self.verify_signed(vc_signed):
                return
            if not self._validate_view_change(vc_signed, vc):
                return
            senders.add(vc.sender)
            payloads.append(vc)
        if len(senders) < self.config.quorum:
            return
        _, expected = self._derive(payloads)
        if len(expected) != len(msg.pre_prepares):
            return
        for (seq, batch), pp_signed in zip(expected, msg.pre_prepares):
            pp = pp_signed.payload
            if not isinstance(pp, PbftPrePrepare):
                return
            if pp.seq != seq or pp.batch != batch or pp.view != msg.view:
                return
            # Each re-proposal must be the new leader's own signature: a
            # faulty new leader that equivocates (sends different signed
            # batches to different replicas) fails the derivation check
            # above; one that relays someone else's signatures fails here.
            if pp.leader != msg.leader or pp_signed.signature.signer != msg.leader:
                return
            if not self.verify_signed(pp_signed):
                return
        self.view = msg.view
        self.in_view_change = False
        self._last_new_view = signed
        self._min_fresh_seq = (expected[-1][0] if expected else self.last_executed) + 1
        self._next_seq = max(self._next_seq, self._min_fresh_seq)
        # Restart the request timers (Castro-Liskov: the timer restarts
        # when a new view is installed): backlogged requests get a full
        # timeout for the new leader to order them, instead of instantly
        # re-accusing it with their pre-view-change age.
        now = self.simulator.now
        self._pending = {
            key: (update, now) for key, (update, _) in self._pending.items()
        }
        self.obs.event(self.name, EV_PBFT_NEW_VIEW, view=msg.view)
        if self.obs.enabled:
            self.obs.gauge(f"replication.view.{self.name}").set(float(msg.view))
        for pp_signed in msg.pre_prepares:
            self._on_pre_prepare(pp_signed, pp_signed.payload, from_new_view=True)
        # Adopted: drop vote bookkeeping for every view below this one.
        self._view_changes.drop_below(self.view)
        self._sent_vc_for = {v for v in self._sent_vc_for if v >= self.view}
        self._sent_nv_for = {v for v in self._sent_nv_for if v >= self.view}
        # re-forward pending work to the new leader
        self._forward_tick()
