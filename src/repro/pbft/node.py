"""A PBFT-style baseline replica (Castro-Liskov shape).

This is the comparison system the paper's evaluation needs: a classical
leader-based BFT protocol whose *only* defence against a slow leader is a
static request timeout. Two consequences the benchmarks demonstrate:

* A network attacker that delays the leader's proposals to just below the
  timeout degrades latency by orders of magnitude **without ever
  triggering a view change** — the "slow leader" attack Prime was designed
  to close.
* Even when the timeout does fire, latency spikes to the full timeout
  value before recovery.

Scope: the baseline implements the three-phase ordering, batching,
forwarding to the leader, timeout-driven view changes with deterministic
re-proposal derivation, and retransmission against loss. It does not
implement checkpointing/state transfer or Byzantine-proof view-change
validation — those are exercised through Prime, which is the system under
test; the baseline exists to reproduce the performance comparison.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from ..crypto.encoding import digest
from ..crypto.provider import CryptoProvider
from ..obs import EV_PBFT_NEW_VIEW, EV_PBFT_TIMEOUT, EV_PBFT_VIEW_CHANGE
from ..prime.app import ReplicatedApplication
from ..prime.messages import ClientUpdate, SignedMessage
from ..prime.dedup import ClientDedup
from ..prime.node import verify_client_update
from ..prime.transport import DirectTransport, Transport
from ..simnet import Network, Process, Simulator, Trace
from .messages import (
    ForwardedUpdate,
    PbftCommit,
    PbftNewView,
    PbftPrepare,
    PbftPrepared,
    PbftPrePrepare,
    PbftViewChange,
)

__all__ = ["PbftConfig", "PbftNode"]


class PbftConfig:
    """Static configuration for one PBFT group."""

    def __init__(
        self,
        replicas: Tuple[str, ...],
        num_faults: int = 1,
        batch_interval_ms: float = 5.0,
        batch_max_updates: int = 64,
        request_timeout_ms: float = 2000.0,
        check_interval_ms: float = 100.0,
        retrans_interval_ms: float = 50.0,
        forward_interval_ms: float = 200.0,
    ) -> None:
        if len(replicas) < 3 * num_faults + 1:
            raise ValueError("PBFT needs n >= 3f + 1")
        self.replicas = tuple(replicas)
        self.num_faults = num_faults
        self.batch_interval_ms = batch_interval_ms
        self.batch_max_updates = batch_max_updates
        self.request_timeout_ms = request_timeout_ms
        self.check_interval_ms = check_interval_ms
        self.retrans_interval_ms = retrans_interval_ms
        self.forward_interval_ms = forward_interval_ms

    @property
    def n(self) -> int:
        return len(self.replicas)

    @property
    def quorum(self) -> int:
        """ceil((n + f + 1) / 2): intersection of any two quorums contains
        a correct replica."""
        return (self.n + self.num_faults + 2) // 2

    def leader_of_view(self, view: int) -> str:
        return self.replicas[view % self.n]


class _Slot:
    def __init__(self, seq: int) -> None:
        self.seq = seq
        self.pre_prepares: Dict[int, SignedMessage] = {}
        self.prepares: Dict[Tuple[int, str], Dict[str, SignedMessage]] = {}
        self.commits: Dict[Tuple[int, str], Dict[str, SignedMessage]] = {}
        self.prepared_vote: Optional[Tuple[int, str]] = None
        self.committed_vote: Optional[Tuple[int, str]] = None
        self.prepared_cert: Optional[Tuple[int, str]] = None
        self.prepared_proof: Optional[Tuple[SignedMessage, ...]] = None
        self.ordered: Optional[Tuple[int, str, SignedMessage]] = None


class PbftNode(Process):
    """One baseline replica."""

    def __init__(
        self,
        name: str,
        simulator: Simulator,
        network: Network,
        config: PbftConfig,
        crypto: CryptoProvider,
        app: ReplicatedApplication,
        trace: Optional[Trace] = None,
        transport: Optional[Transport] = None,
    ) -> None:
        super().__init__(name, simulator, network)
        self.config = config
        self.crypto = crypto
        self.app = app
        self.trace = trace
        self.transport: Transport = transport or DirectTransport(self)
        self.view = 0
        self.in_view_change = False
        self.slots: Dict[int, _Slot] = {}
        self.last_executed = 0
        self.executed_counter = 0
        self.client_dedup = ClientDedup()
        self.execution_listeners: List[Callable[[ClientUpdate, int, Any], None]] = []
        #: updates awaiting execution: (client, client_seq) -> (update, since)
        self._pending: Dict[Tuple[str, int], Tuple[ClientUpdate, float]] = {}
        self._leader_buffer: List[ClientUpdate] = []
        self._leader_inflight: set = set()
        self._batch_timer_set = False
        self._next_seq = 1
        self._min_fresh_seq = 1
        self._view_changes: Dict[int, Dict[str, SignedMessage]] = {}
        self._sent_vc_for: set = set()
        self._sent_nv_for: set = set()

    # ------------------------------------------------------------------
    def start(self) -> None:
        self.every(self.config.check_interval_ms, self._timeout_tick, jitter=2.0)
        self.every(self.config.retrans_interval_ms, self._retrans_tick, jitter=2.0)
        self.every(self.config.forward_interval_ms, self._forward_tick, jitter=2.0)

    @property
    def is_leader(self) -> bool:
        return self.config.leader_of_view(self.view) == self.name

    def sign_message(self, payload: Any) -> SignedMessage:
        return SignedMessage(payload, self.crypto.sign(self.name, payload))

    def verify_signed(self, signed: SignedMessage) -> bool:
        return self.crypto.verify(signed.signature, signed.payload)

    def _broadcast(self, payload: Any, include_self: bool = True) -> SignedMessage:
        signed = self.sign_message(payload)
        for peer in self.config.replicas:
            if peer != self.name:
                self.transport.send(peer, signed, size_bytes=200)
        if include_self:
            self._dispatch(signed)
        return signed

    def _send_to(self, peer: str, payload: Any) -> None:
        if peer == self.name:
            self._dispatch(self.sign_message(payload))
        else:
            self.transport.send(peer, self.sign_message(payload), size_bytes=200)

    # ------------------------------------------------------------------
    # Client path
    # ------------------------------------------------------------------
    def submit(self, update: ClientUpdate) -> bool:
        if not self.is_up:
            return False
        if not verify_client_update(self.crypto, update):
            return False
        if self.client_dedup.is_duplicate(update.client, update.client_seq):
            return False
        self._pending[(update.client, update.client_seq)] = (
            update, self.simulator.now,
        )
        # PBFT clients broadcast to all replicas so every replica starts a
        # timeout for the request (that is what arms the view change).
        self._broadcast(ForwardedUpdate(self.name, update), include_self=True)
        return True

    def _forward_tick(self) -> None:
        """Re-forward pending updates (leader may have changed or lost them)."""
        leader = self.config.leader_of_view(self.view)
        for update, _ in list(self._pending.values()):
            self._send_to(leader, ForwardedUpdate(self.name, update))

    def _on_forwarded(self, signed: SignedMessage, msg: ForwardedUpdate) -> None:
        update = msg.update
        if not verify_client_update(self.crypto, update):
            return
        key = (update.client, update.client_seq)
        if self.client_dedup.is_duplicate(update.client, update.client_seq):
            return
        if key not in self._pending:
            self._pending[key] = (update, self.simulator.now)
        if not self.is_leader or self.in_view_change:
            return
        if key in self._leader_inflight:
            return
        self._leader_inflight.add(key)
        self._leader_buffer.append(update)
        if not self._batch_timer_set:
            self._batch_timer_set = True
            self.set_timer(self.config.batch_interval_ms, self._flush_batch)

    def _flush_batch(self) -> None:
        self._batch_timer_set = False
        if not self.is_leader or self.in_view_change or not self._leader_buffer:
            return
        batch = tuple(self._leader_buffer[: self.config.batch_max_updates])
        del self._leader_buffer[: len(batch)]
        self._broadcast(PbftPrePrepare(self.name, self.view, self._next_seq, batch))
        self._next_seq += 1
        if self._leader_buffer:
            self._batch_timer_set = True
            self.set_timer(self.config.batch_interval_ms, self._flush_batch)

    # ------------------------------------------------------------------
    # Ordering
    # ------------------------------------------------------------------
    def on_message(self, src: str, payload: Any) -> None:
        unwrapped = self.transport.unwrap(payload)
        if unwrapped is not None:
            _, payload = unwrapped
        if isinstance(payload, SignedMessage) and self.verify_signed(payload):
            self._dispatch(payload)

    def _dispatch(self, signed: SignedMessage) -> None:
        payload = signed.payload
        handlers = {
            ForwardedUpdate: self._on_forwarded,
            PbftPrePrepare: self._on_pre_prepare,
            PbftPrepare: self._on_prepare,
            PbftCommit: self._on_commit,
            PbftViewChange: self._on_view_change,
            PbftNewView: self._on_new_view,
        }
        handler = handlers.get(type(payload))
        if handler is not None:
            handler(signed, payload)

    def _slot(self, seq: int) -> _Slot:
        if seq not in self.slots:
            self.slots[seq] = _Slot(seq)
        return self.slots[seq]

    @staticmethod
    def _batch_digest(seq: int, batch: Tuple[ClientUpdate, ...]) -> str:
        return digest((seq, tuple((u.client, u.client_seq, digest(u.payload))
                                  for u in batch)))

    def _on_pre_prepare(
        self, signed: SignedMessage, msg: PbftPrePrepare, from_new_view: bool = False
    ) -> None:
        if msg.view != self.view or (self.in_view_change and not from_new_view):
            return
        if msg.leader != self.config.leader_of_view(msg.view):
            return
        if signed.signature.signer != msg.leader:
            return
        if not from_new_view and msg.seq < self._min_fresh_seq:
            return
        slot = self._slot(msg.seq)
        if msg.view in slot.pre_prepares:
            return
        slot.pre_prepares[msg.view] = signed
        batch_digest = self._batch_digest(msg.seq, msg.batch)
        slot.prepares.setdefault((msg.view, batch_digest), {})[msg.leader] = signed
        if slot.prepared_vote is None or slot.prepared_vote[0] < msg.view:
            slot.prepared_vote = (msg.view, batch_digest)
            self._broadcast(PbftPrepare(self.name, msg.view, msg.seq, batch_digest))
        self._check_prepared(slot, msg.view, batch_digest)
        self._check_ordered(slot, msg.view, batch_digest)

    def _on_prepare(self, signed: SignedMessage, msg: PbftPrepare) -> None:
        if msg.sender != signed.signature.signer:
            return
        slot = self._slot(msg.seq)
        slot.prepares.setdefault((msg.view, msg.digest), {})[msg.sender] = signed
        self._check_prepared(slot, msg.view, msg.digest)

    def _check_prepared(self, slot: _Slot, view: int, batch_digest: str) -> None:
        voters = slot.prepares.get((view, batch_digest), {})
        if len(voters) < self.config.quorum:
            return
        if slot.prepared_cert is None or slot.prepared_cert[0] <= view:
            slot.prepared_cert = (view, batch_digest)
            slot.prepared_proof = tuple(
                voters[s] for s in sorted(voters)
            )[: self.config.quorum]
        if (
            (slot.committed_vote is None or slot.committed_vote[0] < view)
            and slot.prepared_vote == (view, batch_digest)
        ):
            slot.committed_vote = (view, batch_digest)
            self._broadcast(PbftCommit(self.name, view, slot.seq, batch_digest))

    def _on_commit(self, signed: SignedMessage, msg: PbftCommit) -> None:
        if msg.sender != signed.signature.signer:
            return
        slot = self._slot(msg.seq)
        slot.commits.setdefault((msg.view, msg.digest), {})[msg.sender] = signed
        self._check_ordered(slot, msg.view, msg.digest)

    def _check_ordered(self, slot: _Slot, view: int, batch_digest: str) -> None:
        if slot.ordered is not None:
            return
        commits = slot.commits.get((view, batch_digest), {})
        if len(commits) < self.config.quorum:
            return
        pre_prepare = slot.pre_prepares.get(view)
        if pre_prepare is None:
            return
        if self._batch_digest(slot.seq, pre_prepare.payload.batch) != batch_digest:
            return
        slot.ordered = (view, batch_digest, pre_prepare)
        self._try_execute()

    def _try_execute(self) -> None:
        while True:
            slot = self.slots.get(self.last_executed + 1)
            if slot is None or slot.ordered is None:
                break
            _, _, pre_prepare = slot.ordered
            for update in pre_prepare.payload.batch:
                self._execute_update(update)
            self.last_executed += 1

    def _execute_update(self, update: ClientUpdate) -> None:
        key = (update.client, update.client_seq)
        self._pending.pop(key, None)
        self._leader_inflight.discard(key)
        if self.client_dedup.is_duplicate(update.client, update.client_seq):
            return
        if not verify_client_update(self.crypto, update):
            return
        self.client_dedup.mark(update.client, update.client_seq)
        self.executed_counter += 1
        result = self.app.execute(update, self.executed_counter)
        for listener in self.execution_listeners:
            listener(update, self.executed_counter, result)

    # ------------------------------------------------------------------
    # Retransmission
    # ------------------------------------------------------------------
    def _retrans_tick(self) -> None:
        slot = self.slots.get(self.last_executed + 1)
        if slot is None or slot.ordered is not None:
            return
        pre_prepare = slot.pre_prepares.get(self.view)
        if pre_prepare is not None:
            for peer in self.config.replicas:
                if peer != self.name:
                    self.transport.send(peer, pre_prepare, size_bytes=300)
        if slot.committed_vote is not None:
            view, batch_digest = slot.committed_vote
            self._broadcast(
                PbftCommit(self.name, view, slot.seq, batch_digest), include_self=False
            )
        elif slot.prepared_vote is not None:
            view, batch_digest = slot.prepared_vote
            self._broadcast(
                PbftPrepare(self.name, view, slot.seq, batch_digest), include_self=False
            )

    # ------------------------------------------------------------------
    # Timeout-based view change (the baseline's only defence)
    # ------------------------------------------------------------------
    def _timeout_tick(self) -> None:
        if self.in_view_change:
            return
        now = self.simulator.now
        oldest = min((since for _, since in self._pending.values()), default=None)
        if oldest is not None and now - oldest > self.config.request_timeout_ms:
            if self.trace is not None:
                self.trace.event(self.name, EV_PBFT_TIMEOUT, view=self.view,
                                 age=now - oldest)
            self._start_view_change(self.view + 1)

    def _start_view_change(self, new_view: int) -> None:
        if new_view in self._sent_vc_for or new_view < self.view:
            return
        self._sent_vc_for.add(new_view)
        self.view = max(self.view, new_view)
        self.in_view_change = True
        if self.trace is not None:
            self.trace.event(self.name, EV_PBFT_VIEW_CHANGE, view=new_view)
        prepared = []
        for seq in sorted(self.slots):
            slot = self.slots[seq]
            if seq <= self.last_executed:
                continue
            if slot.prepared_cert is None or slot.prepared_proof is None:
                continue
            view, batch_digest = slot.prepared_cert
            pre_prepare = slot.pre_prepares.get(view)
            if pre_prepare is None:
                continue
            prepared.append(
                PbftPrepared(seq, view, batch_digest, pre_prepare, slot.prepared_proof)
            )
        vc = PbftViewChange(self.name, new_view, self.last_executed, tuple(prepared))
        self._broadcast(vc)
        self.set_timer(
            self.config.request_timeout_ms, self._view_change_timeout, new_view
        )

    def _view_change_timeout(self, expected_view: int) -> None:
        if self.in_view_change and self.view == expected_view:
            self._start_view_change(expected_view + 1)

    @staticmethod
    def _derive(view_changes: List[PbftViewChange]):
        start = max((vc.last_executed for vc in view_changes), default=0)
        best: Dict[int, PbftPrepared] = {}
        for vc in view_changes:
            for entry in vc.prepared:
                if entry.seq <= start:
                    continue
                current = best.get(entry.seq)
                if current is None or entry.view > current.view or (
                    entry.view == current.view and entry.digest < current.digest
                ):
                    best[entry.seq] = entry
        max_seq = max(best.keys(), default=start)
        out = []
        for seq in range(start + 1, max_seq + 1):
            entry = best.get(seq)
            out.append((seq, entry.pre_prepare.payload.batch if entry else ()))
        return start, out

    def _on_view_change(self, signed: SignedMessage, msg: PbftViewChange) -> None:
        if msg.sender != signed.signature.signer:
            return
        if msg.new_view < self.view:
            return
        table = self._view_changes.setdefault(msg.new_view, {})
        table[msg.sender] = signed
        if msg.new_view > self.view and len(table) >= self.config.num_faults + 1:
            self._start_view_change(msg.new_view)
        if (
            self.config.leader_of_view(msg.new_view) == self.name
            and len(table) >= self.config.quorum
            and msg.new_view not in self._sent_nv_for
        ):
            self._sent_nv_for.add(msg.new_view)
            chosen = [table[s] for s in sorted(table)][: self.config.quorum]
            _, proposals = self._derive([s.payload for s in chosen])
            pre_prepares = tuple(
                self.sign_message(PbftPrePrepare(self.name, msg.new_view, seq, batch))
                for seq, batch in proposals
            )
            self._broadcast(
                PbftNewView(self.name, msg.new_view, tuple(chosen), pre_prepares)
            )

    def _on_new_view(self, signed: SignedMessage, msg: PbftNewView) -> None:
        if msg.view < self.view or (msg.view == self.view and not self.in_view_change):
            return
        if msg.leader != self.config.leader_of_view(msg.view):
            return
        if signed.signature.signer != msg.leader:
            return
        senders = set()
        payloads = []
        for vc_signed in msg.view_changes:
            vc = vc_signed.payload
            if not isinstance(vc, PbftViewChange) or vc.new_view != msg.view:
                return
            if not self.verify_signed(vc_signed):
                return
            senders.add(vc.sender)
            payloads.append(vc)
        if len(senders) < self.config.quorum:
            return
        _, expected = self._derive(payloads)
        if len(expected) != len(msg.pre_prepares):
            return
        for (seq, batch), pp_signed in zip(expected, msg.pre_prepares):
            pp = pp_signed.payload
            if pp.seq != seq or pp.batch != batch or pp.view != msg.view:
                return
        self.view = msg.view
        self.in_view_change = False
        self._min_fresh_seq = (expected[-1][0] if expected else self.last_executed) + 1
        self._next_seq = max(self._next_seq, self._min_fresh_seq)
        if self.trace is not None:
            self.trace.event(self.name, EV_PBFT_NEW_VIEW, view=msg.view)
        for pp_signed in msg.pre_prepares:
            self._on_pre_prepare(pp_signed, pp_signed.payload, from_new_view=True)
        # re-forward pending work to the new leader
        self._forward_tick()
