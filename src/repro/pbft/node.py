"""A PBFT-style baseline replica (Castro-Liskov shape).

This is the comparison system the paper's evaluation needs: a classical
leader-based BFT protocol whose *only* defence against a slow leader is a
static request timeout. Two consequences the benchmarks demonstrate:

* A network attacker that delays the leader's proposals to just below the
  timeout degrades latency by orders of magnitude **without ever
  triggering a view change** — the "slow leader" attack Prime was designed
  to close.
* Even when the timeout does fire, latency spikes to the full timeout
  value before recovery.

Scope: the baseline implements the three-phase ordering, batching,
forwarding to the leader, timeout-driven view changes with deterministic
re-proposal derivation, and retransmission against loss. It does not
implement checkpointing/state transfer or Byzantine-proof view-change
validation — those are exercised through Prime, which is the system under
test; the baseline exists to reproduce the performance comparison.

Like Prime, the node rides on the shared
:class:`~repro.replication.runtime.ReplicationRuntime` (envelope
discipline, membership fan-out, send accounting), a
:class:`~repro.replication.dispatch.Dispatcher` for typed routing with
per-kind observability, :class:`~repro.replication.ordering.ThreePhaseSlot`
for per-slot agreement state, and
:class:`~repro.replication.epoch.EpochVoteTable` /
:func:`~repro.replication.epoch.derive_reproposals` for its view-change
bookkeeping. Head-of-line retransmission backs off through the shared
:class:`~repro.replication.retry.RetrySchedule` instead of hammering at a
fixed interval.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from ..crypto.encoding import digest
from ..crypto.provider import CryptoProvider
from ..obs import (
    EV_PBFT_NEW_VIEW,
    EV_PBFT_TIMEOUT,
    EV_PBFT_VIEW_CHANGE,
    EventLog,
    Observability,
    resolve_obs,
)
from ..prime.app import ReplicatedApplication
from ..prime.dedup import ClientDedup
from ..prime.messages import ClientUpdate, verify_client_update
from ..replication import (
    Dispatcher,
    DirectTransport,
    EpochVoteTable,
    ReplicationRuntime,
    RetryPolicy,
    RetrySchedule,
    SignedMessage,
    ThreePhaseSlot,
    Transport,
    derive_reproposals,
)
from ..simnet import Network, Process, Simulator
from .messages import (
    ForwardedUpdate,
    PbftCommit,
    PbftNewView,
    PbftPrepare,
    PbftPrepared,
    PbftPrePrepare,
    PbftViewChange,
)

__all__ = ["PbftConfig", "PbftNode"]


class PbftConfig:
    """Static configuration for one PBFT group."""

    def __init__(
        self,
        replicas: Tuple[str, ...],
        num_faults: int = 1,
        batch_interval_ms: float = 5.0,
        batch_max_updates: int = 64,
        request_timeout_ms: float = 2000.0,
        check_interval_ms: float = 100.0,
        retrans_interval_ms: float = 50.0,
        forward_interval_ms: float = 200.0,
    ) -> None:
        if len(replicas) < 3 * num_faults + 1:
            raise ValueError("PBFT needs n >= 3f + 1")
        self.replicas = tuple(replicas)
        self.num_faults = num_faults
        self.batch_interval_ms = batch_interval_ms
        self.batch_max_updates = batch_max_updates
        self.request_timeout_ms = request_timeout_ms
        self.check_interval_ms = check_interval_ms
        self.retrans_interval_ms = retrans_interval_ms
        self.forward_interval_ms = forward_interval_ms

    @property
    def n(self) -> int:
        return len(self.replicas)

    @property
    def quorum(self) -> int:
        """ceil((n + f + 1) / 2): intersection of any two quorums contains
        a correct replica."""
        return (self.n + self.num_faults + 2) // 2

    def leader_of_view(self, view: int) -> str:
        return self.replicas[view % self.n]


def _sender_matches_signer(payload: Any, signer: str) -> bool:
    # The baseline deliberately skips the membership half of the standard
    # sender check (non-members cannot produce verifying envelopes under
    # the simulated PKI); Byzantine-proof validation is Prime's job.
    return payload.sender == signer


class PbftNode(Process):
    """One baseline replica."""

    def __init__(
        self,
        name: str,
        simulator: Simulator,
        network: Network,
        config: PbftConfig,
        crypto: CryptoProvider,
        app: ReplicatedApplication,
        trace: Optional[EventLog] = None,
        transport: Optional[Transport] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        super().__init__(name, simulator, network)
        self.config = config
        self.crypto = crypto
        self.app = app
        self.trace = trace
        self.obs = resolve_obs(obs, trace)
        self.transport: Transport = transport or DirectTransport(self, obs=self.obs)
        self.dispatcher = Dispatcher(obs=self.obs, metric_prefix="pbft")
        self.runtime = ReplicationRuntime(
            process=self,
            crypto=crypto,
            replicas_fn=lambda: self.config.replicas,
            dispatcher=self.dispatcher,
            size_of=lambda payload: 200,
            obs=self.obs,
            metric_prefix="pbft",
            # PBFT point-to-point self-sends loop back through dispatch
            # (a leader forwards pending updates to itself).
            loopback_dispatch=True,
        )
        self.view = 0
        self.in_view_change = False
        self.slots: Dict[int, ThreePhaseSlot] = {}
        self.last_executed = 0
        self.executed_counter = 0
        self.client_dedup = ClientDedup()
        self.execution_listeners: List[Callable[[ClientUpdate, int, Any], None]] = []
        #: updates awaiting execution: (client, client_seq) -> (update, since)
        self._pending: Dict[Tuple[str, int], Tuple[ClientUpdate, float]] = {}
        self._leader_buffer: List[ClientUpdate] = []
        self._leader_inflight: set = set()
        self._batch_timer_set = False
        self._next_seq = 1
        self._min_fresh_seq = 1
        #: new_view -> sender -> signed PbftViewChange
        self._view_changes = EpochVoteTable()
        self._sent_vc_for: set = set()
        self._sent_nv_for: set = set()
        #: head-of-line retransmission backoff (shared RetrySchedule)
        self._retrans_schedule = RetrySchedule(
            RetryPolicy(
                base_ms=config.retrans_interval_ms,
                factor=2.0,
                max_ms=config.retrans_interval_ms * 16,
                max_attempts=8,
            ),
            rng=simulator.rng(f"pbft-retrans/{name}"),
        )
        self._retrans_head: Optional[int] = None
        self._retrans_due = 0.0
        self._register_handlers()

    def _register_handlers(self) -> None:
        reg = self.dispatcher.register
        reg(ForwardedUpdate, self._on_forwarded)
        # PbftPrePrepare / PbftNewView keep their leader/signer checks
        # in-handler: new-view replay re-enters _on_pre_prepare directly.
        reg(PbftPrePrepare, self._on_pre_prepare)
        reg(PbftPrepare, self._on_prepare, sender_check=_sender_matches_signer)
        reg(PbftCommit, self._on_commit, sender_check=_sender_matches_signer)
        reg(PbftViewChange, self._on_view_change,
            sender_check=_sender_matches_signer)
        reg(PbftNewView, self._on_new_view)

    # ------------------------------------------------------------------
    def start(self) -> None:
        self.every(self.config.check_interval_ms, self._timeout_tick, jitter=2.0)
        self.every(self.config.retrans_interval_ms, self._retrans_tick, jitter=2.0)
        self.every(self.config.forward_interval_ms, self._forward_tick, jitter=2.0)

    @property
    def is_leader(self) -> bool:
        return self.config.leader_of_view(self.view) == self.name

    def sign_message(self, payload: Any) -> SignedMessage:
        return self.runtime.sign(payload)

    def verify_signed(self, signed: SignedMessage) -> bool:
        return self.runtime.verify(signed)

    def _broadcast(self, payload: Any, include_self: bool = True) -> SignedMessage:
        return self.runtime.broadcast(payload, include_self=include_self)

    def _send_to(self, peer: str, payload: Any) -> None:
        self.runtime.send_to(peer, payload)

    # ------------------------------------------------------------------
    # Client path
    # ------------------------------------------------------------------
    def submit(self, update: ClientUpdate) -> bool:
        if not self.is_up:
            return False
        if not verify_client_update(self.crypto, update):
            return False
        if self.client_dedup.is_duplicate(update.client, update.client_seq):
            return False
        self._pending[(update.client, update.client_seq)] = (
            update, self.simulator.now,
        )
        # PBFT clients broadcast to all replicas so every replica starts a
        # timeout for the request (that is what arms the view change).
        self._broadcast(ForwardedUpdate(self.name, update), include_self=True)
        return True

    def _forward_tick(self) -> None:
        """Re-forward pending updates (leader may have changed or lost them)."""
        leader = self.config.leader_of_view(self.view)
        for update, _ in list(self._pending.values()):
            self._send_to(leader, ForwardedUpdate(self.name, update))

    def _on_forwarded(self, signed: SignedMessage, msg: ForwardedUpdate) -> None:
        update = msg.update
        if not verify_client_update(self.crypto, update):
            return
        key = (update.client, update.client_seq)
        if self.client_dedup.is_duplicate(update.client, update.client_seq):
            return
        if key not in self._pending:
            self._pending[key] = (update, self.simulator.now)
        if not self.is_leader or self.in_view_change:
            return
        if key in self._leader_inflight:
            return
        self._leader_inflight.add(key)
        self._leader_buffer.append(update)
        if not self._batch_timer_set:
            self._batch_timer_set = True
            self.set_timer(self.config.batch_interval_ms, self._flush_batch)

    def _flush_batch(self) -> None:
        self._batch_timer_set = False
        if not self.is_leader or self.in_view_change or not self._leader_buffer:
            return
        batch = tuple(self._leader_buffer[: self.config.batch_max_updates])
        del self._leader_buffer[: len(batch)]
        self._broadcast(PbftPrePrepare(self.name, self.view, self._next_seq, batch))
        self._next_seq += 1
        if self._leader_buffer:
            self._batch_timer_set = True
            self.set_timer(self.config.batch_interval_ms, self._flush_batch)

    # ------------------------------------------------------------------
    # Ordering
    # ------------------------------------------------------------------
    def on_message(self, src: str, payload: Any) -> None:
        self.runtime.receive(payload)

    def _dispatch(self, signed: SignedMessage) -> None:
        self.dispatcher.dispatch(signed)

    def _slot(self, seq: int) -> ThreePhaseSlot:
        if seq not in self.slots:
            self.slots[seq] = ThreePhaseSlot(seq)
        return self.slots[seq]

    @staticmethod
    def _batch_digest(seq: int, batch: Tuple[ClientUpdate, ...]) -> str:
        return digest((seq, tuple((u.client, u.client_seq, digest(u.payload))
                                  for u in batch)))

    def _on_pre_prepare(
        self, signed: SignedMessage, msg: PbftPrePrepare, from_new_view: bool = False
    ) -> None:
        if msg.view != self.view or (self.in_view_change and not from_new_view):
            return
        if msg.leader != self.config.leader_of_view(msg.view):
            return
        if signed.signature.signer != msg.leader:
            return
        if not from_new_view and msg.seq < self._min_fresh_seq:
            return
        slot = self._slot(msg.seq)
        if msg.view in slot.pre_prepares:
            return
        slot.pre_prepares[msg.view] = signed
        batch_digest = self._batch_digest(msg.seq, msg.batch)
        # the leader's pre-prepare doubles as its prepare vote
        slot.record_prepare(msg.view, batch_digest, msg.leader, signed)
        if slot.should_vote_prepare(msg.view):
            slot.prepared_vote = (msg.view, batch_digest)
            self._broadcast(PbftPrepare(self.name, msg.view, msg.seq, batch_digest))
        self._check_prepared(slot, msg.view, batch_digest)
        self._check_ordered(slot, msg.view, batch_digest)

    def _on_prepare(self, signed: SignedMessage, msg: PbftPrepare) -> None:
        slot = self._slot(msg.seq)
        slot.record_prepare(msg.view, msg.digest, msg.sender, signed)
        self._check_prepared(slot, msg.view, msg.digest)

    def _check_prepared(
        self, slot: ThreePhaseSlot, view: int, batch_digest: str
    ) -> None:
        if not slot.note_prepared(view, batch_digest, self.config.quorum):
            return
        if slot.should_vote_commit(view, batch_digest):
            slot.committed_vote = (view, batch_digest)
            self._broadcast(PbftCommit(self.name, view, slot.seq, batch_digest))

    def _on_commit(self, signed: SignedMessage, msg: PbftCommit) -> None:
        slot = self._slot(msg.seq)
        slot.record_commit(msg.view, msg.digest, msg.sender, signed)
        self._check_ordered(slot, msg.view, msg.digest)

    def _check_ordered(
        self, slot: ThreePhaseSlot, view: int, batch_digest: str
    ) -> None:
        if slot.ordered is not None:
            return
        if len(slot.commit_voters(view, batch_digest)) < self.config.quorum:
            return
        pre_prepare = slot.pre_prepares.get(view)
        if pre_prepare is None:
            return
        if self._batch_digest(slot.seq, pre_prepare.payload.batch) != batch_digest:
            return
        slot.ordered = (view, batch_digest, pre_prepare)
        self._try_execute()

    def _try_execute(self) -> None:
        while True:
            slot = self.slots.get(self.last_executed + 1)
            if slot is None or slot.ordered is None:
                break
            _, _, pre_prepare = slot.ordered
            for update in pre_prepare.payload.batch:
                self._execute_update(update)
            self.last_executed += 1

    def _execute_update(self, update: ClientUpdate) -> None:
        key = (update.client, update.client_seq)
        self._pending.pop(key, None)
        self._leader_inflight.discard(key)
        if self.client_dedup.is_duplicate(update.client, update.client_seq):
            return
        if not verify_client_update(self.crypto, update):
            return
        self.client_dedup.mark(update.client, update.client_seq)
        self.executed_counter += 1
        result = self.app.execute(update, self.executed_counter)
        for listener in self.execution_listeners:
            listener(update, self.executed_counter, result)

    # ------------------------------------------------------------------
    # Retransmission (bounded backoff over the shared RetrySchedule)
    # ------------------------------------------------------------------
    def _retrans_tick(self) -> None:
        slot = self.slots.get(self.last_executed + 1)
        if slot is None or slot.ordered is not None:
            if self._retrans_head is not None:
                self._retrans_head = None
                self._retrans_schedule.reset()
            return
        now = self.simulator.now
        if slot.seq != self._retrans_head:
            # new head-of-line stall: resend immediately, then back off
            self._retrans_head = slot.seq
            self._retrans_schedule.reset()
            self._retrans_due = now
        if now < self._retrans_due:
            return
        self._retrans_due = now + self._retrans_schedule.next_delay_ms()
        pre_prepare = slot.pre_prepares.get(self.view)
        if pre_prepare is not None:
            self.runtime.resend(pre_prepare, size_bytes=300)
        if slot.committed_vote is not None:
            view, batch_digest = slot.committed_vote
            self._broadcast(
                PbftCommit(self.name, view, slot.seq, batch_digest), include_self=False
            )
        elif slot.prepared_vote is not None:
            view, batch_digest = slot.prepared_vote
            self._broadcast(
                PbftPrepare(self.name, view, slot.seq, batch_digest), include_self=False
            )

    # ------------------------------------------------------------------
    # Timeout-based view change (the baseline's only defence)
    # ------------------------------------------------------------------
    def _timeout_tick(self) -> None:
        if self.in_view_change:
            return
        now = self.simulator.now
        oldest = min((since for _, since in self._pending.values()), default=None)
        if oldest is not None and now - oldest > self.config.request_timeout_ms:
            self.obs.event(self.name, EV_PBFT_TIMEOUT, view=self.view,
                           age=now - oldest)
            self._start_view_change(self.view + 1)

    def _start_view_change(self, new_view: int) -> None:
        if new_view in self._sent_vc_for or new_view < self.view:
            return
        self._sent_vc_for.add(new_view)
        self.view = max(self.view, new_view)
        self.in_view_change = True
        self.obs.event(self.name, EV_PBFT_VIEW_CHANGE, view=new_view)
        prepared = []
        for seq in sorted(self.slots):
            slot = self.slots[seq]
            if seq <= self.last_executed:
                continue
            if slot.prepared_cert is None or slot.prepared_proof is None:
                continue
            view, batch_digest = slot.prepared_cert
            pre_prepare = slot.pre_prepares.get(view)
            if pre_prepare is None:
                continue
            prepared.append(
                PbftPrepared(seq, view, batch_digest, pre_prepare, slot.prepared_proof)
            )
        vc = PbftViewChange(self.name, new_view, self.last_executed, tuple(prepared))
        self._broadcast(vc)
        self.set_timer(
            self.config.request_timeout_ms, self._view_change_timeout, new_view
        )

    def _view_change_timeout(self, expected_view: int) -> None:
        if self.in_view_change and self.view == expected_view:
            self._start_view_change(expected_view + 1)

    @staticmethod
    def _derive(view_changes: List[PbftViewChange]):
        return derive_reproposals(
            view_changes,
            anchor_of=lambda vc: vc.last_executed,
            entries_of=lambda vc: vc.prepared,
            content_of=lambda entry: entry.pre_prepare.payload.batch,
            empty=(),
        )

    def _on_view_change(self, signed: SignedMessage, msg: PbftViewChange) -> None:
        if msg.new_view < self.view:
            return
        count = self._view_changes.record(msg.new_view, msg.sender, signed)
        if msg.new_view > self.view and count >= self.config.num_faults + 1:
            self._start_view_change(msg.new_view)
        if (
            self.config.leader_of_view(msg.new_view) == self.name
            and count >= self.config.quorum
            and msg.new_view not in self._sent_nv_for
        ):
            self._sent_nv_for.add(msg.new_view)
            chosen = self._view_changes.chosen(msg.new_view, self.config.quorum)
            _, proposals = self._derive([s.payload for s in chosen])
            pre_prepares = tuple(
                self.sign_message(PbftPrePrepare(self.name, msg.new_view, seq, batch))
                for seq, batch in proposals
            )
            self._broadcast(
                PbftNewView(self.name, msg.new_view, tuple(chosen), pre_prepares)
            )

    def _on_new_view(self, signed: SignedMessage, msg: PbftNewView) -> None:
        if msg.view < self.view or (msg.view == self.view and not self.in_view_change):
            return
        if msg.leader != self.config.leader_of_view(msg.view):
            return
        if signed.signature.signer != msg.leader:
            return
        senders = set()
        payloads = []
        for vc_signed in msg.view_changes:
            vc = vc_signed.payload
            if not isinstance(vc, PbftViewChange) or vc.new_view != msg.view:
                return
            if not self.verify_signed(vc_signed):
                return
            senders.add(vc.sender)
            payloads.append(vc)
        if len(senders) < self.config.quorum:
            return
        _, expected = self._derive(payloads)
        if len(expected) != len(msg.pre_prepares):
            return
        for (seq, batch), pp_signed in zip(expected, msg.pre_prepares):
            pp = pp_signed.payload
            if pp.seq != seq or pp.batch != batch or pp.view != msg.view:
                return
        self.view = msg.view
        self.in_view_change = False
        self._min_fresh_seq = (expected[-1][0] if expected else self.last_executed) + 1
        self._next_seq = max(self._next_seq, self._min_fresh_seq)
        self.obs.event(self.name, EV_PBFT_NEW_VIEW, view=msg.view)
        for pp_signed in msg.pre_prepares:
            self._on_pre_prepare(pp_signed, pp_signed.payload, from_new_view=True)
        # re-forward pending work to the new leader
        self._forward_tick()
