"""Wire messages for the PBFT-style baseline protocol."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple

from ..prime.messages import ClientUpdate, SignedMessage

__all__ = [
    "PbftPrePrepare",
    "PbftPrepare",
    "PbftCommit",
    "PbftViewChange",
    "PbftNewView",
    "PbftPrepared",
    "ForwardedUpdate",
]


@dataclass(frozen=True)
class ForwardedUpdate:
    """A replica forwards a client update to the current leader."""

    sender: str
    update: ClientUpdate


@dataclass(frozen=True)
class PbftPrePrepare:
    leader: str
    view: int
    seq: int
    batch: Tuple[ClientUpdate, ...]


@dataclass(frozen=True)
class PbftPrepare:
    sender: str
    view: int
    seq: int
    digest: str


@dataclass(frozen=True)
class PbftCommit:
    sender: str
    view: int
    seq: int
    digest: str


@dataclass(frozen=True)
class PbftPrepared:
    """Prepared certificate carried in a view change."""

    seq: int
    view: int
    digest: str
    pre_prepare: SignedMessage                # SignedMessage[PbftPrePrepare]
    proof: Tuple[SignedMessage, ...] = ()     # quorum of Prepare/Commit


@dataclass(frozen=True)
class PbftViewChange:
    sender: str
    new_view: int
    last_executed: int
    prepared: Tuple[PbftPrepared, ...]


@dataclass(frozen=True)
class PbftNewView:
    leader: str
    view: int
    view_changes: Tuple[SignedMessage, ...]
    pre_prepares: Tuple[SignedMessage, ...]
