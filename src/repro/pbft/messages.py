"""Wire messages for the PBFT-style baseline protocol."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple

from ..prime.messages import ClientUpdate, SignedMessage

__all__ = [
    "PbftPrePrepare",
    "PbftPrepare",
    "PbftCommit",
    "PbftCheckpoint",
    "PbftViewChange",
    "PbftNewView",
    "PbftPrepared",
    "PbftFetch",
    "PbftOrderProof",
    "ForwardedUpdate",
]


@dataclass(frozen=True)
class ForwardedUpdate:
    """A replica forwards a client update to the current leader."""

    sender: str
    update: ClientUpdate


@dataclass(frozen=True)
class PbftPrePrepare:
    leader: str
    view: int
    seq: int
    batch: Tuple[ClientUpdate, ...]


@dataclass(frozen=True)
class PbftPrepare:
    sender: str
    view: int
    seq: int
    digest: str


@dataclass(frozen=True)
class PbftCommit:
    sender: str
    view: int
    seq: int
    digest: str


@dataclass(frozen=True)
class PbftCheckpoint:
    """Vote that the sender's state after executing ``seq`` has ``digest``."""

    sender: str
    seq: int
    digest: str


@dataclass(frozen=True)
class PbftPrepared:
    """Prepared certificate carried in a view change."""

    seq: int
    view: int
    digest: str
    pre_prepare: SignedMessage                # SignedMessage[PbftPrePrepare]
    proof: Tuple[SignedMessage, ...] = ()     # quorum of Prepare/Commit


@dataclass(frozen=True)
class PbftViewChange:
    sender: str
    new_view: int
    last_executed: int
    prepared: Tuple[PbftPrepared, ...]


@dataclass(frozen=True)
class PbftFetch:
    """A lagging replica asks peers for ordered slots from ``from_seq``."""

    sender: str
    from_seq: int


@dataclass(frozen=True)
class PbftOrderProof:
    """Commit-certified slot served to a laggard: the pre-prepare plus a
    quorum of commits is transferable proof of the ordering decision, so
    the receiver can install it regardless of what view it is in."""

    sender: str
    seq: int
    view: int
    digest: str
    pre_prepare: SignedMessage
    proof: Tuple[SignedMessage, ...]
    #: the server's own execution frontier (last_executed) at serve time;
    #: tells the requester how far the catch-up loop still has to pull
    frontier: int = 0


@dataclass(frozen=True)
class PbftNewView:
    leader: str
    view: int
    view_changes: Tuple[SignedMessage, ...]
    pre_prepares: Tuple[SignedMessage, ...]
